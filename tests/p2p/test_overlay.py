"""Tests for overlay construction, sampling, repair, and invariants."""

import pytest

from repro.errors import CapacityError, OverlayError


def join_viewer(deployment, email, channel="free-ch", now=1.0, capacity=4):
    client = deployment.create_client(email, "pw", region="CH")
    client.login(now=now)
    return deployment.watch(client, channel, now=now, capacity=capacity)


def ticketed(deployment, email, channel="free-ch", now=1.0, capacity=4):
    client = deployment.create_client(email, "pw", region="CH")
    client.login(now=now)
    client.switch_channel(channel, now=now)
    return deployment.make_peer(client, channel, capacity=capacity)


class TestMembership:
    def test_register_wrong_channel_rejected(self, deployment):
        deployment.add_free_channel("free-2", regions=["CH"], now=0.0)
        peer = ticketed(deployment, "a@example.org", "free-ch")
        with pytest.raises(OverlayError):
            deployment.overlay("free-2").register_peer(peer)

    def test_size_counts_members(self, deployment):
        overlay = deployment.overlay("free-ch")
        assert overlay.size == 0
        join_viewer(deployment, "a@example.org")
        join_viewer(deployment, "b@example.org")
        assert overlay.size == 2

    def test_lookup_source_and_members(self, deployment):
        overlay = deployment.overlay("free-ch")
        peer = join_viewer(deployment, "a@example.org")
        assert overlay.lookup(peer.peer_id) is peer
        assert overlay.lookup(overlay.source.peer_id) is overlay.source
        with pytest.raises(OverlayError):
            overlay.lookup("ghost")


class TestSampling:
    def test_sample_excludes_requester(self, deployment):
        overlay = deployment.overlay("free-ch")
        peer = join_viewer(deployment, "a@example.org")
        sample = overlay.sample_peers("free-ch", peer.address, 8)
        assert all(d.address != peer.address for d in sample)

    def test_sample_excludes_full_peers(self, deployment):
        overlay = deployment.overlay("free-ch")
        full = join_viewer(deployment, "a@example.org", capacity=1)
        child = ticketed(deployment, "b@example.org")
        overlay.join(child, [full.descriptor()], now=2.0)
        sample = overlay.sample_peers("free-ch", "99.9.9.9", 8)
        assert all(d.peer_id != full.peer_id for d in sample)

    def test_sample_wrong_channel_empty(self, deployment):
        assert deployment.overlay("free-ch").sample_peers("other", "x", 8) == []

    def test_source_included_as_fallback(self, deployment):
        overlay = deployment.overlay("free-ch")
        sample = overlay.sample_peers("free-ch", "99.9.9.9", 8)
        assert [d.peer_id for d in sample] == [overlay.source.peer_id]

    def test_sample_respects_count(self, deployment):
        overlay = deployment.overlay("free-ch")
        for i in range(6):
            join_viewer(deployment, f"u{i}@example.org")
        assert len(overlay.sample_peers("free-ch", "99.9.9.9", 3)) <= 3

    def test_saturated_source_does_not_shorten_list(self, deployment):
        """Regression: the slot reserved for the source used to cap the
        list at count-1 when the source was full, even with spare
        candidates left over."""
        overlay = deployment.overlay("free-ch")
        for i in range(8):
            join_viewer(deployment, f"u{i}@example.org", capacity=4)
        # Saturate the source's remaining child slots with zero-capacity
        # peers pinned directly to it (they never appear in samples).
        i = 0
        while overlay.source.spare_capacity > 0:
            hog = ticketed(deployment, f"hog{i}@example.org", capacity=0)
            overlay.join(hog, [overlay.source.descriptor()], now=2.0)
            i += 1
        sample = overlay.sample_peers("free-ch", "99.9.9.9", 6)
        assert len(sample) == 6
        assert all(d.peer_id != overlay.source.peer_id for d in sample)


class TestJoin:
    def test_join_walks_list_past_full_candidates(self, deployment):
        overlay = deployment.overlay("free-ch")
        full = join_viewer(deployment, "full@example.org", capacity=1)
        blocker = ticketed(deployment, "blocker@example.org")
        overlay.join(blocker, [full.descriptor()], now=2.0)
        open_peer = join_viewer(deployment, "open@example.org", capacity=4)
        joiner = ticketed(deployment, "joiner@example.org")
        parent, attempts = overlay.join(
            joiner, [full.descriptor(), open_peer.descriptor()], now=3.0
        )
        assert parent is open_peer
        assert attempts == 2

    def test_join_fails_when_all_full(self, deployment):
        overlay = deployment.overlay("free-ch")
        full = join_viewer(deployment, "full@example.org", capacity=1)
        blocker = ticketed(deployment, "blocker@example.org")
        overlay.join(blocker, [full.descriptor()], now=2.0)
        joiner = ticketed(deployment, "joiner@example.org")
        with pytest.raises(CapacityError):
            overlay.join(joiner, [full.descriptor()], now=3.0)

    def test_join_skips_departed_candidates(self, deployment):
        overlay = deployment.overlay("free-ch")
        gone = join_viewer(deployment, "gone@example.org")
        descriptor = gone.descriptor()
        overlay.remove_peer(gone.peer_id, now=2.0)
        joiner = ticketed(deployment, "joiner@example.org")
        parent, _ = overlay.join(
            joiner, [descriptor, overlay.source.descriptor()], now=3.0
        )
        assert parent is overlay.source

    def test_join_sets_parent_plan(self, deployment):
        overlay = deployment.overlay("free-ch")
        peer = join_viewer(deployment, "a@example.org")
        plan = overlay.plans[peer.peer_id]
        assert plan.complete
        assert plan.distinct_parents() == {overlay.source.peer_id}

    def test_rejoin_does_not_resurrect_stale_plan(self, deployment):
        """Regression: a fresh join after a prior partial join must not
        keep sub-streams mapped to the old parent -- the old plan's
        parent never accepted this time."""
        overlay = deployment.overlay("free-ch")
        old_parent = join_viewer(deployment, "old@example.org", capacity=2)
        new_parent = join_viewer(deployment, "new@example.org", capacity=2)
        joiner = ticketed(deployment, "joiner@example.org")
        overlay.join(joiner, [old_parent.descriptor()], now=2.0)
        # The joiner drops off (ticket expiry severs it) and rejoins
        # through a different parent.
        expiry = joiner.client.channel_ticket.expire_time
        old_parent.enforce_ticket_expiry(now=expiry + 1.0)
        del overlay.peers[joiner.peer_id]  # it left without goodbye
        joiner.client.switch_channel("free-ch", now=expiry + 2.0)  # fresh ticket
        overlay.join(joiner, [new_parent.descriptor()], now=expiry + 3.0)
        plan = overlay.plans[joiner.peer_id]
        assert plan.distinct_parents() == {new_parent.peer_id}
        # The new parent serves every sub-stream; the stale mapping to
        # old_parent would have left the child with an empty feed.
        uid = joiner.client.channel_ticket.user_id
        assert new_parent.children[uid].substreams == [0]


class TestRepair:
    def test_orphans_rejoin_after_departure(self, deployment):
        overlay = deployment.overlay("free-ch")
        parent = join_viewer(deployment, "parent@example.org", capacity=2)
        child = ticketed(deployment, "child@example.org")
        overlay.join(child, [parent.descriptor()], now=2.0)
        # Another potential parent exists with spare capacity (it may
        # itself have attached under `parent`, making it a co-orphan).
        join_viewer(deployment, "backup@example.org", capacity=4)
        repaired = overlay.remove_peer(parent.peer_id, now=3.0)
        assert child.peer_id in repaired
        overlay.check_tree()
        assert child.client.parents  # reconnected

    def test_remove_unknown_peer_rejected(self, deployment):
        with pytest.raises(OverlayError):
            deployment.overlay("free-ch").remove_peer("ghost", now=1.0)

    def test_repair_counted(self, deployment):
        overlay = deployment.overlay("free-ch")
        parent = join_viewer(deployment, "parent@example.org", capacity=2)
        child = ticketed(deployment, "child@example.org")
        overlay.join(child, [parent.descriptor()], now=2.0)
        join_viewer(deployment, "backup@example.org")
        repaired = overlay.remove_peer(parent.peer_id, now=3.0)
        # The backup may itself have attached under `parent` (ranked
        # lists prefer shallow parents), so every live orphan counts.
        assert overlay.repairs == len(repaired) >= 1
        assert len(overlay.repair_log) == overlay.repairs
        assert all(rec.parent_id is not None for rec in overlay.repair_log)


class TestInvariants:
    def test_tree_check_passes_for_built_overlay(self, deployment):
        overlay = deployment.overlay("free-ch")
        for i in range(8):
            join_viewer(deployment, f"u{i}@example.org", capacity=2)
        overlay.check_tree()

    def test_tree_check_detects_unreachable(self, deployment):
        overlay = deployment.overlay("free-ch")
        stray = ticketed(deployment, "stray@example.org")
        overlay.register_peer(stray)  # registered but never joined
        with pytest.raises(OverlayError):
            overlay.check_tree()

    def test_depths_grow_with_membership(self, deployment):
        overlay = deployment.overlay("free-ch")
        # Tiny source fan-out forces depth. Source capacity is 16 in
        # the fixture, so fill beyond it with capacity-1 peers.
        for i in range(20):
            join_viewer(deployment, f"u{i}@example.org", capacity=2)
        depths = overlay.depths()
        assert len(depths) == 20
        assert max(depths.values()) >= 2

    def test_enforce_expiry_sweeps_whole_overlay(self, deployment):
        overlay = deployment.overlay("free-ch")
        peer = join_viewer(deployment, "a@example.org")
        expiry = peer.client.channel_ticket.expire_time
        severed = overlay.enforce_expiry(now=expiry + 1.0)
        assert severed == 1

"""Tests for the incrementally-maintained candidate index.

Unit tests drive :class:`~repro.p2p.index.CandidateIndex` directly
with stub peers (no crypto, no overlay) to pin the bucket/heap
mechanics: eligibility transitions, lazy deletion, bucket moves,
uniform sampling, compaction, and ``verify_against`` actually
catching injected divergence.  Integration tests then run the real
overlay through the event paths the ROADMAP worried about -- a
near-root departure's repair cascade and an adversary eviction
sweep -- and assert the index never drifts.
"""

import random

import pytest

from repro.deployment import Deployment
from repro.errors import OverlayError
from repro.metrics.selection import counters
from repro.p2p.index import CandidateIndex, stable_jitter
from repro.p2p.scorecard import POLLUTION


# ----------------------------------------------------------------------
# Stubs: the index only reads attributes, never calls peer methods.
# ----------------------------------------------------------------------


class StubPeer:
    def __init__(
        self,
        peer_id,
        region="CH",
        asn=1000,
        address=None,
        depth=1,
        spare=4,
        alive=True,
    ):
        self.peer_id = peer_id
        self.region = region
        self.asn = asn
        self.address = address or f"10.0.0.{abs(hash(peer_id)) % 250}"
        self.depth = depth
        self.spare_capacity = spare
        self.alive = alive


class StubRecord:
    """Just enough of a GeoRecord for top_local/top_remote."""

    def __init__(self, region="CH", asn=1000):
        self.region = region
        self.asn = asn


class StubOverlay:
    """Just enough of a ChannelOverlay for verify_against."""

    channel_id = "stub"

    def __init__(self, peers, quarantined=()):
        self.peers = {p.peer_id: p for p in peers}
        self._quarantined = set(quarantined)

    def admissible(self, peer):
        return peer.peer_id not in self._quarantined


def make_index(peers, quarantined=()):
    index = CandidateIndex(salt=b"test-salt")
    blocked = set(quarantined)
    for peer in peers:
        index.add_peer(peer, admissible=peer.peer_id not in blocked)
    return index


def ids(peers):
    return [p.peer_id for p in peers]


# ----------------------------------------------------------------------
# Ranked draws
# ----------------------------------------------------------------------


class TestRankedDraws:
    def test_same_as_before_same_region(self):
        peers = [
            StubPeer("region-mate", region="CH", asn=2000, depth=1, spare=8),
            StubPeer("as-mate", region="DE", asn=1000, depth=9, spare=1),
        ]
        index = make_index(peers)
        top = index.top_local(StubRecord("CH", 1000), count=2)
        # Same-AS wins even from another region and with a worse key.
        assert ids(top) == ["as-mate", "region-mate"]

    def test_rank_order_depth_then_spare(self):
        peers = [
            StubPeer("deep", depth=5, spare=8),
            StubPeer("shallow-full", depth=1, spare=1),
            StubPeer("shallow-spare", depth=1, spare=8),
        ]
        index = make_index(peers)
        top = index.top_local(StubRecord("CH", 1000), count=3)
        assert ids(top) == ["shallow-spare", "shallow-full", "deep"]

    def test_top_remote_excludes_requester_region_and_as(self):
        peers = [
            StubPeer("local", region="CH", asn=1000),
            StubPeer("as-abroad", region="DE", asn=1000),
            StubPeer("remote", region="DE", asn=2000),
        ]
        index = make_index(peers)
        remote = index.top_remote(StubRecord("CH", 1000), count=8)
        assert ids(remote) == ["remote"]

    def test_requester_address_excluded_but_stays_indexed(self):
        peers = [StubPeer("self", address="1.2.3.4"), StubPeer("other")]
        index = make_index(peers)
        record = StubRecord("CH", 1000)
        assert "self" not in ids(index.top_local(record, 8, exclude_addr="1.2.3.4"))
        # The filtered entry was pushed back, not dropped.
        assert "self" in ids(index.top_local(record, 8))

    def test_draw_filter_does_not_mutate_index(self):
        peers = [StubPeer(f"p{i}") for i in range(6)]
        index = make_index(peers)
        record = StubRecord("CH", 1000)
        only_even = index.top_local(
            record, 8, accept=lambda p: int(p.peer_id[1:]) % 2 == 0
        )
        # Equal-rank peers order by jitter, so compare membership.
        assert sorted(ids(only_even)) == ["p0", "p2", "p4"]
        assert len(index.top_local(record, 8)) == 6

    def test_repeated_draws_are_stable(self):
        peers = [StubPeer(f"p{i}", depth=i % 3, spare=1 + i % 2) for i in range(10)]
        index = make_index(peers)
        record = StubRecord("CH", 1000)
        first = ids(index.top_local(record, 5))
        assert all(ids(index.top_local(record, 5)) == first for _ in range(5))


# ----------------------------------------------------------------------
# Membership events
# ----------------------------------------------------------------------


class TestMembershipEvents:
    def test_zero_spare_leaves_the_buckets(self):
        peer = StubPeer("p1", spare=1)
        index = make_index([peer])
        assert index.eligible_count == 1
        peer.spare_capacity = 0
        index.update_peer(peer)
        assert index.eligible_count == 0
        assert index.top_local(StubRecord("CH", 1000), 8) == []
        peer.spare_capacity = 2
        index.update_peer(peer)
        assert ids(index.top_local(StubRecord("CH", 1000), 8)) == ["p1"]

    def test_key_change_reorders_via_lazy_deletion(self):
        a, b = StubPeer("a", depth=1), StubPeer("b", depth=2)
        index = make_index([a, b])
        record = StubRecord("CH", 1000)
        assert ids(index.top_local(record, 2)) == ["a", "b"]
        before = counters.stale_entries_skipped
        a.depth = 5
        index.update_peer(a)
        assert ids(index.top_local(record, 2)) == ["b", "a"]
        # The outdated heap tuple for "a" was recognized and skipped.
        assert counters.stale_entries_skipped > before

    def test_remove_peer_forgets_entirely(self):
        peers = [StubPeer("a"), StubPeer("b")]
        index = make_index(peers)
        index.remove_peer("a")
        assert len(index) == 1
        assert ids(index.top_local(StubRecord("CH", 1000), 8)) == ["b"]
        # Removing again is a no-op, not an error.
        index.remove_peer("a")

    def test_quarantine_round_trip(self):
        peer = StubPeer("p1")
        index = make_index([peer])
        index.set_admissible("p1", False)
        assert index.eligible_count == 0
        index.set_admissible("p1", True)
        assert ids(index.top_local(StubRecord("CH", 1000), 8)) == ["p1"]

    def test_bucket_move_follows_region_and_as_edits(self):
        peer = StubPeer("mover", region="CH", asn=1000)
        index = make_index([peer, StubPeer("anchor", region="CH", asn=1000)])
        peer.region, peer.asn = "DE", 2000
        index.update_peer(peer)
        assert ids(index.top_remote(StubRecord("CH", 1000), 8)) == ["mover"]
        assert "mover" not in ids(index.top_local(StubRecord("CH", 1000), 8))
        index.verify_against(StubOverlay([peer, index._entries["anchor"].peer]))

    def test_add_peer_is_idempotent(self):
        peer = StubPeer("p1")
        index = make_index([peer])
        index.add_peer(peer, admissible=True)
        assert len(index) == 1
        assert index.eligible_count == 1


# ----------------------------------------------------------------------
# Uniform sampling
# ----------------------------------------------------------------------


class TestUniformSampling:
    def test_sample_without_replacement(self):
        peers = [StubPeer(f"p{i}", region="CH" if i % 2 else "DE") for i in range(40)]
        index = make_index(peers)
        rng = random.Random(7)
        sample = index.sample_eligible(rng, 10)
        assert len(sample) == 10
        assert len(set(ids(sample))) == 10

    def test_sample_region_stays_in_region(self):
        peers = [StubPeer(f"p{i}", region="CH" if i % 2 else "DE") for i in range(20)]
        index = make_index(peers)
        rng = random.Random(7)
        assert all(p.region == "CH" for p in index.sample_region(rng, "CH", 6))
        outside = index.sample_outside_region(rng, "CH", 6)
        assert all(p.region != "CH" for p in outside)

    def test_dense_draw_returns_everyone(self):
        peers = [StubPeer(f"p{i}") for i in range(5)]
        index = make_index(peers)
        sample = index.sample_eligible(random.Random(1), 5)
        assert sorted(ids(sample)) == [f"p{i}" for i in range(5)]

    def test_filter_heavy_draw_falls_back_not_short(self):
        # Only one acceptable peer among many: the rejection budget
        # blows and the dense path must still find it.
        peers = [StubPeer(f"p{i:03d}") for i in range(100)]
        index = make_index(peers)
        sample = index.sample_eligible(
            random.Random(3), 1, accept=lambda p: p.peer_id == "p099"
        )
        assert ids(sample) == ["p099"]


# ----------------------------------------------------------------------
# Heap hygiene
# ----------------------------------------------------------------------


class TestCompaction:
    def test_churned_heap_is_compacted(self):
        peers = [StubPeer(f"p{i}") for i in range(20)]
        index = make_index(peers)
        before = counters.rebuilds
        for round_no in range(40):
            for peer in peers:
                peer.spare_capacity = 1 + (round_no + hash(peer.peer_id)) % 7
                index.update_peer(peer)
        assert counters.rebuilds > before
        bucket = index._by_region["CH"]
        assert len(bucket.heap) <= max(64, 4 * len(bucket))


# ----------------------------------------------------------------------
# Self-check
# ----------------------------------------------------------------------


class TestVerifyAgainst:
    def test_clean_index_passes(self):
        peers = [StubPeer(f"p{i}") for i in range(10)]
        index = make_index(peers)
        index.verify_against(StubOverlay(peers))

    def test_detects_unpublished_key_change(self):
        peers = [StubPeer("p1"), StubPeer("p2")]
        index = make_index(peers)
        peers[0].depth = 99  # mutated without update_peer: a missed event
        with pytest.raises(OverlayError, match="stale key"):
            index.verify_against(StubOverlay(peers))

    def test_detects_missing_entry(self):
        peers = [StubPeer("p1")]
        index = make_index([])
        with pytest.raises(OverlayError, match="missing entry"):
            index.verify_against(StubOverlay(peers))

    def test_detects_entry_for_departed_peer(self):
        peers = [StubPeer("p1"), StubPeer("ghost")]
        index = make_index(peers)
        with pytest.raises(OverlayError, match="departed"):
            index.verify_against(StubOverlay(peers[:1]))

    def test_detects_admissibility_drift(self):
        peers = [StubPeer("p1")]
        index = make_index(peers)
        with pytest.raises(OverlayError, match="eligibility drift"):
            index.verify_against(StubOverlay(peers, quarantined={"p1"}))

    def test_jitter_is_stable_and_salted(self):
        assert stable_jitter(b"s1", "p") == stable_jitter(b"s1", "p")
        assert stable_jitter(b"s1", "p") != stable_jitter(b"s2", "p")


# ----------------------------------------------------------------------
# Integration: the real overlay as single writer
# ----------------------------------------------------------------------


@pytest.fixture
def deployment():
    d = Deployment(seed=11, source_capacity=8)
    d.add_free_channel("live", regions=["CH", "DE"])
    return d


def audience(deployment, n, capacity=2, now=1.0):
    peers = []
    for i in range(n):
        region = "CH" if i % 2 == 0 else "DE"
        client = deployment.create_client(f"v{i}@example.org", "pw", region=region)
        client.login(now=now)
        peers.append(deployment.watch(client, "live", now=now, capacity=capacity))
    return peers


class TestOverlayIntegration:
    def test_joins_keep_index_synced(self, deployment):
        audience(deployment, 12)
        overlay = deployment.overlay("live")
        overlay.index.verify_against(overlay)
        assert len(overlay.index) == 12

    def test_near_root_departure_repair_cascade(self, deployment):
        """Removing a peer close to the source re-parents its whole
        subtree; every repair join mutates depths and capacities, and
        the index must absorb all of it."""
        audience(deployment, 16, capacity=2)
        overlay = deployment.overlay("live")
        depths = overlay.depths()
        victim = min(
            (pid for pid, peer in overlay.peers.items() if peer.children),
            key=lambda pid: depths[pid],
        )
        overlay.remove_peer(victim, now=5.0)
        overlay.check_tree()
        overlay.index.verify_against(overlay)
        assert victim not in overlay.peers
        assert overlay.orphans() == []

    def test_eviction_sweep_keeps_index_synced(self, deployment):
        scorecard = deployment.enable_misbehavior_detection()
        peers = audience(deployment, 10, capacity=3)
        overlay = deployment.overlay("live")
        bad = peers[2]
        for _ in range(4):
            scorecard.report(bad.peer_id, POLLUTION, now=6.0)
        assert scorecard.is_quarantined(bad.peer_id)
        # Quarantine flows to the index immediately: no draw serves it.
        listed = overlay.index.sample_eligible(random.Random(1), 20)
        assert bad.peer_id not in ids(listed)
        overlay.index.verify_against(overlay)
        evicted = deployment.contain_misbehavior(now=7.0)
        assert bad.peer_id in evicted["live"]
        overlay.check_tree()
        overlay.index.verify_against(overlay)

    def test_quarantine_release_restores_eligibility(self, deployment):
        scorecard = deployment.enable_misbehavior_detection()
        peers = audience(deployment, 6, capacity=3)
        overlay = deployment.overlay("live")
        # The last joiner has no children yet, so it keeps spare
        # capacity and release genuinely restores eligibility.
        target = peers[-1]
        for _ in range(4):
            scorecard.report(target.peer_id, POLLUTION, now=6.0)
        overlay.index.verify_against(overlay)
        scorecard.release(target.peer_id, now=8.0)
        assert target.peer_id in ids(
            overlay.index.sample_eligible(random.Random(2), 20)
        )
        overlay.index.verify_against(overlay)

"""Tests for the batched data-plane paths: GOP broadcast, batched key
fan-out, and the undecryptable-drop counter."""

from repro.metrics.dataplane import counters as dataplane_counters

from .test_peer import ticketed_peer, watching_peer


class TestBroadcastPackets:
    def test_batch_reaches_and_decrypts_everywhere(self, deployment):
        overlay = deployment.overlay("free-ch")
        a = watching_peer(deployment, "a@example.org", capacity=2)
        b = ticketed_peer(deployment, "b@example.org", capacity=2)
        overlay.join(b, [a.descriptor()], now=2.0)
        # Return value counts the source's direct children (a); the
        # cascade to b shows up in the decrypt counters below.
        reached = overlay.source.broadcast_packets(3.0, 6)
        assert reached == 6
        assert a.client.packets_decrypted == 6
        assert b.client.packets_decrypted == 6

    def test_batch_equivalent_to_singles(self, deployment):
        """A GOP broadcast delivers exactly what a per-packet loop does."""
        overlay = deployment.overlay("free-ch")
        a = watching_peer(deployment, "a@example.org", capacity=2)
        batch_reached = overlay.source.broadcast_packets(3.0, 3)
        single_reached = sum(overlay.source.broadcast_packet(3.0) for _ in range(3))
        assert batch_reached == single_reached
        assert a.client.packets_decrypted == 6

    def test_empty_batch_is_noop(self, deployment):
        overlay = deployment.overlay("free-ch")
        watching_peer(deployment, "a@example.org")
        assert overlay.source.broadcast_packets(3.0, 0) == 0
        assert overlay.source.server.packets_emitted == 0


class TestBatchedKeyFanout:
    def test_push_key_update_cascades_like_before(self, deployment):
        """The batched fan-out must reach grandchildren exactly as the
        per-child loop did (the paper's A->B->{D,E} cascade)."""
        overlay = deployment.overlay("free-ch")
        a = watching_peer(deployment, "a@example.org", capacity=4)
        b = ticketed_peer(deployment, "b@example.org", capacity=4)
        overlay.join(b, [a.descriptor()], now=2.0)
        d = ticketed_peer(deployment, "d@example.org")
        e = ticketed_peer(deployment, "e@example.org")
        overlay.join(d, [b.descriptor()], now=2.0)
        overlay.join(e, [b.descriptor()], now=2.0)
        sent = overlay.source.tick(55.0)
        assert sent >= 4
        for peer in (a, b, d, e):
            assert peer.client.key_ring.has(1)

    def test_fanout_counters(self, deployment):
        dataplane_counters.reset()
        parent = watching_peer(deployment, "p@example.org", capacity=4)
        c1 = ticketed_peer(deployment, "c1@example.org")
        c2 = ticketed_peer(deployment, "c2@example.org")
        overlay = deployment.overlay("free-ch")
        overlay.join(c1, [parent.descriptor()], now=2.0)
        overlay.join(c2, [parent.descriptor()], now=2.0)
        dataplane_counters.reset()
        key = deployment.server("free-ch").current_key(2.0)
        sent = parent.push_key_update(key, now=2.0)
        assert sent >= 2
        assert dataplane_counters.fanout_messages >= 2
        assert dataplane_counters.fanout_batches >= 1
        assert parent.key_updates_sent == 2

    def test_no_children_no_batch(self, deployment):
        dataplane_counters.reset()
        parent = watching_peer(deployment, "p@example.org")
        key = deployment.server("free-ch").current_key(2.0)
        assert parent.push_key_update(key, now=2.0) == 0
        assert dataplane_counters.fanout_batches == 0


class TestUndecryptableDropCounter:
    def test_drop_counted_per_peer_and_globally(self, deployment):
        overlay = deployment.overlay("free-ch")
        a = watching_peer(deployment, "a@example.org", capacity=2)
        b = ticketed_peer(deployment, "b@example.org", capacity=2)
        overlay.join(b, [a.descriptor()], now=2.0)
        from repro.core.keystream import ContentKeyRing

        a.client.key_ring = ContentKeyRing()
        dataplane_counters.reset()
        overlay.source.broadcast_packet(3.0)
        assert a.packets_dropped_undecryptable == 1
        assert dataplane_counters.packets_dropped_undecryptable == 1
        # The drop stopped propagation: b never saw the packet.
        assert b.client.packets_decrypted == 0

    def test_drop_visible_in_deployment_metrics(self, deployment):
        dataplane_counters.reset()
        overlay = deployment.overlay("free-ch")
        a = watching_peer(deployment, "a@example.org", capacity=2)
        from repro.core.keystream import ContentKeyRing

        a.client.key_ring = ContentKeyRing()
        overlay.source.broadcast_packet(3.0)
        snapshot = deployment.metrics.snapshot()
        assert snapshot["dataplane"]["packets_dropped_undecryptable"] == 1

    def test_healthy_path_drops_nothing(self, deployment):
        dataplane_counters.reset()
        overlay = deployment.overlay("free-ch")
        watching_peer(deployment, "a@example.org", capacity=2)
        overlay.source.broadcast_packet(3.0)
        assert dataplane_counters.packets_dropped_undecryptable == 0

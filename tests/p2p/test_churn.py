"""Tests for the churn processes and churn-repair locality."""

import random

import pytest

from repro.deployment import Deployment
from repro.p2p.churn import ChurnEvent, EventBoundaryChurn, FlashCrowdChurn, PoissonChurn
from repro.workload.arrivals import burstiness_index


class TestPoissonChurn:
    def test_events_time_ordered(self):
        churn = PoissonChurn(random.Random(1), arrival_rate=0.5, mean_holding_time=100.0)
        events = churn.generate(horizon=1000.0)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_every_leave_has_prior_join(self):
        churn = PoissonChurn(random.Random(2), arrival_rate=0.5, mean_holding_time=50.0)
        events = churn.generate(horizon=500.0)
        joined = set()
        for event in events:
            if event.kind == "join":
                joined.add(event.peer_index)
            else:
                assert event.peer_index in joined

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            PoissonChurn(random.Random(1), arrival_rate=0.0, mean_holding_time=1.0)
        with pytest.raises(ValueError):
            PoissonChurn(random.Random(1), arrival_rate=1.0, mean_holding_time=0.0)

    def test_arrival_count_near_expectation(self):
        churn = PoissonChurn(random.Random(3), arrival_rate=1.0, mean_holding_time=10.0)
        joins = [e for e in churn.generate(2000.0) if e.kind == "join"]
        assert 1800 < len(joins) < 2200

    def test_deterministic_under_seed(self):
        a = PoissonChurn(random.Random(4), 0.5, 50.0).generate(200.0)
        b = PoissonChurn(random.Random(4), 0.5, 50.0).generate(200.0)
        assert a == b


class TestEventBoundaryChurn:
    def make(self, audience=500, seed=5):
        return EventBoundaryChurn(
            random.Random(seed),
            audience=audience,
            event_start=3600.0,
            event_end=3600.0 + 5400.0,
        )

    def test_every_peer_joins_and_leaves(self):
        events = self.make().generate()
        joins = [e for e in events if e.kind == "join"]
        leaves = [e for e in events if e.kind == "leave"]
        assert len(joins) == len(leaves) == 500

    def test_leave_after_join_per_peer(self):
        events = self.make().generate()
        join_time = {}
        for event in events:
            if event.kind == "join":
                join_time[event.peer_index] = event.time
            else:
                assert event.time > join_time[event.peer_index]

    def test_flash_crowd_is_bursty(self):
        """The arrival process must actually exhibit the paper's
        premise: correlated arrivals at the event start."""
        arrivals = self.make(audience=2000).arrival_times()
        index = burstiness_index(arrivals, bin_width=60.0)
        assert index > 5.0  # a Poisson stream would be near 1

    def test_most_arrivals_near_event_start(self):
        churn = self.make(audience=1000)
        arrivals = churn.arrival_times()
        window = [t for t in arrivals if churn.event_start <= t <= churn.event_start + 300]
        assert len(window) > 500

    def test_invalid_event_window_rejected(self):
        with pytest.raises(ValueError):
            EventBoundaryChurn(random.Random(1), 10, event_start=100.0, event_end=50.0)

    def test_zero_audience(self):
        churn = EventBoundaryChurn(random.Random(1), 0, event_start=0.0, event_end=10.0)
        assert churn.generate() == []


class TestFlashCrowdChurn:
    def make(self, audience=800, seed=7, **kwargs):
        kwargs.setdefault("event_duration", 1000.0)
        kwargs.setdefault("ramp", 30.0)
        return FlashCrowdChurn(random.Random(seed), audience=audience, **kwargs)

    def test_every_peer_joins_and_leaves(self):
        events = self.make().generate()
        joins = [e for e in events if e.kind == "join"]
        leaves = [e for e in events if e.kind == "leave"]
        assert len(joins) == len(leaves) == 800

    def test_leave_after_join_per_peer(self):
        events = self.make().generate()
        join_time = {}
        for event in events:
            if event.kind == "join":
                join_time[event.peer_index] = event.time
            else:
                assert event.time > join_time[event.peer_index]

    def test_ramp_is_bursty(self):
        """Sharper than EventBoundaryChurn: no early trickle, so the
        arrival process must be strongly non-Poisson."""
        arrivals = self.make(audience=2000).arrival_times()
        # The whole audience lands within a few ramps, so bin at
        # sub-ramp resolution (60 s bins would cover the entire burst).
        assert burstiness_index(arrivals, bin_width=10.0) > 4.0

    def test_most_arrivals_inside_ramp(self):
        churn = self.make(audience=1000)
        arrivals = churn.arrival_times()
        inside = [t for t in arrivals if t <= churn.event_start + churn.ramp]
        assert len(inside) > 900  # exponential: ~95% within one ramp

    def test_mid_departures_fall_in_event_middle(self):
        churn = self.make(audience=300, mid_departure_fraction=1.0)
        leaves = [e.time for e in churn.generate() if e.kind == "leave"]
        assert all(250.0 <= t <= 750.0 for t in leaves)

    def test_end_departures_cluster_at_event_end(self):
        churn = self.make(audience=300, mid_departure_fraction=0.0)
        leaves = [e.time for e in churn.generate() if e.kind == "leave"]
        near_end = [t for t in leaves if abs(t - churn.event_end) <= 3 * churn.ramp / 2]
        assert len(near_end) > 295  # gauss(end, ramp/2): 3 sigma

    def test_deterministic_under_seed(self):
        assert self.make(seed=11).generate() == self.make(seed=11).generate()

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            FlashCrowdChurn(random.Random(1), audience=-1)
        with pytest.raises(ValueError):
            FlashCrowdChurn(random.Random(1), audience=10, event_duration=0.0)
        with pytest.raises(ValueError):
            FlashCrowdChurn(random.Random(1), audience=10, ramp=0.0)
        with pytest.raises(ValueError):
            FlashCrowdChurn(random.Random(1), audience=10, mid_departure_fraction=1.5)

    def test_zero_audience(self):
        assert self.make(audience=0).generate() == []


class TestRepairLocality:
    """Churn repair must preserve locality: an orphan's replacement
    parent comes from the same ranked pipeline as its original list,
    so repairs land in-region rather than scattering across the WAN."""

    def build(self, seed=17, uniform=False):
        from repro.deployment import Deployment

        deployment = Deployment(seed=seed, source_capacity=32)
        deployment.add_free_channel("loc", regions=["CH", "DE"])
        if uniform:
            deployment.use_uniform_peer_lists()
        overlay = deployment.overlay("loc")
        peers = []
        for i in range(40):
            region = "CH" if i % 2 == 0 else "DE"
            client = deployment.create_client(
                f"rep{i}@loc.example.org", "pw", region=region
            )
            client.login(now=float(i))
            response = client.switch_channel("loc", now=float(i))
            peer = deployment.make_peer(client, "loc", capacity=4)
            overlay.join(peer, response.peers, now=float(i))
            peers.append(peer)
        return deployment, overlay, peers

    def churn_parents(self, overlay, peers, count=8, now=500.0):
        removed = 0
        for victim in peers:
            if removed >= count:
                break
            if victim.peer_id in overlay.peers and victim.children:
                overlay.remove_peer(victim.peer_id, now=now)
                removed += 1
        return removed

    def test_repairs_stay_in_region(self):
        _, overlay, peers = self.build()
        overlay.repair_log.clear()
        assert self.churn_parents(overlay, peers) > 0
        records = [r for r in overlay.repair_log if r.parent_id is not None]
        assert records, "removing parents produced no repairs"
        local = sum(1 for r in records if r.same_region)
        assert local / len(records) >= 0.7
        overlay.check_tree()  # repairs never wire up an island

    def test_ranked_repair_beats_uniform(self):
        """The A/B arms diverge on the repair path too: with a 50/50
        CH/DE population, uniform repair lands in-region about half
        the time; ranked repair nearly always."""
        _, ranked_overlay, ranked_peers = self.build(seed=29)
        ranked_overlay.repair_log.clear()
        self.churn_parents(ranked_overlay, ranked_peers)

        _, uniform_overlay, uniform_peers = self.build(seed=29, uniform=True)
        uniform_overlay.repair_log.clear()
        self.churn_parents(uniform_overlay, uniform_peers)

        def locality(overlay):
            records = [r for r in overlay.repair_log if r.parent_id is not None]
            assert records
            return sum(1 for r in records if r.same_region) / len(records)

        assert locality(ranked_overlay) > locality(uniform_overlay)

"""Tests for the churn processes."""

import random

import pytest

from repro.p2p.churn import ChurnEvent, EventBoundaryChurn, PoissonChurn
from repro.workload.arrivals import burstiness_index


class TestPoissonChurn:
    def test_events_time_ordered(self):
        churn = PoissonChurn(random.Random(1), arrival_rate=0.5, mean_holding_time=100.0)
        events = churn.generate(horizon=1000.0)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_every_leave_has_prior_join(self):
        churn = PoissonChurn(random.Random(2), arrival_rate=0.5, mean_holding_time=50.0)
        events = churn.generate(horizon=500.0)
        joined = set()
        for event in events:
            if event.kind == "join":
                joined.add(event.peer_index)
            else:
                assert event.peer_index in joined

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            PoissonChurn(random.Random(1), arrival_rate=0.0, mean_holding_time=1.0)
        with pytest.raises(ValueError):
            PoissonChurn(random.Random(1), arrival_rate=1.0, mean_holding_time=0.0)

    def test_arrival_count_near_expectation(self):
        churn = PoissonChurn(random.Random(3), arrival_rate=1.0, mean_holding_time=10.0)
        joins = [e for e in churn.generate(2000.0) if e.kind == "join"]
        assert 1800 < len(joins) < 2200

    def test_deterministic_under_seed(self):
        a = PoissonChurn(random.Random(4), 0.5, 50.0).generate(200.0)
        b = PoissonChurn(random.Random(4), 0.5, 50.0).generate(200.0)
        assert a == b


class TestEventBoundaryChurn:
    def make(self, audience=500, seed=5):
        return EventBoundaryChurn(
            random.Random(seed),
            audience=audience,
            event_start=3600.0,
            event_end=3600.0 + 5400.0,
        )

    def test_every_peer_joins_and_leaves(self):
        events = self.make().generate()
        joins = [e for e in events if e.kind == "join"]
        leaves = [e for e in events if e.kind == "leave"]
        assert len(joins) == len(leaves) == 500

    def test_leave_after_join_per_peer(self):
        events = self.make().generate()
        join_time = {}
        for event in events:
            if event.kind == "join":
                join_time[event.peer_index] = event.time
            else:
                assert event.time > join_time[event.peer_index]

    def test_flash_crowd_is_bursty(self):
        """The arrival process must actually exhibit the paper's
        premise: correlated arrivals at the event start."""
        arrivals = self.make(audience=2000).arrival_times()
        index = burstiness_index(arrivals, bin_width=60.0)
        assert index > 5.0  # a Poisson stream would be near 1

    def test_most_arrivals_near_event_start(self):
        churn = self.make(audience=1000)
        arrivals = churn.arrival_times()
        window = [t for t in arrivals if churn.event_start <= t <= churn.event_start + 300]
        assert len(window) > 500

    def test_invalid_event_window_rejected(self):
        with pytest.raises(ValueError):
            EventBoundaryChurn(random.Random(1), 10, event_start=100.0, event_end=50.0)

    def test_zero_audience(self):
        churn = EventBoundaryChurn(random.Random(1), 0, event_start=0.0, event_end=10.0)
        assert churn.generate() == []

"""Tests for the flash-crowd overlay storm driver."""

import pytest

from repro.errors import ReproError
from repro.p2p.storm import (
    OverlayStormConfig,
    run_overlay_storm,
    run_storm_comparison,
)
from repro.trace.report import join_breakdown, render_join_breakdown


def small_config(**kwargs):
    kwargs.setdefault("viewers", 120)
    kwargs.setdefault("seed", 31)
    kwargs.setdefault("event_duration", 400.0)
    kwargs.setdefault("ramp", 60.0)
    return OverlayStormConfig(**kwargs)


@pytest.fixture(scope="module")
def arms():
    return run_storm_comparison(small_config())


class TestStormRun:
    def test_everyone_joins(self, arms):
        for result in arms.values():
            assert result.joined == 120
            assert result.join_failures == 0

    def test_phases_cover_every_join(self, arms):
        for result in arms.values():
            for name in ("REDIRECT", "SWITCH", "JOIN", "FIRSTPKT"):
                assert len(result.phases[name]) >= result.joined - result.join_failures

    def test_departures_trigger_priced_repairs(self, arms):
        for result in arms.values():
            assert result.departed > 0
            assert result.repair_times, "mid-event churn must produce repairs"
            assert all(t > 0.0 for t in result.repair_times)

    def test_traces_recorded(self, arms):
        ranked = arms["ranked"]
        names = {span.name for span in ranked.tracer.spans}
        assert {"JOIN_E2E", "REDIRECT", "SWITCH", "JOIN", "FIRSTPKT", "REPAIR"} <= names

    def test_join_breakdown_decomposes_total(self, arms):
        rows = join_breakdown(arms["ranked"].tracer.spans)
        by_phase = {row["phase"]: row for row in rows}
        assert {"REDIRECT", "SWITCH", "JOIN", "TOTAL"} <= set(by_phase)
        assert by_phase["TOTAL"]["count"] == 120
        # The phase means must (approximately) add up to the total mean.
        phase_sum = sum(
            row["mean"] * row["count"] for row in rows if row["phase"] != "TOTAL"
        )
        total = by_phase["TOTAL"]["mean"] * by_phase["TOTAL"]["count"]
        assert phase_sum == pytest.approx(total, rel=0.01)
        assert "TOTAL" in render_join_breakdown(arms["ranked"].tracer.spans)

    def test_deterministic_under_seed(self, arms):
        again = run_overlay_storm(small_config(sampler="ranked"))
        assert again.join_latencies == arms["ranked"].join_latencies
        assert again.repair_times == arms["ranked"].repair_times

    def test_as_dict_shape(self, arms):
        payload = arms["ranked"].as_dict()
        assert payload["sampler"] == "ranked"
        assert payload["join_latency"]["count"] == 120
        assert set(payload["phases"]) == {"REDIRECT", "SWITCH", "JOIN", "FIRSTPKT"}
        assert 0.0 <= payload["parent_locality"] <= 1.0


class TestRankedVsUniform:
    def test_ranked_improves_locality(self, arms):
        assert arms["ranked"].parent_locality > arms["uniform"].parent_locality

    def test_ranked_builds_shallower_trees(self, arms):
        assert arms["ranked"].mean_depth < arms["uniform"].mean_depth

    def test_ranked_repairs_stay_local(self, arms):
        ranked = arms["ranked"].as_dict()
        uniform = arms["uniform"].as_dict()
        assert ranked["repair_locality"] > uniform["repair_locality"]


class TestShardedArm:
    def test_storm_runs_against_sharded_tier(self):
        result = run_overlay_storm(
            small_config(viewers=60, partitions=2, seed=37)
        )
        assert result.joined == 60
        assert result.join_failures == 0


class TestValidation:
    def test_unknown_sampler_rejected(self):
        with pytest.raises(ReproError):
            run_overlay_storm(small_config(sampler="psychic"))

"""Equivalence pin: index-backed selection == scan-backed selection.

The whole point of the :class:`~repro.p2p.index.CandidateIndex` is
that it is an *optimization*, not a policy change: for any overlay
state reachable through the public event API, the ranked provider
must return byte-identical peer lists whether it answers from the
index or from the O(n) reference scan.  A Hypothesis state machine
drives a real deployment through randomized interleavings of the
events the index absorbs -- joins, departures (with their repair
cascades), in-place deaths, quarantine and release -- and after
every step asserts:

* SWITCH2 lists agree exactly (descriptor equality) for a requester
  in every region plus an unknown address;
* repair candidate lists agree exactly under the overlay's live
  source-connectivity probe;
* the memoized upward probe agrees with a naive per-peer upward
  search over the same validated edges;
* ``CandidateIndex.verify_against`` finds no drift.

Randomness note: the ranked path has none -- ties break on the
stable per-peer jitter -- which is exactly what makes exact
equality testable.
"""

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.deployment import Deployment
from repro.errors import CapacityError
from repro.p2p.scorecard import POLLUTION
from repro.p2p.selection import RankedPeerListProvider

REGIONS = ("CH", "DE", "FR")
CHANNEL = "eq"

#: One RSA keypair for the whole synthetic fleet (keygen is setup
#: cost, irrelevant to selection semantics).
_FLEET_KEY = None


def fleet_key(bits):
    global _FLEET_KEY
    if _FLEET_KEY is None:
        _FLEET_KEY = generate_keypair(HmacDrbg(b"equiv", b"fleet"), bits=bits)
    return _FLEET_KEY


class SelectionEquivalence(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.deployment = Deployment(seed=5, source_capacity=16)
        self.deployment.add_free_channel(CHANNEL, regions=list(REGIONS))
        self.scorecard = self.deployment.enable_misbehavior_detection()
        self.overlay = self.deployment.overlay(CHANNEL)
        self.indexed = RankedPeerListProvider(
            self.deployment.overlays,
            self.deployment.geo,
            random.Random(0),
            use_index=True,
        )
        self.scan = RankedPeerListProvider(
            self.deployment.overlays,
            self.deployment.geo,
            random.Random(0),
            use_index=False,
        )
        self.serial = 0
        self.quarantined = set()
        self.now = 1.0

    # -- events ---------------------------------------------------------

    def _tick(self):
        self.now += 1.0
        return self.now

    @rule(region=st.sampled_from(REGIONS), capacity=st.integers(1, 4))
    def join(self, region, capacity):
        now = self._tick()
        self.serial += 1
        client = self.deployment.create_client(
            f"v{self.serial}@eq.example.org",
            "pw",
            region=region,
            keypair=fleet_key(self.deployment.key_bits),
        )
        client.login(now=now)
        try:
            self.deployment.watch(client, CHANNEL, now=now, capacity=capacity)
        except CapacityError:
            pass  # a full overlay is still a valid state to compare

    def _members(self):
        return sorted(self.overlay.peers)

    @precondition(lambda self: len(self.overlay.peers) > 0)
    @rule(pick=st.randoms(use_true_random=False))
    def depart(self, pick):
        """A peer leaves; the repair cascade re-parents its subtree."""
        peer_id = pick.choice(self._members())
        self.quarantined.discard(peer_id)
        self.overlay.remove_peer(peer_id, now=self._tick())

    @precondition(lambda self: len(self.overlay.peers) > 0)
    @rule(pick=st.randoms(use_true_random=False))
    def die_in_place(self, pick):
        """A peer goes dark without the overlay removing it: still a
        member, but no longer alive (and so no longer a candidate)."""
        peer = self.overlay.peers[pick.choice(self._members())]
        if peer.alive:
            peer.leave()

    @precondition(lambda self: len(self.overlay.peers) > 0)
    @rule(pick=st.randoms(use_true_random=False))
    def quarantine(self, pick):
        peer_id = pick.choice(self._members())
        for _ in range(4):
            self.scorecard.report(peer_id, POLLUTION, now=self._tick())
        self.quarantined.add(peer_id)

    @precondition(lambda self: bool(self.quarantined))
    @rule(pick=st.randoms(use_true_random=False))
    def release(self, pick):
        peer_id = pick.choice(sorted(self.quarantined))
        self.quarantined.discard(peer_id)
        self.scorecard.release(peer_id, now=self._tick())

    @rule()
    def contain(self):
        """Evict every quarantined member (their orphans get repaired)."""
        self.quarantined.clear()
        self.deployment.contain_misbehavior(now=self._tick())

    # -- the pin --------------------------------------------------------

    def _requesters(self):
        rng = random.Random(99)
        addrs = [
            self.deployment.geo.random_address(region, rng) for region in REGIONS
        ]
        addrs.append("203.0.113.9")  # not in the geo database: no record
        return addrs

    @invariant()
    def switch_lists_identical(self):
        for addr in self._requesters():
            for count in (4, 8):
                assert self.indexed(CHANNEL, addr, count) == self.scan(
                    CHANNEL, addr, count
                )

    @invariant()
    def repair_lists_identical(self):
        members = self._members()
        if not members:
            return
        orphan = self.overlay.peers[members[len(members) // 2]]
        probe = self.overlay._connectivity_probe()

        def accept(peer):
            return probe(peer.peer_id)

        a = self.indexed.select_repair(self.overlay, orphan, accept, 8)
        b = self.scan.select_repair(self.overlay, orphan, accept, 8)
        assert a == b

    @invariant()
    def probe_matches_naive_reachability(self):
        probe = self.overlay._connectivity_probe()
        for peer_id in self._members():
            assert probe(peer_id) == self._reachable(peer_id)

    def _reachable(self, peer_id):
        """Reference: plain upward search over validated edges."""
        source_id = self.overlay.source.peer_id
        seen = set()
        stack = [peer_id]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            plan = self.overlay.plans.get(current)
            child = self.overlay.peers.get(current)
            if plan is None or child is None:
                continue
            for parent_id in set(plan.parents.values()):
                holder = (
                    self.overlay.source
                    if parent_id == source_id
                    else self.overlay.peers.get(parent_id)
                )
                if holder is None or not holder.alive:
                    continue
                if not any(
                    link.child_peer is child for link in holder.children.values()
                ):
                    continue
                if parent_id == source_id:
                    return True
                stack.append(parent_id)
        return False

    @invariant()
    def index_mirrors_overlay(self):
        self.overlay.index.verify_against(self.overlay)


TestSelectionEquivalence = SelectionEquivalence.TestCase
TestSelectionEquivalence.settings = settings(
    max_examples=12, stateful_step_count=18, deadline=None
)

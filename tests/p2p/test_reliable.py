"""Tests for reliable key delivery over lossy links."""

import random

import pytest

from repro.core.protocol import KeyUpdate
from repro.p2p.reliable import (
    LossyLink,
    ReliableKeyReceiver,
    ReliableKeySender,
    reliable_link_pair,
)
from repro.sim.engine import Simulator


def make_update(serial=1, activate_at=60.0):
    return KeyUpdate(
        channel_id="ch", serial=serial,
        encrypted_content_key=b"k" * 32, activate_at=activate_at,
    )


class TestLossyLink:
    def test_lossless_delivers_after_delay(self):
        sim = Simulator()
        link = LossyLink(sim, random.Random(1), one_way_delay=0.05, loss_probability=0.0)
        arrivals = []
        link.transmit(lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [pytest.approx(0.05)]

    def test_full_loss_never_delivers(self):
        sim = Simulator()
        link = LossyLink(sim, random.Random(2), one_way_delay=0.05, loss_probability=0.999999)
        arrivals = []
        for _ in range(50):
            link.transmit(lambda: arrivals.append(1))
        sim.run()
        assert arrivals == []

    def test_invalid_loss_rejected(self):
        with pytest.raises(ValueError):
            LossyLink(Simulator(), random.Random(1), 0.05, 1.0)


class TestReliableDelivery:
    def run_pair(self, loss, updates, seed=3, retransmit=0.5):
        sim = Simulator()
        received = []
        sender, receiver = reliable_link_pair(
            sim, random.Random(seed), received.append,
            loss_probability=loss, retransmit_interval=retransmit,
        )
        for update in updates:
            sender.send(update)
        sim.run()
        return sim, sender, receiver, received

    def test_lossless_single_shot(self):
        _, sender, _, received = self.run_pair(0.0, [make_update()])
        assert len(received) == 1
        assert sender.stats.retransmissions == 0
        assert sender.stats.acked == 1

    def test_survives_heavy_loss(self):
        """At 40% loss per direction, every key still lands before its
        activation (the paper's reliability assumption, earned)."""
        updates = [make_update(serial=s, activate_at=60.0 + s) for s in range(8)]
        _, sender, _, received = self.run_pair(0.4, updates, seed=4)
        assert {u.serial for u in received} == set(range(8))
        assert sender.stats.retransmissions > 0

    def test_duplicates_not_redelivered_upward(self):
        """Lost ACKs cause duplicate deliveries; the application sees
        each key exactly once."""
        sim = Simulator()
        received = []
        sender, receiver = reliable_link_pair(
            sim, random.Random(5), received.append, loss_probability=0.5,
        )
        sender.send(make_update(serial=9, activate_at=120.0))
        sim.run()
        assert len(received) == 1
        assert receiver.stats.delivered >= 1  # possibly several arrivals

    def test_stale_update_abandoned(self):
        """Once the activation deadline passes, retransmission stops:
        a newer key supersedes the stale one."""
        sim = Simulator()
        received = []
        sender, receiver = reliable_link_pair(
            sim, random.Random(6), received.append,
            loss_probability=0.999999, retransmit_interval=0.5,
        )
        sender.send(make_update(serial=1, activate_at=2.0))
        sim.run()
        assert received == []
        assert sender.stats.abandoned >= 1
        # The sender gave up quickly, not after max_attempts * interval.
        assert sim.now < 10.0

    def test_retransmission_bounded_by_max_attempts(self):
        sim = Simulator()
        sender, receiver = reliable_link_pair(
            sim, random.Random(7), lambda u: None,
            loss_probability=0.999999, retransmit_interval=0.1,
        )
        sender.max_attempts = 5
        sender.send(make_update(serial=1, activate_at=1e9))
        sim.run()
        assert sender.stats.sent <= 5

    def test_ack_stops_retransmission(self):
        _, sender, _, _ = self.run_pair(0.0, [make_update(activate_at=1e9)])
        # One send, one ack, no retries even with a far deadline.
        assert sender.stats.sent == 1

    def test_validation(self):
        sim = Simulator()
        receiver = ReliableKeyReceiver(lambda u: None)
        link = LossyLink(sim, random.Random(1), 0.05, 0.0)
        with pytest.raises(ValueError):
            ReliableKeySender(link, receiver, retransmit_interval=0.0)


class TestDedupBounded:
    def test_soak_dedup_state_stays_within_grace_window(self):
        """Regression: a long-lived link must not accumulate one dedup
        marker per epoch forever.  Over ~2000 epochs, both ends hold at
        most a grace window's worth of markers."""
        sim = Simulator()
        received = []
        grace = 120.0
        epoch = 1.0
        n_epochs = 2000
        sender, receiver = reliable_link_pair(
            sim, random.Random(11), received.append,
            loss_probability=0.1, retransmit_interval=0.2, grace=grace,
        )
        for i in range(n_epochs):
            update = make_update(serial=i % 256, activate_at=i * epoch + 30.0)
            sim.schedule(i * epoch, lambda s, u=update: sender.send(u))
        sim.run()
        assert len(received) == n_epochs
        # Bound: one marker per epoch inside the grace window, plus the
        # 30 s activation lead still waiting to age out.
        bound = (grace + 30.0) / epoch + 10
        assert sender.dedup_markers <= bound
        assert receiver.dedup_markers <= bound
        # The window is actually used (not pruned to nothing).
        assert sender.dedup_markers > 0
        assert receiver.dedup_markers > 0

    def test_wrapped_serial_not_treated_as_duplicate(self):
        """After serial wraparound, a new key reusing an old serial has
        a different activate_at and must be delivered."""
        sim = Simulator()
        received = []
        sender, _receiver = reliable_link_pair(
            sim, random.Random(12), received.append,
            loss_probability=0.0, grace=1e9,
        )
        sender.send(make_update(serial=5, activate_at=60.0))
        sender.send(make_update(serial=5, activate_at=60.0 + 256 * 60.0))
        sim.run()
        assert len(received) == 2


class TestTracedSender:
    def test_reliable_span_records_attempts_and_nesting(self):
        from repro.trace.span import Tracer

        sim = Simulator()
        tracer = Tracer(clock=lambda: sim.now)
        inner = []

        def on_key(update):
            inner.append(tracer.current)

        sender, _receiver = reliable_link_pair(
            sim, random.Random(13), on_key, loss_probability=0.0,
        )
        sender.tracer = tracer
        sender.send(make_update(serial=3, activate_at=60.0))
        sim.run()
        (span,) = tracer.spans
        assert span.name == "KEYPUSH.reliable"
        assert span.annotations["serial"] == 3
        assert span.annotations["attempts"] == 1
        assert span.end is not None
        # Delivery reinstated the link span as ambient context, so the
        # receiver's handler saw it.
        assert inner[0] is not None and inner[0].span_id == span.span_id


class TestTreeScaleReliability:
    def test_fanout_tree_under_loss(self):
        """A 3-level tree of lossy links: a key pushed at the root
        reaches all 21 descendants before activation."""
        sim = Simulator()
        rng = random.Random(8)
        delivered = []

        def make_subtree(depth, label):
            """Returns a delivery handler that forwards to children."""
            children = []
            if depth < 2:
                children = [make_subtree(depth + 1, f"{label}.{i}") for i in range(4)]

            def on_key(update, label=label, children=children):
                delivered.append(label)
                for child_sender in children:
                    child_sender.send(update)

            sender, _receiver = reliable_link_pair(
                sim, rng, on_key, loss_probability=0.25, retransmit_interval=0.3
            )
            return sender

        roots = [make_subtree(0, str(i)) for i in range(1)]
        update = make_update(serial=1, activate_at=30.0)
        for root in roots:
            root.send(update)
        sim.run()
        # 1 + 4 + 16 = 21 nodes
        assert len(delivered) == 21

"""Tests for peer admission, key cascade, forwarding, and expiry."""

import pytest

from repro.core.protocol import JoinAccept, JoinReject, JoinRequest
from repro.errors import AuthorizationError, OverlayError


def watching_peer(deployment, email, channel="free-ch", now=1.0, capacity=4, region="CH"):
    client = deployment.create_client(email, "pw", region=region)
    client.login(now=now)
    return deployment.watch(client, channel, now=now, capacity=capacity)


def ticketed_peer(deployment, email, channel="free-ch", now=1.0, capacity=4, region="CH"):
    """A peer holding a channel ticket but not yet joined."""
    client = deployment.create_client(email, "pw", region=region)
    client.login(now=now)
    client.switch_channel(channel, now=now)
    return deployment.make_peer(client, channel, capacity=capacity)


class TestJoinAdmission:
    def test_accepts_valid_ticket(self, deployment):
        parent = watching_peer(deployment, "parent@example.org")
        child = ticketed_peer(deployment, "child@example.org")
        result = parent.handle_join(
            JoinRequest(channel_ticket=child.client.channel_ticket),
            observed_addr=child.client.net_addr,
            now=2.0,
        )
        assert isinstance(result, JoinAccept)
        assert parent.joins_accepted == 1

    def test_rejects_wrong_channel_ticket(self, deployment):
        deployment.add_free_channel("free-2", regions=["CH"], now=0.0)
        parent = watching_peer(deployment, "parent@example.org")
        other = deployment.create_client("other@example.org", "pw", region="CH")
        other.login(now=1.0)
        other.switch_channel("free-2", now=1.0)
        result = parent.handle_join(
            JoinRequest(channel_ticket=other.channel_ticket),
            observed_addr=other.net_addr,
            now=2.0,
        )
        assert isinstance(result, JoinReject)
        assert "ticket invalid" in result.reason

    def test_rejects_address_mismatch(self, deployment):
        parent = watching_peer(deployment, "parent@example.org")
        child = ticketed_peer(deployment, "child@example.org")
        result = parent.handle_join(
            JoinRequest(channel_ticket=child.client.channel_ticket),
            observed_addr="99.9.9.9",
            now=2.0,
        )
        assert isinstance(result, JoinReject)

    def test_rejects_expired_ticket(self, deployment):
        parent = watching_peer(deployment, "parent@example.org")
        child = ticketed_peer(deployment, "child@example.org")
        expiry = child.client.channel_ticket.expire_time
        result = parent.handle_join(
            JoinRequest(channel_ticket=child.client.channel_ticket),
            observed_addr=child.client.net_addr,
            now=expiry + 1.0,
        )
        assert isinstance(result, JoinReject)

    def test_rejects_at_capacity(self, deployment):
        parent = watching_peer(deployment, "parent@example.org", capacity=1)
        first = ticketed_peer(deployment, "first@example.org")
        second = ticketed_peer(deployment, "second@example.org")
        first.client.join_peer(parent, now=2.0)
        result = parent.handle_join(
            JoinRequest(channel_ticket=second.client.channel_ticket),
            observed_addr=second.client.net_addr,
            now=2.0,
        )
        assert isinstance(result, JoinReject)
        assert result.reason == "no capacity"
        assert parent.spare_capacity == 0

    def test_offline_peer_rejects(self, deployment):
        parent = watching_peer(deployment, "parent@example.org")
        parent.alive = False
        child = ticketed_peer(deployment, "child@example.org")
        result = parent.handle_join(
            JoinRequest(channel_ticket=child.client.channel_ticket),
            observed_addr=child.client.net_addr,
            now=2.0,
        )
        assert isinstance(result, JoinReject)

    def test_session_key_unique_per_child(self, deployment):
        parent = watching_peer(deployment, "parent@example.org")
        a = ticketed_peer(deployment, "a@example.org")
        b = ticketed_peer(deployment, "b@example.org")
        a.client.join_peer(parent, now=2.0)
        b.client.join_peer(parent, now=2.0)
        links = list(parent.children.values())
        assert links[0].session_key.material != links[1].session_key.material


class TestKeyCascade:
    def test_key_reaches_grandchildren(self, deployment):
        """The paper's A->B->{D,E} example."""
        overlay = deployment.overlay("free-ch")
        a = watching_peer(deployment, "a@example.org", capacity=4)
        b = ticketed_peer(deployment, "b@example.org", capacity=4)
        overlay.join(b, [a.descriptor()], now=2.0)
        d = ticketed_peer(deployment, "d@example.org")
        e = ticketed_peer(deployment, "e@example.org")
        overlay.join(d, [b.descriptor()], now=2.0)
        overlay.join(e, [b.descriptor()], now=2.0)
        sent = overlay.source.tick(55.0)  # serial 1 enters its lead window
        assert sent >= 4  # a, b, d, e each got a link message
        for peer in (a, b, d, e):
            assert peer.client.key_ring.has(1)

    def test_duplicate_key_not_recascaded(self, deployment):
        parent = watching_peer(deployment, "p@example.org")
        child = ticketed_peer(deployment, "c@example.org")
        deployment.overlay("free-ch").join(child, [parent.descriptor()], now=2.0)
        key = deployment.server("free-ch").current_key(2.0)
        first = parent.push_key_to_children(key, now=2.0)
        second = parent.push_key_to_children(key, now=2.0)
        assert first >= 1
        # Second push sends link messages but children discard dupes
        # and do not cascade further.
        assert second <= first


class TestForwarding:
    def test_packet_cascades_and_decrypts(self, deployment):
        overlay = deployment.overlay("free-ch")
        a = watching_peer(deployment, "a@example.org", capacity=2)
        b = ticketed_peer(deployment, "b@example.org", capacity=2)
        overlay.join(b, [a.descriptor()], now=2.0)
        reached = overlay.source.broadcast_packet(3.0)
        assert reached >= 1
        assert a.client.packets_decrypted == 1
        assert b.client.packets_decrypted == 1

    def test_unauthorized_peer_does_not_forward(self, deployment):
        """A peer that cannot decrypt (no key) does not propagate."""
        overlay = deployment.overlay("free-ch")
        a = watching_peer(deployment, "a@example.org", capacity=2)
        b = ticketed_peer(deployment, "b@example.org", capacity=2)
        overlay.join(b, [a.descriptor()], now=2.0)
        # Blow away A's keys: it can no longer decrypt, so it must not
        # forward downstream either.
        from repro.core.keystream import ContentKeyRing

        a.client.key_ring = ContentKeyRing()
        overlay.source.broadcast_packet(3.0)
        assert b.client.packets_decrypted == 0


class TestRenewalEnforcement:
    def test_expired_child_severed(self, deployment):
        parent = watching_peer(deployment, "p@example.org")
        child = ticketed_peer(deployment, "c@example.org")
        deployment.overlay("free-ch").join(child, [parent.descriptor()], now=2.0)
        expiry = child.client.channel_ticket.expire_time
        severed = parent.enforce_ticket_expiry(now=expiry + 1.0)
        assert severed == [child.client.channel_ticket.user_id]
        assert not parent.children
        assert not child.client.parents

    def test_renewed_child_survives(self, deployment):
        parent = watching_peer(deployment, "p@example.org")
        child = ticketed_peer(deployment, "c@example.org")
        deployment.overlay("free-ch").join(child, [parent.descriptor()], now=2.0)
        old_expiry = child.client.channel_ticket.expire_time
        renew_at = old_expiry - 10.0
        child.client.login(now=renew_at)
        child.client.renew_channel_ticket(now=renew_at)
        parent.present_renewal(
            child.client.channel_ticket.user_id, child.client.channel_ticket, now=renew_at
        )
        assert parent.enforce_ticket_expiry(now=old_expiry + 1.0) == []
        assert parent.children

    def test_renewal_without_bit_rejected(self, deployment):
        parent = watching_peer(deployment, "p@example.org")
        child = ticketed_peer(deployment, "c@example.org")
        deployment.overlay("free-ch").join(child, [parent.descriptor()], now=2.0)
        with pytest.raises(AuthorizationError):
            parent.present_renewal(
                child.client.channel_ticket.user_id,
                child.client.channel_ticket,  # renewal bit not set
                now=3.0,
            )

    def test_grace_period_tolerates_inflight_renewal(self, deployment):
        parent = watching_peer(deployment, "p@example.org")
        child = ticketed_peer(deployment, "c@example.org")
        deployment.overlay("free-ch").join(child, [parent.descriptor()], now=2.0)
        expiry = child.client.channel_ticket.expire_time
        assert parent.enforce_ticket_expiry(now=expiry + 1.0, grace=30.0) == []


class TestLeave:
    def test_leave_returns_orphans(self, deployment):
        overlay = deployment.overlay("free-ch")
        parent = watching_peer(deployment, "p@example.org", capacity=2)
        child = ticketed_peer(deployment, "c@example.org")
        overlay.join(child, [parent.descriptor()], now=2.0)
        orphans = parent.leave()
        assert [o.peer_id for o in orphans] == [child.peer_id]
        assert not parent.alive
        assert not child.client.parents

    def test_bind_child_unknown_user_rejected(self, deployment):
        parent = watching_peer(deployment, "p@example.org")
        with pytest.raises(OverlayError):
            parent.bind_child_peer(999, parent)

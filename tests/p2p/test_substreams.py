"""Tests for peer-division multiplexing structures."""

import pytest

from repro.p2p.substreams import ParentPlan, SubstreamAssignment


class TestAssignment:
    def test_round_robin(self):
        assignment = SubstreamAssignment(4)
        assert [assignment.substream_of(s) for s in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_single_substream_degenerates(self):
        assignment = SubstreamAssignment(1)
        assert assignment.substream_of(12345) == 0

    def test_zero_substreams_rejected(self):
        with pytest.raises(ValueError):
            SubstreamAssignment(0)

    def test_substreams_listing(self):
        assert SubstreamAssignment(3).substreams() == [0, 1, 2]


class TestParentPlan:
    def test_assign_all_single_parent(self):
        plan = ParentPlan(assignment=SubstreamAssignment(4))
        plan.assign_all("p1")
        assert plan.complete
        assert plan.distinct_parents() == {"p1"}

    def test_multi_parent_split(self):
        plan = ParentPlan(assignment=SubstreamAssignment(4))
        plan.assign(0, "p1")
        plan.assign(1, "p1")
        plan.assign(2, "p2")
        plan.assign(3, "p2")
        assert plan.complete
        assert plan.distinct_parents() == {"p1", "p2"}
        assert plan.substreams_from("p1") == [0, 1]
        assert plan.substreams_from("p2") == [2, 3]

    def test_invalid_substream_rejected(self):
        plan = ParentPlan(assignment=SubstreamAssignment(2))
        with pytest.raises(ValueError):
            plan.assign(5, "p1")

    def test_gaps_reported(self):
        plan = ParentPlan(assignment=SubstreamAssignment(3))
        plan.assign(0, "p1")
        assert plan.gaps() == [1, 2]
        assert not plan.complete

    def test_drop_parent_orphans_its_substreams(self):
        plan = ParentPlan(assignment=SubstreamAssignment(4))
        plan.assign(0, "p1")
        plan.assign(1, "p2")
        plan.assign(2, "p2")
        plan.assign(3, "p1")
        orphaned = plan.drop_parent("p2")
        assert sorted(orphaned) == [1, 2]
        assert plan.gaps() == [1, 2]
        assert plan.parent_of(0) == "p1"

    def test_reassignment_after_churn(self):
        plan = ParentPlan(assignment=SubstreamAssignment(2))
        plan.assign_all("p1")
        plan.drop_parent("p1")
        plan.assign(0, "p2")
        plan.assign(1, "p3")
        assert plan.complete
        assert plan.distinct_parents() == {"p2", "p3"}

    def test_multi_parent_implies_duplicate_keys(self):
        """The DRM consequence of sub-streams the paper notes: a peer
        with k distinct parents receives each content key k times."""
        plan = ParentPlan(assignment=SubstreamAssignment(4))
        plan.assign(0, "p1")
        plan.assign(1, "p2")
        plan.assign(2, "p3")
        plan.assign(3, "p1")
        expected_duplicates = len(plan.distinct_parents()) - 1
        assert expected_duplicates == 2

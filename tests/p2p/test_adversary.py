"""Tests for the Byzantine peer tier.

Covers the injection layer (AdversaryConfig / AdversarialPeer /
MisbehavingKeySender), the detection plane (PeerScorecard, packet
attribution, the client replay window, the CM JOIN rate limiter), and
the containment plumbing (quarantine exclusion, eviction sweep,
BoundedLog).
"""

import random

import pytest

from repro.core.keystream import ContentKey
from repro.core.packets import tampered_copy
from repro.core.protocol import KeyUpdate
from repro.crypto.stream import SymmetricKey
from repro.errors import RateLimitError, ReplayError
from repro.p2p.adversary import AdversaryConfig, AdversarialPeer, MisbehavingKeySender
from repro.p2p.overlay import BoundedLog
from repro.p2p.reliable import LossyLink, ReliableKeyReceiver
from repro.p2p.scorecard import (
    DEPTH_LIE,
    MISSING_KEY,
    POLLUTION,
    PeerScorecard,
)
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# AdversaryConfig
# ----------------------------------------------------------------------


class TestAdversaryConfig:
    def test_default_config_is_honest(self):
        config = AdversaryConfig()
        assert not config.misbehaves()
        assert config.active(0.0)

    def test_window_bounds_activity(self):
        config = AdversaryConfig(tamper_packets=1.0, start=100.0, stop=200.0)
        assert config.misbehaves()
        assert not config.active(99.9)
        assert config.active(100.0)
        assert config.active(199.9)
        assert not config.active(200.0)

    def test_each_misbehavior_counts(self):
        assert AdversaryConfig(withhold_keys=True).misbehaves()
        assert AdversaryConfig(stale_keys=True).misbehaves()
        assert AdversaryConfig(replay_keys=True).misbehaves()
        assert AdversaryConfig(lie_depth=0).misbehaves()
        assert AdversaryConfig(lie_capacity=99).misbehaves()


class TestTamperedCopy:
    def test_preserves_identity_changes_bytes(self):
        from repro.core.packets import ContentPacket

        packet = ContentPacket(serial=3, sequence=7, ciphertext=b"abcdef")
        bad = tampered_copy(packet, flip_byte=2)
        assert (bad.serial, bad.sequence) == (3, 7)
        assert bad.ciphertext != packet.ciphertext
        assert len(bad.ciphertext) == len(packet.ciphertext)

    def test_empty_ciphertext_rejected(self):
        from repro.core.packets import ContentPacket

        with pytest.raises(ValueError):
            tampered_copy(ContentPacket(serial=0, sequence=0, ciphertext=b""))


# ----------------------------------------------------------------------
# PeerScorecard
# ----------------------------------------------------------------------


class TestScorecard:
    def test_reports_accumulate_to_quarantine(self):
        card = PeerScorecard(quarantine_threshold=3.0)
        assert not card.report("p1", POLLUTION, now=0.0)
        assert not card.report("p1", POLLUTION, now=0.0)
        assert card.report("p1", POLLUTION, now=0.0)  # crosses 3.0
        assert card.is_quarantined("p1")
        assert card.counters.peers_quarantined == 1
        assert card.counters.pollution_detected == 3
        # Quarantine is a transition, not a level: further reports
        # do not re-quarantine.
        assert not card.report("p1", POLLUTION, now=0.0)
        assert card.counters.peers_quarantined == 1

    def test_score_decays_by_half_life(self):
        card = PeerScorecard(half_life=100.0)
        card.report("p1", POLLUTION, now=0.0)
        assert card.score("p1", now=0.0) == pytest.approx(1.0)
        assert card.score("p1", now=100.0) == pytest.approx(0.5)
        assert card.score("p1", now=200.0) == pytest.approx(0.25)

    def test_transient_glitch_never_quarantines(self):
        """One report per half-life converges below any threshold >= 2."""
        card = PeerScorecard(half_life=50.0, quarantine_threshold=2.0)
        for i in range(50):
            card.report("p1", MISSING_KEY, now=i * 50.0, weight=0.5)
        assert not card.is_quarantined("p1")

    def test_depth_lie_weighs_double(self):
        card = PeerScorecard(quarantine_threshold=3.0)
        card.report("p1", DEPTH_LIE, now=0.0)
        assert card.score("p1", now=0.0) == pytest.approx(2.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown misbehavior"):
            PeerScorecard().report("p1", "gossip")

    def test_release_clears_state(self):
        card = PeerScorecard(quarantine_threshold=1.0)
        card.report("p1", POLLUTION, now=0.0)
        assert card.is_quarantined("p1")
        card.release("p1", now=1.0)
        assert not card.is_quarantined("p1")
        assert card.score("p1", now=1.0) == 0.0

    def test_address_attribution(self):
        card = PeerScorecard()
        card.note_address("p1", "10.0.0.1")
        assert card.report_address("10.0.0.1", POLLUTION, now=0.0) == "p1"
        assert card.report_counts("p1") == {POLLUTION: 1}
        # Unknown addresses are still counted (a flooder need not have
        # joined the overlay) but resolve to no peer.
        assert card.report_address("99.9.9.9", POLLUTION, now=0.0) is None
        assert card.counters.pollution_detected == 2

    def test_events_record_detection_and_quarantine(self):
        card = PeerScorecard(quarantine_threshold=1.0)
        card.report("p1", POLLUTION, now=5.0)
        kinds = [kind for _, kind, _ in card.events]
        assert kinds == ["detect:pollution", "quarantine"]

    def test_validation(self):
        with pytest.raises(ValueError):
            PeerScorecard(half_life=0.0)
        with pytest.raises(ValueError):
            PeerScorecard(quarantine_threshold=-1.0)


# ----------------------------------------------------------------------
# BoundedLog
# ----------------------------------------------------------------------


class TestBoundedLog:
    def test_caps_length_and_counts_drops(self):
        log = BoundedLog(maxlen=3)
        for i in range(5):
            log.append(i)
        assert list(log) == [2, 3, 4]
        assert log.total == 5
        assert log.dropped == 2

    def test_since_returns_suffix(self):
        log = BoundedLog(maxlen=10)
        for i in range(4):
            log.append(i)
        mark = log.total
        log.append(4)
        log.append(5)
        assert log.since(mark) == [4, 5]
        assert log.since(log.total) == []

    def test_since_saturates_when_mark_aged_out(self):
        """A mark older than the retained window yields the whole
        retained suffix rather than raising."""
        log = BoundedLog(maxlen=2)
        for i in range(6):
            log.append(i)
        assert log.since(0) == [4, 5]

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedLog(maxlen=0)


# ----------------------------------------------------------------------
# Replay window (client side)
# ----------------------------------------------------------------------


def watching_peer(deployment, email, channel="free-ch", now=1.0, capacity=4):
    client = deployment.create_client(email, "pw", region="CH")
    client.login(now=now)
    return deployment.watch(client, channel, now=now, capacity=capacity)


class TestReplayWindow:
    def test_stale_key_update_rejected(self, deployment):
        parent = watching_peer(deployment, "parent@example.org")
        child = watching_peer(deployment, "child@example.org")
        assert child.client.parents  # joined under the parent

        drbg = deployment._drbg.fork(b"replay-test")
        fresh = ContentKey(serial=10, key=SymmetricKey(drbg.generate(16)), activate_at=500.0)
        stale = ContentKey(serial=200, key=SymmetricKey(drbg.generate(16)), activate_at=100.0)
        parent.client.key_ring.offer(fresh)
        parent.client.key_ring.offer(stale)
        assert parent.push_key_update(fresh, now=500.0) >= 1
        # 400 s behind the newest accepted key > the 150 s window: the
        # raw client raises; the peer cascade absorbs it (tested below).
        with pytest.raises(ReplayError):
            child.client.receive_key_update(
                _reencrypted_update(parent, child, stale),
                parent_id=parent.peer_id,
            )
        assert child.client.key_replays_rejected == 1
        # Through the peer layer nothing propagates: one link message
        # out, zero cascade beyond the rejecting child.
        assert parent.push_key_update(stale, now=500.0) == 1
        assert child.client.key_replays_rejected == 2

    def test_replay_attributed_to_pushing_parent(self, deployment):
        scorecard = deployment.enable_misbehavior_detection()
        parent = watching_peer(deployment, "parent@example.org")
        child = watching_peer(deployment, "child@example.org")

        drbg = deployment._drbg.fork(b"replay-test-2")
        fresh = ContentKey(serial=10, key=SymmetricKey(drbg.generate(16)), activate_at=500.0)
        stale = ContentKey(serial=200, key=SymmetricKey(drbg.generate(16)), activate_at=100.0)
        parent.client.key_ring.offer(fresh)
        parent.client.key_ring.offer(stale)
        parent.push_key_update(fresh, now=500.0)
        # Through the peer layer the ReplayError is absorbed and
        # charged to the parent instead of propagating.
        update = KeyUpdate(
            channel_id="free-ch", serial=200,
            encrypted_content_key=b"", activate_at=100.0,
        )
        # Rebuild the real encrypted update by pushing just to this child.
        sent = child.receive_key_update(
            _reencrypted_update(parent, child, stale), parent, now=500.0
        )
        assert sent == 0
        assert scorecard.report_counts(parent.peer_id).get("replay") == 1

    def test_in_ring_redelivery_is_duplicate_not_replay(self, deployment):
        parent = watching_peer(deployment, "parent@example.org")
        child = watching_peer(deployment, "child@example.org")
        drbg = deployment._drbg.fork(b"replay-test-3")
        key = ContentKey(serial=10, key=SymmetricKey(drbg.generate(16)), activate_at=500.0)
        parent.client.key_ring.offer(key)
        parent.push_key_update(key, now=500.0)
        before = child.client.key_replays_rejected
        parent.push_key_update(key, now=501.0)  # honest re-delivery
        assert child.client.key_replays_rejected == before


def _reencrypted_update(parent, child, content_key):
    """The KeyUpdate the parent would send this child for content_key."""
    from repro.core.packets import reencrypt_key_for_link

    link = parent.children[child.client.channel_ticket.user_id]
    blob = reencrypt_key_for_link(
        content_key,
        session_key=link.session_key,
        channel_id=parent.channel_id,
    )
    return KeyUpdate(
        channel_id=parent.channel_id,
        serial=content_key.serial,
        encrypted_content_key=blob,
        activate_at=content_key.activate_at,
        parent_depth=parent.depth,
    )


# ----------------------------------------------------------------------
# CM JOIN rate limiting
# ----------------------------------------------------------------------


class TestJoinRateLimit:
    def test_flood_refused_and_counted(self, deployment):
        deployment.enable_misbehavior_detection(join_rate_limit=(2, 60.0))
        client = deployment.create_client("flood@example.org", "pw", region="CH")
        client.login(now=0.0)
        client.switch_channel("free-ch", now=1.0)
        client.switch_channel("free-ch", now=2.0)
        with pytest.raises(RateLimitError):
            client.switch_channel("free-ch", now=3.0)
        assert deployment.misbehavior.joins_rate_limited >= 1

    def test_window_slides(self, deployment):
        deployment.enable_misbehavior_detection(join_rate_limit=(2, 60.0))
        client = deployment.create_client("slow@example.org", "pw", region="CH")
        client.login(now=0.0)
        client.switch_channel("free-ch", now=1.0)
        client.switch_channel("free-ch", now=2.0)
        # Outside the window the budget refills.
        client.switch_channel("free-ch", now=100.0)

    def test_limit_validation(self, deployment):
        cm = next(iter(deployment.channel_managers.values()))
        with pytest.raises(ValueError):
            cm.set_join_rate_limit(0, 60.0)
        with pytest.raises(ValueError):
            cm.set_join_rate_limit(5, 0.0)


# ----------------------------------------------------------------------
# AdversarialPeer end-to-end: inject -> detect -> contain
# ----------------------------------------------------------------------


def adversarial_watcher(deployment, email, config, channel="free-ch", now=1.0):
    client = deployment.create_client(email, "pw", region="CH")
    client.login(now=now)
    response = client.switch_channel(channel, now=now)
    peer = deployment.make_adversarial_peer(client, channel, config=config)
    deployment.overlay(channel).join(peer, response.peers, now)
    return peer


class TestAdversarialPeer:
    def test_pollution_detected_quarantined_evicted(self, deployment):
        scorecard = deployment.enable_misbehavior_detection()
        overlay = deployment.overlay("free-ch")
        adv = adversarial_watcher(
            deployment, "byz@example.org", AdversaryConfig(tamper_packets=1.0)
        )
        child = watching_peer(deployment, "victim@example.org", now=2.0)
        assert isinstance(adv, AdversarialPeer)

        source = overlay.source
        source.tick(10.0)
        for step in range(4):
            scorecard.advance(10.0 + step)
            source.broadcast_packet(10.0 + step)
        assert adv.tampered_blobs
        assert child.packets_dropped_undecryptable >= 3
        assert scorecard.report_counts(adv.peer_id)[POLLUTION] >= 3
        assert scorecard.is_quarantined(adv.peer_id)

        evicted = deployment.contain_misbehavior(now=20.0)
        assert adv.peer_id in evicted["free-ch"]
        assert adv.peer_id not in overlay.peers
        assert deployment.misbehavior.peers_evicted == 1
        # The orphaned victim was repaired back into the tree and the
        # stream resumes for it.
        before = child.client.packets_decrypted
        source.broadcast_packet(21.0)
        assert child.client.packets_decrypted == before + 1

    def test_quarantined_peer_excluded_from_peer_lists(self, deployment):
        scorecard = deployment.enable_misbehavior_detection()
        overlay = deployment.overlay("free-ch")
        adv = adversarial_watcher(
            deployment, "byz@example.org", AdversaryConfig(tamper_packets=1.0)
        )
        for _ in range(3):
            scorecard.report(adv.peer_id, POLLUTION, now=5.0)
        assert scorecard.is_quarantined(adv.peer_id)
        listed = {
            d.peer_id
            for d in overlay.sample_peers("free-ch", exclude_addr="0.0.0.0", count=8)
        }
        assert adv.peer_id not in listed

    def test_withholding_starves_child_of_new_keys(self, deployment):
        deployment.enable_misbehavior_detection()
        overlay = deployment.overlay("free-ch")
        adv = adversarial_watcher(
            deployment, "byz@example.org", AdversaryConfig(withhold_keys=True)
        )
        child = watching_peer(deployment, "victim@example.org", now=2.0)
        held_before = set(child.client.key_ring.serials())
        overlay.source.tick(100.0)  # rotation pushes a fresh key
        assert set(child.client.key_ring.serials()) == held_before
        assert any(kind == "withhold" for kind, _ in adv.injection_log)

    def test_capacity_lie_visible_in_descriptor(self, deployment):
        adv = adversarial_watcher(
            deployment, "byz@example.org", AdversaryConfig(lie_capacity=99)
        )
        adv._note_time(1.0)
        assert adv.descriptor().spare_capacity == 99
        assert ("lie_descriptor", adv.peer_id) in adv.injection_log

    def test_depth_lie_pinned_against_heartbeat(self, deployment):
        adv = adversarial_watcher(
            deployment, "byz@example.org", AdversaryConfig(lie_depth=0)
        )
        adv._note_time(1.0)
        update = KeyUpdate(
            channel_id="free-ch", serial=1,
            encrypted_content_key=b"", activate_at=0.0, parent_depth=4,
        )
        adv._adopt_heartbeat_depth(update)
        assert adv.depth == 0  # pinned, not 5

    def test_depth_liar_caught_by_audit(self, deployment):
        scorecard = deployment.enable_misbehavior_detection()
        overlay = deployment.overlay("free-ch")
        honest = watching_peer(deployment, "h@example.org")
        adv = adversarial_watcher(
            deployment, "byz@example.org", AdversaryConfig(lie_depth=0), now=2.0
        )
        adv._note_time(2.0)
        adv.depth = 0  # the lie: claims to sit beside the source
        overlay.audit_depths(now=3.0)
        assert scorecard.report_counts(adv.peer_id).get(DEPTH_LIE) == 1
        assert scorecard.report_counts(honest.peer_id) == {}


# ----------------------------------------------------------------------
# MisbehavingKeySender (reliable-layer twin)
# ----------------------------------------------------------------------


def make_update(serial=1, activate_at=60.0):
    return KeyUpdate(
        channel_id="ch", serial=serial,
        encrypted_content_key=b"k" * 32, activate_at=activate_at,
    )


class TestMisbehavingKeySender:
    def make_pair(self, **flags):
        sim = Simulator()
        received = []
        receiver = ReliableKeyReceiver(received.append, clock=lambda: sim.now)
        link = LossyLink(sim, random.Random(1), one_way_delay=0.03, loss_probability=0.0)
        sender = MisbehavingKeySender(link, receiver, **flags)
        return sim, sender, receiver, received

    def test_withholding_sender_delivers_nothing(self):
        sim, sender, _, received = self.make_pair(withhold=True)
        sender.send(make_update())
        sim.run()
        assert received == []
        assert sender.injection_log == [("withhold", "1")]

    def test_replaying_sender_resends_stale_update(self):
        sim, sender, receiver, received = self.make_pair(replay=True)
        sender.send(make_update(serial=1, activate_at=60.0))
        sim.run()
        sender.send(make_update(serial=2, activate_at=120.0))
        sim.run()
        # The stale copy rode along but the receiver deduped it.
        assert ("replay", "1") in sender.injection_log
        assert [u.serial for u in received] == [1, 2]
        assert receiver.stats.delivered == 3

    def test_delaying_sender_arrives_late(self):
        sim, sender, _, received = self.make_pair(delay=5.0)
        sender.send(make_update(activate_at=60.0))
        sim.run()
        assert len(received) == 1
        assert sim.now >= 5.0

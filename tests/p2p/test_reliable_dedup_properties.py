"""Property tests for reliable-delivery dedup pruning.

The dedup state on both ends of a reliable key link is a map of
``(serial, activate_at)`` markers pruned against a grace window.  The
soak test in ``test_reliable.py`` exercises one long trajectory; these
properties pin down the *boundary* behavior for arbitrary inputs:

* the prune comparison is half-open -- a marker whose activation sits
  exactly ``grace`` seconds in the past is KEPT (``>=`` cutoff), one
  strictly older is dropped;
* duplicates inside the window are delivered upward exactly once, for
  any mix of serials and duplication patterns;
* serial wraparound (same serial, later activation) is never treated
  as a duplicate, for any number of generations.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import KeyUpdate
from repro.p2p.reliable import ReliableKeyReceiver, reliable_link_pair
from repro.sim.engine import Simulator

SERIAL_MODULUS = 256


def make_update(serial, activate_at):
    return KeyUpdate(
        channel_id="ch",
        serial=serial,
        encrypted_content_key=b"k" * 32,
        activate_at=float(activate_at),
    )


class TestReceiverDedupProperties:
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, SERIAL_MODULUS - 1), st.integers(0, 500)),
            min_size=1,
            max_size=60,
        ),
        copies=st.integers(1, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_unique_markers_delivered_exactly_once(self, pairs, copies):
        """With an unbounded grace window, every distinct
        (serial, activate_at) marker reaches the application exactly
        once no matter how often the link re-delivers it."""
        delivered = []
        receiver = ReliableKeyReceiver(delivered.append, grace=1e12)
        for serial, when in pairs:
            for _ in range(copies):
                receiver.receive(make_update(serial, when))
        unique = {(s, float(w)) for s, w in pairs}
        assert len(delivered) == len(unique)
        assert {(u.serial, u.activate_at) for u in delivered} == unique

    @given(grace=st.integers(1, 1000), age=st.integers(0, 2000))
    @settings(max_examples=100, deadline=None)
    def test_prune_boundary_is_half_open(self, grace, age):
        """A marker is pruned iff it is *strictly* older than
        ``now - grace``; sitting exactly on the cutoff keeps it."""
        clock = {"now": 0.0}
        kept = []
        receiver = ReliableKeyReceiver(
            kept.append, clock=lambda: clock["now"], grace=float(grace)
        )
        receiver.receive(make_update(1, 0.0))
        clock["now"] = float(age)
        receiver.receive(make_update(2, float(age)))
        # cutoff = age - grace; the old marker (activation 0.0) stays
        # when 0.0 >= age - grace, i.e. age <= grace.
        assert receiver.dedup_markers == (2 if age <= grace else 1)
        # A re-delivery of the old update is deduped only while its
        # marker survives; once pruned, the dedup has forgotten it.
        before = len(kept)
        receiver.receive(make_update(1, 0.0))
        assert len(kept) == before + (0 if age <= grace else 1)

    @given(
        serial=st.integers(0, SERIAL_MODULUS - 1),
        epoch=st.integers(1, 600),
        wraps=st.integers(1, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_wrapped_serial_redelivered_each_generation(self, serial, epoch, wraps):
        """Each wraparound generation of a serial is a distinct key:
        delivered once per generation, deduped within it."""
        delivered = []
        receiver = ReliableKeyReceiver(delivered.append, grace=1e12)
        for generation in range(wraps + 1):
            activate_at = float(generation * SERIAL_MODULUS * epoch)
            receiver.receive(make_update(serial, activate_at))
            receiver.receive(make_update(serial, activate_at))  # duplicate
        assert len(delivered) == wraps + 1
        assert [u.activate_at for u in delivered] == [
            float(g * SERIAL_MODULUS * epoch) for g in range(wraps + 1)
        ]

    @given(
        n_epochs=st.integers(10, 300),
        grace=st.integers(1, 40),
        lead=st.integers(0, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_marker_count_bounded_by_grace_window(self, n_epochs, grace, lead):
        """State never exceeds one marker per epoch inside the grace
        window (plus the activation lead still aging out), for any
        epoch count: the bound is O(grace), not O(history)."""
        receiver = ReliableKeyReceiver(lambda u: None, grace=float(grace))
        for i in range(n_epochs):
            # Monotone activations with a constant lead; no clock, so
            # pruning runs off the activations themselves.
            receiver.receive(make_update(i % SERIAL_MODULUS, i + lead))
        assert receiver.dedup_markers <= grace + 1


class TestSenderDedupProperties:
    @given(n_epochs=st.integers(5, 80), grace=st.integers(1, 30))
    @settings(max_examples=25, deadline=None)
    def test_acked_markers_bounded_and_boundary_kept(self, n_epochs, grace):
        """Over any lossless run with one key per epoch, the sender's
        acked-marker state stays within the grace window and the
        newest marker always survives pruning."""
        sim = Simulator()
        received = []
        sender, receiver = reliable_link_pair(
            sim,
            random.Random(7),
            received.append,
            loss_probability=0.0,
            retransmit_interval=0.5,
            grace=float(grace),
        )
        for i in range(n_epochs):
            update = make_update(i % SERIAL_MODULUS, i + 0.5)
            sim.schedule(float(i), lambda s, u=update: sender.send(u))
        sim.run()
        assert len(received) == n_epochs
        assert sender.stats.acked == n_epochs
        # Slack of 2: the ack round-trip delay shifts the prune clock
        # relative to the activation lattice.
        assert 1 <= sender.dedup_markers <= grace + 2

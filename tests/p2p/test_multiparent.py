"""Tests for multi-parent (peer-division multiplexing) joins."""

import pytest

from repro.deployment import Deployment
from repro.errors import CapacityError


@pytest.fixture
def pdm():
    """A 4-sub-stream deployment with several available parents."""
    deployment = Deployment(seed=21, substream_count=4, source_capacity=16)
    deployment.add_free_channel("hd", regions=["CH"])
    parents = []
    for i in range(4):
        client = deployment.create_client(f"parent{i}@example.org", "pw", region="CH")
        client.login(now=0.0)
        parents.append(deployment.watch(client, "hd", now=0.0, capacity=4))
    return deployment, parents


def make_joiner(deployment, email="joiner@example.org"):
    client = deployment.create_client(email, "pw", region="CH")
    client.login(now=1.0)
    client.switch_channel("hd", now=1.0)
    return deployment.make_peer(client, "hd", capacity=4)


class TestMultiparentJoin:
    def test_substreams_split_across_parents(self, pdm):
        deployment, parents = pdm
        overlay = deployment.overlay("hd")
        joiner = make_joiner(deployment)
        accepted, attempts = overlay.join_multiparent(
            joiner, [p.descriptor() for p in parents], now=2.0
        )
        assert len(accepted) == 4
        plan = overlay.plans[joiner.peer_id]
        assert plan.complete
        assert len(plan.distinct_parents()) == 4
        assert len(joiner.client.parents) == 4

    def test_duplicate_keys_discarded_by_serial(self, pdm):
        """Section IV-E: a peer with several parents receives the same
        content key once per parent and discards the duplicates."""
        deployment, parents = pdm
        overlay = deployment.overlay("hd")
        joiner = make_joiner(deployment)
        overlay.join_multiparent(joiner, [p.descriptor() for p in parents], now=2.0)
        # Rotate: the source pushes the next key through all parents.
        overlay.source.tick(55.0)
        ring = joiner.client.key_ring
        assert ring.has(1)
        assert ring.duplicates_discarded >= len(joiner.client.parents) - 1

    def test_all_substream_packets_delivered_once(self, pdm):
        deployment, parents = pdm
        overlay = deployment.overlay("hd")
        joiner = make_joiner(deployment)
        overlay.join_multiparent(joiner, [p.descriptor() for p in parents], now=2.0)
        for i in range(8):  # two packets per sub-stream
            overlay.source.broadcast_packet(10.0 + i, )
        assert joiner.client.packets_decrypted == 8

    def test_parent_loss_leaves_gap_stream_continues_partially(self, pdm):
        deployment, parents = pdm
        overlay = deployment.overlay("hd")
        joiner = make_joiner(deployment)
        accepted, _ = overlay.join_multiparent(
            joiner, [p.descriptor() for p in parents], now=2.0
        )
        lost = accepted[0]
        overlay.remove_peer(lost.peer_id, now=3.0)
        plan = overlay.plans[joiner.peer_id]
        # Repair may or may not have found a substitute; if gaps remain
        # they are exactly the lost parent's sub-streams.
        if not plan.complete:
            assert set(plan.gaps()) <= {0, 1, 2, 3}
        # The joiner still decrypts packets on surviving sub-streams.
        before = joiner.client.packets_decrypted
        for i in range(4):
            overlay.source.broadcast_packet(10.0 + i)
        assert joiner.client.packets_decrypted > before - 1

    def test_fewer_candidates_than_substreams(self, pdm):
        deployment, parents = pdm
        overlay = deployment.overlay("hd")
        joiner = make_joiner(deployment)
        accepted, _ = overlay.join_multiparent(
            joiner, [parents[0].descriptor()], now=2.0
        )
        assert len(accepted) == 1
        plan = overlay.plans[joiner.peer_id]
        assert plan.complete  # one parent carries all sub-streams

    def test_max_parents_cap(self, pdm):
        deployment, parents = pdm
        overlay = deployment.overlay("hd")
        joiner = make_joiner(deployment)
        accepted, _ = overlay.join_multiparent(
            joiner, [p.descriptor() for p in parents], now=2.0, max_parents=2
        )
        assert len(accepted) == 2
        assert len(overlay.plans[joiner.peer_id].distinct_parents()) == 2

    def test_no_acceptance_raises(self, pdm):
        deployment, parents = pdm
        overlay = deployment.overlay("hd")
        # Saturate every parent.
        blockers = []
        for parent in parents:
            for j in range(parent.spare_capacity):
                blocker = make_joiner(deployment, f"blk{parent.peer_id}-{j}@example.org")
                overlay.join(blocker, [parent.descriptor()], now=2.0)
                blockers.append(blocker)
        joiner = make_joiner(deployment, "unlucky@example.org")
        with pytest.raises(CapacityError):
            overlay.join_multiparent(
                joiner, [p.descriptor() for p in parents], now=3.0
            )

    def test_rejoin_after_capacity_error(self, pdm):
        """Regression: a refused join must leave no ghost plan behind,
        and the retry must build its plan from scratch instead of
        resurrecting assignments from the failed attempt."""
        deployment, parents = pdm
        overlay = deployment.overlay("hd")
        blockers = []
        for parent in parents:
            for j in range(parent.spare_capacity):
                blocker = make_joiner(deployment, f"b{parent.peer_id}-{j}@example.org")
                overlay.join(blocker, [parent.descriptor()], now=2.0)
                blockers.append(blocker)
        joiner = make_joiner(deployment, "retry@example.org")
        with pytest.raises(CapacityError):
            overlay.join_multiparent(joiner, [p.descriptor() for p in parents], now=3.0)
        assert joiner.peer_id not in overlay.plans  # no ghost entry
        # Capacity frees up; the retry succeeds with a clean plan.
        overlay.remove_peer(blockers[0].peer_id, now=4.0)
        accepted, _ = overlay.join_multiparent(
            joiner, [p.descriptor() for p in parents], now=5.0
        )
        plan = overlay.plans[joiner.peer_id]
        assert plan.complete
        assert plan.distinct_parents() == {p.peer_id for p in accepted}

    def test_partial_join_retry_remaps_all_substreams(self, pdm):
        """A retry after a partial join (one parent accepted) must remap
        every sub-stream onto parents that accepted *this* time and
        detach the superseded link."""
        deployment, parents = pdm
        overlay = deployment.overlay("hd")
        joiner = make_joiner(deployment, "partial@example.org")
        accepted, _ = overlay.join_multiparent(
            joiner, [parents[0].descriptor()], now=2.0
        )
        assert [p.peer_id for p in accepted] == [parents[0].peer_id]
        uid = joiner.client.channel_ticket.user_id
        # Client retries with a list that no longer includes parents[0].
        retry_list = [p.descriptor() for p in parents[1:]]
        accepted, _ = overlay.join_multiparent(joiner, retry_list, now=3.0)
        plan = overlay.plans[joiner.peer_id]
        assert plan.complete
        assert parents[0].peer_id not in plan.distinct_parents()
        assert uid not in parents[0].children  # stale link detached

    def test_substreams_weighted_by_spare_capacity(self, pdm):
        """Sub-streams spread proportionally to remaining upload
        capacity: a roomy parent carries more than a nearly-full one."""
        deployment, parents = pdm
        overlay = deployment.overlay("hd")
        # parents[0] is the shallow tree head and may already serve the
        # others; pick two leaf parents with full spare capacity.
        big, small = parents[2], parents[3]
        assert big.spare_capacity == small.spare_capacity == 4
        # Fill `small` down to its last slot.
        for j in range(small.spare_capacity - 1):
            blocker = make_joiner(deployment, f"w{j}@example.org")
            overlay.join(blocker, [small.descriptor()], now=2.0)
        joiner = make_joiner(deployment, "weighted@example.org")
        accepted, _ = overlay.join_multiparent(
            joiner, [big.descriptor(), small.descriptor()], now=3.0, max_parents=2
        )
        assert {p.peer_id for p in accepted} == {big.peer_id, small.peer_id}
        plan = overlay.plans[joiner.peer_id]
        carried_by_big = len(plan.substreams_from(big.peer_id))
        carried_by_small = len(plan.substreams_from(small.peer_id))
        assert carried_by_big > carried_by_small >= 1
        assert carried_by_big + carried_by_small == 4

    def test_tree_invariants_hold_with_dag(self, pdm):
        deployment, parents = pdm
        overlay = deployment.overlay("hd")
        for i in range(3):
            joiner = make_joiner(deployment, f"multi{i}@example.org")
            overlay.join_multiparent(joiner, [p.descriptor() for p in parents], now=2.0)
        overlay.check_tree()  # reachable, acyclic (DAG-safe check)

"""Tests for region-aware peer selection."""

import random

import pytest

from repro.deployment import Deployment
from repro.p2p.selection import RegionAwarePeerSampler


@pytest.fixture
def populated():
    """A deployment with viewers split across CH and DE."""
    deployment = Deployment(seed=9, source_capacity=64)
    deployment.add_free_channel("intl", regions=["CH", "DE"])
    for i in range(10):
        region = "CH" if i % 2 == 0 else "DE"
        client = deployment.create_client(f"p{i}@example.org", "pw", region=region)
        client.login(now=0.0)
        deployment.watch(client, "intl", now=0.0, capacity=8)
    return deployment


def make_sampler(deployment, fraction=0.75):
    return RegionAwarePeerSampler(
        deployment.overlays, deployment.geo, random.Random(3), same_region_fraction=fraction
    )


class TestSampler:
    def test_prefers_same_region(self, populated):
        sampler = make_sampler(populated)
        addr = populated.geo.random_address("CH", random.Random(1))
        fraction = sampler.locality_fraction("intl", addr, count=6)
        assert fraction >= 0.5

    def test_includes_remote_fallback(self, populated):
        """Even with full preference, remote candidates appear when the
        local pool is too small."""
        sampler = make_sampler(populated, fraction=1.0)
        addr = populated.geo.random_address("US", random.Random(2))
        sample = sampler("intl", addr, count=6)
        assert sample  # US has no local peers; still served

    def test_excludes_requester(self, populated):
        sampler = make_sampler(populated)
        overlay = populated.overlays["intl"]
        victim = next(iter(overlay.peers.values()))
        sample = sampler("intl", victim.address, count=8)
        assert all(d.address != victim.address for d in sample)

    def test_respects_count(self, populated):
        sampler = make_sampler(populated)
        addr = populated.geo.random_address("CH", random.Random(4))
        assert len(sampler("intl", addr, count=3)) <= 3

    def test_unknown_channel_empty(self, populated):
        sampler = make_sampler(populated)
        assert sampler("ghost", "1.2.3.4", 8) == []

    def test_invalid_fraction_rejected(self, populated):
        with pytest.raises(ValueError):
            make_sampler(populated, fraction=1.5)

    def test_pluggable_into_channel_manager(self, populated):
        """End to end: SWITCH2's peer list is locality-biased."""
        populated.use_region_aware_sampling()
        client = populated.create_client("local@example.org", "pw", region="CH")
        client.login(now=1.0)
        response = client.switch_channel("intl", now=1.0)
        regions = [d.region for d in response.peers if not d.peer_id.startswith("source")]
        assert regions.count("CH") >= regions.count("DE")

    def test_joinable_list(self, populated):
        """The sampled list actually admits the joiner."""
        populated.use_region_aware_sampling()
        client = populated.create_client("joiner@example.org", "pw", region="DE")
        client.login(now=1.0)
        response = client.switch_channel("intl", now=1.0)
        peer = populated.make_peer(client, "intl")
        parent, attempts = populated.overlay("intl").join(peer, response.peers, now=2.0)
        assert attempts >= 1
        populated.overlay("intl").check_tree()

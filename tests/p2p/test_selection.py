"""Tests for region-aware and ranked peer selection."""

import random

import pytest

from repro.deployment import Deployment
from repro.p2p.selection import (
    RankedPeerListProvider,
    RegionAwarePeerSampler,
    merge_with_quota,
)


@pytest.fixture
def populated():
    """A deployment with viewers split across CH and DE."""
    deployment = Deployment(seed=9, source_capacity=64)
    deployment.add_free_channel("intl", regions=["CH", "DE"])
    for i in range(10):
        region = "CH" if i % 2 == 0 else "DE"
        client = deployment.create_client(f"p{i}@example.org", "pw", region=region)
        client.login(now=0.0)
        deployment.watch(client, "intl", now=0.0, capacity=8)
    return deployment


def make_sampler(deployment, fraction=0.75):
    return RegionAwarePeerSampler(
        deployment.overlays, deployment.geo, random.Random(3), same_region_fraction=fraction
    )


class TestSampler:
    def test_prefers_same_region(self, populated):
        sampler = make_sampler(populated)
        addr = populated.geo.random_address("CH", random.Random(1))
        fraction = sampler.locality_fraction("intl", addr, count=6)
        assert fraction >= 0.5

    def test_includes_remote_fallback(self, populated):
        """Even with full preference, remote candidates appear when the
        local pool is too small."""
        sampler = make_sampler(populated, fraction=1.0)
        addr = populated.geo.random_address("US", random.Random(2))
        sample = sampler("intl", addr, count=6)
        assert sample  # US has no local peers; still served

    def test_excludes_requester(self, populated):
        sampler = make_sampler(populated)
        overlay = populated.overlays["intl"]
        victim = next(iter(overlay.peers.values()))
        sample = sampler("intl", victim.address, count=8)
        assert all(d.address != victim.address for d in sample)

    def test_respects_count(self, populated):
        sampler = make_sampler(populated)
        addr = populated.geo.random_address("CH", random.Random(4))
        assert len(sampler("intl", addr, count=3)) <= 3

    def test_unknown_channel_empty(self, populated):
        sampler = make_sampler(populated)
        assert sampler("ghost", "1.2.3.4", 8) == []

    def test_invalid_fraction_rejected(self, populated):
        with pytest.raises(ValueError):
            make_sampler(populated, fraction=1.5)

    def test_pluggable_into_channel_manager(self, populated):
        """End to end: SWITCH2's peer list is locality-biased."""
        populated.use_region_aware_sampling()
        client = populated.create_client("local@example.org", "pw", region="CH")
        client.login(now=1.0)
        response = client.switch_channel("intl", now=1.0)
        regions = [d.region for d in response.peers if not d.peer_id.startswith("source")]
        assert regions.count("CH") >= regions.count("DE")

    def test_joinable_list(self, populated):
        """The sampled list actually admits the joiner."""
        populated.use_region_aware_sampling()
        client = populated.create_client("joiner@example.org", "pw", region="DE")
        client.login(now=1.0)
        response = client.switch_channel("intl", now=1.0)
        peer = populated.make_peer(client, "intl")
        parent, attempts = populated.overlay("intl").join(peer, response.peers, now=2.0)
        assert attempts >= 1
        populated.overlay("intl").check_tree()


class TestTopUpRegression:
    """Regressions for the two historical list-length defects."""

    def test_short_local_side_fills_without_duplicates(self, populated):
        """``len(local) < local_quota``: the old leftover slice offset
        by the quota rather than by the remote peers actually taken,
        re-considering already-chosen peers behind an O(n^2) membership
        scan.  The merged list must hold every eligible candidate
        exactly once."""
        sampler = make_sampler(populated, fraction=1.0)
        addr = populated.geo.random_address("CH", random.Random(7))
        # 5 CH + 5 DE members; fraction 1.0 makes local_quota=9 > 5.
        sample = sampler("intl", addr, count=10)
        ids = [d.peer_id for d in sample]
        assert len(ids) == len(set(ids))
        assert len(sample) == 10  # 9 members + the source... all 10 peers + source capped at 10
        regions = [d.region for d in sample if not d.peer_id.startswith("source")]
        assert regions.count("CH") == 5  # every local peer considered

    def test_merge_with_quota_short_local(self):
        """Unit-level pin: disjoint slices, id-set dedup, full top-up."""

        class Stub:
            def __init__(self, peer_id):
                self.peer_id = peer_id

        local = [Stub(f"L{i}") for i in range(2)]
        remote = [Stub(f"R{i}") for i in range(6)]
        chosen, leftovers = merge_with_quota(local, remote, slots=5, local_quota=4)
        ids = [p.peer_id for p in chosen]
        assert ids == ["L0", "L1", "R0", "R1", "R2"]
        assert [p.peer_id for p in leftovers] == ["R3", "R4", "R5"]

    def test_saturated_source_does_not_shorten_list(self):
        """Regression: a full-capacity source used to cap the sampler's
        list at count-1 even with spare candidates available."""
        deployment = Deployment(seed=11, source_capacity=1)
        deployment.add_free_channel("intl", regions=["CH", "DE"])
        overlay = deployment.overlays["intl"]
        first = None
        for i in range(8):
            region = "CH" if i % 2 == 0 else "DE"
            client = deployment.create_client(f"s{i}@example.org", "pw", region=region)
            client.login(now=0.0)
            peer = deployment.watch(client, "intl", now=0.0, capacity=8)
            if first is None:
                first = peer
        assert overlay.source.spare_capacity == 0
        sampler = RegionAwarePeerSampler(
            deployment.overlays, deployment.geo, random.Random(3)
        )
        addr = deployment.geo.random_address("CH", random.Random(5))
        sample = sampler("intl", addr, count=4)
        assert len(sample) == 4
        assert all(not d.peer_id.startswith("source") for d in sample)


class TestRankedPeerListProvider:
    def make_provider(self, deployment, fraction=0.75, seed=5):
        return RankedPeerListProvider(
            deployment.overlays,
            deployment.geo,
            random.Random(seed),
            same_region_fraction=fraction,
        )

    def test_same_as_outranks_same_region(self, populated):
        provider = self.make_provider(populated, fraction=1.0)
        addr = populated.geo.random_address("CH", random.Random(8))
        record = populated.geo.lookup(addr)
        overlay = populated.overlays["intl"]
        ch_peers = [p for p in overlay.peers.values() if p.region == "CH"]
        # Put the *worst-ranked* CH peer into the requester's AS: same-AS
        # proximity must lift it over every same-region peer.
        target = max(ch_peers, key=lambda p: (p.depth, -p.spare_capacity))
        target.asn = record.asn
        sample = provider("intl", addr, count=4)
        assert sample[0].peer_id == target.peer_id
        assert sample[0].asn == record.asn

    def test_shallow_parents_rank_first_within_region(self, populated):
        provider = self.make_provider(populated, fraction=1.0)
        addr = populated.geo.random_address("CH", random.Random(9))
        overlay = populated.overlays["intl"]
        depths = {p.peer_id: p.depth for p in overlay.peers.values()}
        sample = [d for d in provider("intl", addr, count=8)
                  if not d.peer_id.startswith("source") and d.region == "CH"]
        sampled_depths = [depths[d.peer_id] for d in sample]
        assert sampled_depths == sorted(sampled_depths)

    def test_privacy_cap_bounds_local_share(self, populated):
        provider = self.make_provider(populated, fraction=0.5)
        addr = populated.geo.random_address("CH", random.Random(10))
        sample = provider("intl", addr, count=9)
        regions = [d.region for d in sample if not d.peer_id.startswith("source")]
        # quota = round(8 * 0.5) = 4 local slots; DE has enough members
        # to fill its side, so the cap binds exactly.
        assert regions.count("CH") == 4

    def test_descriptors_carry_capacity_hints(self, populated):
        provider = self.make_provider(populated)
        addr = populated.geo.random_address("CH", random.Random(11))
        sample = provider("intl", addr, count=6)
        assert all(d.spare_capacity > 0 for d in sample)
        assert any(d.asn for d in sample if not d.peer_id.startswith("source"))

    def test_rank_for_repair_prefers_local(self, populated):
        provider = self.make_provider(populated)
        overlay = populated.overlays["intl"]
        orphan = next(p for p in overlay.peers.values() if p.region == "DE")
        candidates = [p for p in overlay.peers.values() if p is not orphan]
        ranked = provider.rank_for_repair(orphan.address, candidates, count=4)
        assert ranked
        assert ranked[0].region == "DE"

    def test_invalid_fraction_rejected(self, populated):
        with pytest.raises(ValueError):
            self.make_provider(populated, fraction=-0.1)

    def test_default_provider_is_ranked(self, populated):
        """A fresh deployment serves ranked SWITCH2 lists out of the box
        and wires the same ranking into churn repair."""
        assert isinstance(populated.ranked_provider, RankedPeerListProvider)
        overlay = populated.overlays["intl"]
        assert overlay.repair_ranker is not None
        client = populated.create_client("fresh@example.org", "pw", region="CH")
        client.login(now=1.0)
        response = client.switch_channel("intl", now=1.0)
        regions = [d.region for d in response.peers if not d.peer_id.startswith("source")]
        assert regions.count("CH") >= regions.count("DE")

    def test_uniform_fallback_and_reinstall(self, populated):
        overlay = populated.overlays["intl"]
        populated.use_uniform_peer_lists()
        assert overlay.repair_ranker is None
        populated.use_ranked_peer_lists(same_region_fraction=0.6)
        assert overlay.repair_ranker is not None
        assert populated.ranked_provider.same_region_fraction == 0.6

    def test_saturated_source_does_not_shorten_list(self):
        deployment = Deployment(seed=13, source_capacity=1)
        deployment.add_free_channel("intl", regions=["CH", "DE"])
        overlay = deployment.overlays["intl"]
        for i in range(8):
            region = "CH" if i % 2 == 0 else "DE"
            client = deployment.create_client(f"r{i}@example.org", "pw", region=region)
            client.login(now=0.0)
            deployment.watch(client, "intl", now=0.0, capacity=8)
        assert overlay.source.spare_capacity == 0
        provider = self.make_provider(deployment)
        addr = deployment.geo.random_address("CH", random.Random(6))
        sample = provider("intl", addr, count=4)
        assert len(sample) == 4
        assert all(not d.peer_id.startswith("source") for d in sample)

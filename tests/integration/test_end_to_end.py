"""Full-stack integration: login -> switch -> join -> watch -> rotate.

Exercises the complete Fig. 1 flow through real components -- no
mocks anywhere -- including key rotation while a tree of viewers is
watching.
"""

import pytest

from repro.deployment import Deployment


@pytest.fixture
def live_deployment():
    deployment = Deployment(seed=77)
    deployment.add_free_channel("live", regions=["CH", "DE"], key_epoch=60.0)
    return deployment


def tune_in(deployment, email, region="CH", now=1.0, capacity=3):
    client = deployment.create_client(email, "pw", region=region)
    client.login(now=now)
    return deployment.watch(client, "live", now=now, capacity=capacity)


class TestFullFlow:
    def test_audience_of_twenty_watches_through_rotation(self, live_deployment):
        overlay = live_deployment.overlay("live")
        peers = [
            tune_in(live_deployment, f"viewer{i}@example.org", now=1.0 + i * 0.1)
            for i in range(20)
        ]
        overlay.check_tree()

        # Minute one: everyone decrypts.
        source = overlay.source
        source.broadcast_packet(30.0)
        for peer in peers:
            assert peer.client.packets_decrypted == 1

        # Key rotation: push serial 1 inside its lead window, then
        # broadcast epoch-1 content.
        source.tick(55.0)
        source.broadcast_packet(65.0)
        for peer in peers:
            assert peer.client.packets_decrypted == 2, peer.peer_id
            assert peer.client.decrypt_failures == 0

    def test_multi_epoch_viewing(self, live_deployment):
        peer = tune_in(live_deployment, "solo@example.org")
        source = live_deployment.overlay("live").source
        for epoch in range(4):
            t = 30.0 + epoch * 60.0
            source.tick(t - 8.0)  # key for this epoch pre-distributed
            source.broadcast_packet(t)
        assert peer.client.packets_decrypted == 4

    def test_churn_mid_broadcast(self, live_deployment):
        overlay = live_deployment.overlay("live")
        peers = [
            tune_in(live_deployment, f"v{i}@example.org", capacity=3)
            for i in range(12)
        ]
        # A mid-tree peer with children departs.
        depths = overlay.depths()
        inner = next(
            (p for p in peers if p.children and depths.get(p.peer_id, 0) >= 1), None
        )
        if inner is not None:
            overlay.remove_peer(inner.peer_id, now=5.0)
            overlay.check_tree()
        source = overlay.source
        source.broadcast_packet(30.0)
        # Every still-connected peer decrypts the broadcast.
        for peer in peers:
            if peer.peer_id in overlay.peers:
                assert peer.client.packets_decrypted >= 1

    def test_late_joiner_gets_current_key_immediately(self, live_deployment):
        tune_in(live_deployment, "early@example.org", now=1.0)
        source = live_deployment.overlay("live").source
        # The source has been pushing rotated keys all along; model the
        # push for the current epoch before the late join.
        source.tick(495.0)
        late = tune_in(live_deployment, "late@example.org", now=500.0)
        source.broadcast_packet(505.0)
        assert late.client.packets_decrypted == 1

    def test_viewing_log_records_all_switches(self, live_deployment):
        for i in range(5):
            tune_in(live_deployment, f"v{i}@example.org")
        manager = live_deployment.channel_manager_for("live")
        log = manager.viewing_log()
        assert len(log) == 5
        assert {entry.channel_id for entry in log} == {"live"}
        assert len({entry.user_id for entry in log}) == 5


class TestMultiDomainMultiPartition:
    def test_cross_domain_cross_partition_service(self):
        deployment = Deployment(
            seed=88, n_domains=2, partitions=("pop", "sport")
        )
        deployment.add_free_channel("news", regions=["CH"], partition="pop")
        deployment.add_free_channel("match", regions=["CH"], partition="sport")
        viewers = []
        for i in range(6):
            client = deployment.create_client(f"multi{i}@example.org", "pw", region="CH")
            client.login(now=0.0)
            viewers.append(client)
        # Users span both domains (consistent hashing).
        domains = {deployment.redirection.domain_for(c.email) for c in viewers}
        assert domains == {"domain-0", "domain-1"}
        # Every viewer can reach channels in both partitions.
        for i, client in enumerate(viewers):
            channel = "news" if i % 2 == 0 else "match"
            deployment.watch(client, channel, now=1.0)
        assert deployment.overlay("news").size == 3
        assert deployment.overlay("match").size == 3

    def test_user_ids_globally_unique_across_domains(self):
        deployment = Deployment(seed=99, n_domains=3)
        deployment.add_free_channel("ch", regions=["CH"])
        ids = []
        for i in range(9):
            client = deployment.create_client(f"u{i}@example.org", "pw", region="CH")
            client.login(now=0.0)
            ids.append(client.user_ticket.user_id)
        assert len(set(ids)) == 9


class TestSubstreams:
    def test_multi_substream_overlay_delivers(self):
        deployment = Deployment(seed=111, substream_count=4)
        deployment.add_free_channel("hd", regions=["CH"])
        client = deployment.create_client("s@example.org", "pw", region="CH")
        client.login(now=0.0)
        peer = deployment.watch(client, "hd", now=1.0)
        source = deployment.overlay("hd").source
        # Four consecutive packets cover all four sub-streams.
        for i in range(4):
            source.broadcast_packet(10.0 + i)
        assert client.packets_decrypted == 4
        plan = deployment.overlay("hd").plans[peer.peer_id]
        assert plan.complete

"""Channel Manager crash + recovery under a live channel-switch storm.

The acceptance scenario for the durability subsystem: a storm of
clients switches channels over the virtual network; the Channel
Manager farm dies mid-storm -- with at least one client stopped
*between* SWITCH1 and SWITCH2 -- and is rebuilt from its durable
store.  Afterwards:

* the recovered viewing log is byte-identical to the pre-crash log;
* the client paused between rounds completes SWITCH2 with its
  pre-crash challenge token and never re-logs-in;
* renewals keep working against the recovered farm;
* the single-viewing-location rule holds over the whole log.
"""

import random

import pytest

from repro.core.challenge import answer_challenge
from repro.core.protocol import Switch1Request, Switch2Request
from repro.crypto.drbg import HmacDrbg
from repro.deployment import Deployment
from repro.sim.driver import AsyncClient, wire_channel_manager, wire_user_manager
from repro.sim.engine import Simulator
from repro.sim.faults import (
    FaultInjector,
    single_location_violations,
    viewing_log_divergence,
)
from repro.sim.network import LatencyModel, RegionRtt
from repro.sim.rpc import VirtualNetwork

RTT = 0.1
CM_ADDR = "rpc://cm"
UM_ADDR = "rpc://um"
CRASH_AT = 4.5
RECOVER_AT = 5.0


def build_rig(n_clients=8):
    deployment = Deployment(seed=23, channel_ticket_lifetime=60.0)
    deployment.enable_durability()
    deployment.add_free_channel("news", regions=["CH"])
    deployment.add_free_channel("sport", regions=["CH"])
    sim = Simulator()
    latency = LatencyModel(
        random.Random(5),
        table={("CH", "dc"): RegionRtt(base_rtt=RTT, sigma=0.0001, slow_path_prob=0.0)},
    )
    network = VirtualNetwork(sim, latency, random.Random(6))
    wire_user_manager(network, deployment.user_managers["domain-0"], UM_ADDR)
    wire_channel_manager(network, deployment.channel_managers["default"], CM_ADDR)

    clients = []
    for i in range(n_clients):
        email = f"storm{i}@example.org"
        deployment.accounts.register(email, "pw")
        clients.append(AsyncClient(
            network=network, email=email, password="pw",
            version=deployment.client_version, image=deployment.client_image,
            net_addr=deployment.geo.random_address("CH", deployment.rng),
            region="CH", drbg=HmacDrbg(email.encode()),
        ))
    return deployment, sim, network, clients


def test_cm_crash_mid_switch_storm():
    deployment, sim, network, clients = build_rig()
    injector = FaultInjector(network)
    checkpoint = {}

    # --- the storm: everyone logs in, then switches back and forth ---
    switch_done = []
    arrival = random.Random(7)
    for client in clients:
        sim.schedule_at(arrival.uniform(0.0, 1.0),
                        lambda s, c=client: c.start_login(UM_ADDR, on_done=lambda: None))
        for k, when in enumerate((3.0, 4.3, 6.5, 8.0)):
            channel = "news" if k % 2 == 0 else "sport"
            sim.schedule_at(
                when + arrival.uniform(0.0, 0.4),
                lambda s, c=client, ch=channel: (
                    c.user_ticket is not None
                    and c.start_switch(CM_ADDR, ch,
                                       on_done=lambda r: switch_done.append(s.now))
                ),
            )

    # --- the probe: caught exactly between SWITCH1 and SWITCH2 ---
    probe = clients[0]
    probe_state = {}

    def probe_switch1(sim_):
        network.call(
            probe.net_addr, "CH", CM_ADDR, "switch1",
            Switch1Request(user_ticket=probe.user_ticket, channel_id="news"),
            on_reply=lambda r: probe_state.update(token=r.token),
        )

    sim.schedule_at(4.0, probe_switch1)  # round 1 answered ~4.1, pre-crash

    def probe_switch2(sim_):
        assert "token" in probe_state, "probe never completed SWITCH1"
        network.call(
            probe.net_addr, "CH", CM_ADDR, "switch2",
            Switch2Request(
                user_ticket=probe.user_ticket,
                token=probe_state["token"],
                signature=answer_challenge(probe_state["token"], probe._key),
                channel_id="news",
            ),
            on_reply=lambda r: probe_state.update(ticket=r.ticket),
        )

    sim.schedule_at(6.0, probe_switch2)  # round 2 lands on the recovered farm

    # --- and a renewal against the recovered instance (lifetime 60 s,
    # window 120 s: renewable immediately) ---
    def renew(sim_):
        ticket = probe_state.get("ticket")
        assert ticket is not None, "probe never got its ticket"

        def round2(r1):
            network.call(
                probe.net_addr, "CH", CM_ADDR, "switch2",
                Switch2Request(
                    user_ticket=probe.user_ticket,
                    token=r1.token,
                    signature=answer_challenge(r1.token, probe._key),
                    expiring_ticket=ticket,
                ),
                on_reply=lambda r: probe_state.update(renewed=r.ticket),
            )

        network.call(
            probe.net_addr, "CH", CM_ADDR, "switch1",
            Switch1Request(user_ticket=probe.user_ticket, expiring_ticket=ticket),
            on_reply=round2,
        )

    sim.schedule_at(8.5, renew)

    # --- the crash ---
    def rebuild():
        dead = deployment.crash_channel_manager("default")
        checkpoint["pre_crash_bytes"] = dead.viewing_log_bytes()
        checkpoint["pre_crash_log"] = dead.viewing_log()
        recovered = deployment.recover_channel_manager("default")
        checkpoint["recovered_bytes"] = recovered.viewing_log_bytes()
        wire_channel_manager(network, recovered, CM_ADDR)
        return deployment.stores["cm-default"]

    crash = injector.crash_and_recover(CM_ADDR, CRASH_AT, RECOVER_AT, rebuild)
    sim.run()

    # The crash actually happened mid-storm and dropped traffic.
    assert crash.downtime == RECOVER_AT - CRASH_AT
    assert network.messages_dropped_down > 0
    assert crash.records_replayed > 0

    # (1) Recovered state is byte-identical to the pre-crash log.
    assert checkpoint["recovered_bytes"] == checkpoint["pre_crash_bytes"]
    assert len(checkpoint["pre_crash_log"]) > 0

    # (2) The probe completed SWITCH2 with its pre-crash token -- on
    # the recovered instance, without a second login.
    assert probe_state["ticket"].channel_id == "news"
    assert len(probe.collector.latencies("LOGIN2")) == 1  # logged in exactly once
    # (3) ...and its renewal succeeded there too.
    assert probe_state["renewed"].channel_id == "news"

    # (4) The storm continued after recovery.
    recovered_manager = deployment.channel_managers["default"]
    assert any(t > RECOVER_AT for t in switch_done)
    assert recovered_manager.renewals_issued >= 1

    # (5) Zero single-viewing-location violations across the restart,
    # and the final log still extends the pre-crash log exactly.
    final_log = recovered_manager.viewing_log()
    assert single_location_violations(final_log) == []
    assert viewing_log_divergence(checkpoint["pre_crash_log"], final_log) is None


def test_storm_without_crash_matches_recovered_replay():
    """Control: the same storm, no crash -- then an offline replay of
    the store reproduces the manager byte-for-byte."""
    from repro.core.channel_manager import ChannelManager

    deployment, sim, network, clients = build_rig(n_clients=4)
    done = []
    for i, client in enumerate(clients):
        sim.schedule_at(0.1 * i,
                        lambda s, c=client: c.start_login(UM_ADDR, on_done=lambda: None))
        sim.schedule_at(2.0 + 0.1 * i,
                        lambda s, c=client: c.start_switch(
                            CM_ADDR, "news", on_done=lambda r: done.append(1)))
    sim.run()
    assert len(done) == 4

    live = deployment.channel_managers["default"]
    signing_key, farm_secret = deployment._credentials["cm://default"]
    replayed = ChannelManager.recover(
        deployment.stores["cm-default"],
        signing_key=signing_key,
        farm_secret=farm_secret,
        drbg=HmacDrbg(farm_secret, b"offline-replay"),
        user_manager_keys=[m.public_key for m in deployment.user_managers.values()],
        ticket_lifetime=deployment.channel_ticket_lifetime,
        partition="default",
    )
    assert replayed.viewing_log_bytes() == live.viewing_log_bytes()
    assert replayed.tickets_issued == live.tickets_issued

"""Section V operations: stateless farms and partition rebalancing."""

import pytest

from repro.core.accounts import AccountManager
from repro.core.attributes import Attribute, AttributeSet
from repro.core.protocol import Login1Request, Login2Request
from repro.core.user_manager import ChecksumParams, UserManager
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.crypto.stream import SymmetricKey
from repro.deployment import Deployment
from repro.errors import ReproError
from repro.geo.database import GeoDatabase
from repro.util.wire import Decoder

IMAGE = bytes(range(251)) * 40
VERSION = "4.0.5"


class TestStatelessUserManagerFarm:
    """'a client can finish the authentication process with different
    User Managers at each step' (Section V)."""

    @pytest.fixture
    def farm(self):
        """Two UM instances sharing keypair, farm secret, and UserDB feed."""
        geo = GeoDatabase()
        signing_key = generate_keypair(HmacDrbg(b"farm-key"), bits=512)
        secret = b"farm-shared-secret-0123456789abc"
        instances = []
        accounts = AccountManager()
        accounts.register("farm@example.org", "pw")
        for i in range(2):
            manager = UserManager(
                signing_key=signing_key,
                farm_secret=secret,
                drbg=HmacDrbg(f"um-instance-{i}".encode()),
                geo=geo,
            )
            manager.register_client_image(VERSION, IMAGE)
            for account in accounts.all_accounts():
                manager.sync_account(account)
            instances.append(manager)
        return instances

    def test_login1_on_a_login2_on_b(self, farm):
        instance_a, instance_b = farm
        client_key = generate_keypair(HmacDrbg(b"farm-client"), bits=512)
        addr = "11.1.2.3"

        response1 = instance_a.login1(
            Login1Request(email="farm@example.org", client_public_key=client_key.public_key),
            now=0.0,
        )
        from repro.core.accounts import secure_hash_password

        shp = secure_hash_password("farm@example.org", "pw")
        blob = SymmetricKey(material=shp[:16]).decrypt(
            response1.encrypted_blob, nonce=response1.blob_nonce, aad=b"login1"
        )
        dec = Decoder(blob)
        nonce = dec.get_bytes()
        params = ChecksumParams(dec.get_bytes(), dec.get_u32(), dec.get_u32())
        checksum = params.compute(IMAGE)
        payload = nonce + checksum + VERSION.encode()
        # Round 2 lands on the *other* instance.
        response2 = instance_b.login2(
            Login2Request(
                email="farm@example.org",
                client_public_key=client_key.public_key,
                token=response1.token,
                nonce=nonce,
                checksum=checksum,
                version=VERSION,
                signature=client_key.sign(payload),
            ),
            observed_addr=addr,
            now=1.0,
        )
        # And the ticket verifies under the farm's single public key.
        response2.ticket.verify(instance_a.public_key, now=1.0)


class TestPartitionRebalancing:
    @pytest.fixture
    def busy(self):
        deployment = Deployment(seed=71, partitions=("default",))
        deployment.add_free_channel("hot", regions=["CH"])
        deployment.add_free_channel("cold", regions=["CH"])
        return deployment

    def test_promote_channel_to_own_partition(self, busy):
        busy.promote_channel("hot", "hot-only", now=100.0)
        record = busy.policy_manager.get_channel("hot")
        assert record.partition == "hot-only"
        assert record.channel_manager_addr == "cm://hot-only"
        # The new farm serves it; the old one no longer does.
        assert busy.channel_managers["hot-only"].serves_channel("hot")
        assert not busy.channel_managers["default"].serves_channel("hot")
        # "cold" stays where it was.
        assert busy.channel_managers["default"].serves_channel("cold")

    def test_clients_route_to_new_partition_after_refresh(self, busy):
        viewer = busy.create_client("v@example.org", "pw", region="CH")
        viewer.login(now=0.0)
        viewer.switch_channel("hot", now=0.0)
        busy.promote_channel("hot", "hot-only", now=100.0)
        # Next login sees bumped utimes, refreshes the Channel List,
        # and the next switch lands on the new farm.
        viewer.login(now=200.0)
        response = viewer.switch_channel("hot", now=200.0)
        response.ticket.verify(
            busy.channel_managers["hot-only"].public_key, now=200.0
        )
        assert busy.channel_managers["hot-only"].tickets_issued == 1

    def test_new_joins_verified_against_new_farm_key(self, busy):
        viewer = busy.create_client("v@example.org", "pw", region="CH")
        viewer.login(now=0.0)
        busy.promote_channel("hot", "hot-only", now=10.0)
        viewer.login(now=20.0)
        peer = busy.watch(viewer, "hot", now=20.0)
        assert peer.cm_public_key == busy.channel_managers["hot-only"].public_key
        busy.overlay("hot").check_tree()

    def test_duplicate_partition_rejected(self, busy):
        busy.add_partition("extra")
        with pytest.raises(ReproError):
            busy.add_partition("extra")

    def test_stale_ticket_from_old_farm_rejected_at_new_peers(self, busy):
        """After promotion, a ticket signed by the old farm cannot join
        peers that trust the new farm's key."""
        early = busy.create_client("early@example.org", "pw", region="CH")
        early.login(now=0.0)
        early.switch_channel("hot", now=0.0)  # old-farm ticket
        old_ticket = early.channel_ticket

        busy.promote_channel("hot", "hot-only", now=10.0)
        anchor = busy.create_client("anchor@example.org", "pw", region="CH")
        anchor.login(now=20.0)
        anchor_peer = busy.watch(anchor, "hot", now=20.0)

        from repro.core.protocol import JoinReject, JoinRequest

        result = anchor_peer.handle_join(
            JoinRequest(channel_ticket=old_ticket),
            observed_addr=early.net_addr,
            now=25.0,
        )
        assert isinstance(result, JoinReject)

"""Churn soak: sustained joins/leaves with continuous invariants.

Long-running membership churn is where overlay bugs hide (orphan
islands, stale links, key-distribution gaps).  This soak drives a
Poisson churn process through a real overlay, checking structural
invariants and DRM liveness at every step boundary.
"""

import random

import pytest

from repro.deployment import Deployment
from repro.errors import CapacityError
from repro.p2p.churn import PoissonChurn


@pytest.fixture
def soak_deployment():
    deployment = Deployment(seed=202, source_capacity=8)
    deployment.add_free_channel("soak", regions=["CH"], key_epoch=60.0)
    return deployment


class TestChurnSoak:
    def test_invariants_through_sustained_churn(self, soak_deployment):
        deployment = soak_deployment
        overlay = deployment.overlay("soak")
        churn = PoissonChurn(
            random.Random(7), arrival_rate=0.2, mean_holding_time=120.0
        )
        events = churn.generate(horizon=1200.0)
        peers = {}
        joined = failed_joins = 0
        for index, event in enumerate(events):
            if event.kind == "join":
                email = f"soak{event.peer_index}@example.org"
                client = deployment.create_client(email, "pw", region="CH")
                client.login(now=event.time)
                try:
                    peer = deployment.watch(client, "soak", now=event.time, capacity=3)
                except CapacityError:
                    failed_joins += 1
                    continue
                peers[event.peer_index] = peer
                joined += 1
            else:
                peer = peers.pop(event.peer_index, None)
                if peer is not None and peer.peer_id in overlay.peers:
                    overlay.remove_peer(peer.peer_id, now=event.time)
            if index % 20 == 0:
                overlay.check_tree()
        overlay.check_tree()
        assert joined > 50
        # Joins essentially always succeed at this load.
        assert failed_joins <= joined * 0.05

    def test_stream_liveness_through_churn(self, soak_deployment):
        """After heavy churn, every connected peer still decrypts."""
        deployment = soak_deployment
        overlay = deployment.overlay("soak")
        rng = random.Random(9)
        peers = []
        # Build up, tear down randomly, build again.
        for wave in range(3):
            base = wave * 20
            for i in range(12):
                email = f"w{wave}-{i}@example.org"
                client = deployment.create_client(email, "pw", region="CH")
                client.login(now=float(base + i))
                peers.append(
                    deployment.watch(client, "soak", now=float(base + i), capacity=3)
                )
            rng.shuffle(peers)
            for peer in peers[: len(peers) // 3]:
                if peer.peer_id in overlay.peers:
                    overlay.remove_peer(peer.peer_id, now=float(base + 15))
            peers = [p for p in peers if p.peer_id in overlay.peers]
        overlay.check_tree()
        # Push the current key to everyone and broadcast.
        overlay.source.tick(100.0)
        overlay.source.broadcast_packet(101.0)
        for peer in peers:
            if peer.peer_id in overlay.peers:
                assert peer.client.packets_decrypted >= 1, peer.peer_id

    def test_expiry_sweep_during_churn(self, soak_deployment):
        """Ticket-expiry enforcement coexists with churn repair."""
        deployment = soak_deployment
        overlay = deployment.overlay("soak")
        for i in range(10):
            client = deployment.create_client(f"e{i}@example.org", "pw", region="CH")
            client.login(now=0.0)
            deployment.watch(client, "soak", now=0.0, capacity=3)
        # No renewals happen; at ticket expiry everyone is severed.
        lifetime = deployment.channel_manager_for("soak").ticket_lifetime
        severed = overlay.enforce_expiry(now=lifetime + 1.0)
        assert severed == 10
        for peer in overlay.peers.values():
            assert not peer.children

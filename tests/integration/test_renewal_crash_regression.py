"""Regression: a crash during ticket renewal must never open a second
viewing location.

The dangerous interleaving: the Channel Manager durably logs a renewal
for address A, then dies *before the reply leaves* -- so client A
never learns the renewal succeeded.  After recovery A retries with its
old expiring ticket; later the account legitimately moves to address
B.  The recovered farm must (1) accept A's duplicate renewal (same
location -- the log already shows A), and (2) refuse any further
renewal from A once the log shows B, so that at no point are two
locations concurrently entitled.
"""

import random

import pytest

from repro.core.challenge import answer_challenge
from repro.core.protocol import Switch1Request, Switch2Request
from repro.crypto.drbg import HmacDrbg
from repro.deployment import Deployment
from repro.errors import RenewalRefusedError
from repro.sim.driver import AsyncClient, wire_channel_manager, wire_user_manager
from repro.sim.engine import Simulator
from repro.sim.faults import (
    FaultInjector,
    single_location_violations,
    viewing_log_divergence,
)
from repro.sim.network import LatencyModel, RegionRtt
from repro.sim.rpc import VirtualNetwork

UM_ADDR = "rpc://um"
CM_ADDR = "rpc://cm"

# A large RTT makes the in-flight window wide: SWITCH2 sent at t
# arrives at t+0.5 and its reply lands at t+1.0, so a crash anywhere
# in between is deterministic despite wall-clock compute charges.
RTT = 1.0
CRASH_AT = 11.7      # SWITCH2 processed at ~11.5, reply due ~12.0
RECOVER_AT = 12.5


def build_rig():
    deployment = Deployment(seed=31, channel_ticket_lifetime=60.0)
    deployment.enable_durability()
    deployment.add_free_channel("news", regions=["CH"])
    sim = Simulator()
    latency = LatencyModel(
        random.Random(3),
        table={("CH", "dc"): RegionRtt(base_rtt=RTT, sigma=0.0001, slow_path_prob=0.0)},
    )
    network = VirtualNetwork(sim, latency, random.Random(4))
    wire_user_manager(network, deployment.user_managers["domain-0"], UM_ADDR)
    wire_channel_manager(network, deployment.channel_managers["default"], CM_ADDR)
    deployment.accounts.register("mover@example.org", "pw")

    def make_client(salt):
        # Distinct CH addresses: the one-viewing-location rule keys on
        # the NetAddr the ticket is bound to.
        return AsyncClient(
            network=network, email="mover@example.org", password="pw",
            version=deployment.client_version, image=deployment.client_image,
            net_addr=deployment.geo.random_address("CH", deployment.rng),
            region="CH",
            drbg=HmacDrbg(b"mover" + salt),
        )

    return deployment, sim, network, make_client


def renewal_rounds(network, client, expiring, on_renewed, on_refused=None):
    """Drive SWITCH1 + SWITCH2 as a renewal of ``expiring``."""

    def round2(r1):
        network.call(
            client.net_addr, "CH", CM_ADDR, "switch2",
            Switch2Request(
                user_ticket=client.user_ticket,
                token=r1.token,
                signature=answer_challenge(r1.token, client._key),
                expiring_ticket=expiring,
            ),
            on_reply=lambda r: on_renewed(r.ticket),
            on_error=on_refused,
        )

    network.call(
        client.net_addr, "CH", CM_ADDR, "switch1",
        Switch1Request(user_ticket=client.user_ticket, expiring_ticket=expiring),
        on_reply=round2,
        on_error=on_refused,
    )


def test_crash_during_renewal_never_grants_two_locations():
    deployment, sim, network, make_client = build_rig()
    injector = FaultInjector(network)
    viewer_a = make_client(b"-a")
    viewer_b = make_client(b"-b")
    assert viewer_a.net_addr != viewer_b.net_addr
    state = {}

    # --- address A: login, switch, then a renewal the crash eats ---
    sim.schedule_at(0.0, lambda s: viewer_a.start_login(UM_ADDR, on_done=lambda: None))
    sim.schedule_at(
        5.0, lambda s: viewer_a.start_switch(
            CM_ADDR, "news",
            on_done=lambda r: state.update(ticket_a=viewer_a.channel_ticket)),
    )

    def doomed_renewal(sim_):
        # The reply is due at ~t+2 RTT; the crash lands first, so this
        # callback firing at all would be the bug.
        renewal_rounds(network, viewer_a, state["ticket_a"],
                       on_renewed=lambda t: state.update(doomed_reply=t))

    sim.schedule_at(10.0, doomed_renewal)  # SWITCH2 in flight at the crash

    # --- the crash, with the renewal durably logged but unacknowledged ---
    checkpoint = {}

    def rebuild():
        dead = deployment.crash_channel_manager("default")
        checkpoint["pre_crash_log"] = dead.viewing_log()
        recovered = deployment.recover_channel_manager("default")
        wire_channel_manager(network, recovered, CM_ADDR)
        return deployment.stores["cm-default"]

    crash = injector.crash_and_recover(CM_ADDR, CRASH_AT, RECOVER_AT, rebuild)

    # --- A retries the same renewal against the recovered farm ---
    sim.schedule_at(
        15.0, lambda s: renewal_rounds(
            network, viewer_a, state["ticket_a"],
            on_renewed=lambda t: state.update(retry_ticket=t)),
    )

    # --- the account moves: same user logs in from B and switches ---
    sim.schedule_at(20.0, lambda s: viewer_b.start_login(UM_ADDR, on_done=lambda: None))
    sim.schedule_at(
        25.0, lambda s: viewer_b.start_switch(
            CM_ADDR, "news",
            on_done=lambda r: state.update(ticket_b=viewer_b.channel_ticket)),
    )

    # --- A renews again: the log now shows B, so this must be refused ---
    refusals = []

    def stale_renewal(sim_):
        assert "ticket_b" in state, "account never moved to B"
        renewal_rounds(
            network, viewer_a, state["retry_ticket"],
            on_renewed=lambda t: state.update(stale_reply=t),
            on_refused=refusals.append,
        )

    sim.schedule_at(32.0, stale_renewal)
    sim.run()

    # The doomed renewal was processed (durably) but never acknowledged.
    assert crash.records_replayed > 0
    assert "doomed_reply" not in state
    pre_crash_renewals = [e for e in checkpoint["pre_crash_log"] if e.renewal]
    assert len(pre_crash_renewals) == 1
    assert pre_crash_renewals[0].net_addr == viewer_a.net_addr

    # The retry from the same address succeeded on the recovered farm.
    assert state["retry_ticket"].channel_id == "news"

    # The move to B succeeded, and A's renewal afterwards was refused.
    assert state["ticket_b"].channel_id == "news"
    assert "stale_reply" not in state
    assert len(refusals) == 1
    assert isinstance(refusals[0], RenewalRefusedError)

    # At no point did the log entitle two concurrent locations, and
    # recovery preserved the pre-crash prefix exactly.
    final_log = deployment.channel_managers["default"].viewing_log()
    assert single_location_violations(final_log) == []
    assert viewing_log_divergence(checkpoint["pre_crash_log"], final_log) is None
    # ...ending with the fresh (non-renewal) entry for address B.
    assert final_log[-1].net_addr == viewer_b.net_addr
    assert not final_log[-1].renewal

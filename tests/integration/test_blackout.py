"""Integration: blackouts and dynamic rights changes end-to-end.

Covers the paper's key operational scenario (Sections II, IV-A,
IV-C): a program must be blacked out on the Internet distribution;
the policy must be deployed at least one ticket lifetime ahead; and
viewers must be unable to hold a valid ticket into the window.
"""

import pytest

from repro.deployment import Deployment
from repro.errors import PolicyRejectError


@pytest.fixture
def deployment():
    dep = Deployment(
        seed=55, user_ticket_lifetime=600.0, channel_ticket_lifetime=300.0
    )
    dep.add_free_channel("otb", regions=["CH"])  # over-the-air rebroadcast
    return dep


BLACKOUT_START = 10_000.0
BLACKOUT_END = 13_600.0


class TestBlackoutLifecycle:
    def test_lead_time_rule_makes_no_ticket_survive_into_blackout(self, deployment):
        """Deploy the policy one User Ticket lifetime ahead: any ticket
        issued before deployment has expired by the blackout start."""
        deploy_at = BLACKOUT_START - deployment.user_managers["domain-0"].ticket_lifetime
        client = deployment.create_client("fan@example.org", "pw", region="CH")
        client.login(now=deploy_at - 1.0)
        response = client.switch_channel("otb", now=deploy_at - 1.0)
        deployment.policy_manager.schedule_blackout(
            "otb", BLACKOUT_START, BLACKOUT_END, now=deploy_at
        )
        # The channel ticket issued just before deployment cannot be
        # valid into the blackout window.
        assert response.ticket.expire_time <= BLACKOUT_START

    def test_switch_rejected_during_blackout(self, deployment):
        deployment.policy_manager.schedule_blackout(
            "otb", BLACKOUT_START, BLACKOUT_END, now=0.0
        )
        client = deployment.create_client("late@example.org", "pw", region="CH")
        client.login(now=BLACKOUT_START + 10.0)
        with pytest.raises(PolicyRejectError):
            client.switch_channel("otb", now=BLACKOUT_START + 10.0)

    def test_renewal_before_blackout_capped_not_refused(self, deployment):
        """A renewal shortly before the window succeeds but the renewed
        ticket's expiry is pinned to the blackout start -- the viewer
        is guaranteed to be kicked exactly at the boundary."""
        deployment.policy_manager.schedule_blackout(
            "otb", BLACKOUT_START, BLACKOUT_END, now=0.0
        )
        client = deployment.create_client("viewer@example.org", "pw", region="CH")
        watch_at = BLACKOUT_START - 290.0
        client.login(now=watch_at)
        client.switch_channel("otb", now=watch_at)
        assert client.channel_ticket.expire_time == BLACKOUT_START
        renew_at = BLACKOUT_START - 60.0  # within the renewal window
        client.login(now=renew_at)
        response = client.renew_channel_ticket(now=renew_at)
        assert response.ticket.renewal
        assert response.ticket.expire_time == BLACKOUT_START

    def test_ticket_capped_at_blackout_start(self, deployment):
        """Tickets issued after the policy deployment never extend into
        the REJECT window: the Channel Manager caps expiry at the
        first future boundary that would reject the user."""
        deployment.policy_manager.schedule_blackout(
            "otb", BLACKOUT_START, BLACKOUT_END, now=0.0
        )
        client = deployment.create_client("v@example.org", "pw", region="CH")
        join_at = BLACKOUT_START - 200.0
        client.login(now=join_at)
        deployment.watch(client, "otb", now=join_at)
        assert client.channel_ticket.expire_time == BLACKOUT_START

    def test_peers_sever_unrenewed_viewers_at_expiry(self, deployment):
        deployment.policy_manager.schedule_blackout(
            "otb", BLACKOUT_START, BLACKOUT_END, now=0.0
        )
        client = deployment.create_client("v@example.org", "pw", region="CH")
        join_at = BLACKOUT_START - 200.0
        client.login(now=join_at)
        deployment.watch(client, "otb", now=join_at)
        expiry = client.channel_ticket.expire_time  # == blackout start
        # Inside the blackout (still within the renewal window) the
        # viewer cannot renew; at expiry the overlay severs the peering.
        client.login(now=expiry + 5.0)
        with pytest.raises(PolicyRejectError):
            client.renew_channel_ticket(now=expiry + 5.0)
        severed = deployment.overlay("otb").enforce_expiry(now=expiry + 10.0)
        assert severed >= 1

    def test_service_resumes_after_blackout(self, deployment):
        deployment.policy_manager.schedule_blackout(
            "otb", BLACKOUT_START, BLACKOUT_END, now=0.0
        )
        client = deployment.create_client("back@example.org", "pw", region="CH")
        client.login(now=BLACKOUT_END + 10.0)
        response = client.switch_channel("otb", now=BLACKOUT_END + 10.0)
        assert response.ticket.channel_id == "otb"


class TestDynamicLineupChanges:
    def test_new_channel_visible_after_relogin(self, deployment):
        client = deployment.create_client("c@example.org", "pw", region="CH")
        client.login(now=0.0)
        assert "newch" not in client.channel_list
        deployment.add_free_channel("newch", regions=["CH"], now=100.0)
        client.login(now=200.0)
        assert "newch" in client.channel_list
        assert "newch" in client.viewable_channels(now=200.0)

    def test_deleted_channel_disappears(self, deployment):
        deployment.add_free_channel("doomed", regions=["CH"], now=0.0)
        client = deployment.create_client("c@example.org", "pw", region="CH")
        client.login(now=1.0)
        assert "doomed" in client.channel_list
        deployment.policy_manager.delete_channel("doomed", now=100.0)
        client.login(now=200.0)
        # Partial refresh returns surviving channels touching the
        # stale attribute keys; the client's guide no longer lists the
        # deleted channel as viewable.
        viewable = client.viewable_channels(now=200.0)
        assert "doomed" not in viewable

    def test_subscription_purchase_unlocks_channel_on_next_login(self, deployment):
        deployment.add_subscription_channel("prem", regions=["CH"], package_id="101", now=0.0)
        client = deployment.create_client("buyer@example.org", "pw", region="CH")
        client.login(now=1.0)
        assert "prem" not in client.viewable_channels(now=1.0)
        deployment.accounts.top_up("buyer@example.org", 10.0)
        deployment.accounts.subscribe("buyer@example.org", "101", price=5.0)
        client.login(now=2.0)
        assert "prem" in client.viewable_channels(now=2.0)
        response = client.switch_channel("prem", now=3.0)
        assert response.ticket.channel_id == "prem"

    def test_expired_subscription_blocks_switch(self, deployment):
        deployment.add_subscription_channel("prem", regions=["CH"], package_id="101", now=0.0)
        deployment.accounts.register("exp@example.org", "pw")
        deployment.accounts.subscribe("exp@example.org", "101", etime=100.0)
        client = deployment.create_client("exp@example.org", "pw", region="CH", register=False)
        client.login(now=150.0)
        with pytest.raises(PolicyRejectError):
            client.switch_channel("prem", now=150.0)

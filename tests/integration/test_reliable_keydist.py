"""Integration: reliable delivery carrying *real* encrypted key updates.

Wires the ACK/retransmit layer under the actual DRM payloads: content
keys re-encrypted per link with genuine session keys, delivered over
lossy virtual links into a real client's key ring, then used to
decrypt a real packet.  Crypto + reliability + dedup, end to end.
"""

import random

import pytest

from repro.core.keystream import ContentKey
from repro.core.packets import encrypt_packet, reencrypt_key_for_link
from repro.core.protocol import KeyUpdate
from repro.deployment import Deployment
from repro.p2p.reliable import reliable_link_pair
from repro.sim.engine import Simulator


@pytest.fixture
def watching_client():
    deployment = Deployment(seed=515)
    deployment.add_free_channel("lossy", regions=["CH"], key_epoch=60.0)
    client = deployment.create_client("l@example.org", "pw", region="CH")
    client.login(now=0.0)
    deployment.watch(client, "lossy", now=0.0)
    return deployment, client


class TestReliableRealKeys:
    def test_keys_survive_loss_and_decrypt_content(self, watching_client):
        deployment, client = watching_client
        server = deployment.server("lossy")
        parent_id = next(iter(client.parents))
        session_key = client.parents[parent_id].session_key

        sim = Simulator()
        delivered = []

        def on_key(update: KeyUpdate) -> None:
            fresh = client.receive_key_update(update, parent_id=parent_id)
            delivered.append((update.serial, fresh))

        sender, receiver = reliable_link_pair(
            sim, random.Random(1), on_key,
            loss_probability=0.35, retransmit_interval=0.4,
        )

        # The parent pushes the next three epochs' keys reliably.
        for epoch in range(1, 4):
            content_key = server.schedule.current_key(epoch * 60.0)
            sender.send(KeyUpdate(
                channel_id="lossy",
                serial=content_key.serial,
                encrypted_content_key=reencrypt_key_for_link(
                    content_key, session_key, "lossy"
                ),
                activate_at=content_key.activate_at,
            ))
        sim.run()

        # All three keys arrive (ordering across serials is not
        # guaranteed under loss -- each has its own retransmit clock).
        assert {serial for serial, _ in delivered} == {1, 2, 3}
        assert all(fresh for _, fresh in delivered)
        # The client now decrypts epoch-3 content.
        packet = server.emit_packet(185.0)
        assert client.receive_packet(packet)

    def test_duplicate_deliveries_keep_ring_clean(self, watching_client):
        deployment, client = watching_client
        server = deployment.server("lossy")
        parent_id = next(iter(client.parents))
        session_key = client.parents[parent_id].session_key

        sim = Simulator()

        def on_key(update: KeyUpdate) -> None:
            client.receive_key_update(update, parent_id=parent_id)

        # Heavy ACK loss forces many duplicate deliveries.
        sender, receiver = reliable_link_pair(
            sim, random.Random(2), on_key,
            loss_probability=0.6, retransmit_interval=0.2,
        )
        content_key = server.schedule.current_key(60.0)
        sender.send(KeyUpdate(
            channel_id="lossy",
            serial=content_key.serial,
            encrypted_content_key=reencrypt_key_for_link(
                content_key, session_key, "lossy"
            ),
            activate_at=content_key.activate_at,
        ))
        sim.run()
        # Receiver-side dedup absorbed the duplicates before the
        # client; the ring holds serial 1 exactly once.
        assert client.key_ring.serials().count(1) == 1

"""Tests for the deployment builder itself."""

import pytest

from repro.core.policy_manager import ChannelRecord
from repro.deployment import Deployment
from repro.errors import PolicyRejectError, ReproError


class TestProvisioning:
    def test_unknown_partition_rejected(self):
        deployment = Deployment(seed=1)
        with pytest.raises(ReproError):
            deployment.add_free_channel("x", regions=["CH"], partition="nope")

    def test_channel_routing_recorded(self, deployment):
        record = deployment.policy_manager.get_channel("free-ch")
        assert record.channel_manager_addr == "cm://default"

    def test_overlay_and_server_per_channel(self, deployment):
        assert deployment.overlay("free-ch").channel_id == "free-ch"
        assert deployment.server("free-ch").channel_id == "free-ch"
        with pytest.raises(ReproError):
            deployment.overlay("ghost")
        with pytest.raises(ReproError):
            deployment.server("ghost")

    def test_make_peer_requires_matching_ticket(self, deployment, viewer):
        with pytest.raises(ReproError):
            deployment.make_peer(viewer, "free-ch")  # no ticket yet
        viewer.switch_channel("free-ch", now=1.0)
        peer = deployment.make_peer(viewer, "free-ch")
        assert peer.channel_id == "free-ch"

    def test_deterministic_under_seed(self):
        def build():
            deployment = Deployment(seed=123)
            deployment.add_free_channel("d", regions=["CH"])
            client = deployment.create_client("d@example.org", "pw", region="CH")
            return client.login(now=0.0)

        a, b = build(), build()
        assert a.to_bytes() == b.to_bytes()


class TestBundles:
    def test_bundle_gates_multiple_channels_with_one_package(self):
        deployment = Deployment(seed=5)
        deployment.add_channel_bundle(
            "sports-pack",
            {"sports-1": ["CH"], "sports-2": ["CH"]},
        )
        deployment.accounts.register("fan@example.org", "pw")
        deployment.accounts.subscribe("fan@example.org", "sports-pack")
        fan = deployment.create_client("fan@example.org", "pw", region="CH", register=False)
        fan.login(now=0.0)
        assert set(fan.viewable_channels(now=0.0)) == {"sports-1", "sports-2"}
        # Without the package: nothing.
        other = deployment.create_client("no@example.org", "pw", region="CH")
        other.login(now=0.0)
        assert other.viewable_channels(now=0.0) == []


class TestRoaming:
    def test_roamer_sees_the_new_regions_lineup(self, deployment):
        """Section III: 'When a roaming user enters a geographic
        region, it sees only the channels offered by its service
        provider in that geographic region.'"""
        roamer = deployment.create_client("roam@example.org", "pw", region="CH")
        roamer.login(now=0.0)
        assert roamer.viewable_channels(now=0.0) == ["free-ch"]
        # The user travels to the UK: new address, re-login.
        roamer.move_to(deployment.geo.random_address("UK", deployment.rng))
        roamer.login(now=100.0)
        assert roamer.viewable_channels(now=100.0) == ["free-uk"]
        response = roamer.switch_channel("free-uk", now=100.0)
        assert response.ticket.channel_id == "free-uk"
        with pytest.raises(PolicyRejectError):
            roamer.switch_channel("free-ch", now=100.0)


class TestChannelRecordWire:
    def test_roundtrip(self, deployment):
        record = deployment.policy_manager.get_channel("premium")
        restored = ChannelRecord.from_bytes(record.to_bytes())
        assert restored.channel_id == record.channel_id
        assert restored.partition == record.partition
        assert restored.channel_manager_addr == record.channel_manager_addr
        assert list(restored.attributes) == list(record.attributes)
        assert restored.policies == record.policies

    def test_missing_cm_addr_roundtrips_as_none(self):
        record = ChannelRecord(channel_id="bare")
        restored = ChannelRecord.from_bytes(record.to_bytes())
        assert restored.channel_manager_addr is None

    def test_policy_evaluation_identical_after_roundtrip(self, deployment, viewer):
        from repro.core.policy import evaluate_policies

        record = deployment.policy_manager.get_channel("free-ch")
        restored = ChannelRecord.from_bytes(record.to_bytes())
        original = evaluate_policies(
            record.policies, record.attributes, viewer.user_ticket.attributes, 1.0
        )
        roundtripped = evaluate_policies(
            restored.policies, restored.attributes, viewer.user_ticket.attributes, 1.0
        )
        assert original.decision == roundtripped.decision

"""Capstone: one full broadcast evening, every subsystem engaged.

A provider runs a free channel with an evening schedule: regular
programming, then a pay-per-view match, then a rights-less segment
that must be blacked out.  An audience arrives as a flash crowd,
auto-renews through the evening, part of it buys the match, analytics
closes the books.  EPG + policies + tickets + overlay + auto-renewal +
analytics, in one continuous scenario.
"""

import random

import pytest

from repro.core.autorenew import TicketAutoRenewer
from repro.core.epg import Program
from repro.deployment import Deployment
from repro.errors import PolicyRejectError, ReproError
from repro.sim.engine import Simulator

EVENING_START = 18 * 3600.0
MATCH_START = 20 * 3600.0
MATCH_END = 21.5 * 3600.0
BLACKOUT_START = 22 * 3600.0
BLACKOUT_END = 23 * 3600.0


@pytest.fixture
def evening():
    deployment = Deployment(
        seed=777, user_ticket_lifetime=1800.0, channel_ticket_lifetime=900.0,
        source_capacity=16,
    )
    deployment.add_free_channel("one", regions=["CH"])
    epg = deployment.epg
    epg.add_program(Program(
        program_id="news", channel_id="one",
        start=EVENING_START, end=MATCH_START, title="Evening News",
    ))
    epg.add_program(Program(
        program_id="match", channel_id="one",
        start=MATCH_START, end=MATCH_END, title="The Match", ppv_price=9.90,
    ))
    epg.add_program(Program(
        program_id="import", channel_id="one",
        start=BLACKOUT_START, end=BLACKOUT_END,
        title="No Internet Rights", internet_rights=False,
    ))
    epg.apply_all_rights(now=0.0)
    return deployment


def test_broadcast_evening(evening):
    deployment = evening
    rng = random.Random(1)
    sim = Simulator()
    overlay = deployment.overlay("one")

    # ------------------------------------------------------------------
    # 18:00 -- the audience arrives (half will buy the match).
    # ------------------------------------------------------------------
    viewers = []
    for i in range(10):
        email = f"fan{i}@example.org"
        deployment.accounts.register(email, "pw")
        if i % 2 == 0:
            deployment.accounts.top_up(email, 20.0)
            deployment.epg.purchase(deployment.accounts, email, "match")
        client = deployment.create_client(email, "pw", region="CH", register=False)
        arrive = EVENING_START + rng.uniform(0.0, 120.0)
        client.login(now=arrive)
        deployment.watch(client, "one", now=arrive, capacity=3)
        viewers.append(client)
    overlay.check_tree()

    # Non-buyers' tickets are already pinned to the match fence.
    for i, client in enumerate(viewers):
        if i % 2 == 1:
            assert client.channel_ticket.expire_time <= MATCH_START

    # Auto-renewal keeps everyone glued until their rights run out.
    failures = {}
    renewers = []
    for i, client in enumerate(viewers):
        renewer = TicketAutoRenewer(
            sim, client,
            on_failure=lambda exc, idx=i: failures.setdefault(idx, exc),
        )
        # Renewers start at each client's arrival; the sim clock starts
        # at 0, so schedule their start at the login time.
        sim.schedule_at(client.user_ticket.start_time + 1.0,
                        lambda s, r=renewer: r.start())
        renewers.append(renewer)

    # ------------------------------------------------------------------
    # Run the evening up to just before the blackout.
    # ------------------------------------------------------------------
    sim.run(until=BLACKOUT_START - 300.0)

    # Buyers sailed through the match; non-buyers were refused at it.
    for i, client in enumerate(viewers):
        if i % 2 == 0:
            assert i not in failures, f"buyer {i} was cut off: {failures.get(i)}"
            assert client.channel_ticket.expire_time > MATCH_END - 1.0
        else:
            assert i in failures
            assert isinstance(failures[i], PolicyRejectError)

    # ------------------------------------------------------------------
    # The blackout: even buyers' renewals pin at its start and then fail.
    # ------------------------------------------------------------------
    sim.run(until=BLACKOUT_START + 600.0)
    for i, client in enumerate(viewers):
        if i % 2 == 0:
            assert client.channel_ticket.expire_time <= BLACKOUT_START

    # Peers sever the unrenewed at the boundary.
    severed = overlay.enforce_expiry(now=BLACKOUT_START + 120.0)
    assert severed >= 1

    # ------------------------------------------------------------------
    # Close the books.
    # ------------------------------------------------------------------
    analytics = deployment.analytics_for("one")
    charges = analytics.per_view_charges("one", MATCH_START, MATCH_END, price=9.90)
    buyer_ids = {
        viewers[i].user_ticket.user_id for i in range(10) if i % 2 == 0
    }
    assert set(charges) == buyer_ids  # exactly the buyers billed once
    report = analytics.channel_report("one", EVENING_START, BLACKOUT_START)
    assert report.unique_viewers == 10
    assert report.peak_concurrent >= 5
    # Royalty viewer-hours: ten viewers for at least the news block.
    assert report.viewer_hours > 5.0

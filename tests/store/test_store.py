"""Tests for DurableStore: append, snapshot, recovery, verify, compact."""

import pytest

from repro.store import DurableStore, FileBackend, MemoryBackend
from repro.store.snapshot import SnapshotError
from repro.store.store import SNAPSHOT_NAME, WAL_NAME


class TestAppendAndLoad:
    def test_fresh_store_is_empty(self):
        store = DurableStore(MemoryBackend())
        state = store.load()
        assert state.snapshot is None
        assert state.records == []
        assert state.last_seq == 0

    def test_appends_replay_in_order(self):
        backend = MemoryBackend()
        store = DurableStore(backend)
        assert store.append(1, b"a") == 1
        assert store.append(2, b"b") == 2
        assert store.append(1, b"c") == 3
        # A new store object over the same bytes = a restarted process.
        state = DurableStore(backend).load()
        assert [(r.seq, r.rec_type, r.body) for r in state.records] == [
            (1, 1, b"a"), (2, 2, b"b"), (3, 1, b"c"),
        ]
        assert state.last_seq == 3

    def test_sequence_continues_after_restart(self):
        backend = MemoryBackend()
        DurableStore(backend).append(1, b"a")
        second = DurableStore(backend)
        assert second.append(1, b"b") == 2

    def test_load_truncates_torn_tail_persistently(self):
        backend = MemoryBackend()
        store = DurableStore(backend)
        store.append(1, b"aaaa")
        store.append(1, b"bbbb")
        backend.tear_tail(WAL_NAME, 3)

        recovering = DurableStore(backend)
        state = recovering.load()
        assert [r.seq for r in state.records] == [1]
        assert state.torn_bytes > 0
        assert recovering.stats.torn_tails_truncated == 1
        # The truncation is durable: a second recovery sees a clean log.
        again = DurableStore(backend).load()
        assert again.torn_bytes == 0
        assert [r.seq for r in again.records] == [1]

    def test_append_after_torn_recovery_reuses_freed_seq(self):
        backend = MemoryBackend()
        store = DurableStore(backend)
        store.append(1, b"aaaa")
        store.append(1, b"bbbb")
        backend.tear_tail(WAL_NAME, 3)
        recovering = DurableStore(backend)
        recovering.load()
        assert recovering.append(1, b"replacement") == 2


class TestSnapshot:
    def test_snapshot_covers_and_truncates(self):
        backend = MemoryBackend()
        store = DurableStore(backend)
        store.append(1, b"a")
        store.append(1, b"b")
        assert store.write_snapshot(b"STATE", taken_at=42.0) == 2
        assert backend.size(WAL_NAME) == 0
        store.append(1, b"c")

        state = DurableStore(backend).load()
        assert state.snapshot.state == b"STATE"
        assert state.snapshot.last_seq == 2
        assert state.snapshot.taken_at == 42.0
        assert [r.seq for r in state.records] == [3]
        assert state.last_seq == 3

    def test_crash_between_snapshot_and_truncate(self):
        # Simulate: snapshot installed, WAL truncation never happened.
        backend = MemoryBackend()
        store = DurableStore(backend)
        store.append(1, b"a")
        store.append(1, b"b")
        wal_before = backend.read(WAL_NAME)
        store.write_snapshot(b"STATE")
        backend.write(WAL_NAME, wal_before)  # undo the truncation

        state = DurableStore(backend).load()
        # Covered records are filtered out of replay.
        assert state.records == []
        assert state.snapshot.last_seq == 2

    def test_corrupt_snapshot_raises(self):
        backend = MemoryBackend()
        store = DurableStore(backend)
        store.append(1, b"a")
        store.write_snapshot(b"STATE")
        blob = bytearray(backend.read(SNAPSHOT_NAME))
        blob[-1] ^= 0xFF
        backend.write(SNAPSHOT_NAME, bytes(blob))
        with pytest.raises(SnapshotError):
            DurableStore(backend)


class TestVerify:
    def test_healthy_report(self):
        store = DurableStore(MemoryBackend())
        store.append(1, b"a")
        store.write_snapshot(b"S", taken_at=10.0)
        store.append(1, b"b")
        report = store.verify(now=25.0)
        assert report.healthy
        assert report.wal_records == 1
        assert report.covered_records == 0
        assert report.snapshot_seq == 1
        assert report.snapshot_age == 15.0

    def test_torn_tail_reported(self):
        backend = MemoryBackend()
        store = DurableStore(backend)
        store.append(1, b"aaaa")
        backend.append(WAL_NAME, b"\x00" * 5)
        report = store.verify()
        assert not report.healthy
        assert report.torn_bytes == 5
        assert any("torn" in p for p in report.problems)

    def test_covered_records_counted(self):
        backend = MemoryBackend()
        store = DurableStore(backend)
        store.append(1, b"a")
        wal = backend.read(WAL_NAME)
        store.write_snapshot(b"S")
        backend.write(WAL_NAME, wal)
        report = DurableStore(backend).verify()
        assert report.healthy  # covered prefix is legal crash debris
        assert report.covered_records == 1


class TestCompact:
    def test_compact_drops_covered_and_torn(self):
        backend = MemoryBackend()
        store = DurableStore(backend)
        store.append(1, b"a")
        wal = backend.read(WAL_NAME)
        store.write_snapshot(b"S")
        backend.write(WAL_NAME, wal)      # covered record resurfaces
        store.append(1, b"live")          # seq 2, uncovered
        backend.append(WAL_NAME, b"junk")  # torn tail

        report = store.compact()
        assert report.healthy
        assert report.wal_records == 1
        assert report.covered_records == 0
        state = DurableStore(backend).load()
        assert [(r.seq, r.body) for r in state.records] == [(2, b"live")]

    def test_compact_then_append_continues_sequence(self):
        backend = MemoryBackend()
        store = DurableStore(backend)
        store.append(1, b"a")
        store.write_snapshot(b"S")
        store.compact()
        assert store.append(1, b"b") == 2


class TestFileBacked:
    def test_full_cycle_on_disk(self, tmp_path):
        root = str(tmp_path / "cm")
        store = DurableStore(FileBackend(root))
        store.append(1, b"a")
        store.write_snapshot(b"STATE")
        store.append(2, b"b")
        store._backend.close()

        reopened = DurableStore(FileBackend(root))
        state = reopened.load()
        assert state.snapshot.state == b"STATE"
        assert [(r.seq, r.rec_type) for r in state.records] == [(2, 2)]
        assert reopened.append(3, b"c") == 3


class TestStats:
    def test_append_and_recovery_counters(self):
        backend = MemoryBackend()
        store = DurableStore(backend)
        store.append(1, b"a")
        store.append(1, b"b")
        assert store.stats.records_appended == 2
        assert store.stats.bytes_appended == backend.size(WAL_NAME)

        recovering = DurableStore(backend)
        recovering.load()
        assert recovering.stats.records_replayed == 2
        assert recovering.stats.recovery_seconds > 0
        assert recovering.stats.replay_records_per_sec > 0

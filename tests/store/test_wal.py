"""Tests for WAL framing, scanning, and the torn-tail rule."""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store.wal import (
    MAX_RECORD_LEN,
    WalError,
    WalRecord,
    check_sequence,
    encode_record,
    scan,
)
from repro.util.wire import Encoder


def frames(*records):
    return b"".join(encode_record(seq, t, body) for seq, t, body in records)


class TestRoundTrip:
    def test_single_record(self):
        result = scan(encode_record(1, 7, b"body"))
        assert result.records == [WalRecord(seq=1, rec_type=7, body=b"body")]
        assert not result.torn
        assert result.clean_length == len(encode_record(1, 7, b"body"))

    def test_many_records_in_order(self):
        blob = frames((1, 1, b"a"), (2, 2, b""), (3, 1, b"ccc"))
        result = scan(blob)
        assert [r.seq for r in result.records] == [1, 2, 3]
        assert [r.rec_type for r in result.records] == [1, 2, 1]
        assert result.records[2].body == b"ccc"

    def test_empty_stream(self):
        result = scan(b"")
        assert result.records == []
        assert result.clean_length == 0
        assert not result.torn

    def test_oversized_record_rejected_at_encode(self):
        with pytest.raises(WalError):
            encode_record(1, 0, b"x" * (MAX_RECORD_LEN + 1))


class TestTornTail:
    def test_torn_mid_header(self):
        blob = frames((1, 1, b"a")) + b"\x00\x00"
        result = scan(blob)
        assert len(result.records) == 1
        assert result.torn_bytes == 2

    def test_torn_mid_payload(self):
        whole = frames((1, 1, b"aaaa"), (2, 1, b"bbbb"))
        torn = whole[:-3]
        result = scan(torn)
        assert [r.seq for r in result.records] == [1]
        assert result.torn
        assert result.clean_length == len(encode_record(1, 1, b"aaaa"))

    def test_crc_corruption_ends_log(self):
        blob = bytearray(frames((1, 1, b"aaaa"), (2, 1, b"bbbb"), (3, 1, b"cc")))
        first = len(encode_record(1, 1, b"aaaa"))
        blob[first + 10] ^= 0xFF  # flip a bit inside record 2
        result = scan(bytes(blob))
        # Nothing after the corrupt record is trusted, even valid frames.
        assert [r.seq for r in result.records] == [1]
        assert result.torn

    def test_insane_length_field_treated_as_corruption(self):
        header = Encoder().put_u32(MAX_RECORD_LEN + 1).put_u32(0).to_bytes()
        result = scan(frames((1, 1, b"ok")) + header + b"junk")
        assert [r.seq for r in result.records] == [1]
        assert result.torn

    def test_valid_crc_bad_shape_distrusted(self):
        # A frame whose payload passes CRC but is not seq|type|body.
        payload = b"\x01\x02\x03"
        header = Encoder().put_u32(len(payload)).put_u32(zlib.crc32(payload)).to_bytes()
        result = scan(header + payload)
        assert result.records == []
        assert result.torn


# Property: cutting a valid log at ANY byte offset recovers a prefix
# of the original records, never garbage.
@given(data=st.data())
@settings(max_examples=100)
def test_property_arbitrary_cut_recovers_prefix(data):
    bodies = data.draw(st.lists(st.binary(max_size=32), min_size=1, max_size=8))
    blob = frames(*[(i + 1, i % 3, b) for i, b in enumerate(bodies)])
    cut = data.draw(st.integers(min_value=0, max_value=len(blob)))
    result = scan(blob[:cut])
    assert [r.seq for r in result.records] == list(range(1, len(result.records) + 1))
    assert [r.body for r in result.records] == bodies[: len(result.records)]
    assert result.clean_length <= cut


class TestCheckSequence:
    def test_healthy(self):
        records = [WalRecord(s, 1, b"") for s in (1, 2, 3)]
        assert check_sequence(records) == []

    def test_gap_is_legal(self):
        # Gaps arise from compaction; only ordering is guaranteed.
        records = [WalRecord(s, 1, b"") for s in (5, 9, 40)]
        assert check_sequence(records, after_seq=4) == []

    def test_regression_flagged(self):
        records = [WalRecord(s, 1, b"") for s in (1, 3, 2)]
        problems = check_sequence(records)
        assert len(problems) == 1
        assert "regressed" in problems[0]

    def test_covered_prefix_is_legal(self):
        records = [WalRecord(s, 1, b"") for s in (3, 4, 5)]
        assert check_sequence(records, after_seq=4) == []

    def test_covered_record_after_newer_flagged(self):
        records = [WalRecord(5, 1, b""), WalRecord(3, 1, b"")]
        problems = check_sequence(records, after_seq=4)
        assert any("covered" in p for p in problems)

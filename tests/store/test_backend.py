"""Tests for the byte-level storage backends."""

import os

import pytest

from repro.store import FileBackend, MemoryBackend, StoreError


@pytest.fixture(params=["memory", "file"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield MemoryBackend()
    else:
        fb = FileBackend(str(tmp_path / "store"))
        yield fb
        fb.close()


class TestContract:
    def test_read_missing_is_empty(self, backend):
        assert backend.read("wal.bin") == b""
        assert backend.size("wal.bin") == 0
        assert not backend.exists("wal.bin")

    def test_write_then_read(self, backend):
        backend.write("a.bin", b"hello")
        assert backend.read("a.bin") == b"hello"
        assert backend.size("a.bin") == 5
        assert backend.exists("a.bin")

    def test_write_replaces(self, backend):
        backend.write("a.bin", b"one")
        backend.write("a.bin", b"two!")
        assert backend.read("a.bin") == b"two!"

    def test_append_creates_and_extends(self, backend):
        backend.append("wal.bin", b"abc")
        backend.append("wal.bin", b"def")
        assert backend.read("wal.bin") == b"abcdef"

    def test_append_after_write(self, backend):
        backend.write("wal.bin", b"xy")
        backend.append("wal.bin", b"z")
        assert backend.read("wal.bin") == b"xyz"

    def test_truncate(self, backend):
        backend.write("wal.bin", b"abcdef")
        backend.truncate("wal.bin", 4)
        assert backend.read("wal.bin") == b"abcd"
        backend.truncate("wal.bin", 100)  # no-op when already shorter
        assert backend.read("wal.bin") == b"abcd"

    def test_truncate_missing_is_noop(self, backend):
        backend.truncate("ghost.bin", 3)
        assert not backend.exists("ghost.bin")

    def test_delete(self, backend):
        backend.write("a.bin", b"x")
        backend.delete("a.bin")
        assert not backend.exists("a.bin")
        backend.delete("a.bin")  # idempotent

    def test_names_sorted(self, backend):
        backend.write("b.bin", b"2")
        backend.write("a.bin", b"1")
        assert backend.names() == ["a.bin", "b.bin"]

    def test_append_then_truncate_then_append(self, backend):
        # The WAL recovery path: truncate a torn tail, keep appending.
        backend.append("wal.bin", b"aaaa")
        backend.truncate("wal.bin", 2)
        backend.append("wal.bin", b"bb")
        assert backend.read("wal.bin") == b"aabb"


class TestMemoryBackend:
    def test_tear_tail(self):
        backend = MemoryBackend()
        backend.append("wal.bin", b"abcdef")
        backend.tear_tail("wal.bin", 2)
        assert backend.read("wal.bin") == b"abcd"
        backend.tear_tail("wal.bin", 100)
        assert backend.read("wal.bin") == b""

    def test_read_returns_copy(self):
        backend = MemoryBackend()
        backend.write("a.bin", b"abc")
        blob = backend.read("a.bin")
        backend.append("a.bin", b"def")
        assert blob == b"abc"


class TestFileBackend:
    def test_rejects_path_traversal(self, tmp_path):
        backend = FileBackend(str(tmp_path))
        for bad in ("", "../evil", "a/b", ".hidden"):
            with pytest.raises(StoreError):
                backend.read(bad)

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        backend = FileBackend(str(tmp_path))
        backend.write("snapshot.bin", b"state")
        assert os.listdir(str(tmp_path)) == ["snapshot.bin"]

    def test_names_ignore_tmp_litter(self, tmp_path):
        backend = FileBackend(str(tmp_path))
        backend.write("wal.bin", b"x")
        # Simulate a crash mid-write: a stale temp file left behind.
        with open(os.path.join(str(tmp_path), "snapshot.bin.tmp"), "wb") as fh:
            fh.write(b"partial")
        assert backend.names() == ["wal.bin"]

    def test_state_survives_reopen(self, tmp_path):
        root = str(tmp_path / "s")
        first = FileBackend(root)
        first.append("wal.bin", b"abc")
        first.write("snapshot.bin", b"img")
        first.close()
        second = FileBackend(root)
        assert second.read("wal.bin") == b"abc"
        assert second.read("snapshot.bin") == b"img"
        second.close()

    def test_fsync_mode_works(self, tmp_path):
        backend = FileBackend(str(tmp_path), fsync=True)
        backend.append("wal.bin", b"abc")
        backend.write("snapshot.bin", b"img")
        assert backend.read("wal.bin") == b"abc"
        backend.close()

"""Smoke tests: every shipped example runs to completion.

The examples double as executable documentation; a refactor that
breaks one must fail CI, not a reader.  The measurement-week example
is exercised at a tiny scale through its argument parser.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    ["quickstart", "broadcaster_blackout", "threat_playbook", "ppv_and_royalties"],
)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_flash_crowd_example_runs(capsys):
    module = load_example("flash_crowd_event")
    module.main()
    out = capsys.readouterr().out
    assert "burstiness" in out
    assert "re-key" in out


def test_measurement_week_example_tiny_scale(capsys, monkeypatch):
    module = load_example("measurement_week")
    monkeypatch.setattr(sys, "argv", ["measurement_week.py", "--peak", "40"])
    module.main()
    out = capsys.readouterr().out
    assert "Fig. 5" in out
    assert "Fig. 6" in out
    assert "Pearson" in out

"""Tests for the canonical wire codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.wire import Decoder, Encoder, WireError


class TestScalars:
    def test_u8_roundtrip(self):
        blob = Encoder().put_u8(0).put_u8(255).to_bytes()
        dec = Decoder(blob)
        assert dec.get_u8() == 0
        assert dec.get_u8() == 255
        dec.finish()

    def test_u8_range_enforced(self):
        with pytest.raises(ValueError):
            Encoder().put_u8(256)
        with pytest.raises(ValueError):
            Encoder().put_u8(-1)

    def test_u32_roundtrip(self):
        blob = Encoder().put_u32(0).put_u32(0xFFFFFFFF).to_bytes()
        dec = Decoder(blob)
        assert dec.get_u32() == 0
        assert dec.get_u32() == 0xFFFFFFFF

    def test_u64_roundtrip(self):
        value = 2**63 + 12345
        dec = Decoder(Encoder().put_u64(value).to_bytes())
        assert dec.get_u64() == value

    def test_f64_roundtrip(self):
        for value in (0.0, -1.5, 1e300, 3.141592653589793):
            dec = Decoder(Encoder().put_f64(value).to_bytes())
            assert dec.get_f64() == value

    def test_bool_roundtrip(self):
        dec = Decoder(Encoder().put_bool(True).put_bool(False).to_bytes())
        assert dec.get_bool() is True
        assert dec.get_bool() is False

    def test_bad_bool_byte_rejected(self):
        with pytest.raises(WireError):
            Decoder(b"\x02").get_bool()


class TestOptionalFloat:
    def test_present(self):
        dec = Decoder(Encoder().put_opt_f64(2.5).to_bytes())
        assert dec.get_opt_f64() == 2.5

    def test_absent(self):
        dec = Decoder(Encoder().put_opt_f64(None).to_bytes())
        assert dec.get_opt_f64() is None

    def test_bad_presence_byte(self):
        with pytest.raises(WireError):
            Decoder(b"\x07" + b"\x00" * 8).get_opt_f64()


class TestBytesAndStrings:
    def test_bytes_roundtrip(self):
        dec = Decoder(Encoder().put_bytes(b"").put_bytes(b"abc\x00def").to_bytes())
        assert dec.get_bytes() == b""
        assert dec.get_bytes() == b"abc\x00def"

    def test_str_roundtrip(self):
        dec = Decoder(Encoder().put_str("héllo wörld").to_bytes())
        assert dec.get_str() == "héllo wörld"

    def test_invalid_utf8_rejected(self):
        blob = Encoder().put_bytes(b"\xff\xfe").to_bytes()
        with pytest.raises(WireError):
            Decoder(blob).get_str()


class TestErrors:
    def test_truncated_buffer(self):
        blob = Encoder().put_u32(7).to_bytes()
        dec = Decoder(blob[:2])
        with pytest.raises(WireError):
            dec.get_u32()

    def test_truncated_length_prefixed(self):
        blob = Encoder().put_bytes(b"abcdef").to_bytes()
        with pytest.raises(WireError):
            Decoder(blob[:-2]).get_bytes()

    def test_finish_rejects_trailing(self):
        dec = Decoder(b"\x00\x01")
        dec.get_u8()
        with pytest.raises(WireError):
            dec.finish()

    def test_finish_accepts_exact(self):
        dec = Decoder(b"\x07")
        dec.get_u8()
        dec.finish()

    def test_remaining_counts_down(self):
        dec = Decoder(b"\x00\x00\x00\x01x")
        assert dec.remaining == 5
        dec.get_u32()
        assert dec.remaining == 1


class TestCanonicality:
    def test_same_values_same_bytes(self):
        def build():
            return (
                Encoder()
                .put_str("channel-a")
                .put_u64(42)
                .put_opt_f64(None)
                .put_bool(True)
                .to_bytes()
            )

        assert build() == build()

    def test_field_order_matters(self):
        a = Encoder().put_u8(1).put_u8(2).to_bytes()
        b = Encoder().put_u8(2).put_u8(1).to_bytes()
        assert a != b


@given(
    values=st.lists(
        st.one_of(
            st.integers(min_value=0, max_value=0xFFFFFFFF),
            st.binary(max_size=64),
            st.text(max_size=32),
            st.booleans(),
            st.none(),
            st.floats(allow_nan=False),
        ),
        max_size=20,
    )
)
@settings(max_examples=100)
def test_property_heterogeneous_roundtrip(values):
    enc = Encoder()
    for value in values:
        if isinstance(value, bool):
            enc.put_bool(value)
        elif isinstance(value, int):
            enc.put_u32(value)
        elif isinstance(value, bytes):
            enc.put_bytes(value)
        elif isinstance(value, str):
            enc.put_str(value)
        elif value is None:
            enc.put_opt_f64(None)
        else:
            enc.put_f64(value)
    dec = Decoder(enc.to_bytes())
    for value in values:
        if isinstance(value, bool):
            assert dec.get_bool() == value
        elif isinstance(value, int):
            assert dec.get_u32() == value
        elif isinstance(value, bytes):
            assert dec.get_bytes() == value
        elif isinstance(value, str):
            assert dec.get_str() == value
        elif value is None:
            assert dec.get_opt_f64() is None
        else:
            assert dec.get_f64() == value
    dec.finish()


class TestDecoderHardening:
    """No input may escape the Decoder as anything but WireError."""

    @pytest.mark.parametrize("bad", ["text", 7, None, [1, 2], 3.5, object()])
    def test_non_bytes_buffer_rejected(self, bad):
        with pytest.raises(WireError):
            Decoder(bad)

    def test_bytearray_and_memoryview_accepted(self):
        assert Decoder(bytearray(b"\x07")).get_u8() == 7
        assert Decoder(memoryview(b"\x07")).get_u8() == 7

    def test_negative_take_rejected(self):
        with pytest.raises(WireError):
            Decoder(b"abcd")._take(-1)

    def test_huge_length_prefix_is_wire_error(self):
        # A corrupt length prefix claiming 4 GiB must not raise
        # MemoryError / OverflowError / struct.error.
        blob = b"\xff\xff\xff\xff" + b"x" * 8
        with pytest.raises(WireError):
            Decoder(blob).get_bytes()


@given(data=st.binary(max_size=128), ops=st.lists(st.sampled_from(
    ["u8", "u32", "u64", "f64", "opt_f64", "bool", "bytes", "str"]), max_size=16))
@settings(max_examples=200)
def test_property_arbitrary_bytes_never_leak_other_exceptions(data, ops):
    """Decoding garbage raises WireError or succeeds -- never
    struct.error, IndexError, UnicodeDecodeError, or MemoryError."""
    dec = Decoder(data)
    for op in ops:
        try:
            getattr(dec, f"get_{op}")()
        except WireError:
            return


@given(
    values=st.lists(
        st.one_of(
            st.tuples(st.just("u8"), st.integers(0, 0xFF)),
            st.tuples(st.just("u64"), st.integers(0, 2**64 - 1)),
            st.tuples(st.just("opt_f64"),
                      st.one_of(st.none(), st.floats(allow_nan=False))),
        ),
        max_size=20,
    )
)
@settings(max_examples=100)
def test_property_remaining_primitives_roundtrip(values):
    """u8 / u64 / optional-float (present and NULL) round-trip exactly."""
    enc = Encoder()
    for kind, value in values:
        getattr(enc, f"put_{kind}")(value)
    dec = Decoder(enc.to_bytes())
    for kind, value in values:
        assert getattr(dec, f"get_{kind}")() == value
    dec.finish()


class TestBoundedCounts:
    def test_count_within_buffer_allowed(self):
        blob = Encoder().put_u32(3).to_bytes() + b"\x00" * 30
        dec = Decoder(blob)
        assert dec.get_count(min_item_size=10) == 3

    def test_count_exceeding_buffer_rejected(self):
        blob = Encoder().put_u32(4).to_bytes() + b"\x00" * 30
        with pytest.raises(WireError):
            Decoder(blob).get_count(min_item_size=10)

    def test_hostile_u32_count_rejected(self):
        blob = Encoder().put_u32(0xFFFFFFFF).to_bytes()
        with pytest.raises(WireError):
            Decoder(blob).get_count()

    def test_zero_count_always_fine(self):
        assert Decoder(Encoder().put_u32(0).to_bytes()).get_count(min_item_size=100) == 0

    @given(count=st.integers(min_value=0, max_value=1000), size=st.integers(min_value=1, max_value=16))
    @settings(max_examples=100)
    def test_count_bound_is_exact(self, count, size):
        payload = b"\x00" * (count * size)
        dec = Decoder(Encoder().put_u32(count).to_bytes() + payload)
        assert dec.get_count(min_item_size=size) == count
        short = Decoder(Encoder().put_u32(count + 1).to_bytes() + payload)
        if size * (count + 1) > len(payload):
            with pytest.raises(WireError):
                short.get_count(min_item_size=size)


class TestZeroCopyViews:
    def test_get_view_matches_get_bytes(self):
        blob = Encoder().put_bytes(b"inner payload").put_bytes(b"tail").to_bytes()
        view = Decoder(blob).get_view()
        assert isinstance(view, memoryview)
        assert bytes(view) == b"inner payload"
        assert Decoder(blob).get_bytes() == b"inner payload"

    def test_view_aliases_outer_buffer(self):
        """get_view returns a window into the same allocation -- the
        zero-copy property the nested decoders rely on."""
        blob = Encoder().put_bytes(b"abcdef").to_bytes()
        view = Decoder(blob).get_view()
        assert view.obj is blob

    def test_nested_decoder_over_view(self):
        inner = Encoder().put_str("ch1").put_u64(42).to_bytes()
        outer = Encoder().put_bytes(inner).put_bool(True).to_bytes()
        dec = Decoder(outer)
        body = Decoder(dec.get_view())
        assert body.get_str() == "ch1"
        assert body.get_u64() == 42
        body.finish()
        assert dec.get_bool() is True
        dec.finish()

    def test_truncated_view_raises_same_error(self):
        blob = Encoder().put_u32(100).to_bytes() + b"short"
        with pytest.raises(WireError):
            Decoder(blob).get_view()

    def test_memoryview_input_accepted(self):
        blob = Encoder().put_str("hello").put_u32(7).to_bytes()
        dec = Decoder(memoryview(blob))
        assert dec.get_str() == "hello"
        assert dec.get_u32() == 7
        dec.finish()

    def test_bytearray_input_snapshotted(self):
        """A bytearray caller can mutate after construction without
        corrupting an in-progress decode."""
        raw = bytearray(Encoder().put_str("stable").to_bytes())
        dec = Decoder(raw)
        raw[:] = b"\xff" * len(raw)
        assert dec.get_str() == "stable"

    def test_non_contiguous_memoryview_rejected(self):
        blob = bytes(range(16))
        strided = memoryview(blob)[::2]
        with pytest.raises(WireError):
            Decoder(strided)

    def test_get_bytes_still_returns_owned_bytes(self):
        """get_bytes keeps its copying contract: callers may hold the
        result forever without pinning the wire buffer."""
        blob = Encoder().put_bytes(b"keep me").to_bytes()
        out = Decoder(blob).get_bytes()
        assert type(out) is bytes

"""Fuzzing: malformed wire input must fail with *library* errors only.

A verifier fed attacker-controlled bytes (tickets, tokens, keys,
packets) must raise the library's typed exceptions -- never an
uncontrolled IndexError/struct.error/UnicodeDecodeError that could
crash a server loop.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.challenge import Challenge
from repro.core.packets import ContentPacket
from repro.core.tickets import ChannelTicket, UserTicket
from repro.crypto.rsa import RsaPublicKey
from repro.errors import ReproError
from repro.util.wire import Decoder, WireError

LIBRARY_ERRORS = (ReproError,)


@given(blob=st.binary(max_size=256))
@settings(max_examples=300)
def test_decoder_raises_only_wire_errors(blob):
    dec = Decoder(blob)
    operations = [
        dec.get_u8, dec.get_u32, dec.get_u64, dec.get_f64,
        dec.get_opt_f64, dec.get_bool, dec.get_bytes, dec.get_str,
    ]
    for operation in operations:
        fresh = Decoder(blob)
        try:
            getattr(fresh, operation.__name__)()
        except WireError:
            pass  # the only acceptable failure


@given(blob=st.binary(max_size=512))
@settings(max_examples=200)
def test_user_ticket_parse_never_crashes(blob):
    try:
        UserTicket.from_bytes(blob)
    except LIBRARY_ERRORS:
        pass


@given(blob=st.binary(max_size=512))
@settings(max_examples=200)
def test_channel_ticket_parse_never_crashes(blob):
    try:
        ChannelTicket.from_bytes(blob)
    except LIBRARY_ERRORS:
        pass


@given(blob=st.binary(max_size=256))
@settings(max_examples=200)
def test_challenge_parse_never_crashes(blob):
    try:
        Challenge.from_bytes(blob)
    except LIBRARY_ERRORS:
        pass


@given(blob=st.binary(max_size=256))
@settings(max_examples=200)
def test_public_key_parse_never_crashes(blob):
    try:
        RsaPublicKey.from_bytes(blob)
    except LIBRARY_ERRORS:
        pass


@given(blob=st.binary(max_size=256))
@settings(max_examples=200)
def test_packet_parse_never_crashes(blob):
    try:
        packet = ContentPacket.from_bytes(blob)
        # A structurally valid packet parse must roundtrip.
        assert ContentPacket.from_bytes(packet.to_bytes()) == packet
    except LIBRARY_ERRORS:
        pass


class TestBitflippedTickets:
    """Every single-byte corruption of a real ticket is rejected."""

    def test_flipped_user_ticket_rejected_everywhere(self, deployment, viewer):
        blob = bytearray(viewer.user_ticket.to_bytes())
        um_key = deployment.user_managers["domain-0"].public_key
        step = max(1, len(blob) // 40)  # sample positions for speed
        for position in range(0, len(blob), step):
            corrupted = bytearray(blob)
            corrupted[position] ^= 0xFF
            try:
                ticket = UserTicket.from_bytes(bytes(corrupted))
                ticket.verify(um_key, now=0.0)
            except LIBRARY_ERRORS:
                continue
            # Reaching here means the corruption was invisible -- only
            # acceptable if it produced a byte-identical ticket, which
            # a bit flip cannot.
            pytest.fail(f"corruption at byte {position} accepted")

"""Tests for the region model."""

from repro.geo.regions import REGIONS, REGION_ANY, population_weights, region_names


class TestRegions:
    def test_names_stable_and_complete(self):
        names = region_names()
        assert names[0] == "CH"  # the deployment's home market leads
        assert set(names) == set(REGIONS)

    def test_weights_align_with_names(self):
        names, weights = population_weights()
        assert len(names) == len(weights)
        assert all(w > 0 for w in weights)
        assert abs(sum(weights) - 1.0) < 0.05  # roughly normalized

    def test_home_market_dominates(self):
        names, weights = population_weights()
        by_name = dict(zip(names, weights))
        assert by_name["CH"] == max(weights)

    def test_any_is_not_a_real_region(self):
        assert REGION_ANY not in REGIONS

    def test_timezone_offsets_present_for_remote_regions(self):
        assert REGIONS["US"].timezone_offset != 0
        assert REGIONS["ASIA"].timezone_offset != 0
        assert REGIONS["CH"].timezone_offset == 0

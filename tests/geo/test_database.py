"""Tests for the synthetic GeoIP/AS database."""

import random

import pytest

from repro.geo.database import GeoDatabase, format_ip, parse_ip
from repro.geo.regions import REGIONS


@pytest.fixture(scope="module")
def geo():
    return GeoDatabase()


class TestIpParsing:
    def test_roundtrip(self):
        for text in ("0.0.0.0", "255.255.255.255", "11.22.33.44"):
            assert format_ip(parse_ip(text)) == text

    def test_rejects_garbage(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", ""):
            with pytest.raises(ValueError):
                parse_ip(bad)


class TestLookups:
    def test_every_region_reachable(self, geo):
        rng = random.Random(1)
        for region in REGIONS:
            address = geo.random_address(region, rng)
            record = geo.lookup(address)
            assert record is not None
            assert record.region == region

    def test_unallocated_space_returns_none(self, geo):
        assert geo.lookup("200.1.2.3") is None
        assert geo.lookup("10.0.0.1") is None

    def test_lookup_is_pure(self, geo):
        assert geo.lookup("11.5.6.7") == geo.lookup("11.5.6.7")

    def test_region_of_convenience(self, geo):
        rng = random.Random(2)
        address = geo.random_address("DE", rng)
        assert geo.region_of(address) == "DE"
        assert geo.region_of("200.1.1.1") is None

    def test_asn_assigned_per_slash16(self, geo):
        a = geo.lookup("11.5.1.1")
        b = geo.lookup("11.5.200.200")
        c = geo.lookup("11.6.1.1")
        assert a.asn == b.asn
        assert a.asn != c.asn

    def test_bigger_regions_get_more_blocks(self):
        geo = GeoDatabase(n_blocks=64)
        rng = random.Random(3)
        ch_blocks = {
            int(geo.random_address("CH", rng).split(".")[0]) for _ in range(300)
        }
        asia_blocks = {
            int(geo.random_address("ASIA", rng).split(".")[0]) for _ in range(300)
        }
        assert len(ch_blocks) > len(asia_blocks)


class TestAddressMinting:
    def test_host_bytes_avoid_network_and_broadcast(self, geo):
        rng = random.Random(4)
        for _ in range(300):
            last_octet = int(geo.random_address("CH", rng).split(".")[-1])
            assert 1 <= last_octet <= 254

    def test_unknown_region_rejected(self, geo):
        with pytest.raises(ValueError):
            geo.random_address("ATLANTIS", random.Random(1))

    def test_vpn_exit_lands_in_apparent_region(self, geo):
        rng = random.Random(5)
        address = geo.vpn_exit_address("CH", rng)
        assert geo.region_of(address) == "CH"


class TestConstruction:
    def test_too_few_blocks_rejected(self):
        with pytest.raises(ValueError):
            GeoDatabase(n_blocks=3)

    def test_block_count_respected(self):
        geo = GeoDatabase(n_blocks=16)
        blocks = set()
        rng = random.Random(6)
        for region in REGIONS:
            for _ in range(50):
                blocks.add(int(geo.random_address(region, rng).split(".")[0]))
        assert blocks <= set(range(11, 11 + 16))

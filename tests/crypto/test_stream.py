"""Tests for the authenticated stream cipher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.crypto.stream import SymmetricKey, open_sealed, seal
from repro.errors import DecryptionError, KeyFormatError


@pytest.fixture
def key():
    return SymmetricKey.generate(HmacDrbg(b"stream"))


class TestKeyBasics:
    def test_generated_key_is_128_bit(self, key):
        assert len(key.material) == 16

    def test_wrong_length_material_rejected(self):
        with pytest.raises(KeyFormatError):
            SymmetricKey(material=b"short")

    def test_generation_is_deterministic(self):
        a = SymmetricKey.generate(HmacDrbg(b"k"))
        b = SymmetricKey.generate(HmacDrbg(b"k"))
        assert a.material == b.material

    def test_fingerprint_does_not_leak_material(self, key):
        assert key.material.hex() not in key.fingerprint()
        assert len(key.fingerprint()) == 12


class TestEncryptDecrypt:
    def test_roundtrip(self, key):
        ct = key.encrypt(b"media frame", nonce=1)
        assert key.decrypt(ct, nonce=1) == b"media frame"

    def test_ciphertext_differs_from_plaintext(self, key):
        ct = key.encrypt(b"media frame", nonce=1)
        assert b"media frame" not in ct

    def test_nonce_changes_ciphertext(self, key):
        assert key.encrypt(b"x", nonce=1) != key.encrypt(b"x", nonce=2)

    def test_wrong_nonce_fails(self, key):
        ct = key.encrypt(b"payload", nonce=5)
        with pytest.raises(DecryptionError):
            key.decrypt(ct, nonce=6)

    def test_wrong_key_fails(self, key):
        other = SymmetricKey.generate(HmacDrbg(b"other"))
        ct = key.encrypt(b"payload", nonce=1)
        with pytest.raises(DecryptionError):
            other.decrypt(ct, nonce=1)

    def test_tampered_body_fails(self, key):
        ct = bytearray(key.encrypt(b"payload", nonce=1))
        ct[0] ^= 0x01
        with pytest.raises(DecryptionError):
            key.decrypt(bytes(ct), nonce=1)

    def test_tampered_tag_fails(self, key):
        ct = bytearray(key.encrypt(b"payload", nonce=1))
        ct[-1] ^= 0x01
        with pytest.raises(DecryptionError):
            key.decrypt(bytes(ct), nonce=1)

    def test_truncated_ciphertext_fails(self, key):
        with pytest.raises(DecryptionError):
            key.decrypt(b"\x00" * 8, nonce=1)

    def test_negative_nonce_rejected(self, key):
        with pytest.raises(ValueError):
            key.encrypt(b"x", nonce=-1)

    def test_empty_plaintext(self, key):
        ct = key.encrypt(b"", nonce=9)
        assert key.decrypt(ct, nonce=9) == b""
        assert len(ct) == 16  # tag only


class TestAssociatedData:
    def test_aad_must_match(self, key):
        ct = key.encrypt(b"frame", nonce=1, aad=b"ch1")
        assert key.decrypt(ct, nonce=1, aad=b"ch1") == b"frame"
        with pytest.raises(DecryptionError):
            key.decrypt(ct, nonce=1, aad=b"ch2")

    def test_missing_aad_fails(self, key):
        ct = key.encrypt(b"frame", nonce=1, aad=b"ch1")
        with pytest.raises(DecryptionError):
            key.decrypt(ct, nonce=1)

    def test_aad_is_not_encrypted_into_body(self, key):
        # Same plaintext, different AAD: bodies equal, tags differ.
        a = key.encrypt(b"frame", nonce=1, aad=b"x")
        b = key.encrypt(b"frame", nonce=1, aad=b"y")
        assert a[:-16] == b[:-16]
        assert a[-16:] != b[-16:]


class TestFunctionalAliases:
    def test_seal_open(self, key):
        ct = seal(key, b"data", nonce=3, aad=b"a")
        assert open_sealed(key, ct, nonce=3, aad=b"a") == b"data"


@given(
    plaintext=st.binary(min_size=0, max_size=2048),
    nonce=st.integers(min_value=0, max_value=2**63),
    aad=st.binary(max_size=64),
)
@settings(max_examples=80)
def test_property_roundtrip(plaintext, nonce, aad):
    key = SymmetricKey.generate(HmacDrbg(b"prop-stream"))
    assert key.decrypt(key.encrypt(plaintext, nonce, aad), nonce, aad) == plaintext


@given(plaintext=st.binary(min_size=1, max_size=256), flip=st.integers(min_value=0))
@settings(max_examples=60)
def test_property_any_bitflip_detected(plaintext, flip):
    key = SymmetricKey.generate(HmacDrbg(b"prop-flip"))
    ct = bytearray(key.encrypt(plaintext, nonce=1))
    ct[flip % len(ct)] ^= 1 << (flip % 8) or 1
    if bytes(ct) == key.encrypt(plaintext, nonce=1):
        return  # the flip was a no-op (xor with 0); nothing to detect
    with pytest.raises(DecryptionError):
        key.decrypt(bytes(ct), nonce=1)

"""Tests for primality testing and prime generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.crypto.primes import (
    generate_prime,
    generate_safe_distinct_primes,
    is_probable_prime,
)

SMALL_PRIMES = {
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97,
}

KNOWN_PRIMES = [101, 257, 7919, 104729, 2**31 - 1, 2**61 - 1]
KNOWN_COMPOSITES = [
    4, 100, 561, 1105, 1729, 2465,  # Carmichael numbers included
    7919 * 104729,
    (2**31 - 1) * (2**61 - 1),
]


class TestIsProbablePrime:
    def test_small_primes(self):
        for p in SMALL_PRIMES:
            assert is_probable_prime(p), p

    def test_small_composites(self):
        for n in range(2, 200):
            expected = all(n % d for d in range(2, n))
            assert is_probable_prime(n) == expected, n

    def test_known_large_primes(self):
        for p in KNOWN_PRIMES:
            assert is_probable_prime(p), p

    def test_known_composites_including_carmichael(self):
        for n in KNOWN_COMPOSITES:
            assert not is_probable_prime(n), n

    def test_edge_cases(self):
        assert not is_probable_prime(0)
        assert not is_probable_prime(1)
        assert not is_probable_prime(-7)

    def test_extra_witnesses_do_not_flip_primes(self):
        assert is_probable_prime(104729, extra_witnesses=[2, 1000003])


class TestGeneratePrime:
    def test_bit_length_exact(self):
        drbg = HmacDrbg(b"primes")
        for bits in (16, 64, 128, 256):
            p = generate_prime(bits, drbg)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_deterministic_under_seed(self):
        a = generate_prime(128, HmacDrbg(b"fixed"))
        b = generate_prime(128, HmacDrbg(b"fixed"))
        assert a == b

    def test_rejects_tiny_sizes(self):
        with pytest.raises(ValueError):
            generate_prime(4, HmacDrbg(b"x"))

    def test_generated_primes_are_odd(self):
        drbg = HmacDrbg(b"odd")
        for _ in range(5):
            assert generate_prime(32, drbg) % 2 == 1


class TestDistinctPrimes:
    def test_primes_distinct(self):
        p, q = generate_safe_distinct_primes(64, HmacDrbg(b"pq"))
        assert p != q
        assert is_probable_prime(p) and is_probable_prime(q)

    def test_product_has_expected_magnitude(self):
        p, q = generate_safe_distinct_primes(128, HmacDrbg(b"pq2"))
        assert (p * q).bit_length() in (255, 256)


@given(st.integers(min_value=2, max_value=3000))
@settings(max_examples=200)
def test_property_agrees_with_trial_division(n):
    expected = n >= 2 and all(n % d for d in range(2, int(n**0.5) + 1))
    assert is_probable_prime(n) == expected

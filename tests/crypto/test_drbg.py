"""Tests for the HMAC-DRBG."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = HmacDrbg(b"seed")
        b = HmacDrbg(b"seed")
        assert a.generate(64) == b.generate(64)
        assert a.generate(7) == b.generate(7)

    def test_different_seeds_differ(self):
        assert HmacDrbg(b"seed-a").generate(32) != HmacDrbg(b"seed-b").generate(32)

    def test_personalization_separates_streams(self):
        a = HmacDrbg(b"seed", personalization=b"alpha")
        b = HmacDrbg(b"seed", personalization=b"beta")
        assert a.generate(32) != b.generate(32)

    def test_chunked_reads_do_not_match_one_big_read(self):
        # Each generate() call mixes state, so read boundaries matter;
        # what must hold is reproducibility of an identical call
        # sequence, not stream-concatenation equality.
        a = HmacDrbg(b"seed")
        b = HmacDrbg(b"seed")
        assert a.generate(16) + a.generate(16) == b.generate(16) + b.generate(16)


class TestGeneration:
    def test_requested_length(self):
        drbg = HmacDrbg(b"x")
        for n in (0, 1, 31, 32, 33, 100, 1000):
            assert len(drbg.generate(n)) == n

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"x").generate(-1)

    def test_non_bytes_seed_rejected(self):
        with pytest.raises(TypeError):
            HmacDrbg("string")  # type: ignore[arg-type]

    def test_reseed_changes_stream(self):
        a = HmacDrbg(b"seed")
        b = HmacDrbg(b"seed")
        b.reseed(b"extra entropy")
        assert a.generate(32) != b.generate(32)

    def test_output_is_not_all_zero(self):
        assert HmacDrbg(b"seed").generate(64) != b"\x00" * 64


class TestIntegers:
    def test_randint_bits_has_exact_bit_length(self):
        drbg = HmacDrbg(b"bits")
        for bits in (2, 8, 17, 64, 256):
            for _ in range(10):
                assert drbg.randint_bits(bits).bit_length() == bits

    def test_randint_bits_rejects_tiny(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"x").randint_bits(1)

    def test_randbelow_in_range(self):
        drbg = HmacDrbg(b"below")
        for upper in (1, 2, 7, 100, 2**40):
            for _ in range(20):
                assert 0 <= drbg.randbelow(upper) < upper

    def test_randbelow_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"x").randbelow(0)

    def test_randbelow_covers_small_range(self):
        drbg = HmacDrbg(b"coverage")
        seen = {drbg.randbelow(4) for _ in range(200)}
        assert seen == {0, 1, 2, 3}


class TestFork:
    def test_forks_with_distinct_labels_differ(self):
        parent = HmacDrbg(b"seed")
        a = parent.fork(b"a")
        b = parent.fork(b"b")
        assert a.generate(32) != b.generate(32)

    def test_fork_is_deterministic(self):
        x = HmacDrbg(b"seed").fork(b"child").generate(32)
        y = HmacDrbg(b"seed").fork(b"child").generate(32)
        assert x == y

    def test_fork_consumes_parent_state(self):
        # Forking advances the parent, so later parent output differs
        # from an unforked twin -- no accidental stream sharing.
        forked = HmacDrbg(b"seed")
        forked.fork(b"child")
        plain = HmacDrbg(b"seed")
        assert forked.generate(32) != plain.generate(32)


@given(seed=st.binary(min_size=0, max_size=64), n=st.integers(min_value=0, max_value=512))
@settings(max_examples=50)
def test_property_length_and_determinism(seed, n):
    assert HmacDrbg(seed).generate(n) == HmacDrbg(seed).generate(n)
    assert len(HmacDrbg(seed).generate(n)) == n


@given(upper=st.integers(min_value=1, max_value=2**64))
@settings(max_examples=50)
def test_property_randbelow_bounds(upper):
    drbg = HmacDrbg(b"prop")
    value = drbg.randbelow(upper)
    assert 0 <= value < upper

"""Equivalence pinning: vectorized cipher vs the scalar reference.

The data-plane fast path (cached XOF prefix state, single-squeeze
keystream, wide XOR, copied HMAC states) must be *byte-for-byte*
identical to the retained scalar implementation
(:func:`~repro.crypto.stream.reference_encrypt` /
:func:`~repro.crypto.stream.reference_decrypt`) -- same construction,
computed the slow way.  Any divergence would silently break
interoperability between peers running either path.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.crypto.stream import (
    SymmetricKey,
    _keystream,
    _reference_keystream,
    legacy_decrypt,
    legacy_encrypt,
    reference_decrypt,
    reference_encrypt,
)
from repro.errors import DecryptionError


@pytest.fixture
def key():
    return SymmetricKey.generate(HmacDrbg(b"equiv"))


# Sizes around every boundary the implementations treat specially:
# empty, single byte, one-below/at/one-above the 32-byte squeeze block,
# two blocks, a full 4 kB media frame, and beyond frame size.
BOUNDARY_SIZES = [0, 1, 31, 32, 33, 63, 64, 65, 4096, 4097, 10000]


class TestKeystreamEquivalence:
    @pytest.mark.parametrize("size", BOUNDARY_SIZES)
    def test_fast_matches_reference(self, key, size):
        assert _keystream(key.material, 7, size) == _reference_keystream(
            key.material, 7, size
        )

    def test_prefix_property(self, key):
        """A shorter squeeze is a prefix of a longer one (XOF property
        the reference implementation leans on)."""
        long = _keystream(key.material, 3, 256)
        for size in (1, 31, 32, 33, 255):
            assert _keystream(key.material, 3, size) == long[:size]


class TestCiphertextEquivalence:
    @pytest.mark.parametrize("size", BOUNDARY_SIZES)
    def test_encrypt_matches_reference(self, key, size):
        plaintext = bytes(i & 0xFF for i in range(size))
        fast = key.encrypt(plaintext, nonce=size + 1, aad=b"chan")
        slow = reference_encrypt(key, plaintext, nonce=size + 1, aad=b"chan")
        assert fast == slow

    @pytest.mark.parametrize("size", BOUNDARY_SIZES)
    def test_cross_decrypt(self, key, size):
        """Fast-sealed opens under reference and vice versa."""
        plaintext = bytes(size)
        fast_ct = key.encrypt(plaintext, nonce=2, aad=b"x")
        slow_ct = reference_encrypt(key, plaintext, nonce=2, aad=b"x")
        assert reference_decrypt(key, fast_ct, nonce=2, aad=b"x") == plaintext
        assert key.decrypt(slow_ct, nonce=2, aad=b"x") == plaintext

    def test_tamper_detected_by_both(self, key):
        ct = bytearray(key.encrypt(b"frame payload", nonce=1, aad=b"ch"))
        ct[3] ^= 0x40
        with pytest.raises(DecryptionError):
            key.decrypt(bytes(ct), nonce=1, aad=b"ch")
        with pytest.raises(DecryptionError):
            reference_decrypt(key, bytes(ct), nonce=1, aad=b"ch")

    def test_short_ciphertext_rejected_by_both(self, key):
        for blob in (b"", b"\x00" * 15):
            with pytest.raises(DecryptionError):
                key.decrypt(blob, nonce=1)
            with pytest.raises(DecryptionError):
                reference_decrypt(key, blob, nonce=1)


class TestEncryptMany:
    def test_matches_sequential_encrypt(self, key):
        plaintexts = [bytes(i & 0xFF for i in range(size)) for size in BOUNDARY_SIZES]
        nonces = list(range(100, 100 + len(plaintexts)))
        batch = key.encrypt_many(plaintexts, nonces, aad=b"chan")
        single = [key.encrypt(p, n, aad=b"chan") for p, n in zip(plaintexts, nonces)]
        assert batch == single

    def test_length_mismatch_rejected(self, key):
        with pytest.raises(ValueError):
            key.encrypt_many([b"a", b"b"], [1])

    def test_negative_nonce_rejected(self, key):
        with pytest.raises(ValueError):
            key.encrypt_many([b"a"], [-1])

    def test_empty_batch(self, key):
        assert key.encrypt_many([], []) == []


class TestLegacyCipher:
    """The retained seed implementation must still roundtrip (the
    benchmark's *before* configuration), while being deliberately
    ciphertext-incompatible with the new construction."""

    def test_roundtrip(self, key):
        ct = legacy_encrypt(key, b"old payload", nonce=5, aad=b"ch")
        assert legacy_decrypt(key, ct, nonce=5, aad=b"ch") == b"old payload"

    def test_not_ciphertext_compatible(self, key):
        # The MAC scheme is shared (tag over the ciphertext body), so a
        # legacy ciphertext *authenticates* under the new path -- but
        # the keystreams differ, so it decrypts to different bytes.
        plaintext = b"frame" * 20
        legacy_ct = legacy_encrypt(key, plaintext, nonce=1)
        assert key.decrypt(legacy_ct, nonce=1) != plaintext

    def test_tamper_detected(self, key):
        ct = bytearray(legacy_encrypt(key, b"payload", nonce=1))
        ct[0] ^= 1
        with pytest.raises(DecryptionError):
            legacy_decrypt(key, bytes(ct), nonce=1)


@given(
    plaintext=st.binary(min_size=0, max_size=8192),
    nonce=st.integers(min_value=0, max_value=2**63),
    aad=st.binary(max_size=64),
)
@settings(max_examples=120)
def test_property_fast_equals_reference(plaintext, nonce, aad):
    key = SymmetricKey.generate(HmacDrbg(b"prop-equiv"))
    fast = key.encrypt(plaintext, nonce, aad)
    assert fast == reference_encrypt(key, plaintext, nonce, aad)
    assert key.decrypt(fast, nonce, aad) == plaintext
    assert reference_decrypt(key, fast, nonce, aad) == plaintext


@given(
    sizes=st.lists(st.integers(min_value=0, max_value=300), min_size=0, max_size=8),
    start_nonce=st.integers(min_value=0, max_value=2**32),
)
@settings(max_examples=60)
def test_property_encrypt_many_equals_loop(sizes, start_nonce):
    key = SymmetricKey.generate(HmacDrbg(b"prop-many"))
    plaintexts = [bytes((i + j) & 0xFF for j in range(size)) for i, size in enumerate(sizes)]
    nonces = [start_nonce + i for i in range(len(sizes))]
    assert key.encrypt_many(plaintexts, nonces, aad=b"g") == [
        key.encrypt(p, n, aad=b"g") for p, n in zip(plaintexts, nonces)
    ]

"""Tests for the RSA primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import RsaPublicKey, generate_keypair
from repro.errors import DecryptionError, KeyFormatError, SignatureError


@pytest.fixture(scope="module")
def key():
    return generate_keypair(HmacDrbg(b"rsa-tests"), bits=512)


@pytest.fixture(scope="module")
def other_key():
    return generate_keypair(HmacDrbg(b"rsa-tests-other"), bits=512)


class TestKeyGeneration:
    def test_modulus_bit_length(self, key):
        assert key.n.bit_length() == 512

    def test_deterministic_from_seed(self):
        a = generate_keypair(HmacDrbg(b"same"), bits=512)
        b = generate_keypair(HmacDrbg(b"same"), bits=512)
        assert (a.n, a.e, a.d) == (b.n, b.e, b.d)

    def test_exponent_relation(self, key):
        # e*d must invert modulo lambda(n); verify via a round trip on
        # a handful of values rather than factoring.
        for m in (2, 1234567, 2**100 + 3):
            assert pow(pow(m, key.e, key.n), key.d, key.n) == m

    def test_rejects_small_modulus(self):
        with pytest.raises(ValueError):
            generate_keypair(HmacDrbg(b"x"), bits=128)

    def test_rejects_odd_bit_size(self):
        with pytest.raises(ValueError):
            generate_keypair(HmacDrbg(b"x"), bits=513)


class TestSignatures:
    def test_sign_verify_roundtrip(self, key):
        message = b"the channel ticket body"
        signature = key.sign(message)
        key.public_key.verify(message, signature)  # must not raise

    def test_signature_is_deterministic(self, key):
        assert key.sign(b"m") == key.sign(b"m")

    def test_tampered_message_fails(self, key):
        signature = key.sign(b"original")
        with pytest.raises(SignatureError):
            key.public_key.verify(b"Original", signature)

    def test_tampered_signature_fails(self, key):
        signature = bytearray(key.sign(b"message"))
        signature[10] ^= 0xFF
        with pytest.raises(SignatureError):
            key.public_key.verify(b"message", bytes(signature))

    def test_wrong_key_fails(self, key, other_key):
        signature = key.sign(b"message")
        with pytest.raises(SignatureError):
            other_key.public_key.verify(b"message", signature)

    def test_wrong_length_signature_fails(self, key):
        with pytest.raises(SignatureError):
            key.public_key.verify(b"message", b"\x00" * 10)

    def test_out_of_range_signature_fails(self, key):
        too_big = (key.n + 1).to_bytes(key.size_bytes, "big")
        with pytest.raises(SignatureError):
            key.public_key.verify(b"message", too_big)

    def test_boolean_form(self, key):
        signature = key.sign(b"m")
        assert key.public_key.is_valid_signature(b"m", signature)
        assert not key.public_key.is_valid_signature(b"n", signature)

    def test_empty_message_signs(self, key):
        key.public_key.verify(b"", key.sign(b""))


class TestEncryption:
    def test_encrypt_decrypt_roundtrip(self, key):
        drbg = HmacDrbg(b"enc")
        plaintext = b"\x01" * 16  # a session key
        ciphertext = key.public_key.encrypt(plaintext, drbg)
        assert key.decrypt(ciphertext) == plaintext

    def test_encryption_is_randomized(self, key):
        drbg = HmacDrbg(b"enc2")
        a = key.public_key.encrypt(b"secret", drbg)
        b = key.public_key.encrypt(b"secret", drbg)
        assert a != b
        assert key.decrypt(a) == key.decrypt(b) == b"secret"

    def test_too_long_plaintext_rejected(self, key):
        drbg = HmacDrbg(b"enc3")
        with pytest.raises(ValueError):
            key.public_key.encrypt(b"x" * (key.size_bytes - 10), drbg)

    def test_wrong_key_decrypt_fails(self, key, other_key):
        drbg = HmacDrbg(b"enc4")
        ciphertext = key.public_key.encrypt(b"secret", drbg)
        with pytest.raises(DecryptionError):
            other_key.decrypt(ciphertext)

    def test_truncated_ciphertext_fails(self, key):
        drbg = HmacDrbg(b"enc5")
        ciphertext = key.public_key.encrypt(b"secret", drbg)
        with pytest.raises(DecryptionError):
            key.decrypt(ciphertext[:-1])

    def test_empty_plaintext_roundtrips(self, key):
        drbg = HmacDrbg(b"enc6")
        assert key.decrypt(key.public_key.encrypt(b"", drbg)) == b""


class TestSerialization:
    def test_public_key_roundtrip(self, key):
        blob = key.public_key.to_bytes()
        restored = RsaPublicKey.from_bytes(blob)
        assert restored == key.public_key

    def test_malformed_blob_rejected(self):
        with pytest.raises(KeyFormatError):
            RsaPublicKey.from_bytes(b"\x00\x01")

    def test_trailing_garbage_rejected(self, key):
        with pytest.raises(KeyFormatError):
            RsaPublicKey.from_bytes(key.public_key.to_bytes() + b"junk")

    def test_fingerprint_stable_and_short(self, key):
        fp = key.public_key.fingerprint()
        assert fp == key.public_key.fingerprint()
        assert len(fp) == 16

    def test_fingerprints_differ(self, key, other_key):
        assert key.public_key.fingerprint() != other_key.public_key.fingerprint()


@given(message=st.binary(min_size=0, max_size=200))
@settings(max_examples=25, deadline=None)
def test_property_sign_verify(message):
    key = generate_keypair(HmacDrbg(b"prop-rsa"), bits=512)
    key.public_key.verify(message, key.sign(message))


@given(plaintext=st.binary(min_size=0, max_size=40))
@settings(max_examples=25, deadline=None)
def test_property_encrypt_decrypt(plaintext):
    key = generate_keypair(HmacDrbg(b"prop-rsa-enc"), bits=512)
    drbg = HmacDrbg(b"prop-enc")
    assert key.decrypt(key.public_key.encrypt(plaintext, drbg)) == plaintext


class TestCrtSigning:
    def test_generated_keys_carry_crt(self, key):
        assert key.has_crt
        assert key.p * key.q == key.n
        assert key.dp == key.d % (key.p - 1)
        assert key.dq == key.d % (key.q - 1)
        assert (key.qinv * key.q) % key.p == 1

    def test_crt_and_plain_signatures_identical(self, key):
        slow = key.without_crt()
        assert not slow.has_crt
        for message in (b"", b"ticket body", b"\x00" * 64):
            assert key.sign(message) == slow.sign(message)

    def test_crt_and_plain_decrypt_identical(self, key):
        drbg = HmacDrbg(b"crt-dec")
        ciphertext = key.public_key.encrypt(b"session-key", drbg)
        assert key.decrypt(ciphertext) == key.without_crt().decrypt(ciphertext)

    def test_without_crt_preserves_public_half(self, key):
        slow = key.without_crt()
        assert slow.public_key == key.public_key
        assert (slow.n, slow.e, slow.d) == (key.n, key.e, key.d)
        assert slow.p is slow.q is slow.dp is slow.dq is slow.qinv is None

    def test_wrong_primes_rejected(self, key):
        from repro.crypto.rsa import RsaPrivateKey

        with pytest.raises(KeyFormatError):
            RsaPrivateKey(
                n=key.n, e=key.e, d=key.d,
                p=key.p + 2, q=key.q, dp=key.dp, dq=key.dq, qinv=key.qinv,
            )

    def test_partial_crt_set_rejected(self, key):
        from repro.crypto.rsa import RsaPrivateKey

        with pytest.raises(KeyFormatError):
            RsaPrivateKey(n=key.n, e=key.e, d=key.d, p=key.p, q=key.q)

    def test_bad_qinv_rejected(self, key):
        from repro.crypto.rsa import RsaPrivateKey

        with pytest.raises(KeyFormatError):
            RsaPrivateKey(
                n=key.n, e=key.e, d=key.d,
                p=key.p, q=key.q, dp=key.dp, dq=key.dq, qinv=key.qinv + 1,
            )

    def test_crt_counter_increments(self, key):
        from repro.metrics.hotpath import counters

        counters.reset()
        key.sign(b"m")
        assert counters.rsa_private_ops == 1
        assert counters.rsa_crt_ops == 1
        key.without_crt().sign(b"m")
        assert counters.rsa_private_ops == 2
        assert counters.rsa_crt_ops == 1
        counters.reset()


@given(message=st.binary(min_size=0, max_size=200))
@settings(max_examples=25, deadline=None)
def test_property_crt_matches_plain_signature(message):
    key = generate_keypair(HmacDrbg(b"prop-crt"), bits=512)
    assert key.sign(message) == key.without_crt().sign(message)

"""Tests for the centralized key-distribution baseline."""

import random

import pytest

from repro.baselines.central_keyserver import (
    CentralKeyServer,
    KeyDistributionComparison,
)


class TestRekeyStorm:
    def test_all_clients_served(self):
        server = CentralKeyServer(n_servers=4)
        result = server.rekey_storm(random.Random(1), clients=1000)
        assert result.server_requests == 1000
        assert result.mean_wait > 0

    def test_load_scales_with_audience(self):
        server = CentralKeyServer(n_servers=2)
        small = server.rekey_storm(random.Random(2), clients=500)
        large = server.rekey_storm(random.Random(2), clients=5000)
        assert large.p99_wait > small.p99_wait

    def test_zero_clients(self):
        server = CentralKeyServer(n_servers=1)
        result = server.rekey_storm(random.Random(3), clients=0)
        assert result.mean_wait == 0.0


class TestP2pPush:
    @pytest.fixture
    def comparison(self):
        return KeyDistributionComparison(random.Random(4), fanout=4)

    def test_server_messages_capped_at_fanout(self, comparison):
        for clients in (10, 1000, 100000):
            push = comparison.p2p_push(clients, source_fanout=16)
            assert push.server_messages <= 16

    def test_total_messages_equal_clients(self, comparison):
        push = comparison.p2p_push(5000)
        assert push.total_link_messages == 5000

    def test_depth_logarithmic(self, comparison):
        small = comparison.p2p_push(100)
        large = comparison.p2p_push(100000)
        assert large.tree_depth <= small.tree_depth + 6
        assert large.tree_depth >= small.tree_depth

    def test_propagation_grows_with_depth_only(self, comparison):
        d10k = comparison.p2p_push(10000)
        d100k = comparison.p2p_push(100000)
        assert d100k.propagation_p99 < d10k.propagation_p99 * 3

    def test_zero_clients(self, comparison):
        push = comparison.p2p_push(0)
        assert push.server_messages == 0
        assert push.tree_depth == 0

    def test_fanout_validated(self):
        with pytest.raises(ValueError):
            KeyDistributionComparison(random.Random(1), fanout=1)


class TestCrossover:
    def test_central_breaks_sla_at_scale_p2p_does_not(self):
        comparison = KeyDistributionComparison(random.Random(5))
        crossover = comparison.crossover_audience(n_servers=2, sla=1.0)
        # Beyond the crossover, central violates the SLA...
        storm = comparison.central_fetch(crossover * 2, n_servers=2)
        assert storm.p99_wait > 1.0
        # ...while the P2P push at the same audience stays far under it.
        push = comparison.p2p_push(crossover * 2)
        assert push.propagation_p99 < 1.0

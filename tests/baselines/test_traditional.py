"""Tests for the traditional per-file DRM baseline."""

import random

import pytest

from repro.baselines.traditional import (
    LicenseManager,
    TraditionalDrmSimulation,
)
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.errors import AuthorizationError


@pytest.fixture
def license_manager():
    manager = LicenseManager(
        signing_key=generate_keypair(HmacDrbg(b"lm"), bits=512),
        drbg=HmacDrbg(b"lm-runtime"),
        max_devices_per_user=2,
        default_max_playbacks=2,
    )
    manager.publish_file("movie-1")
    manager.entitle("alice", "movie-1")
    return manager


class TestLicenseManager:
    def test_acquire_license(self, license_manager):
        license_ = license_manager.acquire_license("alice", "laptop", "movie-1", now=0.0)
        assert license_.file_id == "movie-1"
        assert license_.content_key
        assert license_manager.licenses_issued == 1

    def test_unentitled_user_rejected(self, license_manager):
        with pytest.raises(AuthorizationError):
            license_manager.acquire_license("mallory", "pc", "movie-1", now=0.0)

    def test_unknown_file_rejected(self, license_manager):
        with pytest.raises(AuthorizationError):
            license_manager.acquire_license("alice", "pc", "nope", now=0.0)

    def test_entitle_unknown_file_rejected(self, license_manager):
        with pytest.raises(AuthorizationError):
            license_manager.entitle("alice", "nope")

    def test_device_limit_enforced(self, license_manager):
        license_manager.acquire_license("alice", "laptop", "movie-1", now=0.0)
        license_manager.acquire_license("alice", "phone", "movie-1", now=0.0)
        with pytest.raises(AuthorizationError):
            license_manager.acquire_license("alice", "tv", "movie-1", now=0.0)

    def test_repeat_device_ok(self, license_manager):
        license_manager.acquire_license("alice", "laptop", "movie-1", now=0.0)
        license_manager.acquire_license("alice", "laptop", "movie-1", now=1.0)

    def test_playback_limit_enforced(self, license_manager):
        license_ = license_manager.acquire_license("alice", "laptop", "movie-1", now=0.0)
        assert license_manager.record_playback("alice", license_) == 1
        assert license_manager.record_playback("alice", license_) == 2
        with pytest.raises(AuthorizationError):
            license_manager.record_playback("alice", license_)

    def test_forged_license_rejected(self, license_manager):
        import dataclasses

        license_ = license_manager.acquire_license("alice", "laptop", "movie-1", now=0.0)
        forged = dataclasses.replace(license_, max_playbacks=10**6)
        with pytest.raises(AuthorizationError):
            license_manager.record_playback("alice", forged)


class TestFlashCrowdSimulation:
    def test_underprovisioned_server_queues_badly(self):
        # 10k licenses x 10ms = 100 server-seconds of work arriving in
        # a ~60s flash crowd: one server is saturated.
        simulation = TraditionalDrmSimulation(random.Random(1), service_time=0.01)
        result = simulation.run(arrivals=10000, n_servers=1, window=60.0)
        assert result.max_wait > simulation.sla  # SLA blown at the tail
        assert result.served_within_sla < 0.95

    def test_more_servers_cut_waits(self):
        simulation = TraditionalDrmSimulation(random.Random(2), service_time=0.01)
        small = simulation.run(arrivals=10000, n_servers=1, window=60.0)
        large = simulation.run(arrivals=10000, n_servers=8, window=60.0)
        assert large.p95_wait < small.p95_wait
        assert large.served_within_sla > small.served_within_sla

    def test_provisioning_search_finds_sla_point(self):
        simulation = TraditionalDrmSimulation(random.Random(3), service_time=0.01)
        needed = simulation.provisioning_needed(arrivals=2000, window=60.0)
        at_needed = simulation.run(2000, needed, window=60.0)
        assert at_needed.served_within_sla >= 0.95
        if needed > 1:
            below = simulation.run(2000, needed - 1, window=60.0)
            assert below.served_within_sla < 0.97  # near the knee

    def test_provisioning_grows_with_audience(self):
        simulation = TraditionalDrmSimulation(random.Random(4), service_time=0.01)
        small = simulation.provisioning_needed(arrivals=1000, window=60.0)
        large = simulation.provisioning_needed(arrivals=8000, window=60.0)
        assert large > small

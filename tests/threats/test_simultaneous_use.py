"""Threat model: one account, multiple viewing locations (Section IV-D).

The requirement: "an account can be used to join the same channel at
most once at any given time."  Enforcement is split between the
Channel Manager's viewing log (renewal refusal) and peers (severing
expired, unrenewed links).
"""

import pytest

from repro.errors import RenewalRefusedError


@pytest.fixture
def home_client(deployment):
    client = deployment.create_client("shared@example.org", "pw", region="CH")
    client.login(now=0.0)
    return client


class TestAccountMobility:
    def test_moving_user_does_not_wait_for_old_ticket_expiry(self, deployment, home_client):
        """The paper's mobility walk-through: the user switches
        computers; the new location gets service immediately."""
        deployment.watch(home_client, "free-ch", now=0.0)
        office = deployment.create_client(
            "shared@example.org", "pw", region="CH", register=False
        )
        office.login(now=100.0)
        response = office.switch_channel("free-ch", now=100.0)
        assert response.ticket.net_addr == office.net_addr

    def test_old_location_renewal_refused_after_move(self, deployment, home_client):
        deployment.watch(home_client, "free-ch", now=0.0)
        office = deployment.create_client(
            "shared@example.org", "pw", region="CH", register=False
        )
        office.login(now=100.0)
        office.switch_channel("free-ch", now=100.0)
        # The log's latest (UserIN, channel) entry now shows the office
        # address; home's renewal is refused.
        renew_at = home_client.channel_ticket.expire_time - 10.0
        home_client.login(now=renew_at)
        with pytest.raises(RenewalRefusedError):
            home_client.renew_channel_ticket(now=renew_at)

    def test_old_location_severed_at_expiry(self, deployment, home_client):
        home_peer = deployment.watch(home_client, "free-ch", now=0.0)
        office = deployment.create_client(
            "shared@example.org", "pw", region="CH", register=False
        )
        office.login(now=100.0)
        office.switch_channel("free-ch", now=100.0)
        expiry = home_client.channel_ticket.expire_time
        severed = deployment.overlay("free-ch").enforce_expiry(now=expiry + 1.0)
        assert severed >= 1
        assert not home_client.parents

    def test_staying_put_renews_indefinitely(self, deployment, home_client):
        """Without a competing location, renewals keep succeeding."""
        deployment.watch(home_client, "free-ch", now=0.0)
        for cycle in range(3):
            renew_at = home_client.channel_ticket.expire_time - 10.0
            home_client.login(now=renew_at)
            response = home_client.renew_channel_ticket(now=renew_at)
            assert response.ticket.renewal

    def test_different_channels_do_not_interfere(self, deployment, home_client):
        """The rule is per (account, channel): watching channel A at
        home does not block watching channel B elsewhere."""
        deployment.add_free_channel("free-b", regions=["CH"], now=0.0)
        home_client.login(now=0.5)  # pick up the new lineup
        deployment.watch(home_client, "free-ch", now=0.5)
        office = deployment.create_client(
            "shared@example.org", "pw", region="CH", register=False
        )
        office.login(now=1.0)
        office.switch_channel("free-b", now=1.0)
        # Home can still renew on free-ch.
        renew_at = home_client.channel_ticket.expire_time - 10.0
        home_client.login(now=renew_at)
        assert home_client.renew_channel_ticket(now=renew_at).ticket.renewal

    def test_log_tracks_alternating_locations(self, deployment, home_client):
        manager = deployment.channel_manager_for("free-ch")
        deployment.watch(home_client, "free-ch", now=0.0)
        user_id = home_client.channel_ticket.user_id
        office = deployment.create_client(
            "shared@example.org", "pw", region="CH", register=False
        )
        office.login(now=50.0)
        office.switch_channel("free-ch", now=50.0)
        assert manager.latest_entry(user_id, "free-ch").net_addr == office.net_addr
        home_client.login(now=60.0)
        home_client.switch_channel("free-ch", now=60.0)
        assert manager.latest_entry(user_id, "free-ch").net_addr == home_client.net_addr

"""Threat model: content hijacking, eavesdropping, and de-authorization.

Covers the two stated purposes of channel encryption (Section IV-E):
keeping unauthorized parties (including formerly authorized ones) out,
and detecting injected rogue content.
"""

import pytest

from repro.core.keystream import ContentKeyRing
from repro.core.packets import ContentPacket, decrypt_packet
from repro.errors import DecryptionError


@pytest.fixture
def watching(deployment):
    client = deployment.create_client("viewer2@example.org", "pw", region="CH")
    client.login(now=0.0)
    peer = deployment.watch(client, "free-ch", now=0.0)
    return client, peer


class TestEavesdropping:
    def test_off_network_eavesdropper_cannot_decrypt(self, deployment, watching):
        """A party that captures packets but never joined holds no
        content key at all."""
        source = deployment.overlay("free-ch").source
        packet = source.server.emit_packet(10.0)
        eavesdropper_ring = ContentKeyRing()
        with pytest.raises(DecryptionError):
            decrypt_packet(eavesdropper_ring, "free-ch", packet)

    def test_payload_absent_from_wire_bytes(self, deployment):
        source = deployment.overlay("free-ch").source
        secret = b"THE-MATCH-FOOTAGE" * 10
        packet = source.server.emit_packet(10.0, payload=secret)
        assert secret not in packet.to_bytes()
        assert b"THE-MATCH" not in packet.to_bytes()

    def test_deauthorized_client_loses_stream_after_rotation(self, deployment, watching):
        """Forward secrecy for departures: a client severed before a
        re-key cannot decrypt later epochs with its old keys."""
        client, peer = watching
        source = deployment.overlay("free-ch").source
        packet_now = source.server.emit_packet(10.0)
        client.receive_packet(packet_now)  # fine while authorized

        # Sever the peer (no renewal); the source rotates onward.
        deployment.overlay("free-ch").source.sever_child(
            client.channel_ticket.user_id
        )
        later = source.server.emit_packet(100.0)  # epoch 1, serial 1
        with pytest.raises(DecryptionError):
            client.receive_packet(later)

    def test_old_key_limited_to_its_epoch(self, deployment):
        """Section IV-E: a leaked content key decrypts only the content
        of its one-minute period."""
        server = deployment.server("free-ch")
        leaked_ring = ContentKeyRing()
        leaked_ring.offer(server.current_key(30.0))  # the leak
        same_epoch = server.emit_packet(45.0)
        next_epoch = server.emit_packet(75.0)
        assert decrypt_packet(leaked_ring, "free-ch", same_epoch)
        with pytest.raises(DecryptionError):
            decrypt_packet(leaked_ring, "free-ch", next_epoch)


class TestContentInjection:
    def test_injected_packet_detected_and_not_forwarded(self, deployment, watching):
        """Hijack detection: rogue content fails authentication and the
        receiving peer refuses to propagate it."""
        client, peer = watching
        # A downstream child under our peer.
        child_client = deployment.create_client("child@example.org", "pw", region="CH")
        child_client.login(now=0.0)
        child_client.switch_channel("free-ch", now=0.0)
        child_peer = deployment.make_peer(child_client, "free-ch")
        deployment.overlay("free-ch").join(child_peer, [peer.descriptor()], now=1.0)

        genuine = deployment.server("free-ch").emit_packet(10.0)
        rogue = ContentPacket(
            serial=genuine.serial,
            sequence=genuine.sequence + 1,
            ciphertext=b"\x41" * len(genuine.ciphertext),
        )
        peer.deliver_packet(rogue)
        assert client.decrypt_failures == 1
        assert child_client.packets_decrypted == 0  # never propagated

    def test_cross_channel_replay_detected(self, deployment, watching):
        """A packet from one channel cannot masquerade on another even
        if key serials align (channel id is bound as AAD)."""
        client, _ = watching
        deployment.add_free_channel("free-x", regions=["CH"], now=0.0)
        foreign = deployment.server("free-x").emit_packet(10.0)
        with pytest.raises(DecryptionError):
            client.receive_packet(foreign)


class TestVpnLeakage:
    def test_vpn_user_admitted_as_paper_accepts(self, deployment):
        """The paper's stated assumption: VPN leakage is tolerated.  A
        user physically abroad but presenting an in-region exit address
        receives in-region service -- by design, not by accident."""
        exit_addr = deployment.geo.vpn_exit_address("CH", deployment.rng)
        roamer = deployment.create_client(
            "roamer@example.org", "pw", net_addr=exit_addr
        )
        roamer.login(now=0.0)
        assert "free-ch" in roamer.viewable_channels(now=0.0)
        response = roamer.switch_channel("free-ch", now=0.0)
        assert response.ticket.channel_id == "free-ch"

"""Threat model: compromised client software (Section IV-G2).

The paper is explicit about what a compromised client *can* do (record
and rebroadcast decrypted signal -- unpreventable by any DRM) and what
the system still prevents or detects (modified binaries failing
attestation, version floors forcing upgrades).
"""

import pytest

from repro.errors import AttestationError, ProtocolError


class TestAttestationGate:
    def test_patched_binary_rejected_at_login(self, deployment):
        patched = bytes(b ^ 0x5A for b in deployment.client_image)
        client = deployment.create_client(
            "cracker@example.org", "pw", region="CH", image=patched
        )
        with pytest.raises(AttestationError):
            client.login(now=0.0)

    def test_unknown_version_rejected(self, deployment):
        client = deployment.create_client(
            "oldsoft@example.org", "pw", region="CH", version="4.9.9"
        )
        with pytest.raises(AttestationError):
            client.login(now=0.0)

    def test_version_floor_enforced(self, deployment):
        """Deploying a new DRM protocol bumps the minimum version;
        old clients are locked out at the next login."""
        manager = deployment.user_managers["domain-0"]
        manager.register_client_image("5.0.0", deployment.client_image)
        manager.min_version = "5.0.0"
        outdated = deployment.create_client("late@example.org", "pw", region="CH")
        with pytest.raises(ProtocolError):
            outdated.login(now=0.0)
        updated = deployment.create_client(
            "fresh@example.org", "pw", region="CH", version="5.0.0"
        )
        assert updated.login(now=0.0)

    def test_keeping_pristine_copy_defeats_checksum(self, deployment):
        """The paper's footnote 4: checksum attestation is rudimentary;
        a compromised client that computes checksums over a kept
        pristine image passes.  We document the accepted weakness by
        demonstrating it."""
        pristine = deployment.client_image
        client = deployment.create_client(
            "sneaky@example.org", "pw", region="CH", image=pristine
        )
        # The 'running binary' is modified, but the client computes its
        # checksum over the pristine copy -- indistinguishable to the
        # User Manager.
        assert client.login(now=0.0)


class TestCompromisedClientCapabilities:
    def test_decrypted_signal_rebroadcast_is_possible(self, deployment):
        """A compromised authorized client CAN re-serve plaintext; the
        paper concedes this for every DRM.  What the system preserves
        is that the *P2P network itself* never carries plaintext."""
        client = deployment.create_client("insider@example.org", "pw", region="CH")
        client.login(now=0.0)
        deployment.watch(client, "free-ch", now=0.0)
        packet = deployment.server("free-ch").emit_packet(10.0)
        plaintext = client.receive_packet(packet)
        assert len(plaintext) > 0  # the insider holds the plaintext...
        assert plaintext not in packet.to_bytes()  # ...the network does not

    def test_simultaneous_use_no_worse_than_rebroadcast(self, deployment):
        """A compromised client sharing its keys lets a second device
        decrypt -- equivalent in power to rebroadcasting, as the paper
        argues.  The honest-protocol path (renewal) still shuts the
        second *account location* out; see test_simultaneous_use."""
        insider = deployment.create_client("insider@example.org", "pw", region="CH")
        insider.login(now=0.0)
        deployment.watch(insider, "free-ch", now=0.0)
        packet = deployment.server("free-ch").emit_packet(10.0)
        # Key sharing out-of-band:
        from repro.core.packets import decrypt_packet

        accomplice_ring = insider.key_ring  # handed over wholesale
        assert decrypt_packet(accomplice_ring, "free-ch", packet)

"""Threat model: ticket capture and replay (Section IV-G1).

"A stolen ticket is useful to an attacker for its contents and for
replay attack. ... an attacker that has a client's User Ticket but
not the client's private key cannot do much with the ticket."
"""

import dataclasses

import pytest

from repro.core.challenge import answer_challenge
from repro.core.protocol import JoinRequest, Switch1Request, Switch2Request
from repro.core.tickets import ChannelTicket, UserTicket
from repro.errors import (
    ChallengeError,
    DecryptionError,
    SignatureError,
    TicketInvalidError,
)


@pytest.fixture
def victim(deployment):
    client = deployment.create_client("victim@example.org", "pw", region="CH")
    client.login(now=0.0)
    client.switch_channel("free-ch", now=0.0)
    return client


@pytest.fixture
def attacker(deployment):
    """An attacker with its own keys and address, inside the region."""
    return deployment.create_client("attacker@example.org", "pw", region="CH")


class TestUserTicketCapture:
    def test_captured_user_ticket_fails_nonce_challenge(self, deployment, victim, attacker):
        """The attacker presents the victim's User Ticket from its own
        connection; the nonce response requires the victim's private
        key."""
        stolen = UserTicket.from_bytes(victim.user_ticket.to_bytes())
        manager = deployment.channel_manager_for("free-ch")
        response1 = manager.switch1(
            Switch1Request(user_ticket=stolen, channel_id="free-ch"), now=1.0
        )
        forged_signature = answer_challenge(response1.token, attacker.private_key)
        with pytest.raises(ChallengeError):
            manager.switch2(
                Switch2Request(
                    user_ticket=stolen,
                    token=response1.token,
                    signature=forged_signature,
                    channel_id="free-ch",
                ),
                observed_addr=stolen.net_addr,  # attacker even spoofs the address
                now=1.0,
            )

    def test_captured_user_ticket_fails_netaddr_check(self, deployment, victim, attacker):
        """Without address spoofing the mismatch is caught first."""
        stolen = victim.user_ticket
        manager = deployment.channel_manager_for("free-ch")
        response1 = manager.switch1(
            Switch1Request(user_ticket=stolen, channel_id="free-ch"), now=1.0
        )
        signature = answer_challenge(response1.token, attacker.private_key)
        with pytest.raises(TicketInvalidError):
            manager.switch2(
                Switch2Request(
                    user_ticket=stolen,
                    token=response1.token,
                    signature=signature,
                    channel_id="free-ch",
                ),
                observed_addr=attacker.net_addr,
                now=1.0,
            )

    def test_user_ticket_cannot_be_modified(self, deployment, victim):
        """Swapping in the attacker's public key breaks the signature."""
        attacker_key = deployment.create_client(
            "rekey@example.org", "pw", region="CH"
        ).public_key
        forged = dataclasses.replace(victim.user_ticket, client_public_key=attacker_key)
        with pytest.raises(SignatureError):
            forged.verify(
                deployment.user_managers["domain-0"].public_key, now=1.0
            )

    def test_channel_list_fetch_also_challenge_gated(self, deployment, victim, attacker):
        """Section IV-G1: the Channel Policy Manager fetch demands the
        same proof of key possession."""
        stolen = victim.user_ticket
        cpm = deployment.policy_manager
        token = cpm.request_channel_list(stolen, now=1.0)
        signature = answer_challenge(token, attacker.private_key)
        with pytest.raises(ChallengeError):
            cpm.fetch_channel_list(stolen, token, signature, None, now=1.0)


class TestChannelTicketCapture:
    def test_peer_list_substitution_captures_ticket_but_no_content(
        self, deployment, victim, attacker
    ):
        """The unsigned-peer-list attack: the attacker redirects the
        victim to itself, captures the Channel Ticket on join -- and
        still cannot decrypt anything, because the session key the
        victim receives is encrypted to the *victim's* public key and
        the attacker's copy of the ticket is bound to the victim's
        NetAddr."""
        captured = ChannelTicket.from_bytes(victim.channel_ticket.to_bytes())
        # The attacker replays the captured ticket from its own
        # connection: the NetAddr binding fails at any honest peer.
        manager_key = deployment.channel_manager_for("free-ch").public_key
        with pytest.raises(TicketInvalidError):
            captured.verify(
                manager_key,
                now=1.0,
                expected_channel="free-ch",
                observed_addr=attacker.net_addr,
            )

    def test_replayed_channel_ticket_rejected_at_peer(self, deployment, victim, attacker):
        honest_client = deployment.create_client("honest@example.org", "pw", region="CH")
        honest_client.login(now=1.0)
        honest_peer = deployment.watch(honest_client, "free-ch", now=1.0)
        captured = ChannelTicket.from_bytes(victim.channel_ticket.to_bytes())
        from repro.core.protocol import JoinReject

        result = honest_peer.handle_join(
            JoinRequest(channel_ticket=captured),
            observed_addr=attacker.net_addr,
            now=2.0,
        )
        assert isinstance(result, JoinReject)

    def test_session_key_undecryptable_without_private_key(self, deployment, victim, attacker):
        """Even if the attacker spoofs the victim's address end-to-end,
        the JoinAccept's session key is RSA-encrypted to the victim."""
        honest_client = deployment.create_client("honest@example.org", "pw", region="CH")
        honest_client.login(now=1.0)
        honest_peer = deployment.watch(honest_client, "free-ch", now=1.0)
        captured = ChannelTicket.from_bytes(victim.channel_ticket.to_bytes())
        accept = honest_peer.handle_join(
            JoinRequest(channel_ticket=captured),
            observed_addr=victim.net_addr,  # full address spoofing
            now=2.0,
        )
        from repro.core.protocol import JoinAccept

        assert isinstance(accept, JoinAccept)  # the peer cannot tell
        with pytest.raises(DecryptionError):
            attacker.private_key.decrypt(accept.encrypted_session_key)

    def test_tampered_channel_ticket_rejected(self, deployment, victim):
        forged = dataclasses.replace(victim.channel_ticket, expire_time=10**9)
        manager_key = deployment.channel_manager_for("free-ch").public_key
        with pytest.raises(SignatureError):
            forged.verify(manager_key, now=1.0)

    def test_expired_channel_ticket_replay_rejected(self, deployment, victim):
        manager_key = deployment.channel_manager_for("free-ch").public_key
        from repro.errors import TicketExpiredError

        with pytest.raises(TicketExpiredError):
            victim.channel_ticket.verify(
                manager_key, now=victim.channel_ticket.expire_time + 1.0
            )

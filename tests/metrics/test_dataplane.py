"""Tests for the data-plane counters and their registry wiring."""

from repro.metrics import DataplaneCounters, dataplane_counters
from repro.metrics.registry import registry


class TestCounterObject:
    def test_starts_at_zero(self):
        fresh = DataplaneCounters()
        assert all(v == 0 for v in fresh.snapshot().values())

    def test_reset_zeroes_everything(self):
        c = DataplaneCounters()
        c.bytes_sealed = 10
        c.fanout_messages = 3
        c.reset()
        assert all(v == 0 for v in c.snapshot().values())

    def test_snapshot_is_a_copy(self):
        c = DataplaneCounters()
        snap = c.snapshot()
        c.packets_sealed = 5
        assert snap["packets_sealed"] == 0


class TestRegistryWiring:
    def test_global_registry_has_dataplane_source(self):
        snap = registry.snapshot()
        assert "dataplane" in snap
        assert "bytes_sealed" in snap["dataplane"]

    def test_deployment_metrics_expose_dataplane(self, deployment):
        assert "dataplane" in deployment.metrics.snapshot()


class TestEndToEndBalance:
    def test_seal_open_forward_counters_balance(self, deployment):
        """One source, two tree levels: every sealed packet is opened
        once per viewing peer and forwarded once per tree link."""
        from tests.p2p.test_peer import ticketed_peer, watching_peer

        overlay = deployment.overlay("free-ch")
        a = watching_peer(deployment, "a@example.org", capacity=2)
        b = ticketed_peer(deployment, "b@example.org", capacity=2)
        overlay.join(b, [a.descriptor()], now=2.0)
        dataplane_counters.reset()
        overlay.source.broadcast_packets(3.0, 4)
        snap = dataplane_counters.snapshot()
        assert snap["packets_sealed"] == 4
        assert snap["packets_opened"] == 8  # a and b each open every packet
        assert snap["packets_forwarded"] == 8  # source->a and a->b links
        assert snap["packets_dropped_undecryptable"] == 0
        assert snap["bytes_sealed"] == 4 * 4096
        assert snap["bytes_opened"] == 8 * 4096
        # Sealing 4 frames + opening them twice covers >= 12 frames of
        # keystream; each 4 kB frame is 128 blocks.
        assert snap["keystream_blocks"] >= 12 * 128

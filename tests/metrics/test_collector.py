"""Tests for the latency collector."""

import pytest

from repro.metrics.collector import LatencyCollector


@pytest.fixture
def collector():
    return LatencyCollector()


class TestRecording:
    def test_counts_per_round(self, collector):
        collector.record("LOGIN1", 0.0, 0.1)
        collector.record("LOGIN1", 1.0, 0.2)
        collector.record("JOIN", 2.0, 0.3)
        assert collector.count("LOGIN1") == 2
        assert collector.count("JOIN") == 1
        assert collector.count("SWITCH1") == 0

    def test_rounds_listing(self, collector):
        collector.record("B", 0.0, 0.1)
        collector.record("A", 0.0, 0.1)
        assert collector.rounds() == ["A", "B"]

    def test_negative_latency_rejected(self, collector):
        with pytest.raises(ValueError):
            collector.record("X", 0.0, -0.1)

    def test_latencies_returned(self, collector):
        collector.record("X", 0.0, 0.5)
        collector.record("X", 1.0, 0.7)
        assert collector.latencies("X") == [0.5, 0.7]


class TestHourlyBinning:
    def test_bins_by_hour(self, collector):
        collector.record("X", 100.0, 0.1)
        collector.record("X", 200.0, 0.3)
        collector.record("X", 3700.0, 0.5)
        bins = collector.hourly_bins("X")
        assert [b.hour_index for b in bins] == [0, 1]
        assert bins[0].count == 2
        assert bins[0].median_latency == pytest.approx(0.2)

    def test_sparse_bins_skipped(self, collector):
        collector.record("X", 0.0, 0.1)
        collector.record("X", 10 * 3600.0, 0.2)
        assert [b.hour_index for b in collector.hourly_bins("X")] == [0, 10]

    def test_median_series(self, collector):
        collector.record("X", 100.0, 0.1)
        collector.record("X", 3700.0, 0.5)
        series = collector.hourly_median_series("X")
        assert series == [(0.0, 0.1), (3600.0, 0.5)]


class TestCorrelationWithLoad:
    def test_flat_latency_zero_correlation(self, collector):
        for hour in range(48):
            collector.record("X", hour * 3600.0 + 10, 0.1)
        r = collector.correlation_with_load("X", lambda t: int(t // 3600) % 24)
        assert r == 0.0

    def test_load_coupled_latency_positive(self, collector):
        def load(t):
            return int(t // 3600) % 24

        for hour in range(48):
            collector.record("X", hour * 3600.0 + 10, 0.1 + 0.01 * load(hour * 3600.0))
        assert collector.correlation_with_load("X", load) > 0.9

    def test_min_samples_filters_noisy_bins(self, collector):
        # Two dense bins with flat latency + one single-sample outlier.
        for i in range(10):
            collector.record("X", i * 60.0, 0.1)
            collector.record("X", 3600.0 + i * 60.0, 0.1)
        collector.record("X", 7200.0, 5.0)  # lone spike (the 0-6AM effect)
        loose = collector.correlation_with_load("X", lambda t: 10)
        strict = collector.correlation_with_load("X", lambda t: 10, min_samples_per_bin=5)
        assert strict == 0.0  # spike excluded, flat remains
        assert loose == 0.0 or loose != strict or True  # loose may include it

    def test_too_few_bins_returns_zero(self, collector):
        collector.record("X", 0.0, 0.1)
        assert collector.correlation_with_load("X", lambda t: 1) == 0.0


class TestPeakSplit:
    def test_split_follows_paper_hours(self, collector):
        collector.record("X", 19 * 3600.0, 0.9)   # peak
        collector.record("X", 10 * 3600.0, 0.1)   # off-peak
        collector.record("X", (24 + 23) * 3600.0, 0.8)  # next-day peak
        peak, off_peak = collector.split_peak_offpeak("X")
        assert sorted(peak) == [0.8, 0.9]
        assert off_peak == [0.1]

    def test_cdfs_produced(self, collector):
        for i in range(10):
            collector.record("X", 19 * 3600.0 + i, 0.1 * i)
            collector.record("X", 10 * 3600.0 + i, 0.1 * i)
        peak_cdf, off_cdf = collector.peak_offpeak_cdfs("X")
        assert len(peak_cdf) == len(off_cdf) == 10
        assert peak_cdf[-1][1] == 1.0


class TestSampleValidation:
    def test_nan_latency_rejected(self, collector):
        with pytest.raises(ValueError):
            collector.record("X", 0.0, float("nan"))
        assert collector.count("X") == 0

    def test_infinite_latency_rejected(self, collector):
        for bad in (float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                collector.record("X", 0.0, bad)
        assert collector.count("X") == 0

    def test_negative_latency_rejected(self, collector):
        with pytest.raises(ValueError):
            collector.record("X", 0.0, -0.1)

    def test_nonfinite_time_rejected(self, collector):
        with pytest.raises(ValueError):
            collector.record("X", float("nan"), 0.1)
        with pytest.raises(ValueError):
            collector.record("X", float("inf"), 0.1)

    def test_rejected_sample_does_not_poison_medians(self, collector):
        collector.record("X", 0.0, 0.2)
        with pytest.raises(ValueError):
            collector.record("X", 1.0, float("nan"))
        series = collector.hourly_median_series("X")
        assert series == [(0.0, 0.2)]

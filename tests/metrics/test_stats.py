"""Tests for the statistics primitives."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import (
    cdf_at,
    cdf_points,
    ks_distance,
    mean,
    median,
    pearson_correlation,
    percentile,
)

floats_list = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=100
)


class TestMedian:
    def test_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even_averages(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_single(self):
        assert median([7.0]) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])

    def test_does_not_mutate(self):
        data = [3.0, 1.0, 2.0]
        median(data)
        assert data == [3.0, 1.0, 2.0]


class TestPercentile:
    def test_endpoints(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 5.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_median_agreement(self):
        data = [random.Random(1).random() for _ in range(101)]
        assert percentile(data, 50) == pytest.approx(median(data))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestPearson:
    def test_perfect_positive(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [2.0, 4.0, 6.0, 8.0]
        assert pearson_correlation(xs, ys) == pytest.approx(1.0)

    def test_perfect_negative(self):
        xs = [1.0, 2.0, 3.0]
        ys = [3.0, 2.0, 1.0]
        assert pearson_correlation(xs, ys) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = random.Random(2)
        xs = [rng.random() for _ in range(5000)]
        ys = [rng.random() for _ in range(5000)]
        assert abs(pearson_correlation(xs, ys)) < 0.05

    def test_constant_series_returns_zero(self):
        """The flat-latency limit: no variance, no correlation."""
        assert pearson_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1.0], [1.0, 2.0])

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1.0], [1.0])

    def test_agrees_with_numpy(self):
        import numpy

        rng = random.Random(3)
        xs = [rng.gauss(0, 1) for _ in range(200)]
        ys = [x * 0.5 + rng.gauss(0, 1) for x in xs]
        ours = pearson_correlation(xs, ys)
        theirs = float(numpy.corrcoef(xs, ys)[0, 1])
        assert ours == pytest.approx(theirs, abs=1e-10)


class TestCdf:
    def test_points_monotone(self):
        points = cdf_points([3.0, 1.0, 2.0, 2.0])
        values = [v for v, _ in points]
        fractions = [f for _, f in points]
        assert values == sorted(values)
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_empty(self):
        assert cdf_points([]) == []

    def test_cdf_at(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert cdf_at(data, 2.0) == 0.5
        assert cdf_at(data, 0.0) == 0.0
        assert cdf_at(data, 10.0) == 1.0

    def test_cdf_at_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_at([], 1.0)


class TestKsDistance:
    def test_identical_samples_zero(self):
        data = [1.0, 2.0, 3.0]
        assert ks_distance(data, data) == 0.0

    def test_disjoint_samples_one(self):
        assert ks_distance([1.0, 2.0], [10.0, 20.0]) == 1.0

    def test_same_distribution_small(self):
        rng = random.Random(4)
        a = [rng.gauss(0, 1) for _ in range(3000)]
        b = [rng.gauss(0, 1) for _ in range(3000)]
        assert ks_distance(a, b) < 0.05

    def test_shifted_distribution_large(self):
        rng = random.Random(5)
        a = [rng.gauss(0, 1) for _ in range(1000)]
        b = [rng.gauss(2, 1) for _ in range(1000)]
        assert ks_distance(a, b) > 0.5

    def test_symmetry(self):
        rng = random.Random(6)
        a = [rng.random() for _ in range(100)]
        b = [rng.random() * 2 for _ in range(150)]
        assert ks_distance(a, b) == pytest.approx(ks_distance(b, a))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_distance([], [1.0])


@given(floats_list)
@settings(max_examples=100)
def test_property_median_between_min_max(values):
    m = median(values)
    assert min(values) <= m <= max(values)


@given(floats_list)
@settings(max_examples=100)
def test_property_percentile_monotone_in_q(values):
    assert percentile(values, 25) <= percentile(values, 50) <= percentile(values, 90)


@given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=2, max_size=50))
@settings(max_examples=100)
def test_property_pearson_bounded(values):
    shifted = [v * 2 + 1 for v in values]
    r = pearson_correlation(values, shifted)
    assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9

"""Tests for report rendering."""

from repro.metrics.reporting import cdf_summary, format_series, format_table, sparkline


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["round", "median"], [("LOGIN1", 0.1), ("JOIN", 0.2)])
        assert "round" in text
        assert "LOGIN1" in text
        assert "0.2" in text

    def test_alignment(self):
        text = format_table(["a", "b"], [("xxxxxx", 1), ("y", 22)])
        lines = text.splitlines()
        assert len({line.index("  ") for line in lines if "  " in line}) >= 1
        assert len(lines) == 4  # header, rule, two rows

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestFormatSeries:
    def test_series_rendered(self):
        text = format_series("title", [(0.0, 1.0), (1.0, 2.0)], "t", "v")
        assert text.splitlines()[0] == "title"
        assert "1.0000" in text or "1.000" in text


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_bounded(self):
        assert len(sparkline(list(range(1000)), width=60)) <= 70

    def test_flat_series(self):
        line = sparkline([5.0] * 10)
        assert len(set(line)) == 1

    def test_peak_visible(self):
        line = sparkline([0.0, 0.0, 10.0, 0.0])
        assert line[2] != line[0]


class TestCdfSummary:
    def test_probes_extracted(self):
        cdf = [(float(i), (i + 1) / 10.0) for i in range(10)]
        rows = cdf_summary("X", cdf, probes=(0.5, 0.9))
        assert rows[0] == ("X", 0.5, 4.0)
        assert rows[1] == ("X", 0.9, 8.0)

    def test_empty_cdf_yields_nan(self):
        import math

        rows = cdf_summary("X", [], probes=(0.5,))
        assert math.isnan(rows[0][2])

"""End-to-end tests: the traced storm and the report renderer."""

import pytest

from repro.trace.report import render_report, render_tree, round_breakdown
from repro.trace.storm import run_switch_storm


@pytest.fixture(scope="module")
def storm():
    return run_switch_storm(clients=3, seed=17)


class TestStorm:
    def test_every_operation_completes(self, storm):
        assert storm.errors == []
        assert storm.counts["LOGIN"] == 3
        assert storm.counts["SWITCH"] == 3
        assert storm.counts["RENEWAL"] == 3
        assert storm.counts["JOIN"] == 2

    def test_all_protocol_rounds_traced(self, storm):
        names = {s.name for s in storm.tracer.spans}
        for expected in (
            "LOGIN", "LOGIN1", "LOGIN2", "UM.LOGIN1", "UM.LOGIN2",
            "SWITCH", "SWITCH1", "SWITCH2", "CM.SWITCH1", "CM.SWITCH2",
            "RENEWAL", "RENEW1", "RENEW2",
            "JOIN", "JOIN.serve", "KEYPUSH", "KEYPUSH.recv", "CS.KEYS",
            "rpc:login1", "rpc:switch1",
        ):
            assert expected in names, f"missing span {expected}"

    def test_spans_causally_linked(self, storm):
        """Every async op trace runs client round -> rpc -> server
        handler with intact parent links."""
        spans = storm.tracer.spans
        by_id = {s.span_id: s for s in spans}
        rpcs = [s for s in spans if s.kind == "rpc"]
        assert rpcs
        for rpc in rpcs:
            parent = by_id[rpc.parent_id]
            assert parent.kind == "round"
            assert parent.trace_id == rpc.trace_id
        servers = [s for s in spans if s.name.startswith(("UM.", "CM."))]
        assert servers
        # RPC-path handlers nest under the rpc span; the synchronous
        # overlay viewers call the managers directly from their rounds.
        assert all(by_id[s.parent_id].kind in ("rpc", "round") for s in servers)
        assert any(by_id[s.parent_id].kind == "rpc" for s in servers)

    def test_all_spans_closed(self, storm):
        assert storm.tracer.snapshot()["open_spans"] == 0

    def test_renewal_keeps_viewers_ticketed(self, storm):
        """Renewal happened near expiry: the storm's final tickets were
        issued in the renewal window, not at the original switch."""
        lifetime = storm.deployment.channel_ticket_lifetime
        renewals = [s for s in storm.tracer.spans if s.name == "RENEWAL"]
        assert all(s.start >= lifetime - 60.0 for s in renewals)


class TestReport:
    def test_breakdown_rows_have_latency_split(self, storm):
        rows = {row["name"]: row for row in round_breakdown(storm.tracer.spans)}
        rpc = rows["rpc:login1"]
        assert rpc["count"] == 3
        assert rpc["p95"] >= rpc["p50"] > 0.0
        # The split accounts for the whole round trip.
        assert rpc["avg_network"] > 0.0
        assert rpc["avg_service"] > 0.0

    def test_render_report_lists_every_round(self, storm):
        text = render_report(storm.tracer.spans)
        assert "spans across" in text
        for name in ("LOGIN1", "SWITCH2", "RENEW1", "KEYPUSH"):
            assert name in text

    def test_render_tree_nests_rounds_under_ops(self, storm):
        login_trace = next(
            s.trace_id for s in storm.tracer.spans if s.name == "LOGIN"
        )
        text = render_tree(storm.tracer.spans, trace_id=login_trace)
        lines = text.splitlines()
        op_line = next(l for l in lines if "LOGIN [op]" in l)
        round_line = next(l for l in lines if "LOGIN1 [round]" in l)
        rpc_line = next(l for l in lines if "rpc:login1 [rpc]" in l)
        indent = lambda l: len(l) - len(l.lstrip())
        assert indent(op_line) < indent(round_line) < indent(rpc_line)

    def test_empty_buffer_renders_placeholder(self):
        assert render_report([]) == "(no spans recorded)"

"""Tests for causal propagation across the virtual-time RPC layer."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, RegionRtt
from repro.sim.rpc import RpcService, VirtualNetwork
from repro.sim.station import ServiceStation
from repro.trace.span import Tracer, maybe_span

RTT = 0.1


def make_traced_network(rtt=RTT, loss=0.0):
    sim = Simulator()
    latency = LatencyModel(
        random.Random(1),
        table={("client", "dc"): RegionRtt(base_rtt=rtt, sigma=0.0001, slow_path_prob=0.0)},
    )
    network = VirtualNetwork(sim, latency, random.Random(2), loss_probability=loss)
    tracer = Tracer(clock=lambda: sim.now)
    network.tracer = tracer
    return sim, network, tracer


class TestRpcHop:
    def test_round_rpc_server_linkage(self):
        """Client round context -> rpc span -> server-side handler span
        form one causally linked chain across the hop."""
        sim, network, tracer = make_traced_network()

        class Server:
            tracer = None

            def handle(self, payload, ctx):
                with maybe_span(self.tracer, "SRV.handle", now=ctx.now, kind="server"):
                    return payload * 2

        server = Server()
        server.tracer = tracer
        service = RpcService(address="svc://a", region="dc")
        service.register("dbl", server.handle)
        network.attach(service)

        round_span = tracer.start_span("ROUND", now=0.0, kind="round")
        network.call(
            "c", "client", "svc://a", "dbl", 21,
            on_reply=lambda r: tracer.finish(round_span),
            trace=round_span.context,
        )
        sim.run()

        by_name = {s.name: s for s in tracer.spans}
        rpc = by_name["rpc:dbl"]
        srv = by_name["SRV.handle"]
        assert rpc.parent_id == round_span.span_id
        assert srv.parent_id == rpc.span_id
        assert srv.trace_id == rpc.trace_id == round_span.trace_id

    def test_request_context_carries_trace(self):
        sim, network, tracer = make_traced_network()
        seen = []
        service = RpcService(address="svc://a", region="dc")
        service.register("probe", lambda payload, ctx: seen.append(ctx.trace))
        network.attach(service)
        root = tracer.start_span("root", now=0.0)
        network.call("c", "client", "svc://a", "probe", None,
                     on_reply=lambda r: None, trace=root.context)
        sim.run()
        assert seen[0] is not None
        assert seen[0].trace_id == root.trace_id

    def test_network_time_is_both_legs(self):
        sim, network, tracer = make_traced_network(rtt=0.2)
        service = RpcService(address="svc://a", region="dc")
        service.register("noop", lambda p, c: None)
        network.attach(service)
        network.call("c", "client", "svc://a", "noop", None, on_reply=lambda r: None)
        sim.run()
        (rpc,) = [s for s in tracer.spans if s.kind == "rpc"]
        assert rpc.network_time == pytest.approx(0.2, rel=0.01)
        assert rpc.duration == pytest.approx(0.2, rel=0.01)

    def test_untraced_call_records_nothing(self):
        """With no tracer attached the RPC layer stays silent."""
        sim, network, tracer = make_traced_network()
        network.tracer = None
        service = RpcService(address="svc://a", region="dc")
        service.register("x", lambda p, c: p)
        network.attach(service)
        network.call("c", "client", "svc://a", "x", 1, on_reply=lambda r: None)
        sim.run()
        assert tracer.spans == []


class TestQueueAttribution:
    def test_station_wait_lands_in_queue_time(self):
        """Three requests at a single slow server: the later rpc spans
        carry real queue time, the service time matches the station."""
        sim, network, tracer = make_traced_network(rtt=0.0002)
        station = ServiceStation(sim, n_servers=1, mean_service_time=1.0,
                                 rng=random.Random(3))
        service = RpcService(address="svc://farm", region="dc", station=station)
        service.register("work", lambda p, c: p)
        network.attach(service)
        for i in range(3):
            network.call("c", "client", "svc://farm", "work", i,
                         on_reply=lambda r: None)
        sim.run()
        rpcs = [s for s in tracer.spans if s.kind == "rpc"]
        assert len(rpcs) == 3
        assert all(s.service_time > 0.0 for s in rpcs)
        # The queue was empty for the first arrival only.
        assert sum(1 for s in rpcs if s.queue_time > 0.0) == 2
        for s in rpcs:
            assert s.duration == pytest.approx(
                s.queue_time + s.service_time + s.network_time, rel=0.01
            )


class TestDropsAndTimeouts:
    def test_lost_request_span_closes_with_reason(self):
        sim, network, tracer = make_traced_network(loss=1.0)
        service = RpcService(address="svc://a", region="dc")
        service.register("x", lambda p, c: p)
        network.attach(service)
        network.call("c", "client", "svc://a", "x", None,
                     on_reply=lambda r: None, timeout=1.0, on_timeout=lambda: None)
        sim.run()
        (rpc,) = [s for s in tracer.spans if s.kind == "rpc"]
        assert rpc.end is not None
        assert rpc.annotations.get("dropped") == "request-lost"

    def test_timeout_event_cancelled_on_delivery(self):
        """Regression: a delivered reply must cancel its timeout event,
        not leave it to fire (and advance the clock) at the horizon."""
        sim, network, tracer = make_traced_network(rtt=0.1)
        service = RpcService(address="svc://a", region="dc")
        service.register("x", lambda p, c: p)
        network.attach(service)
        network.call("c", "client", "svc://a", "x", 1,
                     on_reply=lambda r: None,
                     timeout=10_000.0, on_timeout=lambda: None)
        sim.run()
        # Pre-fix the dead timeout event dragged the clock to t=10000.
        assert sim.now == pytest.approx(0.1, rel=0.01)

"""Tests for the span primitives: lifecycle, clocks, persistence."""

import pytest

from repro.trace.span import TraceError, Tracer, load_spans, maybe_span


class TestLifecycle:
    def test_root_span_starts_new_trace(self):
        tracer = Tracer()
        a = tracer.start_span("A", now=1.0)
        b = tracer.start_span("B", now=2.0)
        assert a.parent_id is None and b.parent_id is None
        assert a.trace_id != b.trace_id

    def test_stacked_context_parents_inner_spans(self):
        tracer = Tracer()
        with tracer.span("outer", now=0.0) as outer:
            inner = tracer.start_span("inner", now=0.5)
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id

    def test_explicit_parent_crosses_async_hop(self):
        tracer = Tracer()
        op = tracer.start_span("op", now=0.0)
        # No ambient stack -- the callback chain passes the context.
        later = tracer.start_span("later", now=5.0, parent=op.context)
        assert later.parent_id == op.span_id

    def test_explicit_none_forces_new_root_inside_context(self):
        tracer = Tracer()
        with tracer.span("outer", now=0.0) as outer:
            root = tracer.start_span("fresh", now=0.1, parent=None)
        assert root.parent_id is None
        assert root.trace_id != outer.trace_id

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        span = tracer.start_span("x", now=1.0)
        tracer.finish(span, now=2.0)
        tracer.finish(span, now=9.0)
        assert span.duration == pytest.approx(1.0)

    def test_exception_annotates_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom", now=0.0):
                raise ValueError("nope")
        (span,) = tracer.spans
        assert span.annotations["error"] == "ValueError"
        assert span.end is not None
        assert tracer.current is None  # stack unwound

    def test_pop_underflow_raises(self):
        with pytest.raises(TraceError):
            Tracer().pop()


class TestClock:
    def test_explicit_now_beats_clock(self):
        tracer = Tracer(clock=lambda: 99.0)
        assert tracer.now(3.0) == 3.0
        assert tracer.now() == 99.0

    def test_no_clock_falls_back_to_zero(self):
        assert Tracer().now() == 0.0

    def test_clock_drives_span_times(self):
        ticks = iter([10.0, 12.5])
        tracer = Tracer(clock=lambda: next(ticks))
        span = tracer.start_span("timed")
        tracer.finish(span)
        assert span.duration == pytest.approx(2.5)


class TestBudget:
    def test_over_budget_spans_dropped_but_still_parent(self):
        tracer = Tracer(max_spans=1)
        kept = tracer.start_span("kept", now=0.0)
        extra = tracer.start_span("extra", now=1.0, parent=kept.context)
        assert len(tracer.spans) == 1
        assert tracer.dropped == 1
        assert extra.trace_id == kept.trace_id  # causality survives


class TestPersistence:
    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("op", now=0.0, kind="op", who="alice"):
            child = tracer.start_span("round", now=0.5, kind="round")
            child.queue_time = 0.1
            child.network_time = 0.2
            tracer.finish(child, now=1.0)
        path = str(tmp_path / "spans.jsonl")
        assert tracer.save(path) == 2
        loaded = load_spans(path)
        assert [s.name for s in loaded] == ["op", "round"]
        by_name = {s.name: s for s in loaded}
        assert by_name["round"].parent_id == by_name["op"].span_id
        assert by_name["round"].queue_time == pytest.approx(0.1)
        assert by_name["round"].network_time == pytest.approx(0.2)
        assert by_name["op"].annotations == {"who": "alice"}


class TestMaybeSpan:
    def test_none_tracer_is_noop(self):
        with maybe_span(None, "x", now=1.0) as span:
            assert span is None

    def test_real_tracer_records(self):
        tracer = Tracer()
        with maybe_span(tracer, "x", now=1.0, kind="server", k="v") as span:
            assert span is not None
        assert tracer.spans[0].annotations == {"k": "v"}
        assert tracer.spans[0].kind == "server"


class TestSnapshot:
    def test_counters(self):
        tracer = Tracer()
        with tracer.span("done", now=0.0):
            pass
        tracer.start_span("open", now=1.0)
        snap = tracer.snapshot()
        assert snap["spans"] == 2
        assert snap["open_spans"] == 1
        assert snap["traces"] == 2

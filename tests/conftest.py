"""Shared fixtures for the test suite.

The heavyweight fixtures (a fully wired deployment with a provisioned
channel lineup) are module-scoped where mutation is not an issue and
function-scoped where tests mutate manager state.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.deployment import Deployment


@pytest.fixture
def drbg() -> HmacDrbg:
    """A fresh deterministic bit generator."""
    return HmacDrbg(b"test-seed")


@pytest.fixture
def rng() -> random.Random:
    """A seeded stdlib RNG."""
    return random.Random(12345)


@pytest.fixture(scope="session")
def session_keypair():
    """One RSA keypair shared by tests that only need *a* key."""
    return generate_keypair(HmacDrbg(b"session-keypair"), bits=512)


@pytest.fixture
def deployment() -> Deployment:
    """A small fully wired deployment with a typical channel lineup.

    * ``free-ch``: free-to-view in CH and DE;
    * ``free-uk``: free-to-view in UK only;
    * ``premium``: CH-only, requires subscription package "101".
    """
    dep = Deployment(seed=42)
    dep.add_free_channel("free-ch", regions=["CH", "DE"])
    dep.add_free_channel("free-uk", regions=["UK"])
    dep.add_subscription_channel("premium", regions=["CH"], package_id="101")
    return dep


@pytest.fixture
def viewer(deployment):
    """A logged-in client in region CH, not yet watching anything."""
    client = deployment.create_client("viewer@example.org", "hunter2", region="CH")
    client.login(now=0.0)
    return client

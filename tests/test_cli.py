"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("week", "calibrate", "ablations", "demo", "threats"):
            args = parser.parse_args([command] if command != "week" else ["week"])
            assert args.command == command or command != "week"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_week_options(self):
        args = build_parser().parse_args(["week", "--peak", "99", "--channels", "7"])
        assert args.peak == 99
        assert args.channels == 7


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "logged in" in out
        assert "decrypted 2 packets" in out

    def test_calibrate_runs(self, capsys):
        assert main(["calibrate", "--repetitions", "3"]) == 0
        out = capsys.readouterr().out
        assert "switch2" in out

    def test_ablations_run(self, capsys):
        assert main(["ablations", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        for marker in ("A1", "A2", "A3", "A4", "A5"):
            assert marker in out


class TestStoreCommand:
    def _store_dir(self, tmp_path):
        from repro.store import DurableStore, FileBackend

        path = str(tmp_path / "cm-default")
        store = DurableStore(FileBackend(path))
        for i in range(4):
            store.append(1, bytes([i]) * 8)
        return path

    def test_verify_healthy(self, tmp_path, capsys):
        path = self._store_dir(tmp_path)
        assert main(["store", "verify", path]) == 0
        assert "healthy" in capsys.readouterr().out

    def test_inspect_prints_histogram(self, tmp_path, capsys):
        path = self._store_dir(tmp_path)
        assert main(["store", "inspect", path]) == 0
        out = capsys.readouterr().out
        assert "record types" in out
        assert "type 1: 4" in out

    def test_torn_tail_fails_then_compact_heals(self, tmp_path, capsys):
        import os

        path = self._store_dir(tmp_path)
        wal = os.path.join(path, "wal.bin")
        with open(wal, "r+b") as fh:
            fh.truncate(os.path.getsize(wal) - 3)
        assert main(["store", "verify", path]) == 1
        assert "torn tail" in capsys.readouterr().out
        assert main(["store", "compact", path]) == 0
        assert main(["store", "verify", path]) == 0

    def test_missing_directory_is_an_error_and_not_created(self, tmp_path, capsys):
        import os

        path = str(tmp_path / "typo" / "cm-default")
        assert main(["store", "verify", path]) == 2
        assert "no store directory" in capsys.readouterr().err
        assert not os.path.exists(path)

    def test_corrupt_snapshot_is_a_clean_error(self, tmp_path, capsys):
        import os

        path = self._store_dir(tmp_path)
        with open(os.path.join(path, "snapshot.bin"), "wb") as fh:
            fh.write(b"\x00" * 32)
        assert main(["store", "verify", path]) == 2
        assert "error:" in capsys.readouterr().err


class TestShardCommand:
    ARGS = ["--users", "24", "--channels", "6", "--vnodes", "64"]

    def test_plan_prints_placement_and_movement(self, capsys):
        assert main(["shard", "plan", "--add-um", "1", "--add-cm", "1"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "user shard" in out
        assert "channel shard" in out
        assert "keys move" in out
        assert "ideal minimum" in out

    def test_status_reports_ok_on_healthy_deployment(self, capsys):
        assert main(["shard", "status"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "user directory" in out
        assert "viewing partition" in out
        assert "invariants: OK" in out

    def test_rebalance_executes_and_verifies(self, capsys):
        assert main(["shard", "rebalance", "--add-um", "1", "--add-cm", "1"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "resharded in user shard(s): domain-2" in out
        assert "resharded in channel shard(s): partition-0" in out
        assert "keys moved" in out
        assert "invariants: OK" in out

    def test_rebalance_without_additions_is_a_usage_error(self, capsys):
        assert main(["shard", "rebalance"] + self.ARGS) == 2
        assert "nothing to do" in capsys.readouterr().err

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("week", "calibrate", "ablations", "demo", "threats"):
            args = parser.parse_args([command] if command != "week" else ["week"])
            assert args.command == command or command != "week"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_week_options(self):
        args = build_parser().parse_args(["week", "--peak", "99", "--channels", "7"])
        assert args.peak == 99
        assert args.channels == 7


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "logged in" in out
        assert "decrypted 2 packets" in out

    def test_calibrate_runs(self, capsys):
        assert main(["calibrate", "--repetitions", "3"]) == 0
        out = capsys.readouterr().out
        assert "switch2" in out

    def test_ablations_run(self, capsys):
        assert main(["ablations", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        for marker in ("A1", "A2", "A3", "A4", "A5"):
            assert marker in out

"""The user-partitioned viewing log and its router contract."""

import pytest

from repro.core.channel_manager import ViewingLogEntry
from repro.errors import ReproError, ShardFrozenError
from repro.sharding import ShardedViewingLog, ViewingLogPartition
from repro.store import DurableStore, MemoryBackend


def entry(uid, channel="ch", at=0.0, renewal=False, addr="1.2.3.4"):
    return ViewingLogEntry(
        user_id=uid, channel_id=channel, net_addr=addr,
        issued_at=at, renewal=renewal, expires_at=at + 900.0,
    )


@pytest.fixture
def router():
    log = ShardedViewingLog(vnodes=64)
    log.add_partition("dom-0")
    log.add_partition("dom-1")
    return log


class TestRouting:
    def test_append_routes_to_owner(self, router):
        owner = router.append(entry(7))
        assert owner == router.owner_of(7)
        assert router.partition(owner).latest(7, "ch") is not None

    def test_latest_reads_the_owning_partition(self, router):
        router.append(entry(7, at=1.0))
        router.append(entry(7, at=2.0, renewal=True))
        latest = router.latest(7, "ch")
        assert latest.issued_at == 2.0
        assert latest.renewal

    def test_users_spread_over_partitions(self, router):
        owners = {router.owner_of(uid) for uid in range(64)}
        assert owners == {"dom-0", "dom-1"}

    def test_combined_log_merges_in_issue_order(self, router):
        for uid, at in ((1, 3.0), (2, 1.0), (3, 2.0)):
            router.append(entry(uid, at=at))
        assert [e.issued_at for e in router.combined_log()] == [1.0, 2.0, 3.0]

    def test_misplaced_users_empty_outside_migration(self, router):
        for uid in range(16):
            router.append(entry(uid))
        assert router.misplaced_users() == []


class TestFreeze:
    def test_frozen_user_defers_append_and_latest(self, router):
        router.append(entry(7))
        router.freeze_users([7])
        with pytest.raises(ShardFrozenError):
            router.append(entry(7, at=1.0))
        with pytest.raises(ShardFrozenError):
            router.latest(7, "ch")
        assert router.counters.frozen_deferrals == 2
        # The refused append left no partial state behind.
        assert router.partition(router.owner_of(7)).latest(7, "ch").issued_at == 0.0

    def test_thaw_restores_service(self, router):
        router.freeze_users([7])
        router.thaw_users([7])
        router.append(entry(7))
        assert router.latest(7, "ch") is not None


class TestMembership:
    def test_duplicate_partition_rejected(self, router):
        with pytest.raises(ReproError):
            router.add_partition("dom-0")

    def test_detached_partition_owns_no_keys(self, router):
        router.add_partition("dom-2", join_ring=False)
        assert "dom-2" not in router.ring.nodes()
        owners = {router.owner_of(uid) for uid in range(64)}
        assert "dom-2" not in owners


class TestPartitionState:
    def test_absorb_is_idempotent(self):
        source, target = ViewingLogPartition("a"), ViewingLogPartition("b")
        for at in (1.0, 2.0):
            source.append(entry(7, at=at))
        moved = source.entries_for_user(7)
        assert target.absorb(moved) == 2
        assert target.absorb(moved) == 0  # resumed migration re-copies safely
        assert len(target.entries()) == 2

    def test_remove_user_drops_only_that_user(self):
        partition = ViewingLogPartition("a")
        partition.append(entry(7))
        partition.append(entry(8))
        removed = partition.remove_user(7)
        assert [e.user_id for e in removed] == [7]
        assert partition.user_ids() == [8]
        assert partition.latest(7, "ch") is None

    def test_recover_from_snapshot_and_wal(self):
        store = DurableStore(MemoryBackend())
        partition = ViewingLogPartition("dom-0")
        partition.append(entry(7, at=1.0))
        partition.attach_store(store, now=1.0)
        partition.append(entry(8, at=2.0))
        partition.remove_user(7)

        recovered = ViewingLogPartition.recover(store, "dom-0")
        assert recovered.user_ids() == [8]
        assert recovered.latest(8, "ch").issued_at == 2.0

    def test_recover_rejects_foreign_store(self):
        store = DurableStore(MemoryBackend())
        ViewingLogPartition("dom-0").attach_store(store)
        with pytest.raises(ReproError):
            ViewingLogPartition.recover(store, "dom-1")

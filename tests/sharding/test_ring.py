"""Consistent-hash ring: unit behavior plus the acceptance properties.

The acceptance bar from the sharding issue, verified here:

* balance -- 10k keys over 16 shards at the default 512 vnodes stay
  within 15% of the per-shard mean;
* minimal movement -- adding or removing one shard moves about 1/N of
  the keys, never the wholesale reshuffle a modulus change causes;
* cross-process determinism -- placement is a pure function of
  (salt, vnodes, membership), byte-identical in a fresh interpreter
  with a different PYTHONHASHSEED.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.sharding import ConsistentHashRing, plan_movement
from repro.sharding.ring import DEFAULT_VNODES

NAMES = st.text(
    st.characters(min_codepoint=48, max_codepoint=122), min_size=1, max_size=12
)


class TestMembership:
    def test_duplicate_node_rejected(self):
        ring = ConsistentHashRing(nodes=["a"])
        with pytest.raises(ReproError):
            ring.add_node("a")

    def test_remove_unknown_node_rejected(self):
        with pytest.raises(ReproError):
            ConsistentHashRing(nodes=["a"]).remove_node("b")

    def test_empty_ring_has_no_owner(self):
        with pytest.raises(ReproError):
            ConsistentHashRing().node_for("key")

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ReproError):
            ConsistentHashRing(vnodes=0)

    def test_copy_is_independent(self):
        ring = ConsistentHashRing(nodes=["a", "b"])
        clone = ring.copy()
        clone.add_node("c")
        assert ring.nodes() == ["a", "b"]
        assert clone.nodes() == ["a", "b", "c"]


class TestPlacement:
    def test_salts_place_independently(self):
        plain = ConsistentHashRing(salt=b"user", nodes=["a", "b", "c", "d"])
        other = ConsistentHashRing(salt=b"viewing", nodes=["a", "b", "c", "d"])
        keys = [f"key-{i}" for i in range(200)]
        assert any(plain.node_for(k) != other.node_for(k) for k in keys)

    def test_balance_within_15_percent_at_16_shards_10k_keys(self):
        ring = ConsistentHashRing(
            vnodes=DEFAULT_VNODES, salt=b"user",
            nodes=[f"shard-{i:02d}" for i in range(16)],
        )
        keys = [f"user{i:05d}@example.org" for i in range(10_000)]
        load = ring.load(keys)
        mean = len(keys) / 16
        for shard, count in load.items():
            assert abs(count - mean) / mean <= 0.15, (shard, count, load)

    def test_add_one_shard_moves_about_one_seventeenth(self):
        before = ConsistentHashRing(nodes=[f"s{i}" for i in range(16)])
        after = before.copy()
        after.add_node("s16")
        keys = [f"user{i:05d}" for i in range(10_000)]
        movement = plan_movement(before, after, keys)
        # Ideal is 1/17 ~ 5.9%; allow 2x slack for vnode granularity.
        assert movement.moved_fraction <= 2 / 17, movement.moved_fraction
        # And every moved key lands on the new shard, nothing shuffles
        # between surviving shards.
        assert all(dst == "s16" for _, dst in movement.moved.values())


class TestMovementProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        nodes=st.lists(NAMES, min_size=2, max_size=8, unique=True),
        newcomer=NAMES,
        n_keys=st.integers(min_value=50, max_value=300),
    )
    def test_adding_a_shard_moves_at_most_2_over_n(self, nodes, newcomer, n_keys):
        if newcomer in nodes:
            return
        before = ConsistentHashRing(vnodes=64, nodes=nodes)
        after = before.copy()
        after.add_node(newcomer)
        keys = [f"k{i}" for i in range(n_keys)]
        movement = plan_movement(before, after, keys)
        bound = 2.0 / len(after.nodes())
        # Small vnode counts and small key sets are granular; allow an
        # absolute floor of a few keys on top of the 2/N fraction.
        assert movement.moved_count <= bound * n_keys + 8, movement.moved_fraction
        assert all(dst == newcomer for _, dst in movement.moved.values())

    @settings(max_examples=30, deadline=None)
    @given(
        nodes=st.lists(NAMES, min_size=3, max_size=8, unique=True),
        n_keys=st.integers(min_value=50, max_value=300),
        pick=st.integers(min_value=0),
    )
    def test_removing_a_shard_only_moves_its_own_keys(self, nodes, n_keys, pick):
        before = ConsistentHashRing(vnodes=64, nodes=nodes)
        doomed = sorted(nodes)[pick % len(nodes)]
        after = before.copy()
        after.remove_node(doomed)
        keys = [f"k{i}" for i in range(n_keys)]
        movement = plan_movement(before, after, keys)
        for key, (src, dst) in movement.moved.items():
            assert src == doomed
            assert dst != doomed

    @settings(max_examples=30, deadline=None)
    @given(
        nodes=st.lists(NAMES, min_size=1, max_size=8, unique=True),
        keys=st.lists(NAMES, min_size=1, max_size=50),
    )
    def test_placement_is_deterministic_within_process(self, nodes, keys):
        one = ConsistentHashRing(vnodes=32, salt=b"x", nodes=nodes)
        two = ConsistentHashRing(vnodes=32, salt=b"x", nodes=list(reversed(nodes)))
        assert one.placement(keys) == two.placement(keys)


def test_placement_is_deterministic_across_processes():
    """A fresh interpreter with a different hash seed places identically."""
    nodes = [f"shard-{i}" for i in range(5)]
    keys = [f"user{i}@example.org" for i in range(64)]
    ring = ConsistentHashRing(vnodes=128, salt=b"user", nodes=nodes)
    local = [ring.node_for(k) for k in keys]
    script = (
        "from repro.sharding import ConsistentHashRing\n"
        f"ring = ConsistentHashRing(vnodes=128, salt=b'user', nodes={nodes!r})\n"
        f"print('\\n'.join(ring.node_for(k) for k in {keys!r}))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONHASHSEED"] = "12345"
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, check=True, env=env,
    )
    assert out.stdout.strip().split("\n") == local

"""ShardDirectory: pins outrank the ring, freezes defer lookups."""

import pytest

from repro.errors import ReproError, ShardFrozenError
from repro.sharding import ConsistentHashRing, ShardDirectory


@pytest.fixture
def directory():
    ring = ConsistentHashRing(vnodes=64, salt=b"user", nodes=["a", "b", "c"])
    return ShardDirectory(ring, kind="user")


class TestLookup:
    def test_follows_the_ring(self, directory):
        for key in ("alice@x", "bob@y", "carol@z"):
            assert directory.shard_for(key) == directory.ring.node_for(key)

    def test_load_and_lookup_counters(self, directory):
        directory.shard_for("alice@x")
        directory.shard_for("alice@x")
        assert directory.lookups == 2
        assert sum(directory.load.values()) == 2

    def test_dump_is_json_friendly(self, directory):
        import json

        directory.pin("alice@x", "c")
        directory.freeze(["bob@y"])
        dump = directory.dump()
        json.dumps(dump)
        assert dump["kind"] == "user"
        assert dump["pins"] == {"alice@x": "c"}
        assert dump["frozen"] == ["bob@y"]


class TestPins:
    def test_pin_overrides_ring(self, directory):
        natural = directory.shard_for("alice@x")
        target = next(n for n in ("a", "b", "c") if n != natural)
        directory.pin("alice@x", target)
        assert directory.shard_for("alice@x") == target

    def test_pin_may_target_off_ring_shard(self, directory):
        # A dedicated farm serving only pinned keys never joins the
        # ring (the popular-channel escape hatch).
        directory.pin("superbowl", "dedicated-farm")
        assert directory.shard_for("superbowl") == "dedicated-farm"
        assert "dedicated-farm" in directory.shards()

    def test_empty_shard_name_rejected(self, directory):
        with pytest.raises(ReproError):
            directory.pin("alice@x", "")

    def test_unpin_restores_ring_placement(self, directory):
        natural = directory.shard_for("alice@x")
        directory.pin("alice@x", "c")
        directory.unpin("alice@x")
        assert directory.shard_for("alice@x") == natural

    def test_pins_survive_ring_cutover(self, directory):
        directory.pin("alice@x", "b")
        bigger = directory.ring.copy()
        bigger.add_node("d")
        directory.set_ring(bigger)
        assert directory.shard_for("alice@x") == "b"


class TestFreeze:
    def test_frozen_key_raises_and_counts(self, directory):
        directory.freeze(["alice@x"])
        with pytest.raises(ShardFrozenError):
            directory.shard_for("alice@x")
        assert directory.counters.frozen_deferrals == 1

    def test_frozen_ok_resolves_for_the_migrator(self, directory):
        directory.freeze(["alice@x"])
        assert directory.shard_for("alice@x", frozen_ok=True)

    def test_thaw_specific_and_all(self, directory):
        directory.freeze(["alice@x", "bob@y"])
        directory.thaw(["alice@x"])
        assert not directory.is_frozen("alice@x")
        assert directory.is_frozen("bob@y")
        directory.thaw()
        assert directory.frozen_keys() == set()

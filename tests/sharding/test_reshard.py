"""Live resharding: migration round-trips, rollback, and invariants.

The contract under test: after ``add_user_manager_shards`` /
``add_channel_manager_shards`` the directory never names a shard that
does not hold the key's state, UserINs survive the move (viewing-log
continuity), the one-location rule still holds, and a failed migration
rolls back to a directory identical to the one it started from.
"""

import pytest

from repro.deployment import Deployment
from repro.sharding import directory_state_violations
from repro.sim.faults import single_location_violations


def build(n_domains=2, durable=False, users=8):
    deployment = Deployment(seed=23, n_domains=n_domains, partitions=("default",))
    if durable:
        deployment.enable_durability()
    deployment.add_free_channel("ch-news", regions=["CH"])
    deployment.add_free_channel("ch-sport", regions=["CH"])
    runtime = deployment.enable_sharding(vnodes=64)
    clients = []
    for i in range(users):
        client = deployment.create_client(f"v{i}@example.org", f"pw{i}", region="CH")
        client.login(0.0)
        client.switch_channel("ch-news", float(i))
        clients.append(client)
    return deployment, runtime, clients


class TestUserShardGrowth:
    def test_round_trip_preserves_state_and_invariants(self):
        deployment, runtime, clients = build()
        # Every UM replicates every account under its own per-domain
        # id; the id that must survive the move is the owning shard's.
        ids_before = {
            c.email: deployment.user_managers[
                runtime.user_directory.shard_for(c.email)
            ].user_by_email(c.email).user_id
            for c in clients
        }
        added = deployment.add_user_manager_shards(1)
        assert added == ["domain-2"]
        assert "domain-2" in runtime.user_directory.ring.nodes()

        assert directory_state_violations(deployment, runtime) == []
        assert runtime.viewing.misplaced_users() == []
        assert runtime.user_directory.frozen_keys() == set()
        assert runtime.viewing.frozen_users() == set()
        assert single_location_violations(runtime.viewing.combined_log()) == []
        assert runtime.counters.migrations_completed == 1

        # UserINs travel with the records: a migrated email keeps the
        # id its viewing history is keyed by.
        moved = [
            c.email
            for c in clients
            if runtime.user_directory.shard_for(c.email) == "domain-2"
        ]
        target = deployment.user_managers["domain-2"]
        for email in moved:
            assert target.user_by_email(email).user_id == ids_before[email]

    def test_renewal_continuity_across_migration(self):
        deployment, runtime, clients = build()
        deployment.add_user_manager_shards(1)
        for client in clients:
            response = client.renew_channel_ticket(800.0)
            assert response.ticket.channel_id == "ch-news"
        assert single_location_violations(runtime.viewing.combined_log()) == []

    def test_durable_migration_journals_state(self):
        deployment, runtime, clients = build(durable=True)
        deployment.add_user_manager_shards(1)
        assert directory_state_violations(deployment, runtime) == []
        # The new shard's viewing partition is store-backed like the rest.
        assert runtime.counters.migration_bytes > 0

    def test_new_shard_ids_disjoint_from_legacy_bands(self):
        deployment, runtime, _ = build()
        deployment.add_user_manager_shards(1)
        fresh = deployment.create_client("late@example.org", "pw", region="CH")
        fresh.login(0.0)
        legacy_ids = {
            record.user_id
            for manager in deployment.user_managers.values()
            for record in [manager.user_by_email("late@example.org")]
            if record is not None
        }
        assert len(legacy_ids) == len(deployment.user_managers)  # all distinct


class TestRollbackAndResume:
    def test_failpoint_rolls_back_then_resume_completes(self):
        deployment, runtime, clients = build()
        coordinator = runtime.coordinator
        plan = coordinator.plan_add_user_shard("domain-2")
        deployment._spawn_user_manager_shard("domain-2", 2)
        runtime.attach_user_shard("domain-2")
        assert plan.moved or plan.moved_user_ids, "seed must move something"

        boom = RuntimeError("target rack lost power")

        def failpoint(copied):
            if copied == 1:
                raise boom

        with pytest.raises(RuntimeError):
            coordinator.execute(plan, failpoint=failpoint)

        assert plan.state == "rolled_back"
        assert runtime.counters.migrations_rolled_back == 1
        # Directory unchanged: nothing routes to the half-filled target.
        assert "domain-2" not in runtime.user_directory.ring.nodes()
        assert runtime.user_directory.frozen_keys() == set()
        assert directory_state_violations(deployment, runtime) == []

        coordinator.resume(plan, now=10.0)
        assert plan.state == "complete"
        assert runtime.counters.migrations_resumed == 1
        assert "domain-2" in runtime.user_directory.ring.nodes()
        assert directory_state_violations(deployment, runtime) == []
        assert runtime.viewing.misplaced_users() == []

    def test_resume_requires_a_rolled_back_plan(self):
        deployment, runtime, _ = build()
        plan = runtime.coordinator.plan_add_user_shard("domain-2")
        with pytest.raises(Exception):
            runtime.coordinator.resume(plan)


class TestChannelShardGrowth:
    def test_channels_move_without_touching_viewing_state(self):
        deployment, runtime, clients = build()
        entries_before = len(runtime.viewing.combined_log())
        keys_before = runtime.counters.keys_moved

        added = deployment.add_channel_manager_shards(1)
        assert added == ["partition-0"]
        # Channel placement moved; user viewing state did not.
        assert len(runtime.viewing.combined_log()) == entries_before
        assert runtime.viewing.misplaced_users() == []

        moved = [
            cid
            for cid in ("ch-news", "ch-sport")
            if runtime.channel_directory.shard_for(cid) == "partition-0"
        ]
        for cid in moved:
            record = deployment.policy_manager.get_channel(cid)
            assert record.partition == "partition-0"
            assert deployment.channel_managers["partition-0"].serves_channel(cid)

    def test_fresh_client_switches_to_moved_channel(self):
        deployment, runtime, _ = build()
        deployment.add_channel_manager_shards(1)
        late = deployment.create_client("late@example.org", "pw", region="CH")
        late.login(0.0)
        for cid in ("ch-news", "ch-sport"):
            response = late.switch_channel(cid, 1.0)
            assert response.ticket.channel_id == cid

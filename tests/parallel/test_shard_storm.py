"""Sharded storm: cross-shard protocol, bridge invariants, config."""

import pytest

from repro.errors import ReproError, SimulationError
from repro.parallel import ShardStormConfig, run_sharded_storm
from repro.parallel.driver import route_messages
from repro.parallel.shardstorm import BridgeMessage, ShardBridge, ShardRig


@pytest.fixture(scope="module")
def outcome():
    config = ShardStormConfig(shards=2, clients_per_shard=2, seed=29, horizon=80.0)
    return run_sharded_storm(config, workers=1)


class TestStormProtocol:
    def test_no_protocol_errors(self, outcome):
        assert outcome.errors == []

    def test_every_client_logs_in(self, outcome):
        assert outcome.counts["LOGIN"] == 4

    def test_cross_shard_switches_complete(self, outcome):
        # Every third switch goes to the other shard's CM over the
        # bridge; the remote farm verifies a foreign domain's User
        # Ticket and issues a Channel Ticket for its own partition.
        assert outcome.counts["XSWITCH"] >= 4

    def test_renewals_complete(self, outcome):
        # ticket_lifetime=120, RENEW_LEAD=48: renewals start at t=72.5.
        assert outcome.counts["RENEWAL"] >= 1

    def test_bridge_carries_request_and_reply(self, outcome):
        # Two rounds per cross-shard switch, one request + one reply
        # message each.
        assert outcome.bridge_messages == 4 * outcome.counts["XSWITCH"]

    def test_transcript_lines_are_ordered(self, outcome):
        import json

        keys = [
            (rec["t"], rec["shard"], rec["seq"])
            for rec in map(json.loads, outcome.transcript)
        ]
        assert keys == sorted(keys)


class TestConfigValidation:
    def test_window_wider_than_latency_rejected(self):
        with pytest.raises(ReproError, match="window"):
            ShardStormConfig(window=0.5, inter_shard_latency=0.25)

    def test_nonpositive_window_rejected(self):
        with pytest.raises(ReproError):
            ShardStormConfig(window=0.0)

    def test_zero_shards_rejected(self):
        with pytest.raises(ReproError):
            ShardStormConfig(shards=0)

    def test_window_ends_cover_horizon(self):
        config = ShardStormConfig(horizon=1.0, window=0.25, inter_shard_latency=0.25)
        ends = config.window_ends()
        assert ends[-1] == 1.0
        assert all(b > a for a, b in zip(ends, ends[1:]))

    def test_shard_out_of_range_rejected(self):
        config = ShardStormConfig(shards=2)
        with pytest.raises(ReproError):
            ShardRig(config, 2)


class TestBridge:
    def test_parse(self):
        assert ShardBridge.parse("xshard://3/cm") == (3, "rpc://cm")

    def test_parse_malformed(self):
        with pytest.raises(SimulationError):
            ShardBridge.parse("xshard://nope")
        with pytest.raises(SimulationError):
            ShardBridge.parse("xshard://x/cm")

    def test_conservative_window_violation_detected(self):
        config = ShardStormConfig(shards=2, clients_per_shard=1, seed=3)
        rig = ShardRig(config, 0)
        rig.sim.run(until=10.0)
        stale = BridgeMessage(
            kind="reply", rid=(0, 0), src=1, dst=0, sent_at=1.0
        )
        with pytest.raises(SimulationError, match="conservative window"):
            rig.bridge.deliver(stale)

    def test_own_shard_call_rejected(self):
        config = ShardStormConfig(shards=2, clients_per_shard=1, seed=3)
        rig = ShardRig(config, 0)
        with pytest.raises(SimulationError, match="own shard"):
            rig.bridge.send("addr", "CH", "xshard://0/cm", "switch1", None,
                            lambda r: None, None, 0.0)

    def test_route_messages_sorts_and_groups(self):
        msgs = [
            BridgeMessage(kind="request", rid=(1, 5), src=1, dst=0, sent_at=2.0),
            BridgeMessage(kind="request", rid=(1, 4), src=1, dst=0, sent_at=1.0),
            BridgeMessage(kind="reply", rid=(0, 0), src=1, dst=0, sent_at=1.0),
            BridgeMessage(kind="request", rid=(0, 1), src=0, dst=1, sent_at=1.5),
        ]
        inboxes = route_messages(msgs, 2)
        assert [m.rid for m in inboxes[0]] == [(0, 0), (1, 4), (1, 5)]
        assert [m.rid for m in inboxes[1]] == [(0, 1)]

    def test_route_messages_rejects_unknown_shard(self):
        bad = BridgeMessage(kind="request", rid=(0, 0), src=0, dst=9, sent_at=0.0)
        with pytest.raises(ValueError, match="unknown shard"):
            route_messages([bad], 2)


class TestSingleShard:
    def test_single_shard_storm_has_no_cross_traffic(self):
        config = ShardStormConfig(
            shards=1, clients_per_shard=2, seed=7, horizon=50.0
        )
        outcome = run_sharded_storm(config, workers=4)
        assert outcome.errors == []
        assert outcome.bridge_messages == 0
        assert outcome.workers == 1  # nothing to parallelize
        assert "XSWITCH" not in outcome.counts
        assert outcome.counts["SWITCH"] >= 4

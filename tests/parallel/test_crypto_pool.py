"""CryptoPool: pooled results == inline results, counters stay exact."""

import pytest

from repro.core.packets import encrypt_packets, reencrypt_key_for_links
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.crypto.stream import SymmetricKey
from repro.deployment import Deployment
from repro.metrics.dataplane import counters as dataplane_counters
from repro.metrics.hotpath import counters as hotpath_counters
from repro.parallel import CryptoPool, PooledSigningKey


@pytest.fixture(scope="module")
def pool():
    with CryptoPool(workers=2, min_chunk=4) as shared:
        yield shared


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(HmacDrbg(b"pool-test", b"rsa"), bits=512)


def _batch(n):
    key = SymmetricKey(b"p" * 16)
    plaintexts = [bytes([i % 251]) * 100 for i in range(n)]
    nonces = list(range(n))
    return key, plaintexts, nonces


class TestPooledEqualsInline:
    def test_encrypt_many(self, pool):
        key, plaintexts, nonces = _batch(30)
        assert pool.encrypt_many(key, plaintexts, nonces, aad=b"x") == \
            key.encrypt_many(plaintexts, nonces, aad=b"x")

    def test_seal_links(self, pool):
        session_keys = [SymmetricKey(bytes([i]) * 16) for i in range(20)]
        inline = [sk.encrypt(b"m" * 16, nonce=7, aad=b"kd") for sk in session_keys]
        assert pool.seal_links(b"m" * 16, 7, b"kd", session_keys) == inline

    def test_sign_many(self, pool, keypair):
        messages = [bytes([i]) * 20 for i in range(12)]
        assert pool.sign_many(keypair, messages) == [keypair.sign(m) for m in messages]

    def test_decrypt_many(self, pool, keypair):
        drbg = HmacDrbg(b"pool-test", b"enc")
        secrets = [bytes([i]) * 16 for i in range(10)]
        blobs = [keypair.public_key.encrypt(s, drbg) for s in secrets]
        assert pool.decrypt_many(keypair, blobs) == secrets

    def test_small_batches_run_inline(self, pool):
        key, plaintexts, nonces = _batch(3)
        before = pool.stats.batches_inline
        assert pool.encrypt_many(key, plaintexts, nonces) == \
            key.encrypt_many(plaintexts, nonces)
        assert pool.stats.batches_inline == before + 1


class TestValidation:
    def test_duplicate_nonce_rejected_before_chunking(self, pool):
        # The duplicates land in *different* chunks: a per-chunk check
        # would miss them, the whole-batch check must not.
        key, plaintexts, nonces = _batch(30)
        nonces[1] = nonces[-1]
        with pytest.raises(ValueError, match="duplicate nonce"):
            pool.encrypt_many(key, plaintexts, nonces)

    def test_length_mismatch_rejected(self, pool):
        key, plaintexts, nonces = _batch(20)
        with pytest.raises(ValueError, match="plaintexts"):
            pool.encrypt_many(key, plaintexts, nonces[:-1])

    def test_negative_nonce_rejected(self, pool):
        key, plaintexts, nonces = _batch(20)
        nonces[5] = -1
        with pytest.raises(ValueError, match="non-negative"):
            pool.encrypt_many(key, plaintexts, nonces)

    def test_min_chunk_validated(self):
        with pytest.raises(ValueError):
            CryptoPool(workers=1, min_chunk=0)


class TestCounterMerge:
    def test_offloaded_sealing_counts_match_inprocess(self, pool):
        """The regression the snapshot-and-merge protocol exists for:
        sealed-packet/byte counts must be identical whether the work
        ran in-process or on pool workers."""
        deployment = Deployment(seed=23)
        deployment.add_free_channel("merge", regions=["CH"])
        key = deployment.servers["merge"].schedule.current_key(1.0)
        frames = [(i, bytes([i % 251]) * 200) for i in range(40)]

        before = dataplane_counters.snapshot()
        inline = encrypt_packets(key, "merge", frames)
        mid = dataplane_counters.snapshot()
        pooled = encrypt_packets(key, "merge", frames, pool=pool)
        after = dataplane_counters.snapshot()

        assert pooled == inline
        inline_delta = {k: mid[k] - before[k] for k in mid}
        pooled_delta = {k: after[k] - mid[k] for k in after}
        assert pooled_delta == inline_delta
        assert pooled_delta["packets_sealed"] == 40
        assert pooled_delta["bytes_sealed"] == 40 * 200
        assert pooled_delta["keystream_blocks"] > 0

    def test_offloaded_signing_counts_match_inprocess(self, pool, keypair):
        messages = [bytes([i]) * 32 for i in range(12)]
        before = hotpath_counters.snapshot()
        for m in messages:
            keypair.sign(m)
        mid = hotpath_counters.snapshot()
        pool.sign_many(keypair, messages)
        after = hotpath_counters.snapshot()
        inline_delta = {k: mid[k] - before[k] for k in mid}
        pooled_delta = {k: after[k] - mid[k] for k in after}
        assert pooled_delta == inline_delta
        assert pooled_delta["rsa_private_ops"] == 12

    def test_merge_rejects_unknown_counter(self):
        with pytest.raises(ValueError, match="unknown"):
            dataplane_counters.merge({"not_a_counter": 1})
        with pytest.raises(ValueError, match="unknown"):
            hotpath_counters.merge({"bogus": 2})

    def test_merge_adds(self):
        before = dataplane_counters.packets_sealed
        dataplane_counters.merge({"packets_sealed": 5})
        assert dataplane_counters.packets_sealed == before + 5
        dataplane_counters.merge({"packets_sealed": -5})
        assert dataplane_counters.packets_sealed == before


class TestInlineFallback:
    def test_single_worker_never_forks(self):
        pool = CryptoPool(workers=1)
        assert not pool.pooled
        key, plaintexts, nonces = _batch(40)
        assert pool.encrypt_many(key, plaintexts, nonces) == \
            key.encrypt_many(plaintexts, nonces)
        assert pool.stats.batches_offloaded == 0
        assert pool.stats.items_inline == 40

    def test_closed_pool_falls_back(self):
        pool = CryptoPool(workers=2, min_chunk=2)
        pool.close()
        assert not pool.pooled
        key, plaintexts, nonces = _batch(20)
        assert pool.encrypt_many(key, plaintexts, nonces) == \
            key.encrypt_many(plaintexts, nonces)


class TestPooledSigningKey:
    def test_sign_and_decrypt_match_inner(self, pool, keypair):
        wrapped = PooledSigningKey(keypair, pool)
        assert wrapped.sign(b"msg") == keypair.sign(b"msg")
        blob = keypair.public_key.encrypt(b"s" * 16, HmacDrbg(b"t", b"d"))
        assert wrapped.decrypt(blob) == b"s" * 16
        assert wrapped.public_key == keypair.public_key

    def test_rewrapping_never_nests(self, pool, keypair):
        once = PooledSigningKey(keypair, pool)
        twice = PooledSigningKey(once, pool)
        assert twice.inner is keypair

    def test_attribute_passthrough(self, pool, keypair):
        wrapped = PooledSigningKey(keypair, pool)
        assert wrapped.n == keypair.n

    def test_managers_sign_identically_with_pool(self, pool):
        plain = Deployment(seed=31)
        plain.add_free_channel("sig", regions=["CH"])
        pooled = Deployment(seed=31)
        pooled.add_free_channel("sig", regions=["CH"])
        pooled.enable_multicore(pool=pool)

        a = plain.create_client("u@example.org", "pw", region="CH")
        b = pooled.create_client("u@example.org", "pw", region="CH")
        ta, tb = a.login(now=1.0), b.login(now=1.0)
        assert ta.signature == tb.signature
        ra = a.switch_channel("sig", now=2.0)
        rb = b.switch_channel("sig", now=2.0)
        assert ra.ticket.signature == rb.ticket.signature

    def test_enable_multicore_registers_metrics(self, pool):
        deployment = Deployment(seed=5)
        deployment.enable_multicore(pool=pool)
        assert deployment.crypto_pool is pool
        assert "multicore" in deployment.metrics.sources()
        snap = deployment.metrics.snapshot()["multicore"]
        assert snap["workers"] == 2

"""The determinism suite: same seed => byte-identical everything.

Three layers of the guarantee:

* the sharded storm transcript is identical across repeated sequential
  runs AND between the sequential and multi-process runners;
* the traced switch storm writes byte-identical span JSONL across
  runs (the `_charge_compute` wall-clock leak, now fixed, used to
  break exactly this);
* the crypto objects that cross process boundaries pickle losslessly.
"""

import pickle

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.crypto.stream import SymmetricKey
from repro.parallel import ShardStormConfig, run_sharded_storm


@pytest.fixture(scope="module")
def config():
    return ShardStormConfig(shards=2, clients_per_shard=2, seed=29, horizon=60.0)


@pytest.fixture(scope="module")
def sequential(config):
    return run_sharded_storm(config, workers=1)


class TestStormDeterminism:
    def test_double_run_is_byte_identical(self, config, sequential):
        again = run_sharded_storm(config, workers=1)
        assert again.transcript == sequential.transcript
        assert again.counts == sequential.counts

    def test_parallel_matches_sequential(self, config, sequential):
        parallel = run_sharded_storm(config, workers=2)
        assert parallel.workers == 2 or not parallel.errors
        assert parallel.transcript == sequential.transcript
        assert parallel.counts == sequential.counts
        assert parallel.errors == sequential.errors

    def test_transcript_is_nonempty_json_lines(self, sequential):
        import json

        assert sequential.transcript
        for line in sequential.transcript:
            record = json.loads(line)
            assert {"t", "shard", "seq", "client", "op"} <= set(record)


class TestTraceStormDeterminism:
    def test_trace_jsonl_byte_identical_across_runs(self, tmp_path):
        # The regression `_charge_compute` used to cause: span
        # durations picked up time.perf_counter() jitter, so two
        # same-seed runs disagreed.  With the deterministic cost table
        # the saved buffers must be byte-for-byte equal.
        from repro.trace.span import Tracer
        from repro.trace.storm import run_switch_storm

        paths = []
        for run in ("a", "b"):
            result = run_switch_storm(clients=3, seed=17, horizon=100.0,
                                      tracer=Tracer())
            assert not result.errors
            path = tmp_path / f"spans-{run}.jsonl"
            result.tracer.save(str(path))
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()


class TestPickleRoundTrips:
    def test_symmetric_key(self):
        key = SymmetricKey(b"r" * 16)
        clone = pickle.loads(pickle.dumps(key))
        assert clone.material == key.material
        assert clone.encrypt(b"m", nonce=3, aad=b"a") == \
            key.encrypt(b"m", nonce=3, aad=b"a")

    def test_rsa_private_key(self):
        key = generate_keypair(HmacDrbg(b"pickle", b"rsa"), bits=512)
        clone = pickle.loads(pickle.dumps(key))
        assert clone.sign(b"m") == key.sign(b"m")
        assert clone.public_key == key.public_key

    def test_rsa_crt_fast_path_survives_pickling(self):
        from repro.metrics.hotpath import counters

        key = generate_keypair(HmacDrbg(b"pickle2", b"rsa"), bits=512)
        clone = pickle.loads(pickle.dumps(key))
        before = counters.snapshot()
        clone.sign(b"x")
        delta = counters.rsa_crt_ops - before["rsa_crt_ops"]
        assert delta == 1, "unpickled key lost its CRT parameters"

"""Tests for the ablation drivers."""

import random

from repro.experiments.ablations import (
    farm_scaling,
    keydist_comparison,
    rekey_tradeoff,
    ticket_lifetime_tradeoff,
    traditional_comparison,
)


class TestFarmScaling:
    def test_waits_fall_with_farm_size(self):
        points = farm_scaling(random.Random(1), arrivals=2000, farm_sizes=(1, 4))
        assert points[1].p95_wait < points[0].p95_wait
        assert points[1].max_queue <= points[0].max_queue

    def test_rows_match_requested_sizes(self):
        points = farm_scaling(random.Random(2), arrivals=500, farm_sizes=(1, 2, 4))
        assert [p.n_servers for p in points] == [1, 2, 4]
        assert all(p.arrivals == 500 for p in points)


class TestKeydist:
    def test_central_load_linear_push_constant(self):
        rows = keydist_comparison(random.Random(3), audiences=(100, 10000))
        small, large = rows
        # Central server absorbs one request per client per re-key...
        assert small.central_requests_per_rekey == 100
        assert large.central_requests_per_rekey == 10000
        # ...while the infrastructure cost of the push stays capped at
        # the source fan-out regardless of audience.
        assert large.push_server_messages == small.push_server_messages

    def test_push_propagation_grows_slowly(self):
        rows = keydist_comparison(random.Random(4), audiences=(100, 60000))
        assert rows[1].push_propagation < rows[0].push_propagation * 4


class TestTraditionalComparison:
    def test_ours_needs_fewer_servers(self):
        rows = traditional_comparison(random.Random(5), audiences=(2000,))
        assert rows[0].ours_servers_for_sla <= rows[0].traditional_servers_for_sla

    def test_provisioning_grows_with_audience(self):
        rows = traditional_comparison(random.Random(6), audiences=(1000, 5000))
        assert rows[1].traditional_servers_for_sla >= rows[0].traditional_servers_for_sla


class TestRekeyTradeoff:
    def test_traffic_inverse_to_exposure(self):
        rows = rekey_tradeoff(epochs=(30.0, 300.0))
        fast, slow = rows
        assert fast.keys_per_hour > slow.keys_per_hour
        assert fast.exposure_window < slow.exposure_window

    def test_paper_default_epoch(self):
        rows = rekey_tradeoff(epochs=(60.0,))
        assert rows[0].keys_per_hour == 60.0
        assert rows[0].exposure_window == 60.0


class TestTicketLifetime:
    def test_shorter_tickets_more_renewals_shorter_lead(self):
        rows = ticket_lifetime_tradeoff(lifetimes=(300.0, 3600.0))
        short, long_ = rows
        assert short.renewals_per_viewer_hour > long_.renewals_per_viewer_hour
        assert short.blackout_lead_time < long_.blackout_lead_time
        assert short.stolen_ticket_usefulness < long_.stolen_ticket_usefulness

"""Tests for the week-long timing simulation (the Figs. 5/6 engine).

A reduced two-day run keeps this fast while still exercising the full
pipeline; the benchmark suite runs the full seven days.
"""

import pytest

from repro.experiments.common import ServiceTimes, WeeklongConfig
from repro.experiments.weeklong import WeeklongRunner
from repro.metrics.stats import ks_distance, median


@pytest.fixture(scope="module")
def result():
    config = WeeklongConfig(
        peak_concurrent=120,
        n_channels=20,
        horizon=2 * 86400.0,
    )
    return WeeklongRunner(config).run()


class TestSampleProduction:
    def test_all_five_rounds_sampled(self, result):
        for round_name in ("LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2", "JOIN"):
            assert result.collector.count(round_name) > 100, round_name

    def test_switch_includes_renewals(self, result):
        switches = result.trace.count_of("SWITCH") + result.trace.count_of("RENEW")
        assert result.collector.count("SWITCH1") == switches

    def test_latencies_physical(self, result):
        """Every latency at least covers one WAN round trip."""
        for round_name in ("LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2"):
            assert min(result.collector.latencies(round_name)) > 0.01

    def test_medians_sub_second(self, result):
        """The paper's Fig. 5 medians sit well under a second."""
        for round_name in ("LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2", "JOIN"):
            assert median(result.collector.latencies(round_name)) < 1.0


class TestStructuralClaims:
    def test_server_rounds_weakly_correlated(self, result):
        """The paper's headline: |r| small for login/switch rounds."""
        for round_name in ("LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2"):
            r = result.correlation(round_name, min_samples=5)
            assert abs(r) < 0.3, (round_name, r)

    def test_join_correlation_positive_but_weak(self, result):
        r = result.correlation("JOIN", min_samples=5)
        assert -0.05 < r < 0.45  # the paper's 0.13, with sampling noise

    def test_farms_run_far_from_saturation(self, result):
        """The mechanism behind flatness: utilization stays low."""
        assert result.um_utilization < 0.5
        assert all(u < 0.5 for u in result.cm_utilizations)

    def test_peak_offpeak_distributions_virtually_identical(self, result):
        """Fig. 6's claim, quantified by KS distance."""
        for round_name in ("LOGIN1", "SWITCH2", "JOIN"):
            peak, off_peak = result.collector.split_peak_offpeak(round_name)
            assert ks_distance(peak, off_peak) < 0.06, round_name


class TestDeterminism:
    def test_same_config_same_result(self):
        config = WeeklongConfig(peak_concurrent=40, n_channels=8, horizon=43200.0)
        a = WeeklongRunner(config).run()
        b = WeeklongRunner(config).run()
        assert a.collector.latencies("LOGIN1") == b.collector.latencies("LOGIN1")
        assert a.correlations() == b.correlations()


class TestConfig:
    def test_presets(self):
        assert WeeklongConfig.fast().peak_concurrent < WeeklongConfig.paper_scale().peak_concurrent

    def test_with_peak(self):
        assert WeeklongConfig.fast().with_peak(999).peak_concurrent == 999

    def test_service_times_scaled(self):
        base = ServiceTimes()
        doubled = base.scaled(2.0)
        assert doubled.login1 == pytest.approx(base.login1 * 2)
        assert doubled.join_peer == pytest.approx(base.join_peer * 2)

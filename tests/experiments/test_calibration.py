"""Tests for service-time calibration against the real implementation."""

import pytest

from repro.experiments.calibration import calibrate


@pytest.fixture(scope="module")
def report():
    return calibrate(repetitions=8, seed=101)


class TestCalibration:
    def test_all_measurements_positive(self, report):
        for field in ("login1", "login2", "switch1", "switch2", "join_peer", "client_compute"):
            assert getattr(report, field) > 0.0, field

    def test_measurements_are_fast_operations(self, report):
        """Every handler is a sub-100ms operation on any modern box --
        the stateless-cheap-request property the paper's design rests on."""
        for field in ("login1", "login2", "switch1", "switch2", "join_peer"):
            assert getattr(report, field) < 0.1, field

    def test_cost_ordering_matches_crypto_work(self, report):
        """SWITCH2 (3 RSA ops) costs more than SWITCH1 (1 RSA verify);
        LOGIN1 (symmetric only) is the cheapest server round."""
        assert report.switch2 > report.switch1
        assert report.login1 < report.switch2

    def test_feeds_into_service_times(self, report):
        service = report.as_service_times()
        assert service.login1 == report.login1
        assert service.join_peer == report.join_peer

"""Tests for the fidelity check: functional replay vs timing model."""

import pytest

from repro.experiments.common import WeeklongConfig
from repro.experiments.fidelity import (
    FidelityConfig,
    FidelityRunner,
    compare_with_timing_model,
)
from repro.experiments.weeklong import WeeklongRunner
from repro.metrics.stats import median


@pytest.fixture(scope="module")
def fidelity_result():
    # Twelve hours starting Monday 00:00 covers the trough and the
    # daytime ramp; enough arrivals for per-round statistics.
    config = FidelityConfig(peak_concurrent=12, n_channels=4, horizon=12 * 3600.0)
    return FidelityRunner(config).run()


class TestFunctionalReplay:
    def test_operations_execute_through_real_stack(self, fidelity_result):
        assert fidelity_result.operations_executed > 50
        # The replay drives a coherent trace: essentially nothing fails.
        assert fidelity_result.operations_failed <= fidelity_result.operations_executed * 0.05

    def test_all_rounds_sampled(self, fidelity_result):
        for round_name in ("LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2", "JOIN"):
            assert fidelity_result.collector.count(round_name) > 10, round_name

    def test_latencies_wan_dominated(self, fidelity_result):
        """Real crypto under a 100 ms WAN: medians land in the same
        regime the paper measured (well under a second)."""
        for round_name in ("LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2"):
            m = fidelity_result.median_latency(round_name)
            assert 0.02 < m < 1.0, (round_name, m)


class TestModelAgreement:
    def test_functional_and_model_medians_agree(self, fidelity_result):
        """The substitution check of DESIGN.md: the timing model's
        per-round medians match a replay through the real stack within
        a small factor."""
        model = WeeklongRunner(
            WeeklongConfig(peak_concurrent=60, n_channels=10, horizon=86400.0)
        ).run()
        model_medians = {
            name: median(model.collector.latencies(name))
            for name in ("LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2", "JOIN")
        }
        report = compare_with_timing_model(fidelity_result, model_medians, tolerance=3.0)
        assert report, "no rounds compared"
        disagreements = {k: v for k, v in report.items() if not v[2]}
        assert not disagreements, disagreements

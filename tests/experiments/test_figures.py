"""Tests for the Fig. 5 / Fig. 6 extraction layers."""

import pytest

from repro.experiments import fig5, fig6
from repro.experiments.common import WeeklongConfig
from repro.experiments.weeklong import WeeklongRunner


@pytest.fixture(scope="module")
def result():
    return WeeklongRunner(
        WeeklongConfig(peak_concurrent=100, n_channels=15, horizon=2 * 86400.0)
    ).run()


class TestFig5:
    def test_panels_cover_all_rounds(self):
        rounds = [r for panel in fig5.FIG5_PANELS.values() for r in panel]
        assert sorted(rounds) == ["JOIN", "LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2"]

    def test_series_aligned(self, result):
        series = fig5.extract_series(result, "LOGIN1")
        assert len(series.hours) == len(series.median_latency) == len(series.concurrent_users)
        assert len(series.hours) > 20  # most hours of two days present

    def test_series_reflects_diurnal_load(self, result):
        series = fig5.extract_series(result, "SWITCH1")
        assert max(series.concurrent_users) > 3 * min(series.concurrent_users)

    def test_unknown_panel_rejected(self, result):
        with pytest.raises(KeyError):
            fig5.panel(result, "z-nope")

    def test_render_contains_correlation(self, result):
        text = fig5.render_panel(result, "a-login")
        assert "LOGIN1" in text
        assert "Pearson r" in text

    def test_paper_comparison_table(self, result):
        text = fig5.paper_comparison(result)
        assert "0.13" in text  # the paper's join figure quoted
        for round_name in ("LOGIN1", "JOIN"):
            assert round_name in text


class TestFig6:
    def test_comparison_counts(self, result):
        comparison = fig6.compare(result, "LOGIN1")
        assert comparison.peak_count > 0
        assert comparison.offpeak_count > 0
        total = comparison.peak_count + comparison.offpeak_count
        assert total == result.collector.count("LOGIN1")

    def test_virtually_identical(self, result):
        for round_name in ("LOGIN1", "SWITCH2", "JOIN"):
            comparison = fig6.compare(result, round_name)
            assert comparison.ks < 0.08
            # Below the slow-path tail, quantiles stay close in
            # absolute terms too.
            median_gap = [g for q, p, o in comparison.quantiles if q == 0.5
                          for g in [abs(p - o)]][0]
            assert median_gap < 0.05

    def test_quantiles_monotone(self, result):
        comparison = fig6.compare(result, "SWITCH1")
        peaks = [p for _, p, _ in comparison.quantiles]
        assert peaks == sorted(peaks)

    def test_render(self, result):
        text = fig6.render_panel(result, "c-join")
        assert "JOIN" in text
        assert "KS=" in text

    def test_fraction_under(self, result):
        peak, off_peak = fig6.fraction_under(result, "LOGIN1", 5.0)
        assert peak > 0.9 and off_peak > 0.9

    def test_unknown_panel_rejected(self, result):
        with pytest.raises(KeyError):
            fig6.panel(result, "nope")

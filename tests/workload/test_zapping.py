"""Tests for channel popularity and zapping behaviour."""

import random

import pytest

from repro.workload.zapping import ZappingModel, ZipfChannelPopularity


def channels(n=20):
    return [f"ch{i:02d}" for i in range(n)]


class TestZipf:
    def test_probabilities_sum_to_one(self):
        popularity = ZipfChannelPopularity(channels(), 1.0, random.Random(1))
        total = sum(popularity.probability(c) for c in channels())
        assert total == pytest.approx(1.0)

    def test_rank_ordering(self):
        popularity = ZipfChannelPopularity(channels(), 1.0, random.Random(2))
        probs = [popularity.probability(c) for c in channels()]
        assert probs == sorted(probs, reverse=True)

    def test_head_dominates(self):
        popularity = ZipfChannelPopularity(channels(50), 1.0, random.Random(3))
        top5 = sum(popularity.probability(c) for c in channels(50)[:5])
        assert top5 > 0.45  # the few channels carrying most viewers

    def test_s_zero_is_uniform(self):
        popularity = ZipfChannelPopularity(channels(10), 0.0, random.Random(4))
        for channel in channels(10):
            assert popularity.probability(channel) == pytest.approx(0.1)

    def test_samples_follow_distribution(self):
        popularity = ZipfChannelPopularity(channels(10), 1.0, random.Random(5))
        counts = {c: 0 for c in channels(10)}
        for _ in range(10000):
            counts[popularity.sample()] += 1
        assert counts["ch00"] > counts["ch09"] * 3

    def test_empty_lineup_rejected(self):
        with pytest.raises(ValueError):
            ZipfChannelPopularity([], 1.0, random.Random(1))

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            ZipfChannelPopularity(channels(), -1.0, random.Random(1))


class TestZappingModel:
    def make(self, seed=6, **kwargs):
        popularity = ZipfChannelPopularity(channels(), 1.0, random.Random(seed))
        return ZappingModel(popularity, random.Random(seed + 1), **kwargs)

    def test_session_durations_fill_length(self):
        model = self.make()
        dwells = model.session(3600.0)
        assert sum(d.duration for d in dwells) == pytest.approx(3600.0)

    def test_no_immediate_repeat(self):
        model = self.make()
        for _ in range(20):
            dwells = model.session(3600.0)
            for a, b in zip(dwells, dwells[1:]):
                assert a.channel != b.channel

    def test_empty_session(self):
        assert self.make().session(0.0) == []

    def test_browse_heavy_sessions_switch_more(self):
        browsy = self.make(browse_prob=0.95)
        watchy = self.make(browse_prob=0.05)
        browsy_switches = sum(len(browsy.session(3600.0)) for _ in range(20))
        watchy_switches = sum(len(watchy.session(3600.0)) for _ in range(20))
        assert browsy_switches > watchy_switches * 2

    def test_invalid_browse_prob(self):
        with pytest.raises(ValueError):
            self.make(browse_prob=1.5)

    def test_switches_per_session_nonnegative(self):
        model = self.make()
        assert model.switches_per_session(1.0) >= 0
        assert model.switches_per_session(0.0) == 0

    def test_popular_channels_watched_more(self):
        model = self.make()
        counts = {}
        for _ in range(200):
            for dwell in model.session(1800.0):
                counts[dwell.channel] = counts.get(dwell.channel, 0) + 1
        assert counts.get("ch00", 0) > counts.get("ch19", 0)

"""Tests for week-trace generation and feedback sampling."""

import random

import pytest

from repro.workload.traces import (
    OP_JOIN,
    OP_LOGIN,
    OP_RENEW,
    OP_SWITCH,
    FeedbackLogSampler,
    WeekTraceGenerator,
)


@pytest.fixture(scope="module")
def trace():
    generator = WeekTraceGenerator(
        rng=random.Random(7),
        peak_concurrent=60,
        n_channels=20,
        horizon=2 * 86400.0,  # two days is enough structure for tests
    )
    return generator.generate()


class TestTraceStructure:
    def test_events_time_ordered(self, trace):
        times = [e.time for e in trace.events]
        assert times == sorted(times)

    def test_every_session_starts_with_login(self, trace):
        first_event = {}
        for event in trace.events:
            first_event.setdefault(event.session_id, event.op)
        assert set(first_event.values()) == {OP_LOGIN}

    def test_every_switch_has_matching_join(self, trace):
        assert trace.count_of(OP_SWITCH) == trace.count_of(OP_JOIN)

    def test_all_ops_present(self, trace):
        for op in (OP_LOGIN, OP_SWITCH, OP_JOIN, OP_RENEW):
            assert trace.count_of(op) > 0, op

    def test_events_within_horizon(self, trace):
        assert all(0.0 <= e.time <= 2 * 86400.0 for e in trace.events)

    def test_channels_assigned_to_switches(self, trace):
        switches = trace.events_of(OP_SWITCH)
        assert all(e.channel for e in switches)

    def test_renewals_spaced_by_ticket_lifetime(self, trace):
        """Renewal cadence follows the channel-ticket lifetime."""
        by_session = {}
        for event in trace.events:
            if event.op == OP_RENEW:
                by_session.setdefault(event.session_id, []).append(event.time)
        gaps = [
            b - a
            for times in by_session.values()
            for a, b in zip(times, times[1:])
        ]
        if gaps:  # sessions long enough for 2+ renewals
            assert min(gaps) >= 900.0 * 0.9


class TestConcurrency:
    def test_concurrent_at_consistent_with_sessions(self, trace):
        probe = 20 * 3600.0  # evening of day one
        manual = sum(1 for s, e in trace.sessions if s <= probe < e)
        # concurrent_at uses <=; allow off-by-boundary wiggle.
        assert abs(trace.concurrent_at(probe) - manual) <= 2

    def test_diurnal_shape_visible(self, trace):
        evening = trace.concurrent_at(20.5 * 3600.0)
        night = trace.concurrent_at(4 * 3600.0)
        assert evening > night * 2

    def test_series_step(self, trace):
        series = trace.concurrency_series(step=7200.0)
        assert series[1][0] - series[0][0] == 7200.0
        assert all(v >= 0 for _, v in series)

    def test_peak_magnitude_near_target(self, trace):
        values = [v for _, v in trace.concurrency_series(step=900.0)]
        assert 30 <= max(values) <= 100  # target 60, stochastic


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def build():
            return WeekTraceGenerator(
                rng=random.Random(9), peak_concurrent=30, n_channels=5,
                horizon=86400.0,
            ).generate()

        a, b = build(), build()
        assert a.events == b.events
        assert a.sessions == b.sessions


class TestFeedbackSampler:
    def test_sample_is_subset_by_session(self, trace):
        sampler = FeedbackLogSampler(random.Random(1), submit_prob=0.2)
        sampled = sampler.sample(trace)
        sampled_sessions = {e.session_id for e in sampled}
        for event in trace.events:
            if event.session_id in sampled_sessions:
                assert event in sampled or event.session_id in sampled_sessions
        assert len(sampled) < len(trace.events)

    def test_whole_sessions_included(self, trace):
        """Submission includes all of a session's events, not a slice."""
        sampler = FeedbackLogSampler(random.Random(2), submit_prob=0.3)
        sampled = sampler.sample(trace)
        sampled_sessions = {e.session_id for e in sampled}
        full_counts = {}
        for event in trace.events:
            full_counts[event.session_id] = full_counts.get(event.session_id, 0) + 1
        sample_counts = {}
        for event in sampled:
            sample_counts[event.session_id] = sample_counts.get(event.session_id, 0) + 1
        for session_id in sampled_sessions:
            assert sample_counts[session_id] == full_counts[session_id]

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FeedbackLogSampler(random.Random(1), submit_prob=0.0)
        with pytest.raises(ValueError):
            FeedbackLogSampler(random.Random(1), submit_prob=1.5)

    def test_full_probability_samples_everything(self, trace):
        sampler = FeedbackLogSampler(random.Random(3), submit_prob=1.0)
        assert len(sampler.sample(trace)) == len(trace.events)

    def test_sample_representative_of_population(self, trace):
        """The paper validated that opt-in logs represent the
        population; our synthetic equivalent should too: op mix in the
        sample tracks the full trace within a few percent."""
        sampler = FeedbackLogSampler(random.Random(4), submit_prob=0.3)
        sampled = sampler.sample(trace)
        full_ratio = trace.count_of(OP_SWITCH) / max(1, len(trace.events))
        sample_ratio = sum(1 for e in sampled if e.op == OP_SWITCH) / max(1, len(sampled))
        assert abs(full_ratio - sample_ratio) < 0.05

"""Tests for the flash-crowd viewer population."""

import random

import pytest

from repro.workload.flashcrowd import (
    DEFAULT_CAPACITIES,
    FlashCrowdWorkload,
    ViewerSpec,
)


def make(audience=400, seed=13, **kwargs):
    kwargs.setdefault("regions", ["CH", "DE", "FR"])
    kwargs.setdefault("event_duration", 800.0)
    kwargs.setdefault("ramp", 40.0)
    return FlashCrowdWorkload(random.Random(seed), audience=audience, **kwargs)


class TestViewerSpecs:
    def test_one_spec_per_viewer_in_index_order(self):
        viewers = make().viewers()
        assert len(viewers) == 400
        assert [v.index for v in viewers] == list(range(400))

    def test_lifetimes_come_from_churn(self):
        for spec in make().viewers():
            assert spec.leave_time > spec.join_time

    def test_regions_restricted_to_broadcast_set(self):
        viewers = make().viewers()
        assert {v.region for v in viewers} <= {"CH", "DE", "FR"}

    def test_regions_follow_population_weights(self):
        """CH outweighs FR ~40:12 in the population table; the drawn
        placement must reflect that, not a uniform split."""
        viewers = make(audience=2000).viewers()
        ch = sum(1 for v in viewers if v.region == "CH")
        fr = sum(1 for v in viewers if v.region == "FR")
        assert ch > 2 * fr

    def test_capacity_mix_is_heterogeneous(self):
        viewers = make(audience=2000).viewers()
        drawn = {v.capacity for v in viewers}
        assert drawn == set(DEFAULT_CAPACITIES)
        leechers = sum(1 for v in viewers if v.capacity == 0)
        # The default mix puts ~10% at zero upload.
        assert 100 < leechers < 320

    def test_deterministic_under_seed(self):
        assert make(seed=5).viewers() == make(seed=5).viewers()


class TestEvents:
    def test_events_paired_with_specs(self):
        events = make(audience=100).events()
        assert len(events) == 200  # one join + one leave per viewer
        for event, spec in events:
            assert isinstance(spec, ViewerSpec)
            assert event.peer_index == spec.index

    def test_events_time_ordered(self):
        times = [event.time for event, _ in make(audience=100).events()]
        assert times == sorted(times)


class TestValidation:
    def test_unknown_region_rejected(self):
        with pytest.raises(ValueError):
            make(regions=["CH", "ATLANTIS"])

    def test_mismatched_capacity_weights_rejected(self):
        with pytest.raises(ValueError):
            make(capacities=(0, 2), capacity_weights=(1.0,))

    def test_empty_capacities_rejected(self):
        with pytest.raises(ValueError):
            make(capacities=(), capacity_weights=())

    def test_default_regions_are_all_regions(self):
        from repro.geo.regions import REGIONS

        workload = FlashCrowdWorkload(random.Random(1), audience=10)
        assert workload.regions == list(REGIONS)

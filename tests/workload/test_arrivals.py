"""Tests for arrival-process sampling."""

import random

import pytest

from repro.workload.arrivals import (
    FlashCrowd,
    NonHomogeneousPoisson,
    burstiness_index,
    merge_arrivals,
)


class TestNonHomogeneousPoisson:
    def test_sorted_within_window(self):
        process = NonHomogeneousPoisson(lambda t: 1.0, 1.0, random.Random(1))
        times = process.sample(10.0, 110.0)
        assert times == sorted(times)
        assert all(10.0 <= t < 110.0 for t in times)

    def test_homogeneous_rate_count(self):
        process = NonHomogeneousPoisson(lambda t: 2.0, 2.0, random.Random(2))
        times = process.sample(0.0, 5000.0)
        assert 9000 < len(times) < 11000

    def test_thinning_tracks_rate_function(self):
        """Twice the rate in the second half means ~twice the arrivals."""
        rate = lambda t: 1.0 if t < 1000.0 else 2.0
        process = NonHomogeneousPoisson(rate, 2.0, random.Random(3))
        times = process.sample(0.0, 2000.0)
        first = sum(1 for t in times if t < 1000.0)
        second = len(times) - first
        assert 1.6 < second / first < 2.4

    def test_rate_above_ceiling_rejected(self):
        process = NonHomogeneousPoisson(lambda t: 5.0, 1.0, random.Random(4))
        with pytest.raises(ValueError):
            process.sample(0.0, 100.0)

    def test_empty_window(self):
        process = NonHomogeneousPoisson(lambda t: 1.0, 1.0, random.Random(5))
        assert process.sample(10.0, 10.0) == []

    def test_invalid_ceiling(self):
        with pytest.raises(ValueError):
            NonHomogeneousPoisson(lambda t: 1.0, 0.0, random.Random(1))


class TestFlashCrowd:
    def test_size_honoured(self):
        crowd = FlashCrowd(start=100.0, size=500)
        assert len(crowd.sample(random.Random(1))) == 500

    def test_front_loaded(self):
        crowd = FlashCrowd(start=0.0, size=2000, window=120.0)
        times = crowd.sample(random.Random(2))
        within_window = sum(1 for t in times if t <= 120.0)
        assert within_window > 1800  # exponential with mean window/3

    def test_sorted(self):
        times = FlashCrowd(start=0.0, size=100).sample(random.Random(3))
        assert times == sorted(times)

    def test_no_arrivals_before_start(self):
        times = FlashCrowd(start=50.0, size=100).sample(random.Random(4))
        assert all(t >= 50.0 for t in times)


class TestHelpers:
    def test_merge_sorted(self):
        merged = merge_arrivals([1.0, 3.0], [2.0, 4.0], [0.5])
        assert merged == [0.5, 1.0, 2.0, 3.0, 4.0]

    def test_burstiness_poisson_near_one(self):
        rng = random.Random(5)
        t, times = 0.0, []
        while t < 10000.0:
            t += rng.expovariate(1.0)
            times.append(t)
        assert burstiness_index(times, bin_width=100.0) < 1.8

    def test_burstiness_flash_crowd_high(self):
        crowd = FlashCrowd(start=5000.0, size=1000, window=60.0).sample(random.Random(6))
        background = [i * 10.0 for i in range(1000)]
        index = burstiness_index(merge_arrivals(crowd, background), bin_width=60.0)
        assert index > 10.0

    def test_burstiness_edge_cases(self):
        assert burstiness_index([], 10.0) == 0.0
        assert burstiness_index([5.0], 10.0) == 1.0
        assert burstiness_index([5.0, 5.0], 10.0) == 2.0

"""Tests for the live-event workload layer."""

import random

import pytest

from repro.workload.arrivals import burstiness_index
from repro.workload.events import (
    EventWorkload,
    LiveEvent,
    overlay_events_on_trace,
    prime_time_schedule,
)
from repro.workload.traces import OP_JOIN, OP_LOGIN, OP_RENEW, WeekTraceGenerator


class TestLiveEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            LiveEvent(name="x", channel="c", start=100.0, end=50.0, audience=10)
        with pytest.raises(ValueError):
            LiveEvent(name="x", channel="c", start=0.0, end=1.0, audience=-1)


class TestPrimeTimeSchedule:
    def test_one_event_per_evening(self):
        events = prime_time_schedule(random.Random(1), n_events=5, audience_per_event=100)
        assert len(events) == 5
        starts = [e.start for e in events]
        assert starts == sorted(starts)
        # All in the 20:15 slot of successive days.
        for day, event in enumerate(events):
            assert event.start == pytest.approx(day * 86400.0 + 20.25 * 3600.0)

    def test_events_fit_horizon(self):
        events = prime_time_schedule(
            random.Random(2), n_events=10, audience_per_event=10, horizon=3 * 86400.0
        )
        assert all(e.end <= 3 * 86400.0 for e in events)
        assert len(events) <= 3


class TestEventWorkload:
    def test_every_viewer_produces_full_flow(self):
        workload = EventWorkload(random.Random(3))
        event = LiveEvent(name="m", channel="ch", start=1000.0, end=7000.0, audience=50)
        records, sessions = workload.generate(event, user_index_base=0, session_id_base=0)
        logins = [r for r in records if r.op == OP_LOGIN]
        joins = [r for r in records if r.op == OP_JOIN]
        assert len(logins) == len(joins) == 50
        assert len(sessions) == 50
        # Long event (6000 s) with 900 s tickets: renewals happen.
        assert any(r.op == OP_RENEW for r in records)

    def test_arrivals_cluster_at_start(self):
        workload = EventWorkload(random.Random(4))
        event = LiveEvent(name="m", channel="ch", start=5000.0, end=10000.0,
                          audience=500, crowd_window=120.0)
        records, _ = workload.generate(event, 0, 0)
        arrivals = [r.time for r in records if r.op == OP_LOGIN]
        near_start = sum(1 for t in arrivals if abs(t - event.start) <= 600.0)
        assert near_start > 400
        assert burstiness_index(arrivals, bin_width=60.0) > 3.0


class TestOverlayOnTrace:
    @pytest.fixture(scope="class")
    def merged(self):
        baseline = WeekTraceGenerator(
            rng=random.Random(5), peak_concurrent=40, n_channels=10,
            horizon=2 * 86400.0,
        ).generate()
        events = [
            LiveEvent(name="derby", channel="event-ch0",
                      start=20.25 * 3600.0, end=22.0 * 3600.0, audience=80)
        ]
        merged = overlay_events_on_trace(baseline, events, random.Random(6))
        return baseline, merged

    def test_baseline_unchanged(self, merged):
        baseline, combined = merged
        assert len(combined.events) > len(baseline.events)
        assert len(combined.sessions) == len(baseline.sessions) + 80

    def test_events_time_ordered(self, merged):
        _, combined = merged
        times = [e.time for e in combined.events]
        assert times == sorted(times)

    def test_user_indices_do_not_collide(self, merged):
        baseline, combined = merged
        baseline_users = {e.user_index for e in baseline.events}
        event_users = {
            e.user_index for e in combined.events if e.channel == "event-ch0"
        }
        assert baseline_users.isdisjoint(event_users - baseline_users) or True
        # Stronger: the event crowd's indices all exceed the baseline's max.
        assert min(event_users - baseline_users, default=10**9) > max(baseline_users)

    def test_concurrency_spikes_at_event(self, merged):
        baseline, combined = merged
        during = combined.concurrent_at(20.5 * 3600.0)
        baseline_during = baseline.concurrent_at(20.5 * 3600.0)
        assert during >= baseline_during + 60  # most of the 80 arrived


class TestWeeklongWithEvents:
    def test_flat_latency_survives_event_spikes(self):
        """The harder Fig. 5: flash crowds on top of the diurnal curve,
        correlations still weak (the stateless-farm mechanism absorbs
        the spikes)."""
        from repro.experiments.common import WeeklongConfig
        from repro.experiments.weeklong import WeeklongRunner

        config = WeeklongConfig(
            peak_concurrent=80, n_channels=12, horizon=3 * 86400.0,
            live_events=3, event_audience=60,
        )
        result = WeeklongRunner(config).run()
        # The spikes are in the trace...
        evening = result.trace.concurrent_at(20.5 * 3600.0)
        afternoon = result.trace.concurrent_at(15.0 * 3600.0)
        assert evening > afternoon * 1.5
        # ...and latency stays decorrelated.
        for round_name in ("LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2"):
            assert abs(result.correlation(round_name, min_samples=5)) < 0.35
        assert result.um_utilization < 0.5

"""Tests for the diurnal profile."""

import pytest

from repro.workload.diurnal import (
    DiurnalProfile,
    concurrent_users_curve,
    is_peak_hour,
)


@pytest.fixture
def profile():
    return DiurnalProfile()


class TestPeakSplit:
    def test_paper_definition(self):
        """Peak is 18:00-24:00; off-peak is 00:00-18:00 (Section VI)."""
        assert is_peak_hour(18.0)
        assert is_peak_hour(23.99)
        assert not is_peak_hour(0.0)
        assert not is_peak_hour(12.0)
        assert not is_peak_hour(17.99)

    def test_wraps_past_midnight(self):
        assert is_peak_hour(18.0 + 24.0)
        assert not is_peak_hour(2.0 + 48.0)


class TestProfileShape:
    def test_evening_peak_dominates(self, profile):
        evening = profile.multiplier(20.5 * 3600)
        for hour in (3, 6, 9, 12, 15):
            assert evening > profile.multiplier(hour * 3600)

    def test_overnight_trough(self, profile):
        """The 0-6AM trough that gives the paper its small-sample spikes."""
        trough = min(profile.multiplier(h * 3600) for h in (2, 3, 4, 5))
        peak = profile.multiplier(20.5 * 3600)
        assert trough < peak * 0.1

    def test_multiplier_bounded(self, profile):
        for step in range(0, 7 * 24):
            value = profile.multiplier(step * 3600.0)
            assert 0.0 <= value <= profile.peak_multiplier()

    def test_weekend_hotter_than_weekday(self, profile):
        monday_noon = profile.multiplier(12 * 3600.0)
        saturday_noon = profile.multiplier((5 * 24 + 12) * 3600.0)
        assert saturday_noon > monday_noon

    def test_interpolation_continuous(self, profile):
        """No jumps bigger than the anchor deltas (piecewise linear)."""
        previous = profile.multiplier(0.0)
        for minute in range(1, 24 * 60):
            current = profile.multiplier(minute * 60.0)
            assert abs(current - previous) < 0.05
            previous = current

    def test_hourly_table_has_24_entries(self, profile):
        table = profile.hourly_table()
        assert len(table) == 24
        assert max(table) == pytest.approx(1.0, abs=0.25)


class TestConcurrencyCurve:
    def test_scales_to_peak(self, profile):
        curve = concurrent_users_curve(profile, peak_concurrent=25000, horizon=7 * 86400.0)
        values = [v for _, v in curve]
        assert max(values) == pytest.approx(25000, rel=0.02)
        assert min(values) >= 0

    def test_step_spacing(self, profile):
        curve = concurrent_users_curve(profile, 100, horizon=3600.0, step=600.0)
        times = [t for t, _ in curve]
        assert times == [0.0, 600.0, 1200.0, 1800.0, 2400.0, 3000.0, 3600.0]

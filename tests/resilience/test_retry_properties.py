"""Property tests for the backoff schedule (the satellite-3 contract).

Three properties, over the whole parameter space:

* the schedule is monotone non-decreasing and never exceeds the cap;
* the sum of delays respects the deadline budget when one is set;
* the schedule is a pure function of (policy, RNG seed).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import RetryPolicy

@st.composite
def policies(draw):
    base_delay = draw(st.floats(min_value=0.01, max_value=30.0,
                                allow_nan=False, allow_infinity=False))
    # The cap must dominate the base or the policy rejects itself.
    cap_stretch = draw(st.floats(min_value=1.0, max_value=64.0,
                                 allow_nan=False, allow_infinity=False))
    return RetryPolicy(
        base_delay=base_delay,
        multiplier=draw(st.floats(min_value=1.0, max_value=8.0,
                                  allow_nan=False, allow_infinity=False)),
        max_delay=base_delay * cap_stretch,
        max_attempts=draw(st.integers(min_value=1, max_value=24)),
        jitter=draw(st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False, allow_infinity=False)),
        deadline=draw(st.one_of(
            st.none(),
            st.floats(min_value=0.1, max_value=1000.0,
                      allow_nan=False, allow_infinity=False),
        )),
    )


@settings(max_examples=200, deadline=None)
@given(policy=policies(), seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_monotone_and_capped(policy, seed):
    delays = list(policy.delays(random.Random(seed)))
    assert len(delays) <= policy.max_attempts - 1
    for earlier, later in zip(delays, delays[1:]):
        assert later >= earlier
    for delay in delays:
        assert 0.0 < delay <= policy.max_delay


@settings(max_examples=200, deadline=None)
@given(policy=policies(), seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_deadline_budget_respected(policy, seed):
    delays = list(policy.delays(random.Random(seed)))
    if policy.deadline is not None:
        assert sum(delays) <= policy.deadline


@settings(max_examples=100, deadline=None)
@given(policy=policies(), seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_deterministic_given_seed(policy, seed):
    first = list(policy.delays(random.Random(seed)))
    second = list(policy.delays(random.Random(seed)))
    assert first == second

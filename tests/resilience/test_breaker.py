"""Unit tests for the per-endpoint circuit breaker state machine."""

from repro.resilience import BreakerState, CircuitBreaker
from repro.resilience.counters import ResilienceCounters


def test_starts_closed_and_allows():
    breaker = CircuitBreaker()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow(0.0)


def test_trips_after_threshold_consecutive_failures():
    breaker = CircuitBreaker(failure_threshold=3)
    breaker.record_failure(1.0)
    breaker.record_failure(2.0)
    assert breaker.state is BreakerState.CLOSED
    breaker.record_failure(3.0)
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow(3.1)


def test_success_resets_consecutive_count():
    breaker = CircuitBreaker(failure_threshold=2)
    breaker.record_failure(1.0)
    breaker.record_success(2.0)
    breaker.record_failure(3.0)
    assert breaker.state is BreakerState.CLOSED


def test_half_opens_after_reset_timeout():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
    breaker.record_failure(0.0)
    assert not breaker.allow(9.9)
    assert breaker.allow(10.0)
    assert breaker.state is BreakerState.HALF_OPEN


def test_half_open_admits_a_single_probe():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0)
    breaker.record_failure(0.0)
    assert breaker.allow(2.0)       # the probe
    assert not breaker.allow(2.1)   # a second caller must wait
    breaker.record_success(2.5)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow(2.6)


def test_failed_probe_reopens():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0)
    breaker.record_failure(0.0)
    assert breaker.allow(2.0)
    breaker.record_failure(2.5)
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow(3.0)       # timer restarted at the probe failure
    assert breaker.allow(3.5)


def test_counters_track_transitions():
    counters = ResilienceCounters()
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                             counters=counters, name="cm0")
    breaker.record_failure(0.0)
    assert counters.breaker_opens == 1
    assert not breaker.allow(0.5)
    assert counters.breaker_rejections == 1
    assert breaker.allow(1.5)
    assert counters.breaker_half_opens == 1
    breaker.record_success(1.6)
    assert counters.breaker_closes == 1

"""Integration tests for ResilientAsyncClient over the chaos rig.

The unit tests pin the retry/breaker mechanics; these pin the
*viewing* semantics -- failover picks the replica, degraded mode keeps
playback alive exactly while the Channel Ticket is valid, and an
outage that outlives the ticket becomes a recorded interruption, not a
silent hang.
"""

from repro.sim.chaos import CM0, CM1, UM0, ChaosConfig, ChaosRig


def test_watch_converges_with_healthy_farms():
    rig = ChaosRig(ChaosConfig(clients=2, horizon=400.0))
    result = rig.run("healthy")
    assert result.passed, result.violations
    assert all(o.converged for o in result.outcomes)
    assert all(o.retries == 0 and o.failovers == 0 for o in result.outcomes)
    assert rig.deployment.resilience.degraded_entries == 0


def test_primary_cm_down_from_start_fails_over():
    rig = ChaosRig(ChaosConfig(clients=2, horizon=400.0))
    rig.injector.down_at(0.0, CM0)
    result = rig.run("primary-dead")
    assert result.passed, result.violations
    assert all(o.converged for o in result.outcomes)
    assert all(o.failovers >= 1 for o in result.outcomes)
    # The switch never succeeded against cm0, yet its viewing log has
    # the entries: the log is shared by reference across the farm.
    assert len(rig.primary_cm.viewing_log()) > 0
    assert rig.primary_cm.viewing_log() == rig.replica_cm.viewing_log()


def test_outage_shorter_than_ticket_is_degraded_not_interrupted():
    rig = ChaosRig(ChaosConfig(clients=2, horizon=700.0))
    # Both farm instances gone across the renewal point (~241 s), back
    # well before any ticket expires (~301 s).
    for address in (CM0, CM1):
        rig.injector.down_at(235.0, address)
        rig.injector.up_at(265.0, address)
    result = rig.run("blip")
    assert result.passed, result.violations
    for outcome in result.outcomes:
        assert outcome.interruptions == 0
        assert outcome.degraded_seconds > 0.0
        assert outcome.converged


def test_outage_outliving_ticket_records_interruption_then_recovers():
    # Shorter round timeout tightens the retry schedule so the client
    # is mid-backoff, not mid-timeout, when the farm returns.
    config = ChaosConfig(clients=2, horizon=700.0, round_timeout=5.0,
                         min_uninterrupted=0.0)
    rig = ChaosRig(config)
    # Both instances down from before the renewal window until well
    # past every ticket's expiry (~301-303 s): playback must stop.
    for address in (CM0, CM1):
        rig.injector.down_at(230.0, address)
        rig.injector.up_at(380.0, address)
    result = rig.run("long-outage")
    assert result.passed, result.violations
    for outcome in result.outcomes:
        assert outcome.interruptions == 1
        assert outcome.interruption_seconds > 0.0
        assert outcome.degraded_seconds > 0.0
        # The ±120 s renewal window is still open at recovery, so the
        # old ticket renews and the client reconverges.
        assert outcome.converged
    counters = rig.deployment.resilience
    assert counters.breaker_opens > 0
    assert counters.playback_interruptions == 2


def test_um_outage_during_login_retries_until_converged():
    rig = ChaosRig(ChaosConfig(clients=2, horizon=400.0))
    rig.injector.down_at(0.0, UM0)
    rig.injector.up_at(40.0, UM0)
    result = rig.run("um-down")
    assert result.passed, result.violations
    assert all(o.converged for o in result.outcomes)
    # Login either failed over to um1 or retried into the recovery.
    assert rig.deployment.resilience.retries > 0

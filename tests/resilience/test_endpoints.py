"""Unit tests for the ordered-failover endpoint pool."""

import pytest

from repro.errors import SimulationError
from repro.resilience import BreakerState, EndpointPool


def make_pool(**kwargs):
    return EndpointPool(["rpc://a", "rpc://b"], failure_threshold=2,
                        reset_timeout=10.0, **kwargs)


def test_prefers_primary_while_healthy():
    pool = make_pool()
    assert pool.primary == "rpc://a"
    assert pool.pick(0.0) == "rpc://a"


def test_fails_over_when_primary_breaker_opens():
    pool = make_pool()
    pool.record_failure("rpc://a", 1.0)
    assert pool.pick(1.5) == "rpc://a"  # one failure is below threshold
    pool.record_failure("rpc://a", 2.0)
    assert pool.pick(2.5) == "rpc://b"


def test_exhausted_pool_returns_none():
    pool = make_pool()
    for address in ("rpc://a", "rpc://b"):
        pool.record_failure(address, 1.0)
        pool.record_failure(address, 2.0)
    assert pool.pick(3.0) is None


def test_primary_returns_after_half_open_probe_succeeds():
    pool = make_pool()
    pool.record_failure("rpc://a", 0.0)
    pool.record_failure("rpc://a", 1.0)
    assert pool.pick(2.0) == "rpc://b"
    # Past the reset timeout the primary gets a probe slot again.
    assert pool.pick(12.0) == "rpc://a"
    assert pool.breaker("rpc://a").state is BreakerState.HALF_OPEN
    pool.record_success("rpc://a", 12.5)
    assert pool.pick(13.0) == "rpc://a"


def test_states_snapshot():
    pool = make_pool()
    assert pool.states() == {
        "rpc://a": BreakerState.CLOSED, "rpc://b": BreakerState.CLOSED,
    }


def test_rejects_empty_and_duplicate_addresses():
    with pytest.raises(SimulationError):
        EndpointPool([])
    with pytest.raises(SimulationError):
        EndpointPool(["rpc://a", "rpc://a"])

"""Unit tests for RetryPolicy and Deadline."""

import random

import pytest

from repro.errors import (
    AuthorizationError,
    ProtocolError,
    RpcDropError,
    RpcTimeoutError,
    SimulationError,
    TransportError,
    UnresolvableAddressError,
)
from repro.resilience import Deadline, RetryPolicy


class TestRetryPolicy:
    def test_delays_grow_exponentially_without_jitter(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=100.0,
                             max_attempts=5, jitter=0.0)
        assert list(policy.delays(random.Random(1))) == [1.0, 2.0, 4.0, 8.0]

    def test_delay_count_is_attempts_minus_one(self):
        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        assert len(list(policy.delays(random.Random(1)))) == 2

    def test_cap_applies(self):
        policy = RetryPolicy(base_delay=10.0, multiplier=10.0, max_delay=25.0,
                             max_attempts=6, jitter=0.0)
        delays = list(policy.delays(random.Random(1)))
        assert delays == [10.0, 25.0, 25.0, 25.0, 25.0]

    def test_jitter_never_exceeds_cap_or_shrinks(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=9.0,
                             max_attempts=8, jitter=0.5)
        delays = list(policy.delays(random.Random(7)))
        for earlier, later in zip(delays, delays[1:]):
            assert later >= earlier
        assert all(d <= 9.0 for d in delays)
        assert delays[0] >= 1.0  # jitter only stretches, never shrinks

    def test_deadline_budget_truncates_schedule(self):
        policy = RetryPolicy(base_delay=4.0, multiplier=2.0, max_delay=60.0,
                             max_attempts=10, jitter=0.0, deadline=10.0)
        delays = list(policy.delays(random.Random(1)))
        # 4 + 8 would blow the 10 s budget, so only the first delay fits.
        assert delays == [4.0]
        assert sum(delays) <= 10.0

    def test_deterministic_given_same_seed(self):
        policy = RetryPolicy(jitter=0.3)
        a = list(policy.delays(random.Random(42)))
        b = list(policy.delays(random.Random(42)))
        assert a == b

    @pytest.mark.parametrize("kwargs", [
        {"base_delay": 0.0},
        {"multiplier": 0.5},
        {"max_delay": 0.0},
        {"max_attempts": 0},
        {"jitter": -0.1},
        {"deadline": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(SimulationError):
            RetryPolicy(**kwargs)

    @pytest.mark.parametrize("exc,retryable", [
        (RpcTimeoutError("m", "a", 1.0), True),
        (RpcDropError("m", "a", "down"), True),
        (UnresolvableAddressError("x"), True),
        (TransportError("generic"), True),
        (AuthorizationError("no"), False),
        (ProtocolError("bad"), False),
        (ValueError("boom"), False),
    ])
    def test_is_retryable(self, exc, retryable):
        assert RetryPolicy.is_retryable(exc) is retryable


class TestDeadline:
    def test_after_and_remaining(self):
        deadline = Deadline.after(10.0, 5.0)
        assert deadline.expires_at == 15.0
        assert deadline.remaining(12.0) == 3.0
        assert deadline.remaining(20.0) == 0.0

    def test_exceeded(self):
        deadline = Deadline(expires_at=4.0)
        assert not deadline.exceeded(3.9)
        assert deadline.exceeded(4.0)

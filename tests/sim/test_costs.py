"""Cost models: deterministic client-compute charging (the bugfix)."""

import pytest

from repro.sim.costs import (
    DEFAULT_COST,
    DEFAULT_COSTS,
    OP_CHALLENGE_SIGN,
    OP_JOIN_DECRYPT,
    OP_LOGIN_BLOB,
    FixedCostModel,
    WallClockCostModel,
)


class TestFixedCostModel:
    def test_charge_ignores_measured_duration(self):
        model = FixedCostModel()
        # Wildly different wall-clock measurements, identical charges:
        # this is the property that makes transcripts reproducible.
        assert model.charge(OP_CHALLENGE_SIGN, 0.000001) == \
            model.charge(OP_CHALLENGE_SIGN, 5.0)

    def test_table_costs(self):
        model = FixedCostModel()
        for op in (OP_LOGIN_BLOB, OP_CHALLENGE_SIGN, OP_JOIN_DECRYPT):
            assert model.charge(op, 0.0) == DEFAULT_COSTS[op]

    def test_unknown_op_gets_default(self):
        assert FixedCostModel().charge("mystery", 1.0) == DEFAULT_COST

    def test_custom_table_and_default(self):
        model = FixedCostModel(costs={"a": 0.5}, default=0.125)
        assert model.charge("a", 9.9) == 0.5
        assert model.charge("b", 9.9) == 0.125

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            FixedCostModel(costs={"a": -0.1})
        with pytest.raises(ValueError):
            FixedCostModel(default=-1.0)


class TestWallClockCostModel:
    def test_charge_returns_measured(self):
        model = WallClockCostModel()
        assert model.charge(OP_CHALLENGE_SIGN, 0.042) == 0.042


class TestDriverUsesDeterministicCosts:
    def test_async_client_defaults_to_fixed_model(self):
        import random

        from repro.crypto.drbg import HmacDrbg
        from repro.deployment import Deployment
        from repro.sim.driver import AsyncClient
        from repro.sim.engine import Simulator
        from repro.sim.network import LatencyModel
        from repro.sim.rpc import VirtualNetwork

        deployment = Deployment(seed=3)
        sim = Simulator()
        network = VirtualNetwork(sim, LatencyModel(random.Random(1)), random.Random(2))
        client = AsyncClient(
            network=network,
            email="cost@example.org",
            password="pw",
            version=deployment.client_version,
            image=deployment.client_image,
            net_addr="1.2.3.4",
            region="CH",
            drbg=HmacDrbg(b"cost", b"client"),
        )
        assert isinstance(client.cost_model, FixedCostModel)

    def test_same_seed_same_event_times(self):
        # End-to-end: two traced storms with one seed agree on every
        # span timestamp -- the symptom the wall-clock charging bug
        # used to produce is exactly a mismatch here.
        from repro.trace.span import Tracer
        from repro.trace.storm import run_switch_storm

        times = []
        for _ in range(2):
            result = run_switch_storm(clients=2, seed=5, horizon=60.0,
                                      tracer=Tracer())
            assert not result.errors
            times.append([(s.name, s.start, s.end) for s in result.tracer.spans])
        assert times[0] == times[1]

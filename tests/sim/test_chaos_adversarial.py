"""Scenario-level tests for the adversarial chaos suite.

The per-component behavior (injection, scorecard, replay window, rate
limiter) is covered in ``tests/p2p/test_adversary.py``; here we assert
the *end-to-end* gates the suite exists for: with 20% adversarial
peers, detection fires, the adversaries are quarantined and evicted,
honest peers are never framed, no tampered packet ever decrypts, and
playback recovers.  Fleet size is reduced through the same
``CHAOS_ADV_VIEWERS`` knob the CI smoke job uses.
"""

import pytest

from repro.p2p.adversary import AdversaryConfig
from repro.sim.adversarial import AdversarialRig
from repro.sim.chaos import (
    SCENARIOS,
    ChaosConfig,
    load_result,
    render_result,
    run_scenario,
)

SMALL = ChaosConfig(clients=4)


@pytest.fixture(autouse=True)
def small_fleet(monkeypatch):
    monkeypatch.setenv("CHAOS_ADV_VIEWERS", "8")


def test_adversarial_scenarios_registered():
    assert {
        "polluting_parents",
        "key_withholding_parents",
        "depth_liars",
        "join_flood",
        "replay_storm",
    } <= set(SCENARIOS)


class TestPollutingParents:
    def test_full_pipeline_visible(self):
        result = run_scenario("polluting_parents", SMALL)
        assert result.passed, result.violations
        counters = result.counters
        assert counters["adversary.pollution_detected"] > 0
        assert counters["adversary.peers_quarantined"] > 0
        assert counters["adversary.peers_evicted"] > 0
        assert counters["adversary.eviction_repairs"] > 0
        # detect -> quarantine -> evict all left trace spans.
        for span in ("ADVERSARY.detect", "ADVERSARY.quarantine", "ADVERSARY.evict"):
            assert result.resilience_spans.get(span, 0) > 0, span

    def test_result_survives_json_roundtrip(self, tmp_path):
        result = run_scenario("polluting_parents", SMALL)
        path = str(tmp_path / "adv.json")
        result.save(path)
        loaded = load_result(path)
        assert loaded.counters == result.counters
        assert loaded.resilience_spans == result.resilience_spans
        assert loaded.passed

    def test_render_shows_misbehavior_table(self):
        result = run_scenario("polluting_parents", SMALL)
        text = render_result(result)
        assert "misbehavior / containment" in text
        assert "pollution_detected" in text
        assert "quarantine" in text  # the event timeline


class TestJoinFlood:
    def test_flood_refused_without_collateral(self):
        result = run_scenario("join_flood", SMALL)
        assert result.passed, result.violations
        assert result.counters["adversary.joins_rate_limited"] > 0
        assert result.counters["flood.refused"] > 0
        # The late honest joiner got through (asserted inside the
        # scenario); a pass here means no collateral damage.


class TestHonestPeersNeverFramed:
    def test_rig_with_honest_fleet_detects_nothing(self):
        """An all-honest run of the same rig: zero detections, zero
        quarantines -- the detection plane has no false positives on
        clean traffic."""
        rig = AdversarialRig(SMALL, AdversaryConfig())
        rig.run_clock()
        counters = rig.deployment.misbehavior.snapshot()
        assert counters["pollution_detected"] == 0
        assert counters["peers_quarantined"] == 0
        assert counters["peers_evicted"] == 0
        assert rig.playback_fraction() >= SMALL.min_uninterrupted

"""Tests for the WAN latency model."""

import random

import pytest

from repro.sim.network import (
    DEFAULT_RTT,
    LatencyModel,
    RegionRtt,
    peer_rtt,
    transmission_delay,
    zattoo_like_rtt_table,
)


class TestLatencyModel:
    def test_samples_positive(self):
        model = LatencyModel(random.Random(1), table=zattoo_like_rtt_table())
        for _ in range(500):
            assert model.sample_rtt("CH", "dc-eu") > 0.0

    def test_unknown_pair_uses_default(self):
        model = LatencyModel(random.Random(1))
        assert model.params("XX", "nowhere") == DEFAULT_RTT

    def test_median_near_base(self):
        base = RegionRtt(base_rtt=0.1, sigma=0.3, slow_path_prob=0.0)
        model = LatencyModel(random.Random(2), table={("R", "S"): base})
        samples = sorted(model.sample_rtt("R", "S") for _ in range(2001))
        median = samples[1000]
        assert 0.08 < median < 0.12  # lognormal(0, s) has median 1

    def test_slow_paths_create_tail(self):
        fast = RegionRtt(base_rtt=0.1, sigma=0.1, slow_path_prob=0.0)
        slow = RegionRtt(base_rtt=0.1, sigma=0.1, slow_path_prob=0.3, slow_path_factor=10.0)
        model = LatencyModel(
            random.Random(3), table={("R", "fast"): fast, ("R", "slow"): slow}
        )
        fast_max = max(model.sample_rtt("R", "fast") for _ in range(500))
        slow_max = max(model.sample_rtt("R", "slow") for _ in range(500))
        assert slow_max > fast_max * 3

    def test_one_way_is_half_scale(self):
        base = RegionRtt(base_rtt=0.1, sigma=0.01, slow_path_prob=0.0)
        model = LatencyModel(random.Random(4), table={("R", "S"): base})
        one_way = sum(model.sample_one_way("R", "S") for _ in range(500)) / 500
        round_trip = sum(model.sample_rtt("R", "S") for _ in range(500)) / 500
        assert one_way == pytest.approx(round_trip / 2, rel=0.1)

    def test_load_independence(self):
        # The WAN model has no load input at all -- sampling many times
        # does not trend (a regression guard on the structural property
        # behind the paper's flat-latency result).
        model = LatencyModel(random.Random(5), table=zattoo_like_rtt_table())
        first = [model.sample_rtt("DE", "dc-eu") for _ in range(2000)]
        second = [model.sample_rtt("DE", "dc-eu") for _ in range(2000)]
        assert abs(sorted(first)[1000] - sorted(second)[1000]) < 0.02

    def test_deterministic_under_seed(self):
        a = LatencyModel(random.Random(9)).sample_rtt("CH", "dc-eu")
        b = LatencyModel(random.Random(9)).sample_rtt("CH", "dc-eu")
        assert a == b


class TestZattooTable:
    def test_covers_all_regions(self):
        table = zattoo_like_rtt_table()
        for region in ("CH", "DE", "FR", "ES", "UK", "DK", "US", "ASIA"):
            assert (region, "dc-eu") in table

    def test_transcontinental_slower(self):
        table = zattoo_like_rtt_table()
        assert table[("US", "dc-eu")].base_rtt > table[("CH", "dc-eu")].base_rtt
        assert table[("ASIA", "dc-eu")].base_rtt > table[("US", "dc-eu")].base_rtt


class TestPeerRtt:
    def test_positive(self):
        rng = random.Random(6)
        for _ in range(200):
            assert peer_rtt(rng, same_region=True) > 0

    def test_cross_region_slower_on_average(self):
        rng = random.Random(7)
        same = sum(peer_rtt(rng, True) for _ in range(2000)) / 2000
        cross = sum(peer_rtt(rng, False) for _ in range(2000)) / 2000
        assert cross > same


class TestTransmissionDelay:
    def test_linear_in_size(self):
        assert transmission_delay(2000, 1e6) == pytest.approx(
            2 * transmission_delay(1000, 1e6)
        )

    def test_ticket_sized_message_is_fast(self):
        # A kilobyte at 1 Mbit/s uplink: ~8 ms, negligible vs RTT.
        assert transmission_delay(1024, 1e6) < 0.01

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            transmission_delay(100, 0)

"""Tests for the multi-server service station."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.station import ServiceStation


def make_station(n_servers=1, mean=1.0, seed=1):
    sim = Simulator()
    station = ServiceStation(
        sim, n_servers=n_servers, mean_service_time=mean, rng=random.Random(seed)
    )
    return sim, station


class TestConstruction:
    def test_rejects_zero_servers(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            ServiceStation(sim, 0, 1.0, random.Random(1))

    def test_rejects_nonpositive_service_time(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            ServiceStation(sim, 1, 0.0, random.Random(1))


class TestSingleServer:
    def test_one_request_takes_its_service_time(self):
        sim, station = make_station()
        done = []
        station.submit(
            on_complete=lambda s, sojourn: done.append((s.now, sojourn)),
            service_time=2.0,
        )
        sim.run()
        assert done == [(2.0, 2.0)]

    def test_fifo_queueing(self):
        sim, station = make_station()
        order = []
        for tag in ("a", "b", "c"):
            station.submit(
                on_complete=lambda s, _sj, t=tag: order.append(t), service_time=1.0
            )
        sim.run()
        assert order == ["a", "b", "c"]

    def test_second_request_waits(self):
        sim, station = make_station()
        sojourns = []
        station.submit(on_complete=lambda s, sj: sojourns.append(sj), service_time=3.0)
        station.submit(on_complete=lambda s, sj: sojourns.append(sj), service_time=1.0)
        sim.run()
        # Second request: 3s queue wait + 1s service.
        assert sojourns == [3.0, 4.0]

    def test_queue_length_observable(self):
        sim, station = make_station()
        for _ in range(5):
            station.submit(service_time=1.0)
        assert station.busy_servers == 1
        assert station.queue_length == 4
        sim.run()
        assert station.queue_length == 0
        assert station.busy_servers == 0


class TestMultiServer:
    def test_parallel_servers_avoid_queueing(self):
        sim, station = make_station(n_servers=3)
        sojourns = []
        for _ in range(3):
            station.submit(on_complete=lambda s, sj: sojourns.append(sj), service_time=2.0)
        sim.run()
        assert sojourns == [2.0, 2.0, 2.0]

    def test_fourth_request_queues_behind_three(self):
        sim, station = make_station(n_servers=3)
        sojourns = []
        for _ in range(4):
            station.submit(on_complete=lambda s, sj: sojourns.append(sj), service_time=2.0)
        sim.run()
        assert sojourns == [2.0, 2.0, 2.0, 4.0]

    def test_doubling_servers_halves_backlog_wait(self):
        waits = {}
        for n in (1, 2):
            sim, station = make_station(n_servers=n)
            sojourns = []
            for _ in range(10):
                station.submit(
                    on_complete=lambda s, sj: sojourns.append(sj), service_time=1.0
                )
            sim.run()
            waits[n] = max(sojourns)
        assert waits[2] == pytest.approx(waits[1] / 2.0)


class TestStatistics:
    def test_counts_and_mean(self):
        sim, station = make_station()
        for _ in range(4):
            station.submit(service_time=1.0)
        sim.run()
        assert station.stats.arrivals == 4
        assert station.stats.completions == 4
        assert station.stats.mean_sojourn == pytest.approx((1 + 2 + 3 + 4) / 4)

    def test_max_queue_len(self):
        sim, station = make_station()
        for _ in range(6):
            station.submit(service_time=1.0)
        sim.run()
        assert station.stats.max_queue_len == 5

    def test_utilization(self):
        sim, station = make_station(n_servers=2)
        for _ in range(4):
            station.submit(service_time=1.0)
        sim.run()
        # 4 seconds of work over 2 servers * 2 seconds horizon = 1.0
        assert station.utilization(horizon=2.0) == pytest.approx(1.0)

    def test_sample_recording_toggle(self):
        sim, station = make_station()
        station.record_samples = False
        station.submit(service_time=1.0)
        sim.run()
        assert station.sojourn_samples == []
        assert station.stats.completions == 1

    def test_mean_sojourn_empty(self):
        _, station = make_station()
        assert station.stats.mean_sojourn == 0.0


class TestSampledServiceTimes:
    def test_exponential_mean_roughly_matches(self):
        sim, station = make_station(n_servers=1000, mean=0.5, seed=7)
        sojourns = []
        for _ in range(1000):
            station.submit(on_complete=lambda s, sj: sojourns.append(sj))
        sim.run()
        mean = sum(sojourns) / len(sojourns)
        assert 0.4 < mean < 0.6  # no queueing with 1000 servers

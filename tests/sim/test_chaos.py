"""The chaos scenario suite's own tests.

Each scenario must pass its invariants at a reduced fleet size (the
CI smoke job runs the acceptance scenario the same way), and the
result object must survive a JSON round-trip for ``repro chaos
report``.
"""

import pytest

from repro.sim.chaos import (
    SCENARIOS,
    ChaosConfig,
    ScenarioResult,
    load_result,
    render_result,
    run_scenario,
)

SMALL = ChaosConfig(clients=4)


def test_registry_lists_every_scenario():
    assert list(SCENARIOS) == [
        "manager_crash_mid_storm",
        "rolling_restarts",
        "partition_cm_farm",
        "slow_station_brownout",
        "replica_flap",
        "shard_killed_mid_resharding",
        "polluting_parents",
        "key_withholding_parents",
        "depth_liars",
        "join_flood",
        "replay_storm",
    ]


def test_unknown_scenario_is_a_clear_error():
    with pytest.raises(KeyError, match="unknown scenario"):
        run_scenario("nope")


@pytest.mark.parametrize("name", list(SCENARIOS))
def test_scenario_passes_invariants(name, monkeypatch):
    # The adversarial scenarios honor the same fleet-size knob CI uses;
    # the infrastructure scenarios ignore it.
    monkeypatch.setenv("CHAOS_ADV_VIEWERS", "8")
    result = run_scenario(name, SMALL)
    assert result.passed, result.violations
    assert all(o.converged for o in result.outcomes)
    assert result.fault_events


def test_manager_crash_mid_storm_acceptance_details():
    result = run_scenario("manager_crash_mid_storm", SMALL)
    assert result.passed, result.violations
    # Every client survives the crash with zero playback interruption,
    # rides it out in degraded mode, and fails over to the replica.
    for outcome in result.outcomes:
        assert outcome.interruptions == 0
        assert outcome.degraded_seconds > 0.0
        assert outcome.failovers >= 1
    # The failovers are visible as annotated resilience spans.
    assert result.resilience_spans.get("FAILOVER", 0) >= len(result.outcomes)
    assert result.resilience_spans.get("RETRY", 0) > 0
    assert result.counters["breaker_opens"] > 0
    # After cm0 recovers, the next renewal's half-open probe re-closes.
    assert result.counters["breaker_closes"] > 0


def test_partition_heals_without_failover():
    result = run_scenario("partition_cm_farm", SMALL)
    assert result.passed, result.violations
    # Both replicas were unreachable: retrying in place was the only
    # option, and two failures stay below the breaker threshold.
    assert all(o.failovers == 0 for o in result.outcomes)
    assert result.counters["breaker_opens"] == 0
    assert result.counters["retries"] > 0


def test_shard_killed_mid_resharding_acceptance_details():
    result = run_scenario("shard_killed_mid_resharding", SMALL)
    assert result.passed, result.violations
    # The migration target died mid-copy: the attempt rolled back
    # (directory untouched), then resumed to completion after recovery.
    assert result.counters["migrations_rolled_back"] >= 1
    assert result.counters["migrations_resumed"] >= 1
    assert result.counters["migrations_completed"] >= 1
    # Renewals that hit the frozen range were deferred, not dropped,
    # and replayed once the freeze lifted.
    assert result.counters["frozen_deferrals"] > 0
    assert result.counters["replayed_operations"] > 0
    assert result.counters["keys_moved"] > 0
    # The kill and the recovery are both visible as fault events.
    kinds = {kind for _, kind, _ in result.fault_events}
    assert {"crash", "recover"} <= kinds


def test_result_json_roundtrip(tmp_path):
    result = run_scenario("replica_flap", SMALL)
    path = tmp_path / "run.json"
    result.save(str(path))
    loaded = load_result(str(path))
    assert loaded.to_dict() == result.to_dict()
    assert isinstance(loaded, ScenarioResult)
    rendered = render_result(loaded)
    assert "replica_flap" in rendered
    assert "PASS" in rendered

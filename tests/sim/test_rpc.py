"""Tests for the virtual-time RPC layer."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, RegionRtt
from repro.sim.rpc import RpcService, VirtualNetwork
from repro.sim.station import ServiceStation


def make_network(loss=0.0, rtt=0.1):
    sim = Simulator()
    latency = LatencyModel(
        random.Random(1),
        table={("client", "dc"): RegionRtt(base_rtt=rtt, sigma=0.0001, slow_path_prob=0.0)},
    )
    network = VirtualNetwork(sim, latency, random.Random(2), loss_probability=loss)
    return sim, network


class TestBasicCall:
    def test_request_reply_roundtrip(self):
        sim, network = make_network()
        service = RpcService(address="svc://a", region="dc")
        service.register("echo", lambda payload, ctx: payload.upper())
        network.attach(service)
        replies = []
        network.call("1.2.3.4", "client", "svc://a", "echo", "hello",
                     on_reply=replies.append)
        sim.run()
        assert replies == ["HELLO"]

    def test_latency_is_full_rtt(self):
        sim, network = make_network(rtt=0.2)
        service = RpcService(address="svc://a", region="dc")
        service.register("noop", lambda payload, ctx: None)
        network.attach(service)
        done = []
        network.call("c", "client", "svc://a", "noop", None,
                     on_reply=lambda _r: done.append(sim.now))
        sim.run()
        assert done[0] == pytest.approx(0.2, rel=0.01)

    def test_context_carries_caller_address_and_time(self):
        sim, network = make_network()
        seen = []
        service = RpcService(address="svc://a", region="dc")
        service.register("probe", lambda payload, ctx: seen.append((ctx.caller_address, ctx.now)))
        network.attach(service)
        network.call("9.9.9.9", "client", "svc://a", "probe", None, on_reply=lambda r: None)
        sim.run()
        assert seen[0][0] == "9.9.9.9"
        assert seen[0][1] == pytest.approx(0.05, rel=0.01)  # one-way delay

    def test_handler_exception_becomes_error_callback(self):
        sim, network = make_network()
        service = RpcService(address="svc://a", region="dc")

        def boom(payload, ctx):
            raise ValueError("denied")

        service.register("boom", boom)
        network.attach(service)
        errors = []
        network.call("c", "client", "svc://a", "boom", None,
                     on_reply=lambda r: pytest.fail("should not reply"),
                     on_error=errors.append)
        sim.run()
        assert isinstance(errors[0], ValueError)

    def test_unknown_address_rejected(self):
        sim, network = make_network()
        with pytest.raises(SimulationError):
            network.call("c", "client", "svc://ghost", "x", None, on_reply=lambda r: None)

    def test_unknown_method_travels_as_error(self):
        sim, network = make_network()
        network.attach(RpcService(address="svc://a", region="dc"))
        errors = []
        network.call("c", "client", "svc://a", "nope", None,
                     on_reply=lambda r: None, on_error=errors.append)
        sim.run()
        assert isinstance(errors[0], SimulationError)

    def test_duplicate_attach_rejected(self):
        _, network = make_network()
        network.attach(RpcService(address="svc://a"))
        with pytest.raises(SimulationError):
            network.attach(RpcService(address="svc://a"))

    def test_duplicate_handler_rejected(self):
        service = RpcService(address="svc://a")
        service.register("m", lambda p, c: None)
        with pytest.raises(SimulationError):
            service.register("m", lambda p, c: None)


class TestQueueing:
    def test_station_serializes_requests(self):
        sim, network = make_network(rtt=0.0002)
        station = ServiceStation(sim, n_servers=1, mean_service_time=1.0,
                                 rng=random.Random(3))
        service = RpcService(address="svc://farm", region="dc", station=station)
        service.register("work", lambda payload, ctx: payload)
        network.attach(service)
        finish_times = []
        for i in range(3):
            network.call("c", "client", "svc://farm", "work", i,
                         on_reply=lambda r: finish_times.append(sim.now))
        sim.run()
        assert len(finish_times) == 3
        # Strictly increasing completion: a single server works in series.
        assert finish_times == sorted(finish_times)
        assert finish_times[-1] - finish_times[0] > 0.5


class TestLoss:
    def test_lost_request_triggers_timeout(self):
        sim, network = make_network(loss=1.0)
        service = RpcService(address="svc://a", region="dc")
        service.register("x", lambda p, c: p)
        network.attach(service)
        timeouts = []
        network.call("c", "client", "svc://a", "x", None,
                     on_reply=lambda r: pytest.fail("lost message replied"),
                     timeout=1.0, on_timeout=lambda: timeouts.append(sim.now))
        sim.run()
        assert timeouts == [1.0]
        assert network.messages_lost == 1

    def test_no_timeout_after_successful_reply(self):
        sim, network = make_network(loss=0.0)
        service = RpcService(address="svc://a", region="dc")
        service.register("x", lambda p, c: p)
        network.attach(service)
        events = []
        network.call("c", "client", "svc://a", "x", 42,
                     on_reply=lambda r: events.append(("reply", r)),
                     timeout=5.0, on_timeout=lambda: events.append(("timeout", None)))
        sim.run()
        assert events == [("reply", 42)]

    def test_partial_loss_statistics(self):
        sim, network = make_network(loss=0.3, rtt=0.001)
        service = RpcService(address="svc://a", region="dc")
        service.register("x", lambda p, c: p)
        network.attach(service)
        replies = []
        for _ in range(300):
            network.call("c", "client", "svc://a", "x", 1, on_reply=replies.append)
        sim.run()
        # With 30% loss per direction, ~49% of calls complete.
        assert 100 < len(replies) < 200
        assert network.messages_lost > 50

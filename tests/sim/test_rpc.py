"""Tests for the virtual-time RPC layer."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, RegionRtt
from repro.sim.rpc import RpcService, VirtualNetwork
from repro.sim.station import ServiceStation


def make_network(loss=0.0, rtt=0.1):
    sim = Simulator()
    latency = LatencyModel(
        random.Random(1),
        table={("client", "dc"): RegionRtt(base_rtt=rtt, sigma=0.0001, slow_path_prob=0.0)},
    )
    network = VirtualNetwork(sim, latency, random.Random(2), loss_probability=loss)
    return sim, network


class TestBasicCall:
    def test_request_reply_roundtrip(self):
        sim, network = make_network()
        service = RpcService(address="svc://a", region="dc")
        service.register("echo", lambda payload, ctx: payload.upper())
        network.attach(service)
        replies = []
        network.call("1.2.3.4", "client", "svc://a", "echo", "hello",
                     on_reply=replies.append)
        sim.run()
        assert replies == ["HELLO"]

    def test_latency_is_full_rtt(self):
        sim, network = make_network(rtt=0.2)
        service = RpcService(address="svc://a", region="dc")
        service.register("noop", lambda payload, ctx: None)
        network.attach(service)
        done = []
        network.call("c", "client", "svc://a", "noop", None,
                     on_reply=lambda _r: done.append(sim.now))
        sim.run()
        assert done[0] == pytest.approx(0.2, rel=0.01)

    def test_context_carries_caller_address_and_time(self):
        sim, network = make_network()
        seen = []
        service = RpcService(address="svc://a", region="dc")
        service.register("probe", lambda payload, ctx: seen.append((ctx.caller_address, ctx.now)))
        network.attach(service)
        network.call("9.9.9.9", "client", "svc://a", "probe", None, on_reply=lambda r: None)
        sim.run()
        assert seen[0][0] == "9.9.9.9"
        assert seen[0][1] == pytest.approx(0.05, rel=0.01)  # one-way delay

    def test_handler_exception_becomes_error_callback(self):
        sim, network = make_network()
        service = RpcService(address="svc://a", region="dc")

        def boom(payload, ctx):
            raise ValueError("denied")

        service.register("boom", boom)
        network.attach(service)
        errors = []
        network.call("c", "client", "svc://a", "boom", None,
                     on_reply=lambda r: pytest.fail("should not reply"),
                     on_error=errors.append)
        sim.run()
        assert isinstance(errors[0], ValueError)

    def test_unknown_address_rejected(self):
        sim, network = make_network()
        with pytest.raises(SimulationError):
            network.call("c", "client", "svc://ghost", "x", None, on_reply=lambda r: None)

    def test_unknown_method_travels_as_error(self):
        sim, network = make_network()
        network.attach(RpcService(address="svc://a", region="dc"))
        errors = []
        network.call("c", "client", "svc://a", "nope", None,
                     on_reply=lambda r: None, on_error=errors.append)
        sim.run()
        assert isinstance(errors[0], SimulationError)

    def test_duplicate_attach_rejected(self):
        _, network = make_network()
        network.attach(RpcService(address="svc://a"))
        with pytest.raises(SimulationError):
            network.attach(RpcService(address="svc://a"))

    def test_duplicate_handler_rejected(self):
        service = RpcService(address="svc://a")
        service.register("m", lambda p, c: None)
        with pytest.raises(SimulationError):
            service.register("m", lambda p, c: None)


class TestQueueing:
    def test_station_serializes_requests(self):
        sim, network = make_network(rtt=0.0002)
        station = ServiceStation(sim, n_servers=1, mean_service_time=1.0,
                                 rng=random.Random(3))
        service = RpcService(address="svc://farm", region="dc", station=station)
        service.register("work", lambda payload, ctx: payload)
        network.attach(service)
        finish_times = []
        for i in range(3):
            network.call("c", "client", "svc://farm", "work", i,
                         on_reply=lambda r: finish_times.append(sim.now))
        sim.run()
        assert len(finish_times) == 3
        # Strictly increasing completion: a single server works in series.
        assert finish_times == sorted(finish_times)
        assert finish_times[-1] - finish_times[0] > 0.5


class TestLoss:
    def test_lost_request_triggers_timeout(self):
        sim, network = make_network(loss=1.0)
        service = RpcService(address="svc://a", region="dc")
        service.register("x", lambda p, c: p)
        network.attach(service)
        timeouts = []
        network.call("c", "client", "svc://a", "x", None,
                     on_reply=lambda r: pytest.fail("lost message replied"),
                     timeout=1.0, on_timeout=lambda: timeouts.append(sim.now))
        sim.run()
        assert timeouts == [1.0]
        assert network.messages_lost == 1

    def test_no_timeout_after_successful_reply(self):
        sim, network = make_network(loss=0.0)
        service = RpcService(address="svc://a", region="dc")
        service.register("x", lambda p, c: p)
        network.attach(service)
        events = []
        network.call("c", "client", "svc://a", "x", 42,
                     on_reply=lambda r: events.append(("reply", r)),
                     timeout=5.0, on_timeout=lambda: events.append(("timeout", None)))
        sim.run()
        assert events == [("reply", 42)]

    def test_partial_loss_statistics(self):
        sim, network = make_network(loss=0.3, rtt=0.001)
        service = RpcService(address="svc://a", region="dc")
        service.register("x", lambda p, c: p)
        network.attach(service)
        replies = []
        for _ in range(300):
            network.call("c", "client", "svc://a", "x", 1, on_reply=replies.append)
        sim.run()
        # With 30% loss per direction, ~49% of calls complete.
        assert 100 < len(replies) < 200
        assert network.messages_lost > 50


class TestTypedTransportErrors:
    def test_timeout_without_on_timeout_delivers_typed_error(self):
        from repro.errors import RpcTimeoutError

        sim, network = make_network()
        service = RpcService(address="svc://a", region="dc")
        service.register("slow", lambda p, c: p)
        network.attach(service)
        network.set_down("svc://a")
        errors = []
        network.call("c", "client", "svc://a", "slow", 1,
                     on_reply=lambda r: pytest.fail("dead service replied"),
                     on_error=errors.append, timeout=1.0)
        sim.run()
        assert len(errors) == 1
        exc = errors[0]
        assert isinstance(exc, RpcTimeoutError)
        assert exc.method == "slow"
        assert exc.dst_address == "svc://a"
        assert exc.timeout == 1.0

    def test_on_timeout_takes_precedence_over_on_error(self):
        sim, network = make_network()
        service = RpcService(address="svc://a", region="dc")
        service.register("slow", lambda p, c: p)
        network.attach(service)
        network.set_down("svc://a")
        events = []
        network.call("c", "client", "svc://a", "slow", 1,
                     on_reply=lambda r: None,
                     on_error=lambda e: events.append(("error", e)),
                     timeout=1.0, on_timeout=lambda: events.append(("timeout",)))
        sim.run()
        assert events == [("timeout",)]

    def test_fail_fast_down_service_refuses_after_one_rtt(self):
        from repro.errors import RpcDropError

        sim, network = make_network(rtt=0.2)
        service = RpcService(address="svc://a", region="dc")
        service.register("x", lambda p, c: p)
        network.attach(service)
        network.set_down("svc://a")
        errors = []
        network.call("c", "client", "svc://a", "x", 1,
                     on_reply=lambda r: pytest.fail("dead service replied"),
                     on_error=errors.append, timeout=30.0, fail_fast=True)
        sim.run()
        assert len(errors) == 1
        assert isinstance(errors[0], RpcDropError)
        assert errors[0].reason == "dst-down"
        assert sim.now == pytest.approx(0.2, rel=0.05)  # rtt, not timeout


class TestPartitions:
    def setup_rig(self):
        sim, network = make_network()
        service = RpcService(address="svc://a", region="dc")
        service.register("x", lambda p, c: p)
        network.attach(service)
        return sim, network

    def test_blocked_request_path_times_out(self):
        sim, network = self.setup_rig()
        network.block_link("1.1.1.1", "svc://a")
        timeouts, replies = [], []
        network.call("1.1.1.1", "client", "svc://a", "x", 1,
                     on_reply=replies.append, timeout=2.0,
                     on_timeout=lambda: timeouts.append(sim.now))
        sim.run()
        assert replies == []
        assert timeouts == [2.0]
        assert network.messages_blocked == 1

    def test_blocked_reply_path_times_out(self):
        sim, network = self.setup_rig()
        # Request gets through; the reply is cut -- the caller cannot
        # tell this apart from a lost request.
        network.block_link("svc://a", "1.1.1.1")
        timeouts = []
        network.call("1.1.1.1", "client", "svc://a", "x", 1,
                     on_reply=lambda r: pytest.fail("reply crossed the cut"),
                     timeout=2.0, on_timeout=lambda: timeouts.append(sim.now))
        sim.run()
        assert timeouts == [2.0]
        assert network.messages_blocked == 1

    def test_partition_blocks_both_directions_and_heals(self):
        sim, network = self.setup_rig()
        network.partition(["1.1.1.1"], ["svc://a"])
        replies = []
        network.call("1.1.1.1", "client", "svc://a", "x", 1,
                     on_reply=replies.append, timeout=1.0,
                     on_timeout=lambda: None)
        sim.run()
        assert replies == []
        network.heal()
        network.call("1.1.1.1", "client", "svc://a", "x", 2,
                     on_reply=replies.append)
        sim.run()
        assert replies == [2]

    def test_unaffected_caller_is_not_blocked(self):
        sim, network = self.setup_rig()
        network.partition(["1.1.1.1"], ["svc://a"])
        replies = []
        network.call("2.2.2.2", "client", "svc://a", "x", 3,
                     on_reply=replies.append)
        sim.run()
        assert replies == [3]

    def test_wildcard_blocks_every_caller(self):
        sim, network = self.setup_rig()
        network.block_link("*", "svc://a")
        timeouts = []
        network.call("9.9.9.9", "client", "svc://a", "x", 1,
                     on_reply=lambda r: pytest.fail("wildcard leak"),
                     timeout=1.0, on_timeout=lambda: timeouts.append(1))
        sim.run()
        assert timeouts == [1]

"""Virtual-time integration: the functional protocols as messages.

Runs the real login/switch/join flows -- genuine RSA, genuine policy
evaluation -- as chained RPC messages under the event engine, and
checks that the emergent round latencies decompose as RTT + queueing +
client compute.
"""

import random

import pytest

from repro.deployment import Deployment
from repro.metrics.collector import LatencyCollector
from repro.sim.driver import (
    AsyncClient,
    wire_channel_manager,
    wire_peer,
    wire_user_manager,
)
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, RegionRtt
from repro.sim.rpc import VirtualNetwork
from repro.crypto.drbg import HmacDrbg


RTT = 0.1


@pytest.fixture
def rig():
    """A deployment whose managers are reachable over the virtual net."""
    deployment = Deployment(seed=31)
    deployment.add_free_channel("vt", regions=["CH"])
    sim = Simulator()
    latency = LatencyModel(
        random.Random(5),
        table={("CH", "dc"): RegionRtt(base_rtt=RTT, sigma=0.0001, slow_path_prob=0.0)},
    )
    network = VirtualNetwork(sim, latency, random.Random(6))
    wire_user_manager(network, deployment.user_managers["domain-0"], "rpc://um")
    wire_channel_manager(network, deployment.channel_manager_for("vt"), "rpc://cm")
    return deployment, sim, network


def make_async_client(deployment, network, email="vt@example.org"):
    deployment.accounts.register(email, "pw")
    return AsyncClient(
        network=network,
        email=email,
        password="pw",
        version=deployment.client_version,
        image=deployment.client_image,
        net_addr=deployment.geo.random_address("CH", deployment.rng),
        region="CH",
        drbg=HmacDrbg(email.encode()),
    )


class TestAsyncLogin:
    def test_login_completes_with_verified_ticket(self, rig):
        deployment, sim, network = rig
        client = make_async_client(deployment, network)
        done = []
        client.start_login("rpc://um", on_done=lambda: done.append(sim.now))
        sim.run()
        assert done
        assert client.user_ticket is not None
        client.user_ticket.verify(
            deployment.user_managers["domain-0"].public_key, now=sim.now
        )
        assert not client.errors

    def test_round_latencies_are_rtt_plus_compute(self, rig):
        deployment, sim, network = rig
        client = make_async_client(deployment, network)
        client.start_login("rpc://um", on_done=lambda: None)
        sim.run()
        login1 = client.collector.latencies("LOGIN1")[0]
        login2 = client.collector.latencies("LOGIN2")[0]
        # Each round costs at least one full RTT and stays well under
        # RTT + a generous compute budget.
        assert RTT * 0.99 < login1 < RTT + 0.5
        assert RTT * 0.99 < login2 < RTT + 0.5

    def test_wrong_password_fails_in_virtual_time(self, rig):
        deployment, sim, network = rig
        deployment.accounts.register("bad@example.org", "right")
        client = AsyncClient(
            network=network, email="bad@example.org", password="wrong",
            version=deployment.client_version, image=deployment.client_image,
            net_addr=deployment.geo.random_address("CH", deployment.rng),
            region="CH", drbg=HmacDrbg(b"bad"),
        )
        failures = []
        # Blob decryption fails client-side, inside the LOGIN1 reply
        # handler -- which runs inside the engine, so the exception
        # surfaces from run().
        client.start_login("rpc://um", on_done=lambda: pytest.fail("logged in!"),
                           on_fail=failures.append)
        from repro.errors import DecryptionError

        with pytest.raises(DecryptionError):
            sim.run()


class TestAsyncFullFlow:
    def test_login_switch_join_pipeline(self, rig):
        deployment, sim, network = rig
        # A synchronous viewer seeds the overlay so there is a peer to join.
        seeder = deployment.create_client("seed@example.org", "pw", region="CH")
        seeder.login(now=0.0)
        seed_peer = deployment.watch(seeder, "vt", now=0.0, capacity=4)
        wire_peer(network, seed_peer)

        client = make_async_client(deployment, network)
        accepted = []

        def after_login():
            client.start_switch("rpc://cm", "vt", on_done=after_switch)

        def after_switch(response):
            target = next(
                d for d in response.peers if not d.peer_id.startswith("source")
            )
            client.start_join(f"peer://{target.peer_id}", on_done=accepted.append)

        client.start_login("rpc://um", on_done=after_login)
        sim.run()
        assert accepted, client.errors
        assert client.collector.count("LOGIN1") == 1
        assert client.collector.count("SWITCH2") == 1
        assert client.collector.count("JOIN") == 1
        # Five messages-exchange rounds = five recorded samples total.
        total = sum(client.collector.count(r) for r in client.collector.rounds())
        assert total == 5

    def test_policy_denial_travels_back(self, rig):
        deployment, sim, network = rig
        deployment.add_subscription_channel("vip", regions=["CH"], package_id="9", now=0.0)
        client = make_async_client(deployment, network)
        denials = []

        def after_login():
            client.start_switch("rpc://cm", "vip",
                                on_done=lambda r: pytest.fail("admitted!"),
                                on_fail=denials.append)

        client.start_login("rpc://um", on_done=after_login)
        sim.run()
        from repro.errors import PolicyRejectError

        assert denials and isinstance(denials[0], PolicyRejectError)

    def test_concurrent_clients_share_the_virtual_network(self, rig):
        deployment, sim, network = rig
        clients = [
            make_async_client(deployment, network, f"c{i}@example.org")
            for i in range(5)
        ]
        done = []
        for client in clients:
            client.start_login("rpc://um", on_done=lambda c=None: done.append(1))
        sim.run()
        assert len(done) == 5
        assert all(c.user_ticket is not None for c in clients)

"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda s: fired.append("c"))
        sim.schedule(1.0, lambda s: fired.append("a"))
        sim.schedule(2.0, lambda s: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        fired = []
        for tag in range(5):
            sim.schedule(1.0, lambda s, t=tag: fired.append(t))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda s: seen.append(s.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_callbacks_can_schedule_more(self):
        sim = Simulator()
        fired = []

        def first(s):
            fired.append(("first", s.now))
            s.schedule(1.0, lambda s2: fired.append(("second", s2.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [("first", 1.0), ("second", 2.0)]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda s: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda s: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda s: None)


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda s: fired.append(1))
        sim.schedule(10.0, lambda s: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_run_until_advances_clock_on_empty_heap(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_max_events_backstop(self):
        sim = Simulator()

        def loop(s):
            s.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def bad(s):
            s.run()

        sim.schedule(0.0, bad)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(7):
            sim.schedule(1.0, lambda s: None)
        sim.run()
        assert sim.events_processed == 7


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda s: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_pending_ignores_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        event = sim.schedule(2.0, lambda s: None)
        assert sim.pending() == 2
        event.cancel()
        assert sim.pending() == 1


class TestExceptionPropagation:
    def test_callback_exception_escapes_run(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: (_ for _ in ()).throw(RuntimeError("boom")))
        with pytest.raises(RuntimeError):
            sim.run()

    def test_engine_usable_after_exception(self):
        sim = Simulator()

        def boom(s):
            raise RuntimeError

        sim.schedule(1.0, boom)
        with pytest.raises(RuntimeError):
            sim.run()
        fired = []
        sim.schedule(1.0, lambda s: fired.append(True))
        sim.run()
        assert fired == [True]

"""Tests for crash/restart fault injection and the recovery invariants."""

import random

import pytest

from repro.core.attributes import Attribute, AttributeSet
from repro.core.channel_manager import ViewingLogEntry
from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.faults import (
    CrashRecord,
    FaultInjector,
    single_location_violations,
    utime_regressions,
    viewing_log_divergence,
)
from repro.sim.network import LatencyModel, RegionRtt
from repro.sim.rpc import RpcService, VirtualNetwork


def make_network(rtt=0.1):
    sim = Simulator()
    latency = LatencyModel(
        random.Random(1),
        table={("client", "dc"): RegionRtt(base_rtt=rtt, sigma=0.0001, slow_path_prob=0.0)},
    )
    return sim, VirtualNetwork(sim, latency, random.Random(2))


def echo_service(address="svc://a"):
    service = RpcService(address=address, region="dc")
    service.register("echo", lambda payload, ctx: payload)
    return service


class TestCrash:
    def test_request_to_crashed_service_vanishes(self):
        sim, network = make_network()
        network.attach(echo_service())
        injector = FaultInjector(network)
        injector.crash_at(0.0, "svc://a")
        replies, timeouts = [], []
        sim.schedule_at(1.0, lambda s: network.call(
            "c", "client", "svc://a", "echo", "x",
            on_reply=replies.append, timeout=5.0,
            on_timeout=lambda: timeouts.append(s.now),
        ))
        sim.run()
        assert replies == []
        assert len(timeouts) == 1
        assert network.messages_dropped_down == 1

    def test_in_flight_request_dies_with_the_process(self):
        # Request sent at t=0 (delivery ~t=0.05); crash at t=0.01.
        sim, network = make_network()
        network.attach(echo_service())
        injector = FaultInjector(network)
        replies = []
        network.call("c", "client", "svc://a", "echo", "x", on_reply=replies.append)
        injector.crash_at(0.01, "svc://a")
        sim.run()
        assert replies == []
        assert network.messages_dropped_down == 1

    def test_computed_reply_dropped_durable_but_unacknowledged(self):
        # Crash lands after the handler ran but before the reply
        # arrives: the mutation happened, the caller never hears.
        sim, network = make_network()
        served = []
        service = RpcService(address="svc://a", region="dc")
        service.register("mutate", lambda payload, ctx: served.append(payload) or "ok")
        network.attach(service)
        injector = FaultInjector(network)
        injector.crash_at(0.07, "svc://a")  # between delivery (~0.05) and reply (~0.1)
        replies = []
        network.call("c", "client", "svc://a", "mutate", "x", on_reply=replies.append)
        sim.run()
        assert served == ["x"]       # durable: the handler DID run
        assert replies == []          # unacknowledged: reply lost

    def test_crash_unknown_address_raises(self):
        sim, network = make_network()
        FaultInjector(network).crash_at(0.0, "svc://ghost")
        with pytest.raises(SimulationError):
            sim.run()

    def test_crash_record_reports_downtime(self):
        record = CrashRecord(address="svc://a", crashed_at=2.0)
        assert record.downtime is None
        record.recovered_at = 5.5
        assert record.downtime == 3.5


class TestRecover:
    def test_recovery_must_follow_crash(self):
        sim, network = make_network()
        network.attach(echo_service())
        injector = FaultInjector(network)
        record = injector.crash_at(5.0, "svc://a")
        with pytest.raises(SimulationError):
            injector.recover_at(5.0, record, lambda: None)

    def test_replacement_serves_at_the_same_address(self):
        sim, network = make_network()
        network.attach(echo_service())
        injector = FaultInjector(network)

        def rebuild():
            network.attach(echo_service())
            return None

        record = injector.crash_and_recover("svc://a", 1.0, 2.0, rebuild)
        replies = []
        # During the outage: dropped.  After recovery: served.
        sim.schedule_at(1.5, lambda s: network.call(
            "c", "client", "svc://a", "echo", "early", on_reply=replies.append))
        sim.schedule_at(3.0, lambda s: network.call(
            "c", "client", "svc://a", "echo", "late", on_reply=replies.append))
        sim.run()
        assert replies == ["late"]
        assert record.recovered_at == 2.0
        assert record.downtime == 1.0

    def test_recovery_picks_up_store_stats(self):
        from repro.store import DurableStore, MemoryBackend

        sim, network = make_network()
        network.attach(echo_service())
        injector = FaultInjector(network)
        backend = MemoryBackend()
        DurableStore(backend).append(1, b"x")

        def rebuild():
            network.attach(echo_service())
            store = DurableStore(backend)
            store.load()
            return store

        record = injector.crash_and_recover("svc://a", 1.0, 2.0, rebuild)
        sim.run()
        assert record.records_replayed == 1
        assert record.recovery_seconds > 0

    def test_request_queued_before_crash_never_leaks_to_replacement(self):
        # The dead instance's queued request must not be served by the
        # replacement attached at the same address.
        sim, network = make_network(rtt=1.0)  # delivery at ~0.5
        first = echo_service()
        network.attach(first)
        injector = FaultInjector(network)
        replies = []
        network.call("c", "client", "svc://a", "echo", "pre-crash",
                     on_reply=replies.append)
        injector.crash_and_recover(
            "svc://a", 0.1, 0.2, lambda: network.attach(echo_service()))
        sim.run()
        assert replies == []
        assert first.requests_served == 0


class TestSingleLocationInvariant:
    def entry(self, user=1, channel="ch", addr="1.1.1.1", at=0.0, renewal=False):
        return ViewingLogEntry(
            user_id=user, channel_id=channel, net_addr=addr,
            issued_at=at, renewal=renewal,
        )

    def test_clean_log_passes(self):
        log = [
            self.entry(at=0.0),
            self.entry(at=700.0, renewal=True),
            self.entry(user=2, addr="2.2.2.2", at=1.0),
        ]
        assert single_location_violations(log) == []

    def test_moving_then_renewing_old_location_flagged(self):
        log = [
            self.entry(addr="1.1.1.1", at=0.0),
            self.entry(addr="2.2.2.2", at=10.0),           # account moved
            self.entry(addr="1.1.1.1", at=700.0, renewal=True),  # old site renews!
        ]
        violations = single_location_violations(log)
        assert len(violations) == 1
        assert "1.1.1.1" in violations[0]

    def test_renewal_without_issuance_flagged(self):
        violations = single_location_violations(
            [self.entry(at=5.0, renewal=True)]
        )
        assert len(violations) == 1

    def test_per_channel_tracking(self):
        # Same user on two channels from two addresses is two distinct
        # locations only if concurrent on the SAME channel.
        log = [
            self.entry(channel="a", addr="1.1.1.1", at=0.0),
            self.entry(channel="b", addr="2.2.2.2", at=1.0),
            self.entry(channel="a", addr="1.1.1.1", at=700.0, renewal=True),
        ]
        assert single_location_violations(log) == []


class TestUtimeInvariant:
    def test_no_regression(self):
        before = AttributeSet()
        before.add(Attribute(name="Region", value="CH", utime=5.0))
        after = AttributeSet()
        after.add(Attribute(name="Region", value="CH", utime=5.0))
        after.add(Attribute(name="Region", value="DE", utime=9.0))
        assert utime_regressions(before, after) == []

    def test_regressed_utime_flagged(self):
        before = AttributeSet()
        before.add(Attribute(name="Region", value="CH", utime=5.0))
        after = AttributeSet()
        after.add(Attribute(name="Region", value="CH", utime=3.0))
        problems = utime_regressions(before, after)
        assert len(problems) == 1
        assert "regressed" in problems[0]

    def test_lost_attribute_flagged(self):
        before = AttributeSet()
        before.add(Attribute(name="Region", value="CH", utime=5.0))
        problems = utime_regressions(before, AttributeSet())
        assert len(problems) == 1
        assert "lost" in problems[0]


class TestDivergence:
    def entry(self, at):
        return ViewingLogEntry(
            user_id=1, channel_id="ch", net_addr="1.1.1.1",
            issued_at=at, renewal=False,
        )

    def test_identical_logs(self):
        log = [self.entry(0.0), self.entry(1.0)]
        assert viewing_log_divergence(log, list(log)) is None

    def test_longer_recovered_log_is_fine(self):
        pre = [self.entry(0.0)]
        assert viewing_log_divergence(pre, pre + [self.entry(9.0)]) is None

    def test_lost_entry_flagged(self):
        pre = [self.entry(0.0), self.entry(1.0)]
        assert "lost" in viewing_log_divergence(pre, pre[:1])

    def test_mutated_entry_flagged(self):
        pre = [self.entry(0.0)]
        assert "diverged" in viewing_log_divergence(pre, [self.entry(0.5)])

"""Tests for automatic ticket renewal under virtual time."""

import pytest

from repro.core.autorenew import TicketAutoRenewer
from repro.deployment import Deployment
from repro.errors import ReproError
from repro.sim.engine import Simulator


@pytest.fixture
def rig():
    deployment = Deployment(
        seed=404, user_ticket_lifetime=1800.0, channel_ticket_lifetime=900.0
    )
    deployment.add_free_channel("marathon", regions=["CH"])
    client = deployment.create_client("binge@example.org", "pw", region="CH")
    client.login(now=0.0)
    peer = deployment.watch(client, "marathon", now=0.0)
    sim = Simulator()
    return deployment, client, peer, sim


class TestAutoRenewal:
    def test_requires_login(self, rig):
        deployment, client, peer, sim = rig
        fresh = deployment.create_client("new@example.org", "pw", region="CH")
        with pytest.raises(ReproError):
            TicketAutoRenewer(sim, fresh).start()

    def test_positive_margin_required(self, rig):
        _, client, _, sim = rig
        with pytest.raises(ValueError):
            TicketAutoRenewer(sim, client, margin=0.0)

    def test_four_hour_session_uninterrupted(self, rig):
        """The headline property: tickets never lapse over a long watch."""
        deployment, client, peer, sim = rig
        parent = deployment.overlay("marathon").source

        renewer = TicketAutoRenewer(
            sim, client, parents_provider=lambda: [parent]
        )
        renewer.start()
        horizon = 4 * 3600.0
        sim.run(until=horizon)

        assert renewer.active
        assert renewer.stats.renewal_failures == 0
        # Tickets are live at the end...
        assert client.user_ticket.expire_time > horizon
        assert client.channel_ticket.expire_time > horizon
        # ... renewal cadence matches the lifetimes (900 s channel /
        # 1800 s user over 4 h => roughly 16 and 8).
        assert renewer.stats.channel_ticket_renewals >= 12
        assert renewer.stats.user_ticket_renewals >= 6
        # ... and the parent never severed us.
        assert parent.enforce_ticket_expiry(now=horizon) == []
        assert client.channel_ticket.user_id in parent.children

    def test_stop_cancels_everything(self, rig):
        deployment, client, peer, sim = rig
        renewer = TicketAutoRenewer(sim, client)
        renewer.start()
        renewer.stop()
        sim.run(until=7200.0)
        assert renewer.stats.channel_ticket_renewals == 0
        assert sim.pending() == 0

    def test_blackout_stops_renewal_cleanly(self, rig):
        """When the rights change under the viewer, the renewer reports
        the refusal instead of looping."""
        deployment, client, peer, sim = rig
        deployment.policy_manager.schedule_blackout(
            "marathon", start=3000.0, end=6000.0, now=0.0
        )
        failures = []
        renewer = TicketAutoRenewer(sim, client, on_failure=failures.append)
        renewer.start()
        sim.run(until=7200.0)
        assert failures, "renewal should eventually be refused"
        assert not renewer.active
        assert renewer.stats.renewal_failures == 1
        # The last successful ticket cannot cross the blackout start.
        assert client.channel_ticket.expire_time <= 3000.0

    def test_presentations_reach_parent(self, rig):
        deployment, client, peer, sim = rig
        parent = deployment.overlay("marathon").source
        renewer = TicketAutoRenewer(sim, client, parents_provider=lambda: [parent])
        renewer.start()
        sim.run(until=2000.0)
        assert renewer.stats.presentations >= 1
        # The parent's recorded link now carries the renewed ticket.
        link = parent.children[client.channel_ticket.user_id]
        assert link.ticket.renewal

"""Property-based tests for the rotating key schedule."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keystream import SERIAL_MODULUS, ContentKeySchedule
from repro.crypto.drbg import HmacDrbg


def make_schedule(epoch=60.0, start=0.0):
    return ContentKeySchedule(HmacDrbg(b"prop-keys"), epoch=epoch, lead_time=10.0, start_time=start)


@given(t=st.floats(min_value=0, max_value=1e6))
@settings(max_examples=200, deadline=None)
def test_serial_matches_epoch_index(t):
    schedule = make_schedule()
    key = schedule.current_key(t)
    assert key.serial == int(t // 60.0) % SERIAL_MODULUS


@given(t=st.floats(min_value=0, max_value=1e6))
@settings(max_examples=100, deadline=None)
def test_activation_time_brackets_query(t):
    schedule = make_schedule()
    key = schedule.current_key(t)
    assert key.activate_at <= t < key.activate_at + 60.0


@given(
    # Within one serial-wrap window (256 epochs x 60 s): the 8-bit
    # serial space means keys older than 256 epochs are *discarded by
    # design* (Section IV-E), so distinctness only holds inside it.
    t1=st.floats(min_value=0, max_value=15000.0),
    t2=st.floats(min_value=0, max_value=15000.0),
)
@settings(max_examples=100, deadline=None)
def test_same_epoch_same_key(t1, t2):
    schedule = make_schedule()
    a = schedule.current_key(t1)
    b = schedule.current_key(t2)
    if int(t1 // 60.0) == int(t2 // 60.0):
        assert a == b
    else:
        assert a.key.material != b.key.material or a.serial != b.serial


def test_wraparound_aliases_old_serials_by_design():
    """Past one wrap, an old epoch's slot holds the newer key -- the
    schedule keeps only the live window, exactly as the paper's 8-bit
    serial implies."""
    schedule = make_schedule()
    old = schedule.current_key(30.0)          # epoch 0, serial 0
    new = schedule.current_key(256 * 60.0 + 30.0)  # epoch 256, serial 0
    assert new.serial == old.serial == 0
    assert new.key.material != old.key.material
    assert schedule.key_by_serial(0) == new


@given(t=st.floats(min_value=0, max_value=1e5))
@settings(max_examples=100, deadline=None)
def test_upcoming_key_only_in_lead_window(t):
    schedule = make_schedule()
    upcoming = schedule.upcoming_key(t)
    next_activate = (int(t // 60.0) + 1) * 60.0
    if upcoming is None:
        assert t < next_activate - 10.0
    else:
        assert t >= next_activate - 10.0
        assert upcoming.activate_at == next_activate


@given(epoch=st.floats(min_value=5.0, max_value=600.0), t=st.floats(min_value=0, max_value=2e4))
@settings(max_examples=100, deadline=None)
def test_forward_secrecy_window_scales_with_epoch(epoch, t):
    """A key unlocks exactly its [activate, activate+epoch) span."""
    schedule = ContentKeySchedule(
        HmacDrbg(b"fs"), epoch=epoch, lead_time=min(0.5, epoch / 2), start_time=0.0
    )
    key = schedule.current_key(t)
    assert key.activate_at <= t
    assert t - key.activate_at < epoch

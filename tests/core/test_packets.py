"""Tests for content packets and per-link key re-encryption."""

import pytest

from repro.core.keystream import ContentKey, ContentKeyRing
from repro.core.packets import (
    ContentPacket,
    decrypt_key_from_link,
    decrypt_packet,
    encrypt_packet,
    reencrypt_key_for_link,
)
from repro.crypto.drbg import HmacDrbg
from repro.crypto.stream import SymmetricKey
from repro.errors import DecryptionError


@pytest.fixture
def content_key():
    return ContentKey(
        serial=7, key=SymmetricKey.generate(HmacDrbg(b"ck")), activate_at=420.0
    )


@pytest.fixture
def ring(content_key):
    ring = ContentKeyRing()
    ring.offer(content_key)
    return ring


class TestPacketFormat:
    def test_wire_roundtrip(self, content_key):
        packet = encrypt_packet(content_key, "ch1", 12345, b"frame data")
        restored = ContentPacket.from_bytes(packet.to_bytes())
        assert restored == packet

    def test_serial_byte_prepended(self, content_key):
        packet = encrypt_packet(content_key, "ch1", 1, b"payload")
        assert packet.to_bytes()[0] == 7

    def test_truncated_rejected(self):
        with pytest.raises(DecryptionError):
            ContentPacket.from_bytes(b"\x07\x00\x00")

    def test_size_accounts_header(self, content_key):
        packet = encrypt_packet(content_key, "ch1", 1, b"x" * 100)
        assert packet.size == len(packet.to_bytes())


class TestPacketEncryption:
    def test_roundtrip(self, content_key, ring):
        packet = encrypt_packet(content_key, "ch1", 42, b"media frame")
        assert decrypt_packet(ring, "ch1", packet) == b"media frame"

    def test_payload_not_visible_in_ciphertext(self, content_key):
        payload = b"SECRET-MEDIA-CONTENT"
        packet = encrypt_packet(content_key, "ch1", 42, payload)
        assert payload not in packet.to_bytes()

    def test_unknown_serial_fails(self, content_key):
        empty_ring = ContentKeyRing()
        packet = encrypt_packet(content_key, "ch1", 42, b"x")
        with pytest.raises(DecryptionError):
            decrypt_packet(empty_ring, "ch1", packet)

    def test_wrong_channel_fails(self, content_key, ring):
        """Channel id is bound as AAD: cross-channel replay is rejected."""
        packet = encrypt_packet(content_key, "ch1", 42, b"x")
        with pytest.raises(DecryptionError):
            decrypt_packet(ring, "ch2", packet)

    def test_injected_content_detected(self, content_key, ring):
        """The hijack-detection property of Section IV-E: rogue packets
        fail the integrity check."""
        genuine = encrypt_packet(content_key, "ch1", 42, b"x")
        rogue = ContentPacket(
            serial=genuine.serial,
            sequence=genuine.sequence,
            ciphertext=b"\x00" * len(genuine.ciphertext),
        )
        with pytest.raises(DecryptionError):
            decrypt_packet(ring, "ch1", rogue)

    def test_sequence_tampering_detected(self, content_key, ring):
        packet = encrypt_packet(content_key, "ch1", 42, b"x")
        replayed = ContentPacket(serial=packet.serial, sequence=43, ciphertext=packet.ciphertext)
        with pytest.raises(DecryptionError):
            decrypt_packet(ring, "ch1", replayed)


class TestKeyReencryption:
    def test_link_roundtrip(self, content_key):
        session = SymmetricKey.generate(HmacDrbg(b"session"))
        blob = reencrypt_key_for_link(content_key, session, "ch1")
        restored = decrypt_key_from_link(blob, 7, session, "ch1", activate_at=420.0)
        assert restored.key.material == content_key.key.material
        assert restored.serial == 7

    def test_wrong_session_key_fails(self, content_key):
        session = SymmetricKey.generate(HmacDrbg(b"session"))
        other = SymmetricKey.generate(HmacDrbg(b"other"))
        blob = reencrypt_key_for_link(content_key, session, "ch1")
        with pytest.raises(DecryptionError):
            decrypt_key_from_link(blob, 7, other, "ch1", activate_at=0.0)

    def test_wrong_serial_fails(self, content_key):
        session = SymmetricKey.generate(HmacDrbg(b"session"))
        blob = reencrypt_key_for_link(content_key, session, "ch1")
        with pytest.raises(DecryptionError):
            decrypt_key_from_link(blob, 8, session, "ch1", activate_at=0.0)

    def test_per_link_ciphertexts_differ(self, content_key):
        """The A->B->{D,E} cascade: each link sees a different blob of
        the same key."""
        session_d = SymmetricKey.generate(HmacDrbg(b"link-d"))
        session_e = SymmetricKey.generate(HmacDrbg(b"link-e"))
        blob_d = reencrypt_key_for_link(content_key, session_d, "ch1")
        blob_e = reencrypt_key_for_link(content_key, session_e, "ch1")
        assert blob_d != blob_e
        key_d = decrypt_key_from_link(blob_d, 7, session_d, "ch1", 420.0)
        key_e = decrypt_key_from_link(blob_e, 7, session_e, "ch1", 420.0)
        assert key_d.key.material == key_e.key.material

    def test_key_material_not_in_blob(self, content_key):
        session = SymmetricKey.generate(HmacDrbg(b"session"))
        blob = reencrypt_key_for_link(content_key, session, "ch1")
        assert content_key.key.material not in blob

"""Tests for protocol message types."""

import pytest

from repro.core.attributes import Attribute, AttributeSet
from repro.core.challenge import Challenge
from repro.core.protocol import (
    JoinAccept,
    JoinReject,
    JoinRequest,
    KeyUpdate,
    Login1Request,
    Login1Response,
    Login2Request,
    PeerDescriptor,
    Round,
    Switch1Request,
    Switch2Response,
)
from repro.core.tickets import ChannelTicket, UserTicket
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair

KEY = generate_keypair(HmacDrbg(b"protocol-tests"), bits=512)


def make_user_ticket():
    return UserTicket(
        user_id=1,
        client_public_key=KEY.public_key,
        start_time=0.0,
        expire_time=100.0,
        attributes=AttributeSet([Attribute(name="NetAddr", value="11.1.1.1")]),
    ).signed(KEY)


def make_channel_ticket():
    return ChannelTicket(
        channel_id="ch1",
        user_id=1,
        client_public_key=KEY.public_key,
        net_addr="11.1.1.1",
        renewal=False,
        start_time=0.0,
        expire_time=100.0,
    ).signed(KEY)


class TestRoundEnum:
    def test_exactly_the_five_measured_rounds(self):
        assert {r.value for r in Round} == {
            "LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2", "JOIN",
        }


class TestMessageSizes:
    """approx_size keeps the simulator's serialization delays honest."""

    def test_login1_size_reasonable(self):
        request = Login1Request(email="a@b.c", client_public_key=KEY.public_key)
        assert 50 < request.approx_size() < 500

    def test_sizes_positive_for_all_messages(self):
        challenge = Challenge(subject="1", nonce=b"n" * 16, issued_at=0.0, mac=b"m" * 32)
        user_ticket = make_user_ticket()
        channel_ticket = make_channel_ticket()
        messages = [
            Login1Request(email="a@b.c", client_public_key=KEY.public_key),
            Login1Response(token=challenge, encrypted_blob=b"x" * 64, blob_nonce=1),
            Login2Request(
                email="a@b.c", client_public_key=KEY.public_key, token=challenge,
                nonce=b"n" * 16, checksum=b"c" * 32, version="4.0.5",
                signature=b"s" * 64,
            ),
            Switch1Request(user_ticket=user_ticket, channel_id="ch1"),
            Switch2Response(ticket=channel_ticket, peers=(
                PeerDescriptor(peer_id="p", address="11.1.1.1", region="CH"),
            )),
            JoinRequest(channel_ticket=channel_ticket),
            JoinAccept(peer_id="p", encrypted_session_key=b"e" * 64,
                       encrypted_content_key=b"k" * 32, content_key_serial=1),
            JoinReject(peer_id="p", reason="no capacity"),
            KeyUpdate(channel_id="ch1", serial=1, encrypted_content_key=b"k" * 32,
                      activate_at=60.0),
        ]
        for message in messages:
            assert message.approx_size() > 0, message

    def test_tickets_dominate_switch_sizes(self):
        """A protocol message is roughly one ticket plus small fields."""
        user_ticket = make_user_ticket()
        request = Switch1Request(user_ticket=user_ticket, channel_id="ch1")
        assert request.approx_size() >= len(user_ticket.to_bytes())
        assert request.approx_size() < len(user_ticket.to_bytes()) + 200


class TestSwitchRequestTargets:
    def test_new_ticket_target(self):
        request = Switch1Request(user_ticket=make_user_ticket(), channel_id="ch1")
        assert not request.is_renewal
        assert request.target_channel == "ch1"

    def test_renewal_target_comes_from_expiring_ticket(self):
        request = Switch1Request(
            user_ticket=make_user_ticket(), expiring_ticket=make_channel_ticket()
        )
        assert request.is_renewal
        assert request.target_channel == "ch1"


class TestKeyUpdateValidation:
    def test_serial_must_fit_8_bits(self):
        with pytest.raises(ValueError):
            KeyUpdate(channel_id="ch", serial=300, encrypted_content_key=b"", activate_at=0.0)

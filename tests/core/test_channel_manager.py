"""Tests for the Channel Manager: switching, policy gates, renewal."""

import dataclasses

import pytest

from repro.core.attributes import (
    ATTR_NETADDR,
    ATTR_REGION,
    ATTR_SUBSCRIPTION,
    Attribute,
    AttributeSet,
)
from repro.core.challenge import answer_challenge
from repro.core.channel_manager import ChannelManager
from repro.core.policy import Decision, Policy, PolicyCondition
from repro.core.policy_manager import ChannelPolicyManager
from repro.core.protocol import PeerDescriptor, Switch1Request, Switch2Request
from repro.core.tickets import UserTicket
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.errors import (
    AuthorizationError,
    ChallengeError,
    PolicyRejectError,
    RenewalRefusedError,
    TicketExpiredError,
    TicketInvalidError,
)

UM_KEY = generate_keypair(HmacDrbg(b"cm-tests-um"), bits=512)
CLIENT_KEY = generate_keypair(HmacDrbg(b"cm-tests-client"), bits=512)
OTHER_CLIENT_KEY = generate_keypair(HmacDrbg(b"cm-tests-client2"), bits=512)
ADDR = "11.1.2.3"
OTHER_ADDR = "12.9.8.7"


def make_user_ticket(
    user_id=1,
    addr=ADDR,
    region="CH",
    subscription=None,
    now=0.0,
    lifetime=1800.0,
    client_key=CLIENT_KEY,
):
    attributes = AttributeSet([
        Attribute(name=ATTR_NETADDR, value=addr),
        Attribute(name=ATTR_REGION, value=region),
    ])
    if subscription:
        attributes.add(Attribute(name=ATTR_SUBSCRIPTION, value=subscription))
    return UserTicket(
        user_id=user_id,
        client_public_key=client_key.public_key,
        start_time=now,
        expire_time=now + lifetime,
        attributes=attributes,
    ).signed(UM_KEY)


@pytest.fixture
def cpm():
    manager = ChannelPolicyManager()
    manager.add_channel(
        "free",
        now=0.0,
        attributes=AttributeSet([Attribute(name=ATTR_REGION, value="CH")]),
        policies=[
            Policy.of(50, [PolicyCondition(ATTR_REGION, "CH")], Decision.ACCEPT)
        ],
        partition="default",
    )
    manager.add_channel(
        "premium",
        now=0.0,
        attributes=AttributeSet([
            Attribute(name=ATTR_REGION, value="CH"),
            Attribute(name=ATTR_SUBSCRIPTION, value="101"),
        ]),
        policies=[
            Policy.of(
                50,
                [PolicyCondition(ATTR_REGION, "CH"), PolicyCondition(ATTR_SUBSCRIPTION, "101")],
                Decision.ACCEPT,
            )
        ],
        partition="default",
    )
    manager.add_channel("elsewhere", now=0.0, partition="other")
    return manager


@pytest.fixture
def cm(cpm):
    manager = ChannelManager(
        signing_key=generate_keypair(HmacDrbg(b"cm-key"), bits=512),
        farm_secret=b"cm-farm-secret-0123456789abcdef0",
        drbg=HmacDrbg(b"cm-runtime"),
        user_manager_keys=[UM_KEY.public_key],
        ticket_lifetime=900.0,
        renewal_window=120.0,
        partition="default",
    )
    cpm.add_channel_list_listener(manager.receive_channel_list)
    return manager


def full_switch(cm, user_ticket, channel_id=None, expiring=None, addr=ADDR,
                now=0.0, client_key=CLIENT_KEY):
    """Run both switch rounds."""
    request1 = Switch1Request(
        user_ticket=user_ticket,
        channel_id=channel_id,
        expiring_ticket=expiring,
    )
    response1 = cm.switch1(request1, now)
    signature = answer_challenge(response1.token, client_key)
    return cm.switch2(
        Switch2Request(
            user_ticket=user_ticket,
            token=response1.token,
            signature=signature,
            channel_id=channel_id,
            expiring_ticket=expiring,
        ),
        observed_addr=addr,
        now=now,
    )


class TestSwitchHappyPath:
    def test_issues_channel_ticket(self, cm):
        response = full_switch(cm, make_user_ticket(), "free")
        ticket = response.ticket
        ticket.verify(cm.public_key, now=0.0, expected_channel="free", observed_addr=ADDR)
        assert not ticket.renewal
        assert ticket.user_id == 1

    def test_ticket_lifetime_capped_by_user_ticket(self, cm):
        short = make_user_ticket(lifetime=300.0)
        ticket = full_switch(cm, short, "free").ticket
        assert ticket.expire_time == 300.0  # user ticket expiry, not 900

    def test_viewing_log_appended(self, cm):
        full_switch(cm, make_user_ticket(user_id=7), "free")
        entry = cm.latest_entry(7, "free")
        assert entry is not None
        assert entry.net_addr == ADDR
        assert not entry.renewal
        assert len(cm.viewing_log()) == 1

    def test_peer_list_from_provider(self, cm):
        descriptor = PeerDescriptor(peer_id="p1", address="11.5.5.5", region="CH")
        cm.set_peer_list_provider(lambda ch, excl, count: [descriptor])
        response = full_switch(cm, make_user_ticket(), "free")
        assert response.peers == (descriptor,)

    def test_subscription_channel_accessible_with_subscription(self, cm):
        ticket = make_user_ticket(subscription="101")
        assert full_switch(cm, ticket, "premium").ticket.channel_id == "premium"

    def test_stats_counted(self, cm):
        full_switch(cm, make_user_ticket(), "free")
        assert cm.tickets_issued == 1
        assert cm.renewals_issued == 0


class TestSwitchRejections:
    def test_policy_reject_without_subscription(self, cm):
        with pytest.raises(PolicyRejectError):
            full_switch(cm, make_user_ticket(), "premium")
        assert cm.rejections == 1

    def test_wrong_region_rejected(self, cm):
        with pytest.raises(PolicyRejectError):
            full_switch(cm, make_user_ticket(region="US"), "free")

    def test_channel_outside_partition_rejected(self, cm):
        with pytest.raises(AuthorizationError):
            full_switch(cm, make_user_ticket(), "elsewhere")

    def test_expired_user_ticket_rejected(self, cm):
        stale = make_user_ticket(now=0.0, lifetime=10.0)
        with pytest.raises(TicketExpiredError):
            full_switch(cm, stale, "free", now=20.0)

    def test_netaddr_mismatch_rejected(self, cm):
        """A relayed/stolen User Ticket presented from elsewhere fails."""
        with pytest.raises(TicketInvalidError):
            full_switch(cm, make_user_ticket(), "free", addr=OTHER_ADDR)

    def test_ticket_from_unknown_domain_rejected(self, cm):
        rogue_um = generate_keypair(HmacDrbg(b"rogue-um"), bits=512)
        forged = UserTicket(
            user_id=1,
            client_public_key=CLIENT_KEY.public_key,
            start_time=0.0,
            expire_time=1800.0,
            attributes=AttributeSet([
                Attribute(name=ATTR_NETADDR, value=ADDR),
                Attribute(name=ATTR_REGION, value="CH"),
            ]),
        ).signed(rogue_um)
        with pytest.raises(TicketInvalidError):
            full_switch(cm, forged, "free")

    def test_wrong_private_key_fails_challenge(self, cm):
        """Stolen User Ticket without the client's private key is useless."""
        ticket = make_user_ticket()
        request1 = Switch1Request(user_ticket=ticket, channel_id="free")
        response1 = cm.switch1(request1, 0.0)
        signature = answer_challenge(response1.token, OTHER_CLIENT_KEY)
        with pytest.raises(ChallengeError):
            cm.switch2(
                Switch2Request(
                    user_ticket=ticket,
                    token=response1.token,
                    signature=signature,
                    channel_id="free",
                ),
                observed_addr=ADDR,
                now=0.0,
            )

    def test_multi_domain_keys(self, cm):
        second_um = generate_keypair(HmacDrbg(b"um-2"), bits=512)
        cm.add_user_manager_key(second_um.public_key)
        ticket = UserTicket(
            user_id=2,
            client_public_key=CLIENT_KEY.public_key,
            start_time=0.0,
            expire_time=1800.0,
            attributes=AttributeSet([
                Attribute(name=ATTR_NETADDR, value=ADDR),
                Attribute(name=ATTR_REGION, value="CH"),
            ]),
        ).signed(second_um)
        assert full_switch(cm, ticket, "free").ticket.user_id == 2


class TestRenewal:
    def issue_then_renew(self, cm, now_issue=0.0, now_renew=850.0,
                         renew_addr=ADDR, move_first_to=None):
        user_ticket = make_user_ticket(now=now_issue, lifetime=3600.0)
        original = full_switch(cm, user_ticket, "free", now=now_issue).ticket
        if move_first_to is not None:
            # The same account gets a fresh ticket from a new address.
            moved_ticket = make_user_ticket(addr=move_first_to, now=now_issue + 10)
            full_switch(cm, moved_ticket, "free", addr=move_first_to, now=now_issue + 10)
        renew_user_ticket = make_user_ticket(addr=renew_addr, now=now_renew)
        return full_switch(
            cm, renew_user_ticket, expiring=original, addr=renew_addr, now=now_renew
        )

    def test_renewal_sets_bit_and_extends(self, cm):
        response = self.issue_then_renew(cm)
        assert response.ticket.renewal
        assert response.ticket.expire_time == 850.0 + 900.0
        assert cm.renewals_issued == 1

    def test_renewal_outside_window_refused(self, cm):
        """Too early: the expiring ticket is nowhere near expiry."""
        with pytest.raises(RenewalRefusedError):
            self.issue_then_renew(cm, now_renew=100.0)

    def test_renewal_after_account_moved_refused(self, cm):
        """Section IV-D: the viewing log's latest entry shows the new
        address, so the old location's renewal is not processed."""
        with pytest.raises(RenewalRefusedError):
            self.issue_then_renew(cm, move_first_to=OTHER_ADDR)

    def test_renewal_with_no_log_entry_refused(self, cm, cpm):
        other_cm = ChannelManager(
            signing_key=generate_keypair(HmacDrbg(b"cm-key"), bits=512),  # same key
            farm_secret=b"cm-farm-secret-0123456789abcdef0",
            drbg=HmacDrbg(b"cm-runtime-2"),
            user_manager_keys=[UM_KEY.public_key],
            partition="default",
        )
        cpm.add_channel_list_listener(other_cm.receive_channel_list)
        user_ticket = make_user_ticket(lifetime=3600.0)
        original = full_switch(cm, user_ticket, "free").ticket
        renew_ticket = make_user_ticket(now=850.0)
        with pytest.raises(RenewalRefusedError):
            full_switch(other_cm, renew_ticket, expiring=original, now=850.0)

    def test_shared_log_enables_farm_renewal(self, cm, cpm):
        """Instances sharing the viewing log renew each other's tickets
        (Section V's farm deployment)."""
        sibling = ChannelManager(
            signing_key=generate_keypair(HmacDrbg(b"cm-key"), bits=512),
            farm_secret=b"cm-farm-secret-0123456789abcdef0",
            drbg=HmacDrbg(b"cm-runtime-3"),
            user_manager_keys=[UM_KEY.public_key],
            partition="default",
        )
        cpm.add_channel_list_listener(sibling.receive_channel_list)
        cm.share_log_with(sibling)
        user_ticket = make_user_ticket(lifetime=3600.0)
        original = full_switch(cm, user_ticket, "free").ticket
        renew_ticket = make_user_ticket(now=850.0)
        response = full_switch(sibling, renew_ticket, expiring=original, now=850.0)
        assert response.ticket.renewal

    def test_renewal_for_other_user_refused(self, cm):
        alice = make_user_ticket(user_id=1, lifetime=3600.0)
        original = full_switch(cm, alice, "free").ticket
        mallory = make_user_ticket(user_id=9, now=850.0)
        with pytest.raises(TicketInvalidError):
            full_switch(cm, mallory, expiring=original, now=850.0)

    def test_renewal_respects_policy_changes(self, cm, cpm):
        """A blackout deployed before renewal blocks the renewal."""
        user_ticket = make_user_ticket(lifetime=3600.0)
        original = full_switch(cm, user_ticket, "free").ticket
        cpm.schedule_blackout("free", start=800.0, end=2000.0, now=100.0)
        renew_ticket = make_user_ticket(now=850.0)
        with pytest.raises(PolicyRejectError):
            full_switch(cm, renew_ticket, expiring=original, now=850.0)


class TestSwitch1Validation:
    def test_switch1_rejects_unknown_channel(self, cm):
        with pytest.raises(AuthorizationError):
            cm.switch1(Switch1Request(user_ticket=make_user_ticket(), channel_id="nope"), 0.0)

    def test_switch1_rejects_expired_ticket(self, cm):
        stale = make_user_ticket(lifetime=10.0)
        with pytest.raises(TicketExpiredError):
            cm.switch1(Switch1Request(user_ticket=stale, channel_id="free"), 20.0)

    def test_request_requires_exactly_one_target(self):
        with pytest.raises(ValueError):
            Switch1Request(user_ticket=make_user_ticket())
        with pytest.raises(ValueError):
            Switch1Request(
                user_ticket=make_user_ticket(),
                channel_id="free",
                expiring_ticket="something",  # type: ignore[arg-type]
            )

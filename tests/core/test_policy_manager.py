"""Tests for the Channel Policy Manager."""

import pytest

from repro.core.attributes import ATTR_REGION, Attribute, AttributeSet, VALUE_ANY
from repro.core.policy import Decision, Policy, PolicyCondition, evaluate_policies
from repro.core.policy_manager import ChannelPolicyManager
from repro.errors import AuthorizationError, ProtocolError, ReproError


@pytest.fixture
def cpm():
    return ChannelPolicyManager()


def region_attrs(*regions):
    return AttributeSet([Attribute(name=ATTR_REGION, value=r) for r in regions])


def region_policy(region, priority=50):
    return Policy.of(
        priority,
        [PolicyCondition(name=ATTR_REGION, value=region)],
        Decision.ACCEPT,
        label=f"free-{region}",
    )


class TestChannelCrud:
    def test_add_and_get(self, cpm):
        cpm.add_channel("ch1", now=0.0, attributes=region_attrs("CH"),
                        policies=[region_policy("CH")])
        record = cpm.get_channel("ch1")
        assert record.channel_id == "ch1"
        assert len(record.policies) == 1

    def test_duplicate_add_rejected(self, cpm):
        cpm.add_channel("ch1", now=0.0)
        with pytest.raises(ReproError):
            cpm.add_channel("ch1", now=1.0)

    def test_delete(self, cpm):
        cpm.add_channel("ch1", now=0.0)
        cpm.delete_channel("ch1", now=1.0)
        with pytest.raises(AuthorizationError):
            cpm.get_channel("ch1")

    def test_delete_unknown_rejected(self, cpm):
        with pytest.raises(AuthorizationError):
            cpm.delete_channel("ghost", now=0.0)

    def test_get_returns_copy(self, cpm):
        cpm.add_channel("ch1", now=0.0, attributes=region_attrs("CH"))
        record = cpm.get_channel("ch1")
        record.policies.append(region_policy("XX"))
        assert cpm.get_channel("ch1").policies == []


class TestUtimePropagation:
    def test_modification_touches_all_channel_attribute_utimes(self, cpm):
        cpm.add_channel("ch1", now=0.0, attributes=region_attrs("CH", "DE"))
        cpm.set_channel_attribute("ch1", Attribute(name="Quality", value="HD"), now=42.0)
        attribute_list = cpm.channel_attribute_list()
        utimes = {a.key: a.utime for a in attribute_list}
        assert utimes[(ATTR_REGION, "CH")] == 42.0
        assert utimes[(ATTR_REGION, "DE")] == 42.0
        assert utimes[("Quality", "HD")] == 42.0

    def test_deletion_makes_utimes_current(self, cpm):
        cpm.add_channel("ch1", now=0.0, attributes=region_attrs("CH"))
        cpm.delete_channel("ch1", now=9.0)
        attribute_list = cpm.channel_attribute_list()
        assert {a.utime for a in attribute_list if a.key == (ATTR_REGION, "CH")} == {9.0}

    def test_attribute_list_collates_across_channels(self, cpm):
        cpm.add_channel("ch1", now=0.0, attributes=region_attrs("CH"))
        cpm.add_channel("ch2", now=1.0, attributes=region_attrs("CH", "DE"))
        keys = {a.key for a in cpm.channel_attribute_list()}
        assert keys == {(ATTR_REGION, "CH"), (ATTR_REGION, "DE")}


class TestListeners:
    def test_listeners_pushed_on_every_change(self, cpm):
        channel_pushes, attribute_pushes = [], []
        cpm.add_channel_list_listener(lambda cl: channel_pushes.append(len(cl)))
        cpm.add_attribute_list_listener(lambda al: attribute_pushes.append(len(al)))
        # Registration itself pushes once.
        assert channel_pushes == [0]
        cpm.add_channel("ch1", now=0.0, attributes=region_attrs("CH"))
        assert channel_pushes[-1] == 1
        assert attribute_pushes[-1] == 1
        cpm.set_channel_attribute("ch1", Attribute(name="Q", value="HD"), now=1.0)
        assert attribute_pushes[-1] == 2

    def test_partition_filtering_downstream(self, cpm):
        """Channel Managers receive the full list and filter by partition."""
        cpm.add_channel("a", now=0.0, partition="p1")
        cpm.add_channel("b", now=0.0, partition="p2")
        received = {}
        cpm.add_channel_list_listener(lambda cl: received.update(cl))
        assert received["a"].partition == "p1"
        assert received["b"].partition == "p2"


class TestPartialRefresh:
    def test_channels_for_attributes(self, cpm):
        cpm.add_channel("ch1", now=0.0, attributes=region_attrs("CH"))
        cpm.add_channel("ch2", now=0.0, attributes=region_attrs("DE"))
        cpm.add_channel("ch3", now=0.0, attributes=region_attrs("CH", "DE"))
        result = cpm.channels_for_attributes([(ATTR_REGION, "CH")])
        assert set(result) == {"ch1", "ch3"}

    def test_unknown_keys_return_empty(self, cpm):
        cpm.add_channel("ch1", now=0.0, attributes=region_attrs("CH"))
        assert cpm.channels_for_attributes([("Nope", "x")]) == {}


class TestBlackout:
    def user(self):
        return AttributeSet([Attribute(name=ATTR_REGION, value="CH")])

    def test_blackout_window_rejects_everyone(self, cpm):
        cpm.add_channel("ch1", now=0.0, attributes=region_attrs("CH"),
                        policies=[region_policy("CH")])
        cpm.schedule_blackout("ch1", start=100.0, end=200.0, now=0.0)
        record = cpm.get_channel("ch1")
        before = evaluate_policies(record.policies, record.attributes, self.user(), 50.0)
        during = evaluate_policies(record.policies, record.attributes, self.user(), 150.0)
        after = evaluate_policies(record.policies, record.attributes, self.user(), 250.0)
        assert before.accepted and after.accepted
        assert during.decision is Decision.REJECT

    def test_blackout_invalid_window_rejected(self, cpm):
        cpm.add_channel("ch1", now=0.0)
        with pytest.raises(ValueError):
            cpm.schedule_blackout("ch1", start=200.0, end=100.0, now=0.0)

    def test_cancel_blackout(self, cpm):
        cpm.add_channel("ch1", now=0.0, attributes=region_attrs("CH"),
                        policies=[region_policy("CH")])
        cpm.schedule_blackout("ch1", start=100.0, end=200.0, now=0.0)
        assert cpm.cancel_blackout("ch1", now=50.0)
        record = cpm.get_channel("ch1")
        during = evaluate_policies(record.policies, record.attributes, self.user(), 150.0)
        assert during.accepted

    def test_blackout_touches_utimes_for_client_refresh(self, cpm):
        """Scheduling a blackout must bump utimes so clients re-fetch."""
        cpm.add_channel("ch1", now=0.0, attributes=region_attrs("CH"))
        cpm.schedule_blackout("ch1", start=100.0, end=200.0, now=33.0)
        utimes = {a.key: a.utime for a in cpm.channel_attribute_list()}
        assert utimes[(ATTR_REGION, "CH")] == 33.0
        assert utimes[(ATTR_REGION, VALUE_ANY)] == 33.0


class TestPolicyCrud:
    def test_add_and_remove_policy(self, cpm):
        cpm.add_channel("ch1", now=0.0, attributes=region_attrs("CH"))
        cpm.add_policy("ch1", region_policy("CH"), now=1.0)
        assert len(cpm.get_channel("ch1").policies) == 1
        assert cpm.remove_policy("ch1", "free-CH", now=2.0)
        assert cpm.get_channel("ch1").policies == []
        assert not cpm.remove_policy("ch1", "free-CH", now=3.0)

    def test_remove_channel_attribute(self, cpm):
        cpm.add_channel("ch1", now=0.0, attributes=region_attrs("CH", "DE"))
        assert cpm.remove_channel_attribute("ch1", ATTR_REGION, "DE", now=5.0)
        record = cpm.get_channel("ch1")
        assert {a.value for a in record.attributes.named(ATTR_REGION)} == {"CH"}

    def test_set_channel_manager_address(self, cpm):
        cpm.add_channel("ch1", now=0.0)
        cpm.set_channel_manager("ch1", "cm://p1", now=1.0)
        assert cpm.get_channel("ch1").channel_manager_addr == "cm://p1"


class TestClientAccess:
    def test_disabled_by_default(self, cpm):
        with pytest.raises(ProtocolError):
            cpm.request_channel_list(None, now=0.0)


class TestCompiledIndexInvalidation:
    def test_compiled_is_cached_per_version(self, cpm):
        cpm.add_channel("ch1", now=0.0, attributes=region_attrs("CH"),
                        policies=[region_policy("CH")])
        record = cpm.get_channel("ch1")
        index = record.compiled()
        assert record.compiled() is index  # same version -> same object
        assert index.version == record.version

    def test_every_mutation_bumps_version(self, cpm):
        cpm.add_channel("ch1", now=0.0, attributes=region_attrs("CH"),
                        policies=[region_policy("CH")])
        version = cpm.get_channel("ch1").version
        cpm.add_policy("ch1", region_policy("DE", priority=60), now=1.0)
        after_policy = cpm.get_channel("ch1").version
        assert after_policy > version
        cpm.set_channel_attribute(
            "ch1", Attribute(name=ATTR_REGION, value="DE"), now=2.0
        )
        assert cpm.get_channel("ch1").version > after_policy

    def test_stale_index_rebuilt_after_policy_change(self, cpm):
        cpm.add_channel("ch1", now=0.0, attributes=region_attrs("CH"),
                        policies=[region_policy("CH")])
        record = cpm._channels["ch1"]
        stale = record.compiled()
        cpm.add_policy(
            "ch1",
            Policy.of(
                90,
                [PolicyCondition(name=ATTR_REGION, value=VALUE_ANY)],
                Decision.REJECT,
                label="lockdown",
            ),
            now=1.0,
        )
        cpm.set_channel_attribute(
            "ch1", Attribute(name=ATTR_REGION, value=VALUE_ANY), now=1.0
        )
        rebuilt = record.compiled()
        assert rebuilt is not stale
        user = region_attrs("CH")
        assert rebuilt.evaluate(user, now=2.0).decision is Decision.REJECT
        # And the rebuilt index still agrees with the reference path.
        reference = evaluate_policies(record.policies, record.attributes, user, 2.0)
        assert rebuilt.evaluate(user, 2.0).decision == reference.decision

    def test_copy_carries_version_not_cache(self, cpm):
        cpm.add_channel("ch1", now=0.0, attributes=region_attrs("CH"),
                        policies=[region_policy("CH")])
        record = cpm._channels["ch1"]
        original_index = record.compiled()
        clone = record.copy()
        assert clone.version == record.version
        assert clone.compiled() is not original_index

    def test_version_survives_wire_roundtrip(self, cpm):
        from repro.core.policy_manager import ChannelRecord

        cpm.add_channel("ch1", now=0.0, attributes=region_attrs("CH"),
                        policies=[region_policy("CH")])
        cpm.add_policy("ch1", region_policy("DE", priority=60), now=1.0)
        record = cpm.get_channel("ch1")
        restored = ChannelRecord.from_bytes(record.to_bytes())
        assert restored.version == record.version

"""Tests for the Redirection Manager."""

import pytest

from repro.core.redirection import ManagerEndpoint, RedirectionManager
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.errors import AccountError

KEY = generate_keypair(HmacDrbg(b"redirection"), bits=512)
CPM = ManagerEndpoint(address="cpm://main", public_key=KEY.public_key)


def endpoint(addr):
    return ManagerEndpoint(address=addr, public_key=KEY.public_key)


@pytest.fixture
def redirection():
    manager = RedirectionManager(CPM)
    manager.register_domain("eu", endpoint("um://eu"))
    manager.register_domain("us", endpoint("um://us"))
    return manager


class TestLookup:
    def test_returns_cpm_endpoint(self, redirection):
        assert redirection.lookup("a@b.c").channel_policy_manager == CPM

    def test_lookup_deterministic(self, redirection):
        first = redirection.lookup("alice@example.org")
        second = redirection.lookup("alice@example.org")
        assert first.user_manager.address == second.user_manager.address

    def test_hashing_spreads_users(self, redirection):
        domains = {
            redirection.domain_for(f"user{i}@example.org") for i in range(50)
        }
        assert domains == {"eu", "us"}

    def test_explicit_assignment_overrides_hash(self, redirection):
        redirection.assign_user("alice@example.org", "us")
        assert redirection.domain_for("alice@example.org") == "us"
        assert redirection.lookup("alice@example.org").user_manager.address == "um://us"

    def test_assign_to_unknown_domain_rejected(self, redirection):
        with pytest.raises(AccountError):
            redirection.assign_user("a@b.c", "mars")

    def test_no_domains_registered(self):
        empty = RedirectionManager(CPM)
        with pytest.raises(AccountError):
            empty.domain_for("a@b.c")

    def test_lookup_counter(self, redirection):
        redirection.lookup("a@b.c")
        redirection.lookup("d@e.f")
        assert redirection.lookups == 2

    def test_domains_listing(self, redirection):
        assert redirection.domains() == ["eu", "us"]

    def test_domain_rebinding_updates_endpoint(self, redirection):
        """Re-registering a domain re-points its farm (a 'DNS change')."""
        redirection.register_domain("eu", endpoint("um://eu-new"))
        redirection.assign_user("a@b.c", "eu")
        assert redirection.lookup("a@b.c").user_manager.address == "um://eu-new"
        assert redirection.domains() == ["eu", "us"]

"""Tests for the Redirection Manager."""

import pytest

from repro.core.redirection import ManagerEndpoint, RedirectionManager
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.errors import AccountError

KEY = generate_keypair(HmacDrbg(b"redirection"), bits=512)
CPM = ManagerEndpoint(address="cpm://main", public_key=KEY.public_key)


def endpoint(addr):
    return ManagerEndpoint(address=addr, public_key=KEY.public_key)


@pytest.fixture
def redirection():
    manager = RedirectionManager(CPM)
    manager.register_domain("eu", endpoint("um://eu"))
    manager.register_domain("us", endpoint("um://us"))
    return manager


class TestLookup:
    def test_returns_cpm_endpoint(self, redirection):
        assert redirection.lookup("a@b.c").channel_policy_manager == CPM

    def test_lookup_deterministic(self, redirection):
        first = redirection.lookup("alice@example.org")
        second = redirection.lookup("alice@example.org")
        assert first.user_manager.address == second.user_manager.address

    def test_hashing_spreads_users(self, redirection):
        domains = {
            redirection.domain_for(f"user{i}@example.org") for i in range(50)
        }
        assert domains == {"eu", "us"}

    def test_explicit_assignment_overrides_hash(self, redirection):
        redirection.assign_user("alice@example.org", "us")
        assert redirection.domain_for("alice@example.org") == "us"
        assert redirection.lookup("alice@example.org").user_manager.address == "um://us"

    def test_assign_to_unknown_domain_rejected(self, redirection):
        with pytest.raises(AccountError):
            redirection.assign_user("a@b.c", "mars")

    def test_no_domains_registered(self):
        empty = RedirectionManager(CPM)
        with pytest.raises(AccountError):
            empty.domain_for("a@b.c")

    def test_lookup_counter(self, redirection):
        redirection.lookup("a@b.c")
        redirection.lookup("d@e.f")
        assert redirection.lookups == 2

    def test_domains_listing(self, redirection):
        assert redirection.domains() == ["eu", "us"]

    def test_domain_rebinding_updates_endpoint(self, redirection):
        """Re-registering a domain re-points its farm (a 'DNS change')."""
        redirection.register_domain("eu", endpoint("um://eu-new"))
        redirection.assign_user("a@b.c", "eu")
        assert redirection.lookup("a@b.c").user_manager.address == "um://eu-new"
        assert redirection.domains() == ["eu", "us"]


class TestReplicas:
    def test_add_replica_to_unknown_domain(self, redirection):
        with pytest.raises(AccountError):
            redirection.add_replica("asia", endpoint("um://asia-1"))

    def test_duplicate_replica_address_rejected(self, redirection):
        redirection.add_replica("eu", endpoint("um://eu-1"))
        with pytest.raises(AccountError):
            redirection.add_replica("eu", endpoint("um://eu-1"))

    def test_lookup_carries_ordered_replica_list(self, redirection):
        redirection.add_replica("eu", endpoint("um://eu-1"))
        redirection.assign_user("a@b.c", "eu")
        route = redirection.lookup("a@b.c")
        assert [e.address for e in route.user_manager_replicas] == [
            "um://eu", "um://eu-1",
        ]
        assert route.user_manager.address == "um://eu"

    def test_mark_down_steers_lookups_to_healthy_replica(self, redirection):
        redirection.add_replica("eu", endpoint("um://eu-1"))
        redirection.assign_user("a@b.c", "eu")
        redirection.mark_down("um://eu")
        route = redirection.lookup("a@b.c")
        # Healthy first; the sick primary stays listed as a fallback.
        assert route.user_manager.address == "um://eu-1"
        assert [e.address for e in route.user_manager_replicas] == [
            "um://eu-1", "um://eu",
        ]
        redirection.mark_up("um://eu")
        assert redirection.lookup("a@b.c").user_manager.address == "um://eu"

    def test_health_marks_are_idempotent(self, redirection):
        redirection.mark_down("um://eu")
        redirection.mark_down("um://eu")
        assert redirection.is_down("um://eu")
        redirection.mark_up("um://eu")
        assert not redirection.is_down("um://eu")


class TestHealthMarkExpiry:
    """Regression: mark_down marks used to be permanent unless a
    mark_up arrived, so one transient timeout during a deploy could
    starve a healthy replica of traffic forever."""

    def test_mark_expires_after_ttl(self, redirection):
        redirection.mark_down("um://eu", now=100.0, ttl=60.0)
        assert redirection.is_down("um://eu", now=159.9)
        assert not redirection.is_down("um://eu", now=160.1)

    def test_default_ttl_applies(self, redirection):
        redirection.mark_down("um://eu", now=0.0)
        ttl = RedirectionManager.DEFAULT_DOWN_TTL
        assert redirection.is_down("um://eu", now=ttl - 1.0)
        assert not redirection.is_down("um://eu", now=ttl + 1.0)

    def test_clockless_marks_never_expire(self, redirection):
        # Legacy callers pass no clock; their marks keep the old
        # permanent semantics until an explicit mark_up.
        redirection.mark_down("um://eu")
        assert redirection.is_down("um://eu", now=1e12)
        redirection.mark_up("um://eu")
        assert not redirection.is_down("um://eu")

    def test_remark_extends_but_never_shortens(self, redirection):
        redirection.mark_down("um://eu", now=0.0, ttl=500.0)
        redirection.mark_down("um://eu", now=10.0, ttl=60.0)
        # The longer of the two marks wins.
        assert redirection.is_down("um://eu", now=400.0)
        assert not redirection.is_down("um://eu", now=501.0)

    def test_expired_mark_restores_primary_ordering(self, redirection):
        redirection.add_replica("eu", endpoint("um://eu-1"))
        redirection.assign_user("a@b.c", "eu")
        redirection.mark_down("um://eu", now=0.0, ttl=30.0)
        assert redirection.lookup("a@b.c", now=10.0).user_manager.address == "um://eu-1"
        # TTL elapsed: the primary serves again without any mark_up.
        assert redirection.lookup("a@b.c", now=31.0).user_manager.address == "um://eu"


class TestLookupError:
    def test_no_domain_error_names_email_and_domains(self, redirection):
        from repro.errors import RedirectionLookupError

        empty = RedirectionManager(CPM)
        with pytest.raises(RedirectionLookupError) as excinfo:
            empty.lookup("ghost@example.org")
        assert excinfo.value.email == "ghost@example.org"
        assert excinfo.value.domains == []
        assert "ghost@example.org" in str(excinfo.value)

    def test_is_an_account_error(self):
        from repro.errors import RedirectionLookupError

        assert issubclass(RedirectionLookupError, AccountError)

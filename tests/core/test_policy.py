"""Tests for policy evaluation, including the paper's Fig. 2 worked example."""

import pytest

from repro.core.attributes import Attribute, AttributeSet, VALUE_ANY
from repro.core.policy import (
    Decision,
    Policy,
    PolicyCondition,
    evaluate_policies,
)
from repro.util.wire import Decoder, Encoder


def accept(priority, *conds, label=""):
    return Policy.of(priority, conds, Decision.ACCEPT, label=label)


def reject(priority, *conds, label=""):
    return Policy.of(priority, conds, Decision.REJECT, label=label)


def cond(name, value):
    return PolicyCondition(name=name, value=value)


class TestPolicyBasics:
    def test_needs_conditions(self):
        with pytest.raises(ValueError):
            Policy.of(50, [], Decision.ACCEPT)

    def test_negative_priority_rejected(self):
        with pytest.raises(ValueError):
            Policy.of(-1, [cond("A", "1")], Decision.ACCEPT)

    def test_str_matches_paper_notation(self):
        policy = accept(50, cond("Region", "100"), cond("Subscription", "101"))
        assert str(policy) == (
            "Priority 50: Region=100 & Subscription=101, Return ACCEPT"
        )

    def test_wire_roundtrip(self):
        policy = reject(100, cond("Region", VALUE_ANY), label="blackout")
        enc = Encoder()
        policy.encode(enc)
        assert Policy.decode(Decoder(enc.to_bytes())) == policy


class TestBackingValidity:
    def test_condition_backed_by_valid_channel_attribute(self):
        channel = AttributeSet([Attribute(name="Region", value="100")])
        assert cond("Region", "100").is_backed(channel, now=0.0)

    def test_condition_unbacked_when_expired(self):
        channel = AttributeSet([Attribute(name="Region", value="100", etime=10.0)])
        assert cond("Region", "100").is_backed(channel, now=5.0)
        assert not cond("Region", "100").is_backed(channel, now=15.0)

    def test_unbacked_policy_is_dormant(self):
        channel = AttributeSet([Attribute(name="Region", value="100", etime=10.0)])
        user = AttributeSet([Attribute(name="Region", value="100")])
        policy = accept(50, cond("Region", "100"))
        assert policy.is_active(channel, now=5.0)
        assert not policy.is_active(channel, now=15.0)
        result = evaluate_policies([policy], channel, user, now=15.0)
        assert result.decision is Decision.REJECT
        assert policy in result.dormant_policies


class TestEvaluationOrder:
    def test_higher_priority_wins(self):
        channel = AttributeSet([Attribute(name="Region", value="100"),
                                Attribute(name="Region", value=VALUE_ANY)])
        user = AttributeSet([Attribute(name="Region", value="100")])
        policies = [
            accept(50, cond("Region", "100")),
            reject(100, cond("Region", VALUE_ANY)),
        ]
        result = evaluate_policies(policies, channel, user, now=0.0)
        assert result.decision is Decision.REJECT
        assert result.matched_policy.priority == 100

    def test_tie_broken_by_definition_order(self):
        channel = AttributeSet([Attribute(name="Region", value="100")])
        user = AttributeSet([Attribute(name="Region", value="100")])
        first = accept(50, cond("Region", "100"), label="first")
        second = reject(50, cond("Region", "100"), label="second")
        result = evaluate_policies([first, second], channel, user, now=0.0)
        assert result.matched_policy.label == "first"

    def test_non_matching_policy_falls_through(self):
        channel = AttributeSet([
            Attribute(name="Region", value="100"),
            Attribute(name="Region", value="101"),
        ])
        user = AttributeSet([Attribute(name="Region", value="101")])
        policies = [
            accept(50, cond("Region", "100")),
            accept(50, cond("Region", "101")),
        ]
        result = evaluate_policies(policies, channel, user, now=0.0)
        assert result.accepted

    def test_default_is_reject(self):
        channel = AttributeSet([Attribute(name="Region", value="100")])
        user = AttributeSet([Attribute(name="Region", value="999")])
        result = evaluate_policies(
            [accept(50, cond("Region", "100"))], channel, user, now=0.0
        )
        assert result.decision is Decision.REJECT
        assert result.matched_policy is None

    def test_empty_policy_list_rejects(self):
        result = evaluate_policies([], AttributeSet(), AttributeSet(), now=0.0)
        assert result.decision is Decision.REJECT

    def test_conjunction_requires_all_conditions(self):
        channel = AttributeSet([
            Attribute(name="Region", value="100"),
            Attribute(name="Subscription", value="101"),
        ])
        policy = accept(50, cond("Region", "100"), cond("Subscription", "101"))
        subscribed = AttributeSet([
            Attribute(name="Region", value="100"),
            Attribute(name="Subscription", value="101"),
        ])
        unsubscribed = AttributeSet([Attribute(name="Region", value="100")])
        assert evaluate_policies([policy], channel, subscribed, now=0.0).accepted
        assert not evaluate_policies([policy], channel, unsubscribed, now=0.0).accepted


class TestPaperFigure2:
    """The worked example of Fig. 2 in the paper, verbatim.

    Channel A:
        Priority 50: Region=100 & Subscription=101, Return ACCEPT
        Priority 50: Region=101, Return ACCEPT
    Channel B:
        Priority 50: Region=100 & Subscription=101, Return ACCEPT
        Priority 100: Region=ANY, Return REJECT      (blackout 8-9pm)
    """

    # Times: 07/10 8pm = 1000.0, 07/10 9pm = 2000.0 in test units.
    BLACKOUT_START = 1000.0
    BLACKOUT_END = 2000.0

    def channel_a(self):
        attrs = AttributeSet([
            Attribute(name="Region", value="100"),
            Attribute(name="Region", value="101"),
            Attribute(name="Subscription", value="101"),
        ])
        policies = [
            accept(50, cond("Region", "100"), cond("Subscription", "101")),
            accept(50, cond("Region", "101")),
        ]
        return attrs, policies

    def channel_b(self):
        attrs = AttributeSet([
            Attribute(name="Region", value="100"),
            Attribute(name="Subscription", value="101"),
            Attribute(
                name="Region", value=VALUE_ANY,
                stime=self.BLACKOUT_START, etime=self.BLACKOUT_END,
            ),
        ])
        policies = [
            accept(50, cond("Region", "100"), cond("Subscription", "101")),
            reject(100, cond("Region", VALUE_ANY)),
        ]
        return attrs, policies

    def paper_user(self):
        """The user of Fig. 2(b): Region 100, AS 177, Subscription 101."""
        return AttributeSet([
            Attribute(name="Region", value="100"),
            Attribute(name="AS", value="177"),
            Attribute(name="Subscription", value="101", etime=10_000.0),
            Attribute(name="NetAddr", value="11.1.1.1"),
        ])

    def test_subscriber_in_region_100_accesses_channel_a(self):
        attrs, policies = self.channel_a()
        assert evaluate_policies(policies, attrs, self.paper_user(), now=0.0).accepted

    def test_region_101_user_accesses_channel_a_via_second_policy(self):
        attrs, policies = self.channel_a()
        user = AttributeSet([Attribute(name="Region", value="101")])
        result = evaluate_policies(policies, attrs, user, now=0.0)
        assert result.accepted
        assert result.matched_policy.conditions == (cond("Region", "101"),)

    def test_region_100_without_subscription_rejected_on_channel_a(self):
        attrs, policies = self.channel_a()
        user = AttributeSet([Attribute(name="Region", value="100")])
        assert not evaluate_policies(policies, attrs, user, now=0.0).accepted

    def test_channel_b_accessible_before_blackout(self):
        attrs, policies = self.channel_b()
        result = evaluate_policies(policies, attrs, self.paper_user(), now=500.0)
        assert result.accepted

    def test_channel_b_blacked_out_for_everyone_during_window(self):
        attrs, policies = self.channel_b()
        result = evaluate_policies(policies, attrs, self.paper_user(), now=1500.0)
        assert result.decision is Decision.REJECT
        assert result.matched_policy.priority == 100

    def test_channel_b_accessible_again_after_blackout(self):
        attrs, policies = self.channel_b()
        assert evaluate_policies(policies, attrs, self.paper_user(), now=2500.0).accepted

    def test_blackout_boundary_times(self):
        attrs, policies = self.channel_b()
        at_start = evaluate_policies(policies, attrs, self.paper_user(), now=1000.0)
        at_end = evaluate_policies(policies, attrs, self.paper_user(), now=2000.0)
        assert at_start.decision is Decision.REJECT
        assert at_end.decision is Decision.REJECT


class TestDormantProvenance:
    def test_dormant_list_spans_past_the_match(self):
        """A high-priority match must not truncate the dormant audit trail."""
        channel = AttributeSet([Attribute(name="Region", value="CH")])
        user = AttributeSet([Attribute(name="Region", value="CH")])
        policies = [
            accept(90, cond("Region", "CH"), label="winner"),
            # Dormant (unbacked) policies on both sides of the winner.
            reject(95, cond("Region", "DE"), label="dormant-above"),
            accept(10, cond("Subscription", "101"), label="dormant-below"),
        ]
        result = evaluate_policies(policies, channel, user, now=0.0)
        assert result.matched_policy.label == "winner"
        assert [p.label for p in result.dormant_policies] == [
            "dormant-above",
            "dormant-below",
        ]

    def test_dormant_list_in_priority_order(self):
        channel = AttributeSet()
        user = AttributeSet()
        policies = [
            accept(10, cond("A", "1"), label="low"),
            accept(50, cond("B", "2"), label="high"),
        ]
        result = evaluate_policies(policies, channel, user, now=0.0)
        assert [p.label for p in result.dormant_policies] == ["high", "low"]


class TestHostileDecode:
    def test_inflated_condition_count_rejected(self):
        from repro.util.wire import WireFormatError

        policy = accept(5, cond("Region", "CH"))
        enc = Encoder()
        policy.encode(enc)
        blob = bytearray(enc.to_bytes())
        # The condition count is the u32 right after priority (u32),
        # action, and label (length-prefixed strings).  Overwrite it
        # with a huge value the remaining buffer cannot hold.
        count_off = 4 + 4 + len("ACCEPT") + 4 + 0
        blob[count_off : count_off + 4] = (0xFFFFFFF0).to_bytes(4, "big")
        with pytest.raises(WireFormatError):
            Policy.decode(Decoder(bytes(blob)))

    def test_honest_count_still_decodes(self):
        policy = accept(5, cond("Region", "CH"), cond("Subscription", "101"))
        enc = Encoder()
        policy.encode(enc)
        assert Policy.decode(Decoder(enc.to_bytes())) == policy

"""Tests for the client state machine (against a full deployment)."""

import pytest

from repro.core.attributes import ATTR_REGION
from repro.errors import (
    AccountError,
    AttestationError,
    PolicyRejectError,
    ProtocolError,
)


class TestLogin:
    def test_login_stores_verified_ticket(self, deployment):
        client = deployment.create_client("u@example.org", "pw", region="CH")
        ticket = client.login(now=0.0)
        assert client.user_ticket is ticket
        assert ticket.attributes.first_value(ATTR_REGION) == "CH"

    def test_first_login_fetches_full_channel_list(self, deployment, viewer):
        assert set(viewer.channel_list) == {"free-ch", "free-uk", "premium"}

    def test_relogin_without_changes_skips_refresh(self, deployment, viewer):
        cpm_lookups_before = len(viewer.channel_list)
        viewer.channel_list["marker"] = viewer.channel_list["free-ch"]
        viewer.login(now=10.0)
        # No full refresh: our marker survives (nothing changed upstream).
        assert "marker" in viewer.channel_list

    def test_utime_change_triggers_partial_refresh(self, deployment, viewer):
        """Blackout scheduling bumps utimes; next login re-fetches."""
        deployment.policy_manager.schedule_blackout(
            "free-ch", start=1000.0, end=2000.0, now=50.0
        )
        viewer.login(now=100.0)
        record = viewer.channel_list["free-ch"]
        assert any(p.label == "blackout" for p in record.policies)

    def test_wrong_password_fails(self, deployment):
        deployment.accounts.register("w@example.org", "right")
        client = deployment.create_client(
            "w@example.org", "wrong", region="CH", register=False
        )
        from repro.errors import DecryptionError

        with pytest.raises(DecryptionError):
            client.login(now=0.0)

    def test_unregistered_user_fails(self, deployment):
        client = deployment.create_client(
            "ghost@example.org", "pw", region="CH", register=False
        )
        with pytest.raises(AccountError):
            client.login(now=0.0)

    def test_tampered_client_image_fails(self, deployment):
        tampered = bytes(b ^ 0xFF for b in deployment.client_image)
        client = deployment.create_client(
            "t@example.org", "pw", region="CH", image=tampered
        )
        with pytest.raises(AttestationError):
            client.login(now=0.0)

    def test_clock_offset_recorded(self, deployment):
        client = deployment.create_client("c@example.org", "pw", region="CH")
        client.login(now=500.0)
        assert client.clock_offset == 0.0  # simulated clocks agree


class TestChannelSelection:
    def test_viewable_channels_filtered_by_region(self, deployment, viewer):
        assert viewer.viewable_channels(now=1.0) == ["free-ch"]

    def test_subscription_expands_lineup(self, deployment):
        deployment.accounts.register("s@example.org", "pw")
        deployment.accounts.subscribe("s@example.org", "101")
        client = deployment.create_client(
            "s@example.org", "pw", region="CH", register=False
        )
        client.login(now=0.0)
        assert client.viewable_channels(now=1.0) == ["free-ch", "premium"]

    def test_uk_viewer_sees_uk_channel(self, deployment):
        client = deployment.create_client("uk@example.org", "pw", region="UK")
        client.login(now=0.0)
        assert client.viewable_channels(now=1.0) == ["free-uk"]

    def test_requires_login(self, deployment):
        client = deployment.create_client("x@example.org", "pw", region="CH")
        with pytest.raises(ProtocolError):
            client.viewable_channels(now=0.0)


class TestSwitching:
    def test_switch_issues_ticket_and_peers(self, deployment, viewer):
        response = viewer.switch_channel("free-ch", now=1.0)
        assert viewer.channel_ticket is response.ticket
        assert response.ticket.channel_id == "free-ch"
        assert len(response.peers) >= 1  # at least the source

    def test_switch_to_unauthorized_channel_rejected(self, deployment, viewer):
        with pytest.raises(PolicyRejectError):
            viewer.switch_channel("premium", now=1.0)

    def test_switch_to_unknown_channel_rejected(self, deployment, viewer):
        with pytest.raises(ProtocolError):
            viewer.switch_channel("nope", now=1.0)

    def test_switch_requires_login(self, deployment):
        client = deployment.create_client("y@example.org", "pw", region="CH")
        with pytest.raises(ProtocolError):
            client.switch_channel("free-ch", now=0.0)

    def test_switch_resets_keys_and_parents(self, deployment, viewer):
        deployment.watch(viewer, "free-ch", now=1.0)
        assert viewer.parents
        assert viewer.key_ring.serials()
        deployment.add_free_channel("free-2", regions=["CH"], now=2.0)
        viewer.login(now=3.0)  # refresh channel list
        viewer.switch_channel("free-2", now=4.0)
        assert not viewer.parents
        assert not viewer.key_ring.serials()

    def test_renewal_extends_without_reset(self, deployment, viewer):
        deployment.watch(viewer, "free-ch", now=1.0)
        original = viewer.channel_ticket
        renew_at = original.expire_time - 10.0
        viewer.login(now=renew_at)  # fresh user ticket for the renewal
        response = viewer.renew_channel_ticket(now=renew_at)
        assert response.ticket.renewal
        assert response.ticket.expire_time > original.expire_time
        assert viewer.parents  # connections survive renewal

    def test_renew_requires_ticket(self, deployment, viewer):
        with pytest.raises(ProtocolError):
            viewer.renew_channel_ticket(now=1.0)


class TestContentPath:
    def test_end_to_end_decryption(self, deployment, viewer):
        deployment.watch(viewer, "free-ch", now=1.0)
        source = deployment.overlay("free-ch").source
        packet = source.server.emit_packet(2.0)
        payload = viewer.receive_packet(packet)
        assert len(payload) == source.server.frame_size
        assert viewer.packets_decrypted == 1

    def test_receive_without_join_rejected(self, deployment, viewer):
        source = deployment.overlay("free-ch").source
        packet = source.server.emit_packet(2.0)
        with pytest.raises(ProtocolError):
            viewer.receive_packet(packet)

    def test_key_update_from_unknown_parent_rejected(self, deployment, viewer):
        deployment.watch(viewer, "free-ch", now=1.0)
        from repro.core.protocol import KeyUpdate

        update = KeyUpdate(
            channel_id="free-ch", serial=9, encrypted_content_key=b"x" * 32,
            activate_at=540.0,
        )
        with pytest.raises(ProtocolError):
            viewer.receive_key_update(update, parent_id="stranger")

    def test_decrypt_failure_counted(self, deployment, viewer):
        from repro.core.packets import ContentPacket
        from repro.errors import DecryptionError

        deployment.watch(viewer, "free-ch", now=1.0)
        rogue = ContentPacket(serial=200, sequence=1, ciphertext=b"\x00" * 64)
        with pytest.raises(DecryptionError):
            viewer.receive_packet(rogue)
        assert viewer.decrypt_failures == 1


class TestMobility:
    def test_move_clears_session_state(self, deployment, viewer):
        deployment.watch(viewer, "free-ch", now=1.0)
        new_addr = deployment.geo.random_address("CH", deployment.rng)
        viewer.move_to(new_addr)
        assert viewer.user_ticket is None
        assert viewer.channel_ticket is None
        assert not viewer.parents
        # Re-login from the new address works.
        viewer.login(now=10.0)
        assert viewer.user_ticket.net_addr == new_addr

"""Tests for the attribute model and matching semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import (
    Attribute,
    AttributeSet,
    VALUE_ALL,
    VALUE_ANY,
    VALUE_NONE,
)
from repro.util.wire import Decoder, Encoder


class TestAttribute:
    def test_validity_window(self):
        attr = Attribute(name="Region", value="CH", stime=10.0, etime=20.0)
        assert not attr.is_valid_at(9.9)
        assert attr.is_valid_at(10.0)
        assert attr.is_valid_at(15.0)
        assert attr.is_valid_at(20.0)
        assert not attr.is_valid_at(20.1)

    def test_null_times_are_unbounded(self):
        attr = Attribute(name="Region", value="CH")
        assert attr.is_valid_at(0.0)
        assert attr.is_valid_at(1e12)

    def test_half_open_windows(self):
        starts_later = Attribute(name="A", value="v", stime=5.0)
        assert not starts_later.is_valid_at(4.0)
        assert starts_later.is_valid_at(1e9)
        expires = Attribute(name="A", value="v", etime=5.0)
        assert expires.is_valid_at(0.0)
        assert not expires.is_valid_at(6.0)

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError):
            Attribute(name="A", value="v", stime=10.0, etime=5.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Attribute(name="", value="v")

    def test_with_utime_preserves_rest(self):
        attr = Attribute(name="A", value="v", stime=1.0, etime=2.0)
        stamped = attr.with_utime(99.0)
        assert stamped.utime == 99.0
        assert (stamped.name, stamped.value, stamped.stime, stamped.etime) == (
            "A", "v", 1.0, 2.0,
        )
        assert attr.utime is None  # original untouched

    def test_wire_roundtrip(self):
        attr = Attribute(name="Subscription", value="101", stime=1.5, etime=None, utime=3.0)
        enc = Encoder()
        attr.encode(enc)
        assert Attribute.decode(Decoder(enc.to_bytes())) == attr


class TestAttributeSet:
    def test_add_replaces_same_key(self):
        attrs = AttributeSet()
        attrs.add(Attribute(name="Region", value="CH", utime=1.0))
        attrs.add(Attribute(name="Region", value="CH", utime=2.0))
        assert len(attrs) == 1
        assert attrs.named("Region")[0].utime == 2.0

    def test_multiple_values_per_name(self):
        attrs = AttributeSet()
        attrs.add(Attribute(name="Region", value="CH"))
        attrs.add(Attribute(name="Region", value="DE"))
        assert len(attrs.named("Region")) == 2

    def test_remove(self):
        attrs = AttributeSet([Attribute(name="A", value="1")])
        assert attrs.remove("A", "1")
        assert not attrs.remove("A", "1")
        assert len(attrs) == 0

    def test_first_value_with_and_without_validity(self):
        attrs = AttributeSet([Attribute(name="A", value="early", etime=10.0),
                              Attribute(name="A", value="late", stime=20.0)])
        assert attrs.first_value("A") == "early"
        assert attrs.first_value("A", now=30.0) == "late"
        assert attrs.first_value("B") is None

    def test_soonest_etime(self):
        attrs = AttributeSet([
            Attribute(name="A", value="1", etime=50.0),
            Attribute(name="B", value="2", etime=30.0),
            Attribute(name="C", value="3"),
        ])
        assert attrs.soonest_etime() == 30.0

    def test_soonest_etime_all_unbounded(self):
        attrs = AttributeSet([Attribute(name="A", value="1")])
        assert attrs.soonest_etime() is None

    def test_utime_map(self):
        attrs = AttributeSet([Attribute(name="A", value="1", utime=5.0),
                              Attribute(name="B", value="2")])
        assert attrs.utime_map() == {("A", "1"): 5.0, ("B", "2"): None}

    def test_copy_is_independent(self):
        attrs = AttributeSet([Attribute(name="A", value="1")])
        clone = attrs.copy()
        clone.add(Attribute(name="B", value="2"))
        assert len(attrs) == 1
        assert len(clone) == 2

    def test_set_roundtrip(self):
        attrs = AttributeSet([
            Attribute(name="Region", value="CH", utime=1.0),
            Attribute(name="Subscription", value="101", stime=0.0, etime=100.0),
        ])
        enc = Encoder()
        attrs.encode(enc)
        decoded = AttributeSet.decode(Decoder(enc.to_bytes()))
        assert list(decoded) == list(attrs)


class TestMatchingSemantics:
    """The table in the module docstring of repro.core.attributes."""

    def setup_method(self):
        self.attrs = AttributeSet([
            Attribute(name="Region", value="CH"),
            Attribute(name="Subscription", value="101", etime=100.0),
        ])

    def test_literal_match(self):
        assert self.attrs.satisfies("Region", "CH", now=0.0)
        assert not self.attrs.satisfies("Region", "DE", now=0.0)

    def test_any_requires_presence(self):
        assert self.attrs.satisfies("Region", VALUE_ANY, now=0.0)
        assert not self.attrs.satisfies("Missing", VALUE_ANY, now=0.0)

    def test_none_requires_absence(self):
        assert self.attrs.satisfies("Missing", VALUE_NONE, now=0.0)
        assert not self.attrs.satisfies("Region", VALUE_NONE, now=0.0)

    def test_all_held_value_satisfies_anything(self):
        attrs = AttributeSet([Attribute(name="Region", value=VALUE_ALL)])
        assert attrs.satisfies("Region", "CH", now=0.0)
        assert attrs.satisfies("Region", "whatever", now=0.0)

    def test_expired_attribute_does_not_match(self):
        assert self.attrs.satisfies("Subscription", "101", now=50.0)
        assert not self.attrs.satisfies("Subscription", "101", now=150.0)

    def test_expired_attribute_counts_as_absent_for_none(self):
        assert self.attrs.satisfies("Subscription", VALUE_NONE, now=150.0)

    def test_any_does_not_match_literal_any_absent(self):
        # A user whose only Region expired has no valid Region: ANY fails.
        attrs = AttributeSet([Attribute(name="Region", value="CH", etime=1.0)])
        assert not attrs.satisfies("Region", VALUE_ANY, now=2.0)


@given(
    name=st.text(min_size=1, max_size=10),
    value=st.text(max_size=10),
    stime=st.one_of(st.none(), st.floats(min_value=0, max_value=1e6)),
    utime=st.one_of(st.none(), st.floats(min_value=0, max_value=1e6)),
    delta=st.floats(min_value=0, max_value=1e6),
)
@settings(max_examples=100)
def test_property_attribute_roundtrip_and_validity(name, value, stime, utime, delta):
    etime = None if stime is None else stime + delta
    attr = Attribute(name=name, value=value, stime=stime, etime=etime, utime=utime)
    enc = Encoder()
    attr.encode(enc)
    assert Attribute.decode(Decoder(enc.to_bytes())) == attr
    if stime is not None:
        assert attr.is_valid_at(stime)
        assert attr.is_valid_at(etime)
        if stime > 0:
            assert not attr.is_valid_at(stime - 1.0)

"""Property tests: the compiled policy index is observably identical to
the uncached :func:`evaluate_policies` path.

The compiled form may reorganize the work however it likes, but every
externally visible output -- decision, matched policy, the full dormant
list, and the channel-side boundary scan -- must match the reference
implementation bit for bit.  Strategies deliberately cover the special
match values (ANY / ALL / NONE) and pinned-condition windows, the two
corners where a sloppy index would diverge first.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import (
    Attribute,
    AttributeSet,
    VALUE_ALL,
    VALUE_ANY,
    VALUE_NONE,
)
from repro.core.policy import Decision, Policy, PolicyCondition, evaluate_policies
from repro.core.policy_index import CompiledPolicyIndex

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

attr_names = st.sampled_from(["Region", "Subscription", "Quality"])
plain_values = st.sampled_from(["A", "B", "101"])
held_values = st.one_of(plain_values, st.just(VALUE_ALL))
required_values = st.one_of(
    plain_values, st.sampled_from([VALUE_ANY, VALUE_ALL, VALUE_NONE])
)

windows = st.one_of(
    st.just((None, None)),
    st.tuples(
        st.floats(min_value=0, max_value=500),
        st.floats(min_value=1, max_value=500),
    ).map(lambda t: (t[0], t[0] + t[1])),
)


@st.composite
def attributes(draw, values=held_values):
    stime, etime = draw(windows)
    return Attribute(
        name=draw(attr_names), value=draw(values), stime=stime, etime=etime
    )


@st.composite
def attribute_sets(draw, max_size=6, values=held_values):
    return AttributeSet(draw(st.lists(attributes(values=values), max_size=max_size)))


@st.composite
def conditions(draw, channel):
    """A condition, sometimes pinned to a real channel attribute's window.

    Pinning against an *existing* window is the interesting case: a
    pinned condition whose window matches nothing is trivially dormant
    everywhere and exercises no index logic.
    """
    channel_attrs = list(channel)
    if channel_attrs and draw(st.booleans()):
        backing = draw(st.sampled_from(channel_attrs))
        pin = draw(st.booleans()) and backing.stime is not None
        return PolicyCondition(
            name=backing.name,
            value=backing.value,
            stime=backing.stime if pin else None,
            etime=backing.etime if pin else None,
        )
    return PolicyCondition(name=draw(attr_names), value=draw(required_values))


@st.composite
def policy_lists(draw, channel, max_size=5):
    out = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_size))):
        conds = draw(st.lists(conditions(channel), min_size=1, max_size=3))
        out.append(
            Policy.of(
                priority=draw(st.integers(min_value=0, max_value=100)),
                conditions=conds,
                action=draw(st.sampled_from([Decision.ACCEPT, Decision.REJECT])),
            )
        )
    return out


now_times = st.floats(min_value=-10, max_value=1100)


@st.composite
def scenarios(draw):
    channel = draw(attribute_sets())
    return (
        channel,
        draw(policy_lists(channel)),
        draw(attribute_sets(values=held_values)),
        draw(now_times),
    )


# ----------------------------------------------------------------------
# Equivalence properties
# ----------------------------------------------------------------------


@given(scenario=scenarios())
@settings(max_examples=300)
def test_compiled_evaluation_matches_reference(scenario):
    channel, policies, user, now = scenario
    reference = evaluate_policies(policies, channel, user, now)
    compiled = CompiledPolicyIndex(policies, channel).evaluate(user, now)
    assert compiled.decision == reference.decision
    assert compiled.matched_policy == reference.matched_policy
    assert compiled.dormant_policies == reference.dormant_policies


@given(scenario=scenarios())
@settings(max_examples=200)
def test_compiled_index_is_reusable(scenario):
    """One compile, many evaluations at different times -- all equivalent."""
    channel, policies, user, now = scenario
    index = CompiledPolicyIndex(policies, channel)
    for t in (now, now + 42.0, 0.0, 1e6):
        reference = evaluate_policies(policies, channel, user, t)
        got = index.evaluate(user, t)
        assert got.decision == reference.decision
        assert got.matched_policy == reference.matched_policy
        assert got.dormant_policies == reference.dormant_policies


@given(channel=attribute_sets(), name=attr_names, now=now_times)
@settings(max_examples=200)
def test_valid_named_matches_attribute_set(channel, name, now):
    index = CompiledPolicyIndex([], channel)
    assert index.valid_named(name, now) == channel.valid_named(name, now)


@given(
    channel=attribute_sets(),
    start=st.floats(min_value=-10, max_value=1100),
    span=st.floats(min_value=0, max_value=1200),
)
@settings(max_examples=200)
def test_boundaries_between_matches_linear_scan(channel, start, span):
    end = start + span
    index = CompiledPolicyIndex([], channel)
    expected = sorted(
        {
            bound
            for attribute in channel
            for bound in (attribute.stime, attribute.etime)
            if bound is not None and start < bound <= end
        }
    )
    assert index.boundaries_between(start, end) == expected

"""Property-based tests of the policy engine's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import Attribute, AttributeSet, VALUE_ANY
from repro.core.policy import Decision, Policy, PolicyCondition, evaluate_policies

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

attr_names = st.sampled_from(["Region", "Subscription", "Quality", "AS"])
attr_values = st.sampled_from(["A", "B", "C", "101", "102"])


@st.composite
def attributes(draw):
    name = draw(attr_names)
    value = draw(attr_values)
    has_window = draw(st.booleans())
    if has_window:
        start = draw(st.floats(min_value=0, max_value=500))
        length = draw(st.floats(min_value=1, max_value=500))
        return Attribute(name=name, value=value, stime=start, etime=start + length)
    return Attribute(name=name, value=value)


@st.composite
def attribute_sets(draw, max_size=6):
    return AttributeSet(draw(st.lists(attributes(), max_size=max_size)))


@st.composite
def policies(draw, action=None):
    conditions = draw(
        st.lists(
            st.builds(
                PolicyCondition,
                name=attr_names,
                value=st.one_of(attr_values, st.just(VALUE_ANY)),
            ),
            min_size=1,
            max_size=3,
        )
    )
    return Policy.of(
        priority=draw(st.integers(min_value=0, max_value=100)),
        conditions=conditions,
        action=action or draw(st.sampled_from([Decision.ACCEPT, Decision.REJECT])),
    )


@st.composite
def policy_lists(draw, max_size=5, action=None):
    return draw(st.lists(policies(action=action), max_size=max_size))


now_times = st.floats(min_value=0, max_value=1000)


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------


@given(channel=attribute_sets(), user=attribute_sets(), ps=policy_lists(), now=now_times)
@settings(max_examples=200)
def test_evaluation_is_deterministic(channel, user, ps, now):
    first = evaluate_policies(ps, channel, user, now)
    second = evaluate_policies(ps, channel, user, now)
    assert first.decision == second.decision
    assert first.matched_policy == second.matched_policy


@given(channel=attribute_sets(), user=attribute_sets(), ps=policy_lists(), now=now_times)
@settings(max_examples=200)
def test_empty_or_no_match_defaults_to_reject(channel, user, ps, now):
    result = evaluate_policies(ps, channel, user, now)
    if result.matched_policy is None:
        assert result.decision is Decision.REJECT


@given(
    channel=attribute_sets(),
    user=attribute_sets(),
    ps=policy_lists(action=Decision.ACCEPT),
    now=now_times,
)
@settings(max_examples=200)
def test_accept_only_policies_never_grant_without_match(channel, user, ps, now):
    """With only ACCEPT policies, acceptance requires an active match."""
    result = evaluate_policies(ps, channel, user, now)
    if result.decision is Decision.ACCEPT:
        matched = result.matched_policy
        assert matched is not None
        assert matched.is_active(channel, now)
        assert matched.matches(user, now)


@given(
    channel=attribute_sets(),
    user=attribute_sets(),
    ps=policy_lists(action=Decision.ACCEPT),
    now=now_times,
)
@settings(max_examples=200)
def test_overriding_reject_is_monotone(channel, user, ps, now):
    """Adding a max-priority universal REJECT never *grants* access.

    The blackout construction relies on this: a high-priority REJECT
    can only shrink the accepted set.
    """
    baseline = evaluate_policies(ps, channel, user, now)
    fence = Policy.of(
        priority=101,
        conditions=[PolicyCondition(name="Region", value=VALUE_ANY)],
        action=Decision.REJECT,
    )
    # Back the fence so it is active whenever the user has any Region.
    fenced_channel = channel.copy()
    fenced_channel.add(Attribute(name="Region", value=VALUE_ANY))
    fenced = evaluate_policies(list(ps) + [fence], fenced_channel, user, now)
    if baseline.decision is Decision.REJECT:
        assert fenced.decision is Decision.REJECT


@given(channel=attribute_sets(), user=attribute_sets(), ps=policy_lists(), now=now_times)
@settings(max_examples=200)
def test_dormant_policies_never_decide(channel, user, ps, now):
    result = evaluate_policies(ps, channel, user, now)
    for dormant in result.dormant_policies:
        assert not dormant.is_active(channel, now)
    if result.matched_policy is not None:
        assert result.matched_policy.is_active(channel, now)


@given(channel=attribute_sets(), user=attribute_sets(), ps=policy_lists(), now=now_times)
@settings(max_examples=200)
def test_matched_policy_has_maximal_priority_among_deciders(channel, user, ps, now):
    """No active, matching policy with a *higher* priority was skipped."""
    result = evaluate_policies(ps, channel, user, now)
    if result.matched_policy is None:
        return
    for policy in ps:
        if policy.priority > result.matched_policy.priority:
            assert not (policy.is_active(channel, now) and policy.matches(user, now))


@given(user=attribute_sets(), now=now_times)
@settings(max_examples=100)
def test_policy_order_ties_resolved_by_definition_order(user, now):
    channel = AttributeSet([Attribute(name="Region", value="A")])
    first = Policy.of(50, [PolicyCondition("Region", "A")], Decision.ACCEPT, label="one")
    second = Policy.of(50, [PolicyCondition("Region", "A")], Decision.REJECT, label="two")
    result = evaluate_policies([first, second], channel, user, now)
    if result.matched_policy is not None:
        assert result.matched_policy.label == "one"

"""Tests for the service directory."""

import pytest

from repro.core.directory import ServiceDirectory
from repro.errors import ReproError


class TestDirectory:
    def test_register_and_resolve(self):
        directory = ServiceDirectory()
        marker = object()
        directory.register("um://a", marker)
        assert directory.resolve("um://a") is marker

    def test_unresolvable_raises(self):
        with pytest.raises(ReproError):
            ServiceDirectory().resolve("nope://x")

    def test_empty_address_rejected(self):
        with pytest.raises(ReproError):
            ServiceDirectory().register("", object())

    def test_rebind_replaces(self):
        directory = ServiceDirectory()
        directory.register("cm://p", "old")
        directory.register("cm://p", "new")
        assert directory.resolve("cm://p") == "new"

    def test_unregister(self):
        directory = ServiceDirectory()
        directory.register("a", 1)
        assert directory.unregister("a")
        assert not directory.unregister("a")
        with pytest.raises(ReproError):
            directory.resolve("a")

    def test_addresses(self):
        directory = ServiceDirectory()
        directory.register("a", 1)
        directory.register("b", 2)
        assert sorted(directory.addresses()) == ["a", "b"]

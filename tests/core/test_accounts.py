"""Tests for the Account Manager."""

import pytest

from repro.core.accounts import AccountManager, Subscription, secure_hash_password
from repro.errors import AccountError


@pytest.fixture
def manager():
    return AccountManager()


class TestPasswordHashing:
    def test_deterministic(self):
        assert secure_hash_password("a@b.c", "pw") == secure_hash_password("a@b.c", "pw")

    def test_salted_by_email(self):
        assert secure_hash_password("a@b.c", "pw") != secure_hash_password("x@y.z", "pw")

    def test_password_sensitive(self):
        assert secure_hash_password("a@b.c", "pw1") != secure_hash_password("a@b.c", "pw2")

    def test_plaintext_not_embedded(self):
        assert b"hunter2" not in secure_hash_password("a@b.c", "hunter2")


class TestRegistration:
    def test_register_and_get(self, manager):
        account = manager.register("alice@example.org", "pw")
        assert manager.get("alice@example.org") is account
        assert manager.exists("alice@example.org")

    def test_duplicate_rejected(self, manager):
        manager.register("alice@example.org", "pw")
        with pytest.raises(AccountError):
            manager.register("alice@example.org", "pw2")

    def test_invalid_email_rejected(self, manager):
        for bad in ("", "no-at-sign"):
            with pytest.raises(AccountError):
                manager.register(bad, "pw")

    def test_unknown_lookup_raises(self, manager):
        with pytest.raises(AccountError):
            manager.get("ghost@example.org")

    def test_listener_notified_on_register(self, manager):
        seen = []
        manager.add_listener(seen.append)
        manager.register("alice@example.org", "pw")
        assert [a.email for a in seen] == ["alice@example.org"]


class TestSubscriptions:
    def test_subscribe_free(self, manager):
        manager.register("a@b.c", "pw")
        subscription = manager.subscribe("a@b.c", "101", stime=0.0, etime=100.0)
        assert subscription.is_current_at(50.0)
        assert not subscription.is_current_at(150.0)

    def test_current_subscriptions_filtered(self, manager):
        account = manager.register("a@b.c", "pw")
        manager.subscribe("a@b.c", "old", etime=10.0)
        manager.subscribe("a@b.c", "new", stime=5.0)
        current = [s.package_id for s in account.current_subscriptions(20.0)]
        assert current == ["new"]

    def test_priced_subscription_debits_balance(self, manager):
        manager.register("a@b.c", "pw")
        manager.top_up("a@b.c", 10.0)
        manager.subscribe("a@b.c", "101", price=7.5)
        assert manager.get("a@b.c").balance == pytest.approx(2.5)

    def test_insufficient_balance_rejected(self, manager):
        manager.register("a@b.c", "pw")
        with pytest.raises(AccountError):
            manager.subscribe("a@b.c", "101", price=5.0)

    def test_cancel_subscription(self, manager):
        manager.register("a@b.c", "pw")
        manager.subscribe("a@b.c", "101")
        assert manager.cancel_subscription("a@b.c", "101")
        assert not manager.cancel_subscription("a@b.c", "101")

    def test_pay_per_view_is_bounded_priced_subscription(self, manager):
        manager.register("a@b.c", "pw")
        manager.top_up("a@b.c", 5.0)
        ppv = manager.purchase_pay_per_view("a@b.c", "match-42", 100.0, 200.0, 3.0)
        assert ppv.is_current_at(150.0)
        assert not ppv.is_current_at(250.0)
        assert manager.get("a@b.c").balance == pytest.approx(2.0)

    def test_listener_notified_on_subscription_change(self, manager):
        manager.register("a@b.c", "pw")
        seen = []
        manager.add_listener(seen.append)
        manager.subscribe("a@b.c", "101")
        manager.cancel_subscription("a@b.c", "101")
        assert len(seen) == 2


class TestBalanceAndSuspension:
    def test_top_up(self, manager):
        manager.register("a@b.c", "pw")
        assert manager.top_up("a@b.c", 5.0) == pytest.approx(5.0)
        assert manager.top_up("a@b.c", 2.5) == pytest.approx(7.5)

    def test_nonpositive_top_up_rejected(self, manager):
        manager.register("a@b.c", "pw")
        with pytest.raises(AccountError):
            manager.top_up("a@b.c", 0.0)

    def test_suspend_and_reinstate(self, manager):
        manager.register("a@b.c", "pw")
        manager.suspend("a@b.c")
        assert manager.get("a@b.c").suspended
        manager.reinstate("a@b.c")
        assert not manager.get("a@b.c").suspended

    def test_all_accounts_snapshot(self, manager):
        manager.register("a@b.c", "pw")
        manager.register("d@e.f", "pw")
        assert {a.email for a in manager.all_accounts()} == {"a@b.c", "d@e.f"}

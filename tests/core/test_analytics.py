"""Tests for viewing analytics and royalty reporting."""

import pytest

from repro.core.analytics import ViewingAnalytics, reconstruct_sessions
from repro.core.channel_manager import ViewingLogEntry


def entry(user_id, channel, at, renewal=False, addr="11.1.1.1"):
    return ViewingLogEntry(
        user_id=user_id, channel_id=channel, net_addr=addr, issued_at=at, renewal=renewal
    )


LIFETIME = 900.0


class TestSessionReconstruction:
    def test_single_ticket_session(self):
        sessions = reconstruct_sessions([entry(1, "ch", 100.0)], LIFETIME)
        assert len(sessions) == 1
        assert sessions[0].start == 100.0
        assert sessions[0].end == 100.0 + LIFETIME
        assert sessions[0].renewals == 0

    def test_renewal_chain_is_one_session(self):
        log = [
            entry(1, "ch", 0.0),
            entry(1, "ch", 860.0, renewal=True),
            entry(1, "ch", 1720.0, renewal=True),
        ]
        sessions = reconstruct_sessions(log, LIFETIME)
        assert len(sessions) == 1
        assert sessions[0].renewals == 2
        assert sessions[0].end == 1720.0 + LIFETIME

    def test_large_gap_splits_sessions(self):
        log = [entry(1, "ch", 0.0), entry(1, "ch", 10_000.0)]
        sessions = reconstruct_sessions(log, LIFETIME)
        assert len(sessions) == 2

    def test_channels_separate(self):
        log = [entry(1, "a", 0.0), entry(1, "b", 10.0)]
        sessions = reconstruct_sessions(log, LIFETIME)
        assert {s.channel_id for s in sessions} == {"a", "b"}

    def test_users_separate(self):
        log = [entry(1, "ch", 0.0), entry(2, "ch", 10.0)]
        assert len(reconstruct_sessions(log, LIFETIME)) == 2

    def test_empty_log(self):
        assert reconstruct_sessions([], LIFETIME) == []


class TestAnalytics:
    @pytest.fixture
    def analytics(self):
        log = [
            entry(1, "sports", 0.0),
            entry(1, "sports", 860.0, renewal=True),   # watches ~0-1760
            entry(2, "sports", 500.0),                  # watches ~500-1400
            entry(3, "news", 100.0),                    # watches ~100-1000
            entry(2, "sports", 50_000.0),               # comes back later
        ]
        return ViewingAnalytics(log, ticket_lifetime=LIFETIME)

    def test_concurrent_viewers(self, analytics):
        assert analytics.concurrent_viewers("sports", 600.0) == 2
        assert analytics.concurrent_viewers("sports", 1500.0) == 1
        assert analytics.concurrent_viewers("sports", 3000.0) == 0
        assert analytics.concurrent_viewers("news", 600.0) == 1

    def test_viewer_curve(self, analytics):
        curve = analytics.viewer_curve("sports", 0.0, 2000.0, step=500.0)
        assert [v for _, v in curve] == [1, 2, 2, 1, 0]

    def test_channel_report(self, analytics):
        report = analytics.channel_report("sports", 0.0, 2000.0)
        assert report.unique_viewers == 2
        assert report.sessions == 2
        assert report.peak_concurrent == 2
        assert report.viewer_seconds == pytest.approx(1760.0 + 900.0)

    def test_report_window_clipping(self, analytics):
        report = analytics.channel_report("sports", 0.0, 600.0)
        # User 1 contributes 600 s, user 2 contributes 100 s.
        assert report.viewer_seconds == pytest.approx(700.0)

    def test_royalty_statement(self, analytics):
        statement = analytics.royalty_statement(0.0, 2000.0, rate_per_viewer_hour=2.0)
        assert statement["sports"] == pytest.approx((2660.0 / 3600.0) * 2.0)
        assert statement["news"] == pytest.approx((900.0 / 3600.0) * 2.0)

    def test_per_view_charges_dedup_renewals(self, analytics):
        charges = analytics.per_view_charges("sports", 0.0, 2000.0, price=5.0)
        # Users 1 and 2 watched; user 1's renewal is not double-billed.
        assert charges == {1: 5.0, 2: 5.0}

    def test_per_view_charges_window(self, analytics):
        charges = analytics.per_view_charges("sports", 49_000.0, 52_000.0, price=5.0)
        assert charges == {2: 5.0}


class TestEndToEndAnalytics:
    def test_from_real_viewing_log(self, deployment):
        """Analytics over a real Channel Manager's log."""
        for i in range(4):
            client = deployment.create_client(f"a{i}@example.org", "pw", region="CH")
            client.login(now=float(i))
            client.switch_channel("free-ch", now=float(i))
        analytics = deployment.analytics_for("free-ch")
        report = analytics.channel_report("free-ch", 0.0, 1000.0)
        assert report.unique_viewers == 4
        assert report.peak_concurrent == 4

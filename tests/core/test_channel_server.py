"""Tests for the Channel Server."""

import pytest

from repro.core.channel_server import ChannelServer
from repro.core.keystream import ContentKeyRing
from repro.core.packets import decrypt_packet
from repro.crypto.drbg import HmacDrbg


@pytest.fixture
def server():
    return ChannelServer("ch1", HmacDrbg(b"server"), key_epoch=60.0, key_lead_time=10.0)


class TestIngest:
    def test_frames_have_increasing_sequences(self, server):
        frames = [server.ingest_frame(float(i)) for i in range(5)]
        assert [f.sequence for f in frames] == [0, 1, 2, 3, 4]

    def test_synthetic_payload_size(self, server):
        frame = server.ingest_frame(0.0)
        assert len(frame.payload) == server.frame_size

    def test_explicit_payload_passthrough(self, server):
        frame = server.ingest_frame(0.0, payload=b"custom")
        assert frame.payload == b"custom"


class TestEncryptedEmission:
    def test_packet_decryptable_with_current_key(self, server):
        packet = server.emit_packet(30.0)
        ring = ContentKeyRing()
        ring.offer(server.current_key(30.0))
        assert len(decrypt_packet(ring, "ch1", packet)) == server.frame_size

    def test_serial_follows_rotation(self, server):
        early = server.emit_packet(30.0)
        late = server.emit_packet(90.0)
        assert early.serial == 0
        assert late.serial == 1

    def test_old_key_cannot_decrypt_new_epoch(self, server):
        """Forward secrecy: a key only unlocks its own epoch."""
        from repro.errors import DecryptionError

        ring = ContentKeyRing()
        ring.offer(server.current_key(30.0))
        late_packet = server.emit_packet(90.0)
        with pytest.raises(DecryptionError):
            decrypt_packet(ring, "ch1", late_packet)

    def test_emission_counted(self, server):
        server.emit_packet(0.0)
        server.emit_packet(1.0)
        assert server.packets_emitted == 2

    def test_pre_start_emit_does_not_inflate_counter(self):
        """Regression: a pre-start ProtocolError used to count a packet
        (and burn a sequence number) that never left the server."""
        from repro.errors import ProtocolError

        server = ChannelServer("late", HmacDrbg(b"late"), start_time=100.0)
        with pytest.raises(ProtocolError):
            server.emit_packet(50.0)
        assert server.packets_emitted == 0
        first = server.emit_packet(100.0)
        assert first.sequence == 0
        assert server.packets_emitted == 1


class TestBatchEmission:
    def test_batch_decryptable_with_current_key(self, server):
        packets = server.emit_packets(30.0, 5)
        ring = ContentKeyRing()
        ring.offer(server.current_key(30.0))
        assert [p.sequence for p in packets] == [0, 1, 2, 3, 4]
        for packet in packets:
            assert len(decrypt_packet(ring, "ch1", packet)) == server.frame_size

    def test_batch_counts_and_continues_sequences(self, server):
        server.emit_packet(0.0)
        packets = server.emit_packets(1.0, 3)
        assert [p.sequence for p in packets] == [1, 2, 3]
        assert server.packets_emitted == 4

    def test_empty_batch(self, server):
        assert server.emit_packets(0.0, 0) == []
        assert server.packets_emitted == 0

    def test_pre_start_batch_does_not_count(self):
        from repro.errors import ProtocolError

        server = ChannelServer("late", HmacDrbg(b"late"), start_time=100.0)
        with pytest.raises(ProtocolError):
            server.emit_packets(50.0, 4)
        assert server.packets_emitted == 0

    def test_unencrypted_batch_in_the_clear(self):
        server = ChannelServer("open", HmacDrbg(b"open"), encrypted=False)
        packets = server.emit_packets(0.0, 2)
        assert len(packets) == 2
        assert all(p.serial == 0 for p in packets)
        assert all(len(p.ciphertext) == server.frame_size for p in packets)


class TestUnencryptedChannel:
    """Footnote 2: public-mandate broadcasters distribute in the clear."""

    def test_payload_in_the_clear(self):
        server = ChannelServer("open", HmacDrbg(b"open"), encrypted=False)
        packet = server.emit_packet(0.0, payload=b"public content")
        assert packet.ciphertext == b"public content"
        assert packet.serial == 0


class TestKeyHandout:
    def test_keys_for_join_mid_epoch(self, server):
        keys = server.keys_for_join(30.0)
        assert [k.serial for k in keys] == [0]

    def test_keys_for_join_inside_lead_window(self, server):
        keys = server.keys_for_join(55.0)
        assert [k.serial for k in keys] == [0, 1]

    def test_upcoming_none_outside_window(self, server):
        assert server.upcoming_key(30.0) is None
        assert server.upcoming_key(51.0).serial == 1

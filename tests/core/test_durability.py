"""Durability threading through the three stateful managers.

Each manager journals its mutations to a DurableStore and can be
rebuilt, byte-identical where it matters, by ``recover``.  The
deployment-level crash/recover workflow (credential hand-back, listener
re-wiring) is exercised through ``Deployment`` itself.
"""

import pytest

from repro.core.attributes import ATTR_REGION, Attribute, AttributeSet
from repro.core.challenge import answer_challenge
from repro.core.policy import Decision, Policy, PolicyCondition
from repro.core.policy_manager import ChannelPolicyManager
from repro.core.protocol import Switch1Request, Switch2Request
from repro.deployment import Deployment
from repro.errors import ReproError
from repro.sim.faults import single_location_violations, utime_regressions
from repro.store import DurableStore, MemoryBackend


@pytest.fixture
def deployment():
    d = Deployment(seed=11, n_domains=2)
    d.enable_durability()
    d.add_free_channel("news", regions=["CH", "DE"])
    d.add_free_channel("sport", regions=["CH"])
    return d


def _client_with_traffic(deployment):
    client = deployment.create_client("alice@example.org", "pw", region="CH")
    client.login(now=0.0)
    client.switch_channel("news", now=1.0)
    client.switch_channel("sport", now=5.0)
    return client


class TestChannelManagerDurability:
    def test_recovered_log_is_byte_identical(self, deployment):
        _client_with_traffic(deployment)
        before = deployment.channel_managers["default"]
        pre_log = before.viewing_log_bytes()
        pre_counters = (
            before.tickets_issued, before.renewals_issued, before.rejections,
        )

        deployment.crash_channel_manager("default")
        recovered = deployment.recover_channel_manager("default")

        assert recovered.viewing_log_bytes() == pre_log
        assert (
            recovered.tickets_issued,
            recovered.renewals_issued,
            recovered.rejections,
        ) == pre_counters
        assert recovered.viewing_log() == before.viewing_log()

    def test_rejection_counter_recovers(self, deployment):
        client = _client_with_traffic(deployment)
        bob = deployment.create_client("bob@example.org", "pw", region="FR")
        bob.login(now=0.0)
        with pytest.raises(ReproError):
            bob.switch_channel("sport", now=2.0)  # CH-only channel
        before = deployment.channel_managers["default"].rejections
        assert before >= 1

        deployment.crash_channel_manager("default")
        recovered = deployment.recover_channel_manager("default")
        assert recovered.rejections == before

    def test_switch_in_flight_across_crash(self, deployment):
        """SWITCH1 answered by the old process, SWITCH2 by the recovered
        one: the challenge token is farm-secret MAC'd, not in-memory
        state, so the round completes without re-login."""
        client = _client_with_traffic(deployment)
        old = deployment.channel_managers["default"]
        response1 = old.switch1(
            Switch1Request(user_ticket=client.user_ticket, channel_id="news"),
            now=10.0,
        )

        deployment.crash_channel_manager("default")
        recovered = deployment.recover_channel_manager("default")

        response2 = recovered.switch2(
            Switch2Request(
                user_ticket=client.user_ticket,
                token=response1.token,
                signature=answer_challenge(response1.token, client._key),
                channel_id="news",
            ),
            observed_addr=client.net_addr,
            now=10.5,
        )
        assert response2.ticket.channel_id == "news"
        assert single_location_violations(recovered.viewing_log()) == []

    def test_renewal_continues_without_relogin(self, deployment):
        client = _client_with_traffic(deployment)
        deployment.crash_channel_manager("default")
        recovered = deployment.recover_channel_manager("default")

        # The sport ticket (issued t=5, lifetime 900) becomes renewable
        # inside its 120 s window before expiry at t=905.
        response = client.renew_channel_ticket(now=800.0)
        assert response.ticket.channel_id == "sport"
        assert recovered.renewals_issued == 1
        assert single_location_violations(recovered.viewing_log()) == []

    def test_crash_unknown_partition_rejected(self, deployment):
        with pytest.raises(ReproError):
            deployment.crash_channel_manager("nope")

    def test_recover_without_store_rejected(self):
        d = Deployment(seed=3)  # durability never enabled
        d.channel_managers.pop("default")
        with pytest.raises(ReproError):
            d.recover_channel_manager("default")


class TestUserManagerDurability:
    def test_recovery_preserves_users_and_counters(self, deployment):
        _client_with_traffic(deployment)
        # alice hashed into one of the two domains; exercise both.
        for domain in list(deployment.user_managers):
            before = deployment.user_managers[domain]
            count, logins = before.user_count(), before.logins_issued
            deployment.crash_user_manager(domain)
            recovered = deployment.recover_user_manager(domain)
            assert recovered.user_count() == count
            assert recovered.logins_issued == logins

    def test_login_works_after_recovery(self, deployment):
        client = _client_with_traffic(deployment)
        for domain in list(deployment.user_managers):
            deployment.crash_user_manager(domain)
            deployment.recover_user_manager(domain)
        ticket = client.login(now=20.0)
        assert ticket.user_id == client.user_ticket.user_id

    def test_user_id_allocation_resumes_with_stride(self, deployment):
        a = deployment.create_client("a@example.org", "pw", region="CH")
        b = deployment.create_client("b@example.org", "pw", region="CH")
        a.login(now=0.0)
        b.login(now=0.0)
        ids_before = {a.user_ticket.user_id, b.user_ticket.user_id}

        for domain in list(deployment.user_managers):
            deployment.crash_user_manager(domain)
            deployment.recover_user_manager(domain)

        c = deployment.create_client("c@example.org", "pw", region="CH")
        c.login(now=1.0)
        # A fresh UserIN: never a reuse of a pre-crash allocation.
        assert c.user_ticket.user_id not in ids_before

    def test_accounts_registered_after_recovery_sync(self, deployment):
        for domain in list(deployment.user_managers):
            deployment.crash_user_manager(domain)
            deployment.recover_user_manager(domain)
        late = deployment.create_client("late@example.org", "pw", region="DE")
        ticket = late.login(now=2.0)
        assert ticket.user_id > 0


class TestPolicyManagerDurability:
    def _populated(self, store):
        cpm = ChannelPolicyManager()
        cpm.attach_store(store)
        attrs = AttributeSet()
        attrs.add(Attribute(name=ATTR_REGION, value="CH"))
        cpm.add_channel("news", 10.0, attributes=attrs, policies=[
            Policy.of(priority=50,
                      conditions=[PolicyCondition(name=ATTR_REGION, value="CH")],
                      action=Decision.ACCEPT, label="free-CH"),
        ])
        cpm.set_channel_manager("news", "cm://default", 11.0)
        cpm.set_channel_attribute(
            "news", Attribute(name=ATTR_REGION, value="DE"), 20.0
        )
        cpm.schedule_blackout("news", start=100.0, end=200.0, now=30.0)
        cpm.add_channel("late", 40.0)
        cpm.delete_channel("late", 41.0)
        return cpm

    def test_recovery_reproduces_utimes_exactly(self):
        store = DurableStore(MemoryBackend())
        before = self._populated(store)
        recovered = ChannelPolicyManager.recover(store)

        assert utime_regressions(
            before.channel_attribute_list(), recovered.channel_attribute_list()
        ) == []
        # Not merely no-regression: bit-exact equality both ways.
        assert (
            before.channel_attribute_list().utime_map()
            == recovered.channel_attribute_list().utime_map()
        )

    def test_recovery_reproduces_channel_records(self):
        store = DurableStore(MemoryBackend())
        before = self._populated(store)
        recovered = ChannelPolicyManager.recover(store)
        assert sorted(before.channel_list()) == sorted(recovered.channel_list())
        for channel_id, record in before.channel_list().items():
            assert recovered.get_channel(channel_id).to_bytes() == record.to_bytes()

    def test_mutations_continue_after_recovery(self):
        store = DurableStore(MemoryBackend())
        self._populated(store)
        recovered = ChannelPolicyManager.recover(store)
        recovered.set_channel_attribute(
            "news", Attribute(name=ATTR_REGION, value="AT"), 50.0
        )
        twice = ChannelPolicyManager.recover(store)
        assert twice.get_channel("news").to_bytes() == \
            recovered.get_channel("news").to_bytes()


class TestAutoSnapshot:
    def test_snapshot_every_bounds_wal(self):
        store = DurableStore(MemoryBackend())
        cpm = ChannelPolicyManager()
        cpm.attach_store(store, snapshot_every=5)
        for i in range(23):
            cpm.add_channel(f"ch{i}", float(i))
        assert store.record_count() <= 5
        recovered = ChannelPolicyManager.recover(store, snapshot_every=5)
        assert sorted(recovered.channel_list()) == sorted(cpm.channel_list())


class TestViewingLogDefensiveCopy:
    def test_mutating_the_returned_list_does_not_leak(self, deployment):
        _client_with_traffic(deployment)
        manager = deployment.channel_managers["default"]
        log = manager.viewing_log()
        baseline = manager.viewing_log_bytes()
        log.clear()
        log.extend([])
        assert manager.viewing_log() != []
        assert manager.viewing_log_bytes() == baseline

    def test_entries_are_immutable(self, deployment):
        _client_with_traffic(deployment)
        manager = deployment.channel_managers["default"]
        entry = manager.viewing_log()[0]
        with pytest.raises(AttributeError):
            entry.net_addr = "10.0.0.1"


class TestColdStartRecovery:
    """A new *process* pointing ``enable_durability`` at an existing
    root must recover the farms from disk, never overwrite them."""

    def _first_process(self, root):
        d = Deployment(seed=31, n_domains=2)
        d.enable_durability(root=root)
        d.add_free_channel("news", regions=["CH", "DE"])
        d.add_free_channel("sport", regions=["CH"])
        client = d.create_client("alice@example.org", "pw", region="CH")
        client.login(now=0.0)
        client.switch_channel("news", now=1.0)
        client.switch_channel("sport", now=5.0)
        return d, client

    def test_restart_recovers_instead_of_clobbering(self, tmp_path):
        root = str(tmp_path / "state")
        first, _ = self._first_process(root)
        pre_log = first.channel_managers["default"].viewing_log_bytes()
        pre_channels = sorted(first.policy_manager.channel_list())

        # "Process B": fresh deployment, same seed, same root.
        second = Deployment(seed=31, n_domains=2)
        second.enable_durability(root=root)

        cm = second.channel_managers["default"]
        assert cm.viewing_log_bytes() == pre_log
        assert sorted(second.policy_manager.channel_list()) == pre_channels
        assert second.stores["cm-default"].stats.records_replayed > 0

    def test_restart_keeps_user_identity_and_serves(self, tmp_path):
        root = str(tmp_path / "state")
        first, client = self._first_process(root)
        original_uid = client.user_ticket.user_id

        second = Deployment(seed=31, n_domains=2)
        second.enable_durability(root=root)

        # Same email re-registered after restart keeps its UserIN (the
        # UserDB row came back from the store), and the recovered farms
        # serve login + switch end-to-end without re-provisioning.
        again = second.create_client("alice@example.org", "pw", region="CH")
        ticket = again.login(now=100.0)
        assert ticket.user_id == original_uid
        response = again.switch_channel("news", now=101.0)
        assert response.ticket.channel_id == "news"

        # A brand-new user gets a fresh UserIN, not a reused one.
        novel = second.create_client("bob@example.org", "pw", region="CH")
        assert novel.login(now=102.0).user_id != original_uid

    def test_fresh_root_still_attaches_clean(self, tmp_path):
        root = str(tmp_path / "fresh")
        d = Deployment(seed=31, n_domains=2)
        d.enable_durability(root=root)
        d.add_free_channel("news", regions=["CH"])
        assert d.stores["cpm"].record_count() > 0
        for store in d.stores.values():
            assert store.verify().healthy

    def test_add_partition_recovers_existing_store(self, tmp_path):
        root = str(tmp_path / "state")
        first = Deployment(seed=31)
        first.enable_durability(root=root)
        first.add_partition("vip")
        first.add_free_channel("boxing", regions=["CH"], partition="vip")
        client = first.create_client("eve@example.org", "pw", region="CH")
        client.login(now=0.0)
        client.switch_channel("boxing", now=1.0)
        pre_log = first.channel_managers["vip"].viewing_log_bytes()
        assert pre_log

        # Replay the same program in a new process.
        second = Deployment(seed=31)
        second.enable_durability(root=root)
        recovered = second.add_partition("vip")
        assert recovered.viewing_log_bytes() == pre_log

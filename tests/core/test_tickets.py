"""Tests for User Tickets and Channel Tickets."""

import dataclasses

import pytest

from repro.core.attributes import Attribute, AttributeSet
from repro.core.tickets import ChannelTicket, UserTicket
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.errors import SignatureError, TicketExpiredError, TicketInvalidError


@pytest.fixture(scope="module")
def manager_key():
    return generate_keypair(HmacDrbg(b"manager"), bits=512)


@pytest.fixture(scope="module")
def client_key():
    return generate_keypair(HmacDrbg(b"client"), bits=512)


@pytest.fixture
def user_ticket(manager_key, client_key):
    attributes = AttributeSet([
        Attribute(name="NetAddr", value="11.1.2.3"),
        Attribute(name="Region", value="CH", utime=5.0),
        Attribute(name="Subscription", value="101", etime=900.0),
    ])
    return UserTicket(
        user_id=42,
        client_public_key=client_key.public_key,
        start_time=100.0,
        expire_time=1000.0,
        attributes=attributes,
    ).signed(manager_key)


@pytest.fixture
def channel_ticket(manager_key, client_key):
    return ChannelTicket(
        channel_id="sports-1",
        user_id=42,
        client_public_key=client_key.public_key,
        net_addr="11.1.2.3",
        renewal=False,
        start_time=100.0,
        expire_time=700.0,
    ).signed(manager_key)


class TestUserTicket:
    def test_verifies_when_valid(self, user_ticket, manager_key):
        user_ticket.verify(manager_key.public_key, now=500.0)

    def test_unsigned_rejected(self, user_ticket, manager_key):
        bare = dataclasses.replace(user_ticket, signature=b"")
        with pytest.raises(SignatureError):
            bare.verify(manager_key.public_key, now=500.0)

    def test_expired_rejected(self, user_ticket, manager_key):
        with pytest.raises(TicketExpiredError):
            user_ticket.verify(manager_key.public_key, now=1001.0)

    def test_not_yet_valid_rejected(self, user_ticket, manager_key):
        with pytest.raises(TicketInvalidError):
            user_ticket.verify(manager_key.public_key, now=99.0)

    def test_tampered_user_id_rejected(self, user_ticket, manager_key):
        forged = dataclasses.replace(user_ticket, user_id=7)
        with pytest.raises(SignatureError):
            forged.verify(manager_key.public_key, now=500.0)

    def test_tampered_attributes_rejected(self, user_ticket, manager_key):
        inflated = user_ticket.attributes.copy()
        inflated.add(Attribute(name="Subscription", value="999"))
        forged = dataclasses.replace(user_ticket, attributes=inflated)
        with pytest.raises(SignatureError):
            forged.verify(manager_key.public_key, now=500.0)

    def test_wrong_issuer_rejected(self, user_ticket):
        other = generate_keypair(HmacDrbg(b"other-manager"), bits=512)
        with pytest.raises(SignatureError):
            user_ticket.verify(other.public_key, now=500.0)

    def test_net_addr_extraction_and_check(self, user_ticket):
        assert user_ticket.net_addr == "11.1.2.3"
        user_ticket.check_net_addr("11.1.2.3")
        with pytest.raises(TicketInvalidError):
            user_ticket.check_net_addr("99.9.9.9")

    def test_serialization_roundtrip(self, user_ticket, manager_key):
        restored = UserTicket.from_bytes(user_ticket.to_bytes())
        assert restored == user_ticket
        restored.verify(manager_key.public_key, now=500.0)

    def test_remaining_lifetime(self, user_ticket):
        assert user_ticket.remaining_lifetime == 900.0

    def test_wrong_magic_rejected(self, channel_ticket):
        with pytest.raises(TicketInvalidError):
            UserTicket.from_bytes(channel_ticket.to_bytes())


class TestChannelTicket:
    def test_full_peer_checks_pass(self, channel_ticket, manager_key):
        channel_ticket.verify(
            manager_key.public_key,
            now=500.0,
            expected_channel="sports-1",
            observed_addr="11.1.2.3",
        )

    def test_wrong_channel_rejected(self, channel_ticket, manager_key):
        with pytest.raises(TicketInvalidError):
            channel_ticket.verify(
                manager_key.public_key, now=500.0, expected_channel="news-1"
            )

    def test_wrong_address_rejected(self, channel_ticket, manager_key):
        with pytest.raises(TicketInvalidError):
            channel_ticket.verify(
                manager_key.public_key, now=500.0, observed_addr="99.9.9.9"
            )

    def test_expired_rejected(self, channel_ticket, manager_key):
        with pytest.raises(TicketExpiredError):
            channel_ticket.verify(manager_key.public_key, now=701.0)

    def test_renewal_bit_covered_by_signature(self, channel_ticket, manager_key):
        flipped = dataclasses.replace(channel_ticket, renewal=True)
        with pytest.raises(SignatureError):
            flipped.verify(manager_key.public_key, now=500.0)

    def test_renewal_window(self, channel_ticket):
        # expire_time=700, window=60: renewable in [640, 760].
        assert not channel_ticket.is_within_renewal_window(600.0, 60.0)
        assert channel_ticket.is_within_renewal_window(640.0, 60.0)
        assert channel_ticket.is_within_renewal_window(700.0, 60.0)
        assert channel_ticket.is_within_renewal_window(760.0, 60.0)
        assert not channel_ticket.is_within_renewal_window(761.0, 60.0)

    def test_serialization_roundtrip(self, channel_ticket, manager_key):
        restored = ChannelTicket.from_bytes(channel_ticket.to_bytes())
        assert restored == channel_ticket
        restored.verify(manager_key.public_key, now=500.0)

    def test_privacy_by_construction(self, channel_ticket):
        """The wire form carries no user attributes beyond NetAddr.

        Section IV-C: "By filtering out all user attributes other than
        the client's network address, the Channel Manager serves to
        intermediate between the protection of user privacy and
        protection of content owner's digital rights."
        """
        blob = channel_ticket.to_bytes()
        assert b"Subscription" not in blob
        assert b"Region" not in blob
        assert b"AS" not in blob

    def test_wrong_magic_rejected(self, user_ticket):
        with pytest.raises(TicketInvalidError):
            ChannelTicket.from_bytes(user_ticket.to_bytes())

    def test_certified_client_key_matches(self, channel_ticket, client_key):
        assert channel_ticket.client_public_key == client_key.public_key

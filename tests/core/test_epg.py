"""Tests for the Electronic Program Guide and pay-per-view."""

import pytest

from repro.core.epg import Program
from repro.errors import PolicyRejectError, ReproError


@pytest.fixture
def scheduled(deployment):
    """Deployment with a free channel carrying a PPV match and a
    rights-less documentary."""
    epg = deployment.epg
    epg.add_program(Program(
        program_id="match",
        channel_id="free-ch",
        start=10_000.0,
        end=15_400.0,
        title="The Derby",
        ppv_price=4.90,
    ))
    epg.add_program(Program(
        program_id="docu",
        channel_id="free-ch",
        start=20_000.0,
        end=23_600.0,
        title="No Internet Rights",
        internet_rights=False,
    ))
    epg.apply_all_rights(now=0.0)
    return deployment


class TestSchedule:
    def test_program_validation(self):
        with pytest.raises(ValueError):
            Program(program_id="x", channel_id="c", start=10.0, end=5.0)
        with pytest.raises(ValueError):
            Program(program_id="x", channel_id="c", start=0.0, end=1.0, ppv_price=-1.0)

    def test_overlap_rejected(self, deployment):
        epg = deployment.epg
        epg.add_program(Program(program_id="a", channel_id="free-ch", start=0.0, end=100.0))
        with pytest.raises(ReproError):
            epg.add_program(Program(program_id="b", channel_id="free-ch", start=50.0, end=150.0))
        # Same window on another channel is fine.
        epg.add_program(Program(program_id="c", channel_id="free-uk", start=50.0, end=150.0))

    def test_duplicate_id_rejected(self, deployment):
        epg = deployment.epg
        epg.add_program(Program(program_id="a", channel_id="free-ch", start=0.0, end=1.0))
        with pytest.raises(ReproError):
            epg.add_program(Program(program_id="a", channel_id="free-uk", start=5.0, end=6.0))

    def test_current_program(self, scheduled):
        epg = scheduled.epg
        assert epg.current_program("free-ch", 12_000.0).program_id == "match"
        assert epg.current_program("free-ch", 16_000.0) is None
        assert epg.current_program("free-uk", 12_000.0) is None

    def test_schedule_ordering(self, scheduled):
        ids = [p.program_id for p in scheduled.epg.schedule_for("free-ch")]
        assert ids == ["match", "docu"]


class TestPayPerView:
    def test_non_purchaser_fenced_out_during_program(self, scheduled):
        client = scheduled.create_client("cheap@example.org", "pw", region="CH")
        client.login(now=11_000.0)
        with pytest.raises(PolicyRejectError):
            client.switch_channel("free-ch", now=11_000.0)

    def test_purchaser_admitted(self, scheduled):
        scheduled.accounts.register("fan@example.org", "pw")
        scheduled.accounts.top_up("fan@example.org", 10.0)
        scheduled.epg.purchase(scheduled.accounts, "fan@example.org", "match")
        client = scheduled.create_client("fan@example.org", "pw", region="CH", register=False)
        client.login(now=11_000.0)
        response = client.switch_channel("free-ch", now=11_000.0)
        assert response.ticket.channel_id == "free-ch"
        # The entitlement is visible as a time-boxed Subscription.
        assert scheduled.accounts.get("fan@example.org").balance == pytest.approx(10.0 - 4.90)

    def test_channel_free_outside_ppv_window(self, scheduled):
        client = scheduled.create_client("casual@example.org", "pw", region="CH")
        client.login(now=5_000.0)
        assert client.switch_channel("free-ch", now=5_000.0)

    def test_purchase_grants_only_the_window(self, scheduled):
        scheduled.accounts.register("fan@example.org", "pw")
        scheduled.accounts.top_up("fan@example.org", 10.0)
        subscription = scheduled.epg.purchase(scheduled.accounts, "fan@example.org", "match")
        assert subscription.stime == 10_000.0
        assert subscription.etime == 15_400.0

    def test_non_ppv_purchase_rejected(self, scheduled):
        scheduled.accounts.register("fan@example.org", "pw")
        with pytest.raises(ReproError):
            scheduled.epg.purchase(scheduled.accounts, "fan@example.org", "docu")

    def test_insufficient_balance(self, scheduled):
        scheduled.accounts.register("broke@example.org", "pw")
        from repro.errors import AccountError

        with pytest.raises(AccountError):
            scheduled.epg.purchase(scheduled.accounts, "broke@example.org", "match")

    def test_ticket_issued_before_ppv_window_capped_at_its_start(self, scheduled):
        """A non-purchaser watching ahead of the PPV program holds a
        ticket that expires exactly at the fence."""
        client = scheduled.create_client("casual@example.org", "pw", region="CH")
        login_at = 9_500.0
        client.login(now=login_at)
        response = client.switch_channel("free-ch", now=login_at)
        assert response.ticket.expire_time == 10_000.0


class TestBlackoutProgram:
    def test_rightsless_program_blacked_out(self, scheduled):
        client = scheduled.create_client("v@example.org", "pw", region="CH")
        client.login(now=21_000.0)
        with pytest.raises(PolicyRejectError):
            client.switch_channel("free-ch", now=21_000.0)

    def test_apply_rights_idempotent(self, scheduled):
        policies_before = len(scheduled.policy_manager.get_channel("free-ch").policies)
        scheduled.epg.apply_rights("match", now=0.0)
        scheduled.epg.apply_rights("docu", now=0.0)
        policies_after = len(scheduled.policy_manager.get_channel("free-ch").policies)
        assert policies_before == policies_after

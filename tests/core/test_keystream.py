"""Tests for rotating content keys."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keystream import (
    SERIAL_MODULUS,
    ContentKey,
    ContentKeyRing,
    ContentKeySchedule,
)
from repro.crypto.drbg import HmacDrbg
from repro.crypto.stream import SymmetricKey
from repro.errors import DecryptionError, ProtocolError


def make_schedule(epoch=60.0, lead=10.0, start=0.0):
    return ContentKeySchedule(HmacDrbg(b"keys"), epoch=epoch, lead_time=lead, start_time=start)


class TestContentKey:
    def test_serial_range_enforced(self):
        key = SymmetricKey.generate(HmacDrbg(b"k"))
        with pytest.raises(ValueError):
            ContentKey(serial=256, key=key, activate_at=0.0)
        with pytest.raises(ValueError):
            ContentKey(serial=-1, key=key, activate_at=0.0)


class TestSchedule:
    def test_epoch_boundaries(self):
        schedule = make_schedule()
        assert schedule.current_key(0.0).serial == 0
        assert schedule.current_key(59.9).serial == 0
        assert schedule.current_key(60.0).serial == 1
        assert schedule.current_key(3599.0).serial == 59

    def test_keys_differ_between_epochs(self):
        schedule = make_schedule()
        a = schedule.current_key(0.0)
        b = schedule.current_key(60.0)
        assert a.key.material != b.key.material

    def test_stable_within_epoch(self):
        schedule = make_schedule()
        assert schedule.current_key(10.0) == schedule.current_key(50.0)

    def test_upcoming_key_only_inside_lead_window(self):
        schedule = make_schedule(epoch=60.0, lead=10.0)
        assert schedule.upcoming_key(30.0) is None
        upcoming = schedule.upcoming_key(51.0)
        assert upcoming is not None
        assert upcoming.serial == 1
        assert upcoming.activate_at == 60.0

    def test_distributable_keys(self):
        schedule = make_schedule()
        assert [k.serial for k in schedule.distributable_keys(30.0)] == [0]
        assert [k.serial for k in schedule.distributable_keys(55.0)] == [0, 1]

    def test_serial_wraparound(self):
        schedule = make_schedule()
        late = schedule.current_key(60.0 * (SERIAL_MODULUS + 3))
        assert late.serial == 3
        # The wrapped key replaced the original serial-3 key.
        assert schedule.key_by_serial(3) == late

    def test_deterministic_under_seed(self):
        a = make_schedule().current_key(120.0)
        b = make_schedule().current_key(120.0)
        assert a.key.material == b.key.material

    def test_start_time_offset(self):
        schedule = make_schedule(start=1000.0)
        assert schedule.current_key(1000.0).serial == 0
        assert schedule.current_key(1060.0).serial == 1

    def test_pre_start_query_raises(self):
        """Before the broadcast starts there is no current key: handing
        out the not-yet-active serial-0 key would leak the first epoch."""
        schedule = make_schedule(start=1000.0)
        with pytest.raises(ProtocolError):
            schedule.current_key(999.9)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_schedule(epoch=0.0)
        with pytest.raises(ValueError):
            make_schedule(epoch=60.0, lead=60.0)


class TestKeyRing:
    def key(self, serial):
        return ContentKey(
            serial=serial,
            key=SymmetricKey.generate(HmacDrbg(serial.to_bytes(2, "big"))),
            activate_at=serial * 60.0,
        )

    def test_offer_and_get(self):
        ring = ContentKeyRing()
        assert ring.offer(self.key(1))
        assert ring.get(1).serial == 1
        assert ring.has(1)

    def test_duplicate_discarded(self):
        """Section IV-E: multi-parent peers discard duplicate keys by serial."""
        ring = ContentKeyRing()
        ring.offer(self.key(1))
        assert not ring.offer(self.key(1))
        assert ring.duplicates_discarded == 1

    def test_missing_serial_raises(self):
        ring = ContentKeyRing()
        with pytest.raises(DecryptionError):
            ring.get(7)

    def test_eviction_by_arrival_order(self):
        ring = ContentKeyRing(capacity=2)
        ring.offer(self.key(1))
        ring.offer(self.key(2))
        ring.offer(self.key(3))
        assert not ring.has(1)
        assert ring.serials() == [2, 3]

    def test_minimum_capacity(self):
        with pytest.raises(ValueError):
            ContentKeyRing(capacity=1)

    def test_wraparound_replaces_stale_serial(self):
        """Regression: a peer stalled >= 256 epochs holds a stale key
        under the incoming serial.  The fresh generation (same serial,
        later activate_at) must replace it, not be discarded as a
        duplicate forever."""
        ring = ContentKeyRing()
        stale = self.key(5)  # activates at 300.0
        ring.offer(stale)
        fresh = ContentKey(
            serial=5,
            key=SymmetricKey.generate(HmacDrbg(b"next-gen")),
            activate_at=stale.activate_at + SERIAL_MODULUS * 60.0,
        )
        assert ring.offer(fresh)
        assert ring.duplicates_discarded == 0
        assert ring.get(5) == fresh
        # The revived serial moved to the back of the eviction order.
        assert ring.serials() == [5]

    def test_wraparound_replacement_refreshes_eviction_order(self):
        ring = ContentKeyRing(capacity=2)
        ring.offer(self.key(5))
        ring.offer(self.key(6))
        fresh = ContentKey(
            serial=5,
            key=SymmetricKey.generate(HmacDrbg(b"gen2")),
            activate_at=5 * 60.0 + SERIAL_MODULUS * 60.0,
        )
        ring.offer(fresh)
        assert ring.serials() == [6, 5]
        ring.offer(self.key(7))
        # Serial 6, now oldest, is the eviction victim -- not the
        # freshly replaced 5.
        assert not ring.has(6)
        assert ring.has(5) and ring.has(7)

    def test_stale_copy_after_wraparound_is_duplicate(self):
        """The mirror case: once the fresh generation is held, a
        straggling copy of the *old* generation is the duplicate."""
        ring = ContentKeyRing()
        fresh = ContentKey(
            serial=5,
            key=SymmetricKey.generate(HmacDrbg(b"gen2")),
            activate_at=5 * 60.0 + SERIAL_MODULUS * 60.0,
        )
        ring.offer(fresh)
        assert not ring.offer(self.key(5))
        assert ring.duplicates_discarded == 1
        assert ring.get(5) == fresh

    def test_is_duplicate_matches_offer(self):
        ring = ContentKeyRing()
        key = self.key(3)
        assert not ring.is_duplicate(3, key.activate_at)
        ring.offer(key)
        assert ring.is_duplicate(3, key.activate_at)
        assert ring.is_duplicate(3, key.activate_at - 60.0)
        assert not ring.is_duplicate(3, key.activate_at + SERIAL_MODULUS * 60.0)


@given(st.lists(st.integers(min_value=0, max_value=255), max_size=50))
@settings(max_examples=50)
def test_property_ring_never_duplicates(serials):
    ring = ContentKeyRing(capacity=300)
    drbg = HmacDrbg(b"ring-prop")
    accepted = set()
    for serial in serials:
        fresh = ring.offer(
            ContentKey(serial=serial, key=SymmetricKey.generate(drbg), activate_at=0.0)
        )
        assert fresh == (serial not in accepted)
        accepted.add(serial)
    assert set(ring.serials()) == accepted

"""Tests for the User Manager and the login protocol."""

import dataclasses

import pytest

from repro.core.accounts import AccountManager, secure_hash_password
from repro.core.attributes import (
    ATTR_AS,
    ATTR_NETADDR,
    ATTR_REGION,
    ATTR_SUBSCRIPTION,
    ATTR_VERSION,
    Attribute,
    AttributeSet,
    VALUE_ANY,
)
from repro.core.protocol import Login1Request, Login2Request
from repro.core.user_manager import ChecksumParams, UserManager
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.crypto.stream import SymmetricKey
from repro.errors import (
    AccountError,
    AttestationError,
    ChallengeError,
    ProtocolError,
)
from repro.geo.database import GeoDatabase
from repro.util.wire import Decoder

IMAGE = bytes(range(256)) * 64  # 16 KiB client binary
VERSION = "4.0.5"


@pytest.fixture(scope="module")
def geo():
    return GeoDatabase()


@pytest.fixture
def accounts():
    manager = AccountManager()
    manager.register("alice@example.org", "pw")
    return manager


@pytest.fixture
def user_manager(geo, accounts):
    manager = UserManager(
        signing_key=generate_keypair(HmacDrbg(b"um-key"), bits=512),
        farm_secret=b"um-farm-secret-0123456789abcdef0",
        drbg=HmacDrbg(b"um-runtime"),
        geo=geo,
        min_version="4.0.0",
    )
    manager.register_client_image(VERSION, IMAGE)
    accounts.add_listener(manager.sync_account)
    for account in accounts.all_accounts():
        manager.sync_account(account)
    return manager


@pytest.fixture
def client_key():
    return generate_keypair(HmacDrbg(b"login-client"), bits=512)


def perform_login(
    user_manager,
    client_key,
    email="alice@example.org",
    password="pw",
    image=IMAGE,
    version=VERSION,
    addr="11.1.2.3",
    now=0.0,
    tamper_nonce=False,
):
    """Drive both login rounds the way a client would."""
    response1 = user_manager.login1(
        Login1Request(email=email, client_public_key=client_key.public_key), now
    )
    shp = secure_hash_password(email, password)
    blob = SymmetricKey(material=shp[:16]).decrypt(
        response1.encrypted_blob, nonce=response1.blob_nonce, aad=b"login1"
    )
    dec = Decoder(blob)
    nonce = dec.get_bytes()
    params = ChecksumParams(salt=dec.get_bytes(), offset_seed=dec.get_u32(), length=dec.get_u32())
    dec.get_f64()  # server time
    if tamper_nonce:
        nonce = bytes(len(nonce))
    checksum = params.compute(image)
    payload = nonce + checksum + version.encode()
    return user_manager.login2(
        Login2Request(
            email=email,
            client_public_key=client_key.public_key,
            token=response1.token,
            nonce=nonce,
            checksum=checksum,
            version=version,
            signature=client_key.sign(payload),
        ),
        observed_addr=addr,
        now=now,
    )


class TestLoginHappyPath:
    def test_login_issues_verified_ticket(self, user_manager, client_key, geo):
        response = perform_login(user_manager, client_key)
        ticket = response.ticket
        ticket.verify(user_manager.public_key, now=0.0)
        assert ticket.client_public_key == client_key.public_key
        assert ticket.net_addr == "11.1.2.3"

    def test_standard_attributes_present(self, user_manager, client_key, geo):
        addr = geo.random_address("DE", __import__("random").Random(1))
        ticket = perform_login(user_manager, client_key, addr=addr).ticket
        names = {a.name for a in ticket.attributes}
        assert {ATTR_NETADDR, ATTR_REGION, ATTR_AS, ATTR_VERSION} <= names
        assert ticket.attributes.first_value(ATTR_REGION) == "DE"

    def test_ticket_lifetime_default(self, user_manager, client_key):
        ticket = perform_login(user_manager, client_key, now=100.0).ticket
        assert ticket.start_time == 100.0
        assert ticket.expire_time == 100.0 + user_manager.ticket_lifetime

    def test_logins_counted(self, user_manager, client_key):
        perform_login(user_manager, client_key)
        perform_login(user_manager, client_key)
        assert user_manager.logins_issued == 2

    def test_nonce_never_in_cleartext_response(self, user_manager, client_key):
        """The LOGIN1 token carries only a commitment, not the nonce."""
        response1 = user_manager.login1(
            Login1Request(email="alice@example.org", client_public_key=client_key.public_key),
            0.0,
        )
        shp = secure_hash_password("alice@example.org", "pw")
        blob = SymmetricKey(material=shp[:16]).decrypt(
            response1.encrypted_blob, nonce=response1.blob_nonce, aad=b"login1"
        )
        nonce = Decoder(blob).get_bytes()
        assert nonce not in response1.token.to_bytes()


class TestLoginFailures:
    def test_unknown_user(self, user_manager, client_key):
        with pytest.raises(AccountError):
            user_manager.login1(
                Login1Request(email="ghost@example.org", client_public_key=client_key.public_key),
                0.0,
            )

    def test_wrong_password_cannot_recover_nonce(self, user_manager, client_key):
        """A wrong password fails at blob decryption (integrity tag)."""
        from repro.errors import DecryptionError

        with pytest.raises(DecryptionError):
            perform_login(user_manager, client_key, password="wrong")

    def test_tampered_nonce_rejected(self, user_manager, client_key):
        with pytest.raises(ChallengeError):
            perform_login(user_manager, client_key, tamper_nonce=True)

    def test_modified_client_image_fails_attestation(self, user_manager, client_key):
        # Flip every byte: the checksum samples a server-chosen window,
        # so a single-byte patch could fall outside it (the partial-
        # checksum weakness the paper itself concedes in footnote 4).
        tampered = bytes(b ^ 0xFF for b in IMAGE)
        with pytest.raises(AttestationError):
            perform_login(user_manager, client_key, image=tampered)

    def test_single_byte_patch_caught_when_inside_window(self, user_manager, client_key):
        """A patch inside the sampled window is detected; the server
        randomizes the window per login, so repeated logins catch
        patches probabilistically."""
        caught = 0
        for attempt in range(8):
            tampered = bytearray(IMAGE)
            tampered[attempt * 2048] ^= 0xFF
            try:
                perform_login(user_manager, client_key, image=bytes(tampered), now=float(attempt))
            except AttestationError:
                caught += 1
        assert caught >= 1

    def test_unknown_version_fails_attestation(self, user_manager, client_key):
        with pytest.raises(AttestationError):
            perform_login(user_manager, client_key, version="9.9.9")

    def test_version_below_minimum_rejected(self, user_manager, client_key):
        user_manager.register_client_image("3.0.0", IMAGE)
        with pytest.raises(ProtocolError):
            perform_login(user_manager, client_key, version="3.0.0")

    def test_suspended_account_rejected(self, user_manager, accounts, client_key):
        accounts.suspend("alice@example.org")
        with pytest.raises(AccountError):
            perform_login(user_manager, client_key)

    def test_stale_token_rejected(self, user_manager, client_key):
        response1 = user_manager.login1(
            Login1Request(email="alice@example.org", client_public_key=client_key.public_key),
            0.0,
        )
        shp = secure_hash_password("alice@example.org", "pw")
        blob = SymmetricKey(material=shp[:16]).decrypt(
            response1.encrypted_blob, nonce=response1.blob_nonce, aad=b"login1"
        )
        dec = Decoder(blob)
        nonce = dec.get_bytes()
        params = ChecksumParams(dec.get_bytes(), dec.get_u32(), dec.get_u32())
        checksum = params.compute(IMAGE)
        payload = nonce + checksum + VERSION.encode()
        request = Login2Request(
            email="alice@example.org",
            client_public_key=client_key.public_key,
            token=response1.token,
            nonce=nonce,
            checksum=checksum,
            version=VERSION,
            signature=client_key.sign(payload),
        )
        with pytest.raises(ChallengeError):
            user_manager.login2(request, observed_addr="11.1.2.3", now=120.0)

    def test_signature_by_other_key_rejected(self, user_manager, client_key):
        """An attacker substituting its own pubkey in LOGIN2 still fails:
        the signature must match the presented key AND the nonce only
        decrypts with the password."""
        attacker = generate_keypair(HmacDrbg(b"attacker-key"), bits=512)
        response1 = user_manager.login1(
            Login1Request(email="alice@example.org", client_public_key=client_key.public_key),
            0.0,
        )
        shp = secure_hash_password("alice@example.org", "pw")
        blob = SymmetricKey(material=shp[:16]).decrypt(
            response1.encrypted_blob, nonce=response1.blob_nonce, aad=b"login1"
        )
        dec = Decoder(blob)
        nonce = dec.get_bytes()
        params = ChecksumParams(dec.get_bytes(), dec.get_u32(), dec.get_u32())
        checksum = params.compute(IMAGE)
        payload = nonce + checksum + VERSION.encode()
        request = Login2Request(
            email="alice@example.org",
            client_public_key=client_key.public_key,  # claims alice's key
            token=response1.token,
            nonce=nonce,
            checksum=checksum,
            version=VERSION,
            signature=attacker.sign(payload),  # signs with its own
        )
        with pytest.raises(ChallengeError):
            user_manager.login2(request, observed_addr="11.1.2.3", now=1.0)


class TestAttributeGeneration:
    def test_subscription_attributes_with_windows(self, user_manager, accounts, client_key):
        accounts.subscribe("alice@example.org", "101", stime=0.0, etime=500.0)
        ticket = perform_login(user_manager, client_key, now=10.0).ticket
        subs = ticket.attributes.named(ATTR_SUBSCRIPTION)
        assert [s.value for s in subs] == ["101"]
        assert subs[0].etime == 500.0

    def test_lapsed_subscription_not_included(self, user_manager, accounts, client_key):
        accounts.subscribe("alice@example.org", "101", etime=5.0)
        ticket = perform_login(user_manager, client_key, now=10.0).ticket
        assert ticket.attributes.named(ATTR_SUBSCRIPTION) == []

    def test_ticket_expiry_capped_by_soonest_attribute(self, user_manager, accounts, client_key):
        """Section IV-B: ticket expiry <= soonest attribute etime."""
        accounts.subscribe("alice@example.org", "101", etime=60.0)
        ticket = perform_login(user_manager, client_key, now=10.0).ticket
        assert ticket.expire_time == 60.0

    def test_utime_stamped_from_channel_attribute_list(self, user_manager, client_key, geo):
        addr = geo.random_address("CH", __import__("random").Random(2))
        attribute_list = AttributeSet([Attribute(name=ATTR_REGION, value="CH", utime=77.0)])
        user_manager.receive_channel_attribute_list(attribute_list)
        ticket = perform_login(user_manager, client_key, addr=addr).ticket
        region = ticket.attributes.named(ATTR_REGION)[0]
        assert region.utime == 77.0

    def test_special_value_utime_propagates(self, user_manager, client_key, geo):
        """A Region=ANY channel attribute (blackout) bumps all Region utimes."""
        addr = geo.random_address("CH", __import__("random").Random(3))
        attribute_list = AttributeSet([
            Attribute(name=ATTR_REGION, value=VALUE_ANY, utime=99.0),
            Attribute(name=ATTR_REGION, value="CH", utime=10.0),
        ])
        user_manager.receive_channel_attribute_list(attribute_list)
        ticket = perform_login(user_manager, client_key, addr=addr).ticket
        assert ticket.attributes.named(ATTR_REGION)[0].utime == 99.0


class TestUserDb:
    def test_user_ids_unique_and_stable(self, user_manager, accounts, client_key):
        accounts.register("bob@example.org", "pw")
        alice = user_manager.user_by_email("alice@example.org")
        bob = user_manager.user_by_email("bob@example.org")
        assert alice.user_id != bob.user_id
        # Re-sync does not reassign.
        user_manager.sync_account(accounts.get("alice@example.org"))
        assert user_manager.user_by_email("alice@example.org").user_id == alice.user_id

    def test_strided_id_spaces(self, geo):
        managers = [
            UserManager(
                signing_key=generate_keypair(HmacDrbg(f"k{i}".encode()), bits=512),
                farm_secret=b"farm-secret-0123456789abcdef0123",
                drbg=HmacDrbg(f"d{i}".encode()),
                geo=geo,
                user_id_start=i + 1,
                user_id_stride=2,
            )
            for i in range(2)
        ]
        accounts = AccountManager()
        ids = []
        for i in range(4):
            account = accounts.register(f"user{i}@example.org", "pw")
            ids.append(managers[i % 2].sync_account(account).user_id)
        assert len(set(ids)) == 4

    def test_user_count(self, user_manager):
        assert user_manager.user_count() == 1


class TestChecksumParams:
    def test_deterministic(self):
        params = ChecksumParams(salt=b"12345678", offset_seed=1000, length=64)
        assert params.compute(IMAGE) == params.compute(IMAGE)

    def test_offset_wraps_safely_on_short_images(self):
        params = ChecksumParams(salt=b"12345678", offset_seed=10**9, length=4096)
        short = b"tiny client"
        assert params.compute(short)  # must not raise

    def test_empty_image_rejected(self):
        params = ChecksumParams(salt=b"12345678", offset_seed=0, length=64)
        with pytest.raises(AttestationError):
            params.compute(b"")

    def test_different_params_different_checksums(self):
        a = ChecksumParams(salt=b"aaaaaaaa", offset_seed=0, length=64)
        b = ChecksumParams(salt=b"bbbbbbbb", offset_seed=0, length=64)
        assert a.compute(IMAGE) != b.compute(IMAGE)

"""Tests for the bounded LRU ticket-verification cache."""

import dataclasses

import pytest

from repro.core.attributes import Attribute, AttributeSet
from repro.core.ticket_cache import TicketVerificationCache
from repro.core.tickets import UserTicket
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.errors import SignatureError
from repro.metrics.hotpath import counters


@pytest.fixture(scope="module")
def manager_key():
    return generate_keypair(HmacDrbg(b"cache-manager"), bits=512)


@pytest.fixture(scope="module")
def other_key():
    return generate_keypair(HmacDrbg(b"cache-other"), bits=512)


@pytest.fixture(scope="module")
def client_key():
    return generate_keypair(HmacDrbg(b"cache-client"), bits=512)


@pytest.fixture
def user_ticket(manager_key, client_key):
    attributes = AttributeSet([Attribute(name="Region", value="CH")])
    return UserTicket(
        user_id=7,
        client_public_key=client_key.public_key,
        start_time=0.0,
        expire_time=1800.0,
        attributes=attributes,
    ).signed(manager_key)


class TestCacheMechanics:
    def test_miss_then_hit(self, manager_key):
        cache = TicketVerificationCache(maxsize=4)
        public = manager_key.public_key
        assert not cache.seen(public, b"body", b"sig")
        cache.remember(public, b"body", b"sig")
        assert cache.seen(public, b"body", b"sig")
        assert len(cache) == 1

    def test_any_component_change_misses(self, manager_key, other_key):
        cache = TicketVerificationCache(maxsize=4)
        cache.remember(manager_key.public_key, b"body", b"sig")
        assert not cache.seen(other_key.public_key, b"body", b"sig")
        assert not cache.seen(manager_key.public_key, b"Body", b"sig")
        assert not cache.seen(manager_key.public_key, b"body", b"gis")

    def test_lru_eviction_order(self, manager_key):
        cache = TicketVerificationCache(maxsize=2)
        public = manager_key.public_key
        cache.remember(public, b"a", b"s")
        cache.remember(public, b"b", b"s")
        # Touch "a" so "b" becomes least recently used.
        assert cache.seen(public, b"a", b"s")
        cache.remember(public, b"c", b"s")
        assert len(cache) == 2
        assert cache.seen(public, b"a", b"s")
        assert not cache.seen(public, b"b", b"s")
        assert cache.seen(public, b"c", b"s")

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError):
            TicketVerificationCache(maxsize=0)

    def test_counters_track_hits_and_misses(self, manager_key):
        counters.reset()
        cache = TicketVerificationCache(maxsize=4)
        public = manager_key.public_key
        cache.seen(public, b"x", b"s")
        cache.remember(public, b"x", b"s")
        cache.seen(public, b"x", b"s")
        assert counters.ticket_cache_misses == 1
        assert counters.ticket_cache_hits == 1
        assert counters.ticket_cache_hit_rate == 0.5
        counters.reset()


class TestTicketVerifyWithCache:
    def test_repeat_verify_skips_rsa(self, user_ticket, manager_key):
        cache = TicketVerificationCache(maxsize=4)
        counters.reset()
        user_ticket.verify(manager_key.public_key, now=500.0, cache=cache)
        assert counters.rsa_verifies == 1
        user_ticket.verify(manager_key.public_key, now=500.0, cache=cache)
        user_ticket.verify(manager_key.public_key, now=600.0, cache=cache)
        assert counters.rsa_verifies == 1  # cached; no further modexp
        assert counters.ticket_cache_hits == 2
        counters.reset()

    def test_forgery_never_cached(self, user_ticket, manager_key):
        cache = TicketVerificationCache(maxsize=4)
        forged = dataclasses.replace(user_ticket, signature=b"\x01" * 64)
        for _ in range(2):
            with pytest.raises(SignatureError):
                forged.verify(manager_key.public_key, now=500.0, cache=cache)
        assert len(cache) == 0

    def test_cache_respects_issuer_key(self, user_ticket, manager_key, other_key):
        # A triple cached under one issuer must not satisfy another.
        cache = TicketVerificationCache(maxsize=4)
        user_ticket.verify(manager_key.public_key, now=500.0, cache=cache)
        with pytest.raises(SignatureError):
            user_ticket.verify(other_key.public_key, now=500.0, cache=cache)

    def test_time_window_checks_still_run_on_hits(self, user_ticket, manager_key):
        from repro.errors import TicketExpiredError

        cache = TicketVerificationCache(maxsize=4)
        user_ticket.verify(manager_key.public_key, now=500.0, cache=cache)
        with pytest.raises(TicketExpiredError):
            user_ticket.verify(manager_key.public_key, now=5000.0, cache=cache)

    def test_body_bytes_memoized(self, user_ticket):
        assert user_ticket.body_bytes() is user_ticket.body_bytes()

"""Tests for the stateless nonce-challenge machinery."""

import pytest

from repro.core.challenge import Challenge, ChallengeIssuer, answer_challenge
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.errors import ChallengeError


@pytest.fixture(scope="module")
def client_key():
    return generate_keypair(HmacDrbg(b"challenge-client"), bits=512)


@pytest.fixture
def issuer():
    return ChallengeIssuer(b"farm-secret-0123456789abcdef", HmacDrbg(b"issuer"))


class TestIssuance:
    def test_tokens_are_unique(self, issuer):
        a = issuer.issue("alice", now=0.0)
        b = issuer.issue("alice", now=0.0)
        assert a.nonce != b.nonce

    def test_short_secret_rejected(self):
        with pytest.raises(ValueError):
            ChallengeIssuer(b"short", HmacDrbg(b"x"))

    def test_token_roundtrip(self, issuer):
        token = issuer.issue("alice", now=5.0)
        restored = Challenge.from_bytes(token.to_bytes())
        assert restored == token

    def test_malformed_token_rejected(self):
        with pytest.raises(ChallengeError):
            Challenge.from_bytes(b"garbage")


class TestValidation:
    def test_valid_token_accepted(self, issuer):
        token = issuer.issue("alice", now=0.0)
        issuer.validate_token(token, "alice", now=10.0)

    def test_cross_instance_validation(self):
        """Two farm instances sharing the secret accept each other's tokens.

        This is the statelessness property of Section V: LOGIN1 and
        LOGIN2 may land on different physical servers.
        """
        secret = b"shared-farm-secret-0123456789ab"
        instance_a = ChallengeIssuer(secret, HmacDrbg(b"a"))
        instance_b = ChallengeIssuer(secret, HmacDrbg(b"b"))
        token = instance_a.issue("alice", now=0.0)
        instance_b.validate_token(token, "alice", now=1.0)

    def test_foreign_farm_rejected(self, issuer):
        other = ChallengeIssuer(b"different-secret-0123456789abcd", HmacDrbg(b"o"))
        token = other.issue("alice", now=0.0)
        with pytest.raises(ChallengeError):
            issuer.validate_token(token, "alice", now=1.0)

    def test_subject_binding(self, issuer):
        token = issuer.issue("alice", now=0.0)
        with pytest.raises(ChallengeError):
            issuer.validate_token(token, "mallory", now=1.0)

    def test_expiry(self, issuer):
        token = issuer.issue("alice", now=0.0)
        issuer.validate_token(token, "alice", now=59.0)
        with pytest.raises(ChallengeError):
            issuer.validate_token(token, "alice", now=61.0)

    def test_future_token_rejected(self, issuer):
        token = issuer.issue("alice", now=100.0)
        with pytest.raises(ChallengeError):
            issuer.validate_token(token, "alice", now=50.0)

    def test_tampered_nonce_rejected(self, issuer):
        token = issuer.issue("alice", now=0.0)
        forged = Challenge(
            subject=token.subject,
            nonce=b"\x00" * len(token.nonce),
            issued_at=token.issued_at,
            mac=token.mac,
        )
        with pytest.raises(ChallengeError):
            issuer.validate_token(forged, "alice", now=1.0)


class TestResponseVerification:
    def test_correct_response_accepted(self, issuer, client_key):
        token = issuer.issue("alice", now=0.0)
        signature = answer_challenge(token, client_key)
        issuer.verify_response(token, "alice", signature, client_key.public_key, now=1.0)

    def test_wrong_key_rejected(self, issuer, client_key):
        attacker_key = generate_keypair(HmacDrbg(b"attacker"), bits=512)
        token = issuer.issue("alice", now=0.0)
        signature = answer_challenge(token, attacker_key)
        with pytest.raises(ChallengeError):
            issuer.verify_response(
                token, "alice", signature, client_key.public_key, now=1.0
            )

    def test_extra_data_binding(self, issuer, client_key):
        token = issuer.issue("alice", now=0.0)
        signature = answer_challenge(token, client_key, extra=b"checksum")
        issuer.verify_response(
            token, "alice", signature, client_key.public_key, now=1.0, extra=b"checksum"
        )
        with pytest.raises(ChallengeError):
            issuer.verify_response(
                token, "alice", signature, client_key.public_key, now=1.0, extra=b"other"
            )

    def test_replayed_response_to_new_token_fails(self, issuer, client_key):
        """A captured response answers only its own nonce."""
        token1 = issuer.issue("alice", now=0.0)
        captured = answer_challenge(token1, client_key)
        token2 = issuer.issue("alice", now=1.0)
        with pytest.raises(ChallengeError):
            issuer.verify_response(
                token2, "alice", captured, client_key.public_key, now=2.0
            )

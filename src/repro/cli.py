"""Command-line interface: ``python -m repro <command>``.

Commands:

``week``       simulate the measurement week, print Figs. 5 & 6
``calibrate``  microbenchmark the functional handlers (service times)
``ablations``  print the A1-A5 ablation tables
``demo``       a compact end-to-end walk-through of Fig. 1
``threats``    run the Section IV-G scenarios and report outcomes
``store``      inspect / verify / compact an on-disk durable store
``trace``      run a traced switch storm / report a saved span buffer
``chaos``      run failure-injection scenarios / report a saved run
``storm``      sharded switch storm across worker processes (repro.parallel)

Each command is a thin wrapper over the library -- everything the CLI
prints is available programmatically from :mod:`repro.experiments`.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional


def _cmd_week(args: argparse.Namespace) -> int:
    from repro.experiments import fig5, fig6
    from repro.experiments.common import WeeklongConfig
    from repro.experiments.weeklong import WeeklongRunner

    config = WeeklongConfig(peak_concurrent=args.peak, n_channels=args.channels)
    print(f"simulating one week at peak {config.peak_concurrent} concurrent ...")
    result = WeeklongRunner(config).run()
    print(f"{len(result.trace.sessions)} sessions, "
          f"{len(result.trace.events)} protocol operations\n")
    for panel in ("a-login", "b-switch", "c-join"):
        print(fig5.render_panel(result, panel))
        print()
    print(fig5.paper_comparison(result))
    print()
    for panel in ("a-login", "b-switch", "c-join"):
        print(fig6.render_panel(result, panel))
        print()
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.experiments.calibration import calibrate

    report = calibrate(repetitions=args.repetitions)
    print("measured mean service times (functional handlers, this machine):")
    for name in ("login1", "login2", "switch1", "switch2", "join_peer", "client_compute"):
        print(f"  {name:14s} {getattr(report, name) * 1000:8.3f} ms")
    print("\nfeed into simulations via "
          "WeeklongConfig(service=report.as_service_times())")
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    from repro.experiments.ablations import (
        farm_scaling,
        keydist_comparison,
        rekey_tradeoff,
        ticket_lifetime_tradeoff,
        traditional_comparison,
    )
    from repro.metrics.reporting import format_table

    rng = random.Random(args.seed)

    print("A1 - manager farm scaling under a flash crowd")
    rows = [
        (p.n_servers, f"{p.mean_wait * 1000:.1f}", f"{p.p95_wait * 1000:.1f}", p.max_queue)
        for p in farm_scaling(rng, arrivals=5000)
    ]
    print(format_table(["servers", "mean wait (ms)", "p95 wait (ms)", "max queue"], rows))

    print("\nA2 - key distribution: central fetch vs P2P push")
    rows = [
        (r.clients, r.central_requests_per_rekey, f"{r.central_p99_wait:.3f}",
         r.push_server_messages, r.push_depth, f"{r.push_propagation:.3f}")
        for r in keydist_comparison(rng)
    ]
    print(format_table(
        ["audience", "central req/rekey", "central p99 (s)",
         "push infra msgs", "push depth", "push prop (s)"], rows))

    print("\nA3 - traditional vs event licensing (servers for 3 s SLA)")
    rows = [
        (r.arrivals, r.traditional_servers_for_sla, r.ours_servers_for_sla)
        for r in traditional_comparison(rng, audiences=(1000, 5000))
    ]
    print(format_table(["audience", "traditional", "ours"], rows))

    print("\nA4 - re-key interval")
    rows = [(r.epoch, r.keys_per_hour, f"{r.exposure_window:.0f}s") for r in rekey_tradeoff()]
    print(format_table(["epoch (s)", "keys/hour/link", "leak exposure"], rows))

    print("\nA5 - ticket lifetime")
    rows = [
        (r.lifetime, f"{r.renewals_per_viewer_hour:.1f}",
         f"{r.blackout_lead_time:.0f}s")
        for r in ticket_lifetime_tradeoff()
    ]
    print(format_table(["lifetime (s)", "renewals/viewer-hour", "blackout lead"], rows))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import Deployment

    deployment = Deployment(seed=args.seed)
    deployment.add_free_channel("demo", regions=["CH", "DE"])
    tracer = deployment.enable_tracing() if args.traced else None
    client = deployment.create_client("demo@example.org", "pw", region="CH")
    ticket = client.login(now=0.0)
    print(f"logged in: UserIN={ticket.user_id}, "
          f"attributes={[(a.name, a.value) for a in ticket.attributes]}")
    peer = deployment.watch(client, "demo", now=1.0)
    print(f"watching 'demo' as {peer.peer_id}; parents={list(client.parents)}")
    source = deployment.overlay("demo").source
    source.broadcast_packet(10.0)
    source.tick(55.0)
    source.broadcast_packet(65.0)
    print(f"decrypted {client.packets_decrypted} packets across a key rotation "
          f"({client.decrypt_failures} failures)")
    if tracer is not None:
        from repro.trace import render_report, render_tree

        print()
        print(render_report(tracer.spans))
        print()
        print(render_tree(tracer.spans))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.trace import load_spans, render_report, render_tree

    if args.action == "report":
        spans = load_spans(args.path)
        print(render_report(spans))
        if args.tree:
            print()
            print(render_tree(spans, trace_id=args.trace_id))
        return 0

    if args.action == "storm":
        from repro.trace.storm import run_switch_storm

        result = run_switch_storm(clients=args.clients, seed=args.seed)
        print(f"storm done at t={result.sim.now:.1f}s: {result.counts}")
        if result.errors:
            print(f"errors: {[type(e).__name__ for e in result.errors]}")
        spans = result.tracer.spans
        if args.out:
            count = result.tracer.save(args.out)
            print(f"saved {count} spans to {args.out}")
        print()
        print(render_report(spans))
        print()
        print(render_tree(spans, trace_id=args.trace_id))
        if not spans:
            # The CI smoke test keys on this: a traced storm that
            # records nothing means the propagation plumbing broke.
            print("error: traced storm recorded no spans", file=sys.stderr)
            return 1
        return 0
    raise AssertionError(f"unknown action {args.action!r}")


def _format_store_report(path: str, report) -> str:
    lines = [f"store: {path}"]
    if report.snapshot_seq is None:
        lines.append("  snapshot: none")
    else:
        lines.append(
            f"  snapshot: seq {report.snapshot_seq}, {report.snapshot_bytes} bytes, "
            f"taken at t={report.snapshot_taken_at}"
            + (f" (age {report.snapshot_age:.1f}s)" if report.snapshot_age is not None else "")
        )
    lines.append(
        f"  wal: {report.wal_records} records, {report.wal_bytes} bytes"
        f" ({report.covered_records} covered by the snapshot)"
    )
    if report.torn_bytes:
        lines.append(f"  torn tail: {report.torn_bytes} bytes")
    for problem in report.problems:
        lines.append(f"  PROBLEM: {problem}")
    lines.append(f"  status: {'healthy' if report.healthy else 'NEEDS ATTENTION'}")
    return "\n".join(lines)


def _cmd_store(args: argparse.Namespace) -> int:
    import os

    from repro.store import DurableStore, FileBackend, StoreError

    if not os.path.isdir(args.path):
        # FileBackend would happily create the directory -- right for a
        # manager starting fresh, wrong for a maintenance tool: a typo'd
        # path must not become an empty "healthy" store.
        print(f"error: no store directory at {args.path}", file=sys.stderr)
        return 2
    try:
        store = DurableStore(FileBackend(args.path))
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.action == "inspect":
        report = store.verify()
        print(_format_store_report(args.path, report))
        counts: dict = {}
        from repro.store import scan
        from repro.store.store import WAL_NAME

        for record in scan(store._backend.read(WAL_NAME)).records:
            counts[record.rec_type] = counts.get(record.rec_type, 0) + 1
        if counts:
            print("  record types:")
            for rec_type in sorted(counts):
                print(f"    type {rec_type}: {counts[rec_type]}")
        return 0
    if args.action == "verify":
        report = store.verify()
        print(_format_store_report(args.path, report))
        return 0 if report.healthy else 1
    if args.action == "compact":
        before = store.wal_bytes()
        report = store.compact()
        print(f"compacted: {before} -> {report.wal_bytes} WAL bytes")
        print(_format_store_report(args.path, report))
        return 0 if report.healthy else 1
    raise AssertionError(f"unknown action {args.action!r}")


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.sim.chaos import (
        SCENARIOS, ChaosConfig, load_result, render_result, run_scenario,
    )

    if args.action == "report":
        result = load_result(args.path)
        print(render_result(result))
        return 0 if result.passed else 1

    if args.action == "run":
        names = list(SCENARIOS) if args.scenario == "all" else [args.scenario]
        config = ChaosConfig(seed=args.seed, clients=args.clients)
        failed = 0
        for index, name in enumerate(names):
            result = run_scenario(name, config)
            if index:
                print()
            print(render_result(result))
            if args.out:
                path = args.out if len(names) == 1 else f"{args.out}.{name}.json"
                result.save(path)
                print(f"  saved to {path}")
            if not result.passed:
                failed += 1
        if failed:
            # The CI smoke job keys on this exit code: an invariant
            # violation under injected faults must fail the build.
            print(f"error: {failed} scenario(s) failed", file=sys.stderr)
            return 1
        return 0
    raise AssertionError(f"unknown action {args.action!r}")


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro.deployment import Deployment
    from repro.metrics.reporting import format_table
    from repro.sharding import directory_state_violations, plan_movement

    partitions = tuple(f"part-{i}" for i in range(args.partitions))
    deployment = Deployment(
        seed=args.seed, n_domains=args.domains, partitions=partitions
    )
    channels = [f"channel-{i:03d}" for i in range(args.channels)]
    emails = [f"user{i:05d}@example.org" for i in range(args.users)]
    for email in emails:
        deployment.accounts.register(email, f"pw-{email}")
    runtime = deployment.enable_sharding(vnodes=args.vnodes)
    for channel_id in channels:
        deployment.add_free_channel(channel_id, regions=["CH"])

    if args.action == "plan":
        print(
            f"ring placement: {args.users} users over {args.domains} domain(s), "
            f"{args.channels} channels over {args.partitions} partition(s), "
            f"vnodes={runtime.vnodes}"
        )
        load = runtime.user_directory.ring.load(emails)
        rows = [
            (shard, count, f"{count / max(1, args.users):.1%}")
            for shard, count in sorted(load.items())
        ]
        print(format_table(["user shard", "keys", "share"], rows))
        print()
        cload = runtime.channel_directory.ring.load(channels)
        rows = [
            (shard, count, f"{count / max(1, args.channels):.1%}")
            for shard, count in sorted(cload.items())
        ]
        print(format_table(["channel shard", "keys", "share"], rows))

        for kind, add, ring, keys in (
            ("user", args.add_um, runtime.user_directory.ring, emails),
            ("channel", args.add_cm, runtime.channel_directory.ring, channels),
        ):
            if not add:
                continue
            after = ring.copy()
            new_names = [f"new-{kind}-{j}" for j in range(add)]
            for name in new_names:
                after.add_node(name)
            movement = plan_movement(ring, after, keys)
            ideal = add / max(1, len(after))
            print()
            print(
                f"adding {add} {kind} shard(s): {movement.moved_count} of "
                f"{movement.total_keys} keys move "
                f"({movement.moved_fraction:.1%}; ideal minimum {ideal:.1%})"
            )
            for name in new_names:
                print(f"  -> {name}: {len(movement.moved_to(name))} keys")
        return 0

    if args.action == "rebalance":
        if args.add_um:
            added = deployment.add_user_manager_shards(args.add_um)
            print(f"resharded in user shard(s): {', '.join(added)}")
        if args.add_cm:
            added = deployment.add_channel_manager_shards(args.add_cm)
            print(f"resharded in channel shard(s): {', '.join(added)}")
        if not args.add_um and not args.add_cm:
            print("nothing to do (pass --add-um/--add-cm)", file=sys.stderr)
            return 2
        counters = runtime.counters.snapshot()
        print(
            f"  keys moved: {counters['keys_moved']}, "
            f"migration bytes: {counters['migration_bytes']}, "
            f"migrations: {counters['migrations_completed']} completed / "
            f"{counters['migrations_rolled_back']} rolled back, "
            f"replayed operations: {counters['replayed_operations']}"
        )
        # fall through to the status dump + invariant check

    for email in emails:  # populate per-shard load tallies
        runtime.user_directory.shard_for(email)
    for channel_id in channels:
        runtime.channel_directory.shard_for(channel_id)

    status = runtime.status()
    for key in ("user_directory", "channel_directory"):
        dump = status[key]
        print(f"{dump['kind']} directory: {len(dump['shards'])} shard(s), "
              f"vnodes={dump['vnodes']}, {dump['lookups']} lookups")
        rows = [(shard, dump["load"].get(shard, 0)) for shard in dump["shards"]]
        print(format_table(["shard", "lookups"], rows))
        if dump["pins"]:
            print(f"  pins: {dump['pins']}")
        if dump["frozen"]:
            print(f"  FROZEN (mid-reshard): {len(dump['frozen'])} keys")
        print()
    viewing = status["viewing"]
    rows = [
        (name, viewing["entries"].get(name, 0))
        for name in sorted(viewing["partitions"])
    ]
    print(format_table(["viewing partition", "entries"], rows))

    violations = directory_state_violations(deployment, runtime)
    if viewing["misplaced_users"]:
        violations.append(
            f"viewing histories off their owning partition: {viewing['misplaced_users']}"
        )
    if violations:
        print(f"\nerror: {len(violations)} invariant violation(s):", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print("\ninvariants: OK (directory state complete, viewing log partitioned by owner)")
    return 0


def _cmd_storm(args: argparse.Namespace) -> int:
    from repro.parallel import ShardStormConfig, run_sharded_storm

    config = ShardStormConfig(
        shards=args.shards,
        clients_per_shard=args.clients,
        seed=args.seed,
        horizon=args.horizon,
    )
    outcome = run_sharded_storm(config, workers=args.workers)
    print(
        f"sharded storm: {outcome.shards} shard(s) on {outcome.workers} "
        f"worker(s), {outcome.windows} windows, "
        f"{outcome.bridge_messages} bridge messages, "
        f"{outcome.wall_seconds:.2f}s wall"
    )
    print(f"  operations: {dict(sorted(outcome.counts.items()))}")
    busy = ", ".join(f"{b:.2f}s" for b in outcome.per_shard_busy)
    print(f"  per-shard busy: [{busy}]")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            for line in outcome.transcript:
                fh.write(line + "\n")
        print(f"  saved {len(outcome.transcript)} transcript lines to {args.out}")
    failed = False
    if outcome.errors:
        print(f"error: {len(outcome.errors)} protocol error(s):", file=sys.stderr)
        for err in outcome.errors[:10]:
            print(f"  {err}", file=sys.stderr)
        failed = True
    if args.check_determinism:
        # The CI smoke job keys on this: re-run sequentially and demand
        # byte equality, whatever worker count the first run used.
        check = run_sharded_storm(config, workers=1)
        if check.transcript == outcome.transcript:
            print(f"  determinism: sequential re-run identical "
                  f"({len(outcome.transcript)} lines)")
        else:
            print("error: sequential re-run transcript differs", file=sys.stderr)
            failed = True
    return 1 if failed else 0


def _cmd_overlay(args: argparse.Namespace) -> int:
    import json
    from dataclasses import replace

    from repro.p2p.storm import OverlayStormConfig, run_overlay_storm
    from repro.trace.report import render_join_breakdown

    base = OverlayStormConfig(
        viewers=args.viewers,
        seed=args.seed,
        event_duration=args.duration,
        ramp=args.ramp,
        mid_departure_fraction=args.churn,
        partitions=args.partitions,
        verify_index=args.verify_index,
    )
    arms = ("ranked", "uniform") if args.sampler == "both" else (args.sampler,)
    payloads = {}
    for name in arms:
        result = run_overlay_storm(replace(base, sampler=name))
        payload = result.as_dict()
        payloads[name] = payload
        join = payload["join_latency"]
        repair = payload["repair_time"]
        print(
            f"{name}: {payload['joined']} joined "
            f"({payload['join_failures']} failed), "
            f"join p50={join['p50'] * 1000:.0f}ms p99={join['p99'] * 1000:.0f}ms, "
            f"repair p50={repair['p50'] * 1000:.0f}ms "
            f"({payload['repairs_failed']} failed), "
            f"locality parent={payload['parent_locality']} "
            f"repair={payload['repair_locality']}, "
            f"depth mean={payload['mean_depth']} max={payload['max_depth']}"
        )
        sel = payload["selection"]
        print(
            f"  selection: {sel['requests']} requests "
            f"({sel['index_hits']} index, {sel['fallback_scans']} scans), "
            f"{payload['candidates_per_request']} candidates/request, "
            f"{sel['stale_entries_skipped']} stale skipped, "
            f"{sel['index_events']} index events"
            + (
                f", {payload['index_verifications']} index self-checks OK"
                if args.verify_index
                else ""
            )
        )
        print(render_join_breakdown(result.tracer.spans))
        print()
    if len(arms) == 2:
        ranked = payloads["ranked"]["join_latency"]["p99"]
        uniform = payloads["uniform"]["join_latency"]["p99"]
        verdict = "beats" if ranked < uniform else "does NOT beat"
        print(
            f"ranked {verdict} uniform on p99 join latency "
            f"({ranked * 1000:.0f}ms vs {uniform * 1000:.0f}ms)"
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payloads, fh, indent=2, sort_keys=True)
        print(f"saved metrics to {args.out}")
    return 0


def _cmd_threats(args: argparse.Namespace) -> int:
    # Delegate to the narrated playbook example logic.
    import examples.threat_playbook as playbook  # type: ignore

    playbook.main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Live-broadcast P2P DRM reproduction (ICDCS 2011)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    week = sub.add_parser("week", help="simulate the measurement week (Figs. 5-6)")
    week.add_argument("--peak", type=int, default=300)
    week.add_argument("--channels", type=int, default=40)
    week.set_defaults(func=_cmd_week)

    calibrate = sub.add_parser("calibrate", help="measure handler service times")
    calibrate.add_argument("--repetitions", type=int, default=30)
    calibrate.set_defaults(func=_cmd_calibrate)

    ablations = sub.add_parser("ablations", help="print ablation tables A1-A5")
    ablations.add_argument("--seed", type=int, default=1)
    ablations.set_defaults(func=_cmd_ablations)

    demo = sub.add_parser("demo", help="compact end-to-end walk-through")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument(
        "--traced", action="store_true",
        help="record causal spans and print the trace report afterwards",
    )
    demo.set_defaults(func=_cmd_demo)

    trace = sub.add_parser("trace", help="causal tracing tools")
    trace_sub = trace.add_subparsers(dest="action", required=True)
    trace_report = trace_sub.add_parser(
        "report", help="per-round latency breakdown from a saved span buffer"
    )
    trace_report.add_argument("path", help="JSONL span file written by Tracer.save")
    trace_report.add_argument("--tree", action="store_true", help="also dump a causal tree")
    trace_report.add_argument("--trace-id", type=int, default=None)
    trace_report.set_defaults(func=_cmd_trace)
    trace_storm = trace_sub.add_parser(
        "storm", help="run a traced switch storm (exit 1 if no spans recorded)"
    )
    trace_storm.add_argument("--clients", type=int, default=6)
    trace_storm.add_argument("--seed", type=int, default=17)
    trace_storm.add_argument("--out", default=None, help="save the span buffer as JSONL")
    trace_storm.add_argument("--trace-id", type=int, default=None)
    trace_storm.set_defaults(func=_cmd_trace)

    chaos = sub.add_parser("chaos", help="failure-injection scenario suite")
    chaos_sub = chaos.add_subparsers(dest="action", required=True)
    chaos_run = chaos_sub.add_parser(
        "run", help="run one scenario or 'all' (exit 1 on invariant violation)"
    )
    chaos_run.add_argument(
        "scenario",
        help="scenario name (manager_crash_mid_storm, rolling_restarts, "
             "partition_cm_farm, slow_station_brownout, replica_flap, "
             "shard_killed_mid_resharding) or an adversarial scenario "
             "(polluting_parents, key_withholding_parents, depth_liars, "
             "join_flood, replay_storm) or 'all'",
    )
    chaos_run.add_argument("--clients", type=int, default=8)
    chaos_run.add_argument("--seed", type=int, default=11)
    chaos_run.add_argument("--out", default=None, help="save the run result as JSON")
    chaos_run.set_defaults(func=_cmd_chaos)
    chaos_report = chaos_sub.add_parser(
        "report", help="render a saved chaos run (exit 1 if it failed)"
    )
    chaos_report.add_argument("path", help="JSON file written by chaos run --out")
    chaos_report.set_defaults(func=_cmd_chaos)

    shard = sub.add_parser("shard", help="sharded manager-tier tools")
    shard.add_argument(
        "action", choices=("plan", "status", "rebalance"),
        help="plan: ring placement + expected key movement for --add-um/"
             "--add-cm; status: directory + per-shard load (exit 1 on "
             "invariant violation); rebalance: execute the shard additions "
             "live, then verify",
    )
    shard.add_argument("--seed", type=int, default=7)
    shard.add_argument("--domains", type=int, default=2,
                       help="Authentication Domains (UM farms) to start with")
    shard.add_argument("--partitions", type=int, default=2,
                       help="Channel Listing Partitions (CM farms) to start with")
    shard.add_argument("--users", type=int, default=64)
    shard.add_argument("--channels", type=int, default=8)
    shard.add_argument("--vnodes", type=int, default=None)
    shard.add_argument("--add-um", type=int, default=0,
                       help="user shards to add (plan: simulate; rebalance: execute)")
    shard.add_argument("--add-cm", type=int, default=0,
                       help="channel shards to add (plan: simulate; rebalance: execute)")
    shard.set_defaults(func=_cmd_shard)

    storm = sub.add_parser(
        "storm", help="sharded switch storm across worker processes"
    )
    storm.add_argument("--shards", type=int, default=4)
    storm.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = sequential, same bytes)")
    storm.add_argument("--clients", type=int, default=4,
                       help="viewers per shard")
    storm.add_argument("--seed", type=int, default=29)
    storm.add_argument("--horizon", type=float, default=150.0,
                       help="virtual seconds to simulate")
    storm.add_argument("--out", default=None,
                       help="save the merged transcript as JSONL")
    storm.add_argument("--check-determinism", action="store_true",
                       help="re-run sequentially and require byte equality "
                            "(exit 1 on mismatch)")
    storm.set_defaults(func=_cmd_storm)

    overlay = sub.add_parser("overlay", help="overlay locality tools")
    overlay.add_argument(
        "action", choices=("storm",),
        help="storm: flash-crowd join storm through the real control "
             "plane, ranked vs uniform peer lists",
    )
    overlay.add_argument("--viewers", type=int, default=600)
    overlay.add_argument("--seed", type=int, default=23)
    overlay.add_argument("--sampler", choices=("ranked", "uniform", "both"),
                         default="both")
    overlay.add_argument("--duration", type=float, default=600.0,
                         help="virtual event duration, seconds")
    overlay.add_argument("--ramp", type=float, default=90.0,
                         help="arrival ramp time constant, seconds")
    overlay.add_argument("--churn", type=float, default=0.15,
                         help="fraction of viewers departing mid-event")
    overlay.add_argument("--partitions", type=int, default=1,
                         help=">1 runs the storm against the sharded manager tier")
    overlay.add_argument("--verify-index", action="store_true",
                         help="run O(n) CandidateIndex.verify_against self-checks "
                              "during the storm (smoke sizes only)")
    overlay.add_argument("--out", default=None,
                         help="save per-arm metrics as JSON")
    overlay.set_defaults(func=_cmd_overlay)

    threats = sub.add_parser("threats", help="run the threat playbook")
    threats.set_defaults(func=_cmd_threats)

    store = sub.add_parser("store", help="durable-store maintenance")
    store.add_argument(
        "action", choices=("inspect", "verify", "compact"),
        help="inspect: report + record histogram; verify: health check "
             "(exit 1 if unhealthy); compact: drop covered records and torn tail",
    )
    store.add_argument("path", help="store directory (one manager's FileBackend root)")
    store.set_defaults(func=_cmd_store)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

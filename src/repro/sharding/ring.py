"""Consistent-hash ring with virtual nodes.

Placement must satisfy three properties the flat ``hash(email) % N``
scheme of the original Redirection Manager cannot give at once:

* **deterministic across processes** -- two instances (or a process
  restarted tomorrow) must agree on every placement, so positions come
  from SHA-256, never from Python's randomized ``hash()``;
* **balanced** -- each shard owns many small arcs of the hash space
  (``vnodes`` virtual nodes per shard), so key load evens out;
* **minimal movement** -- adding or removing one shard only moves the
  keys on the arcs that shard gains or loses, about ``1/N`` of the
  space, instead of reshuffling ``(N-1)/N`` of all keys the way a
  modulus change does.

Lookups are a binary search over the sorted vnode positions:
O(log(shards * vnodes)) per key, microseconds against the
millisecond-scale RSA work behind every placement consumer.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Default virtual nodes per shard.  At 16 shards this yields 8192
#: ring points; measured placement imbalance over 10k keys stays
#: within ~10% of the mean, inside the 15% acceptance band.
DEFAULT_VNODES = 512

_POSITION_BYTES = 8


class ConsistentHashRing:
    """Deterministic key -> shard placement over a set of named shards.

    Parameters
    ----------
    vnodes:
        Virtual nodes per shard.  More vnodes means better balance and
        slower membership changes; the default suits manager farms
        (tens of shards, rare membership events).
    salt:
        Domain-separation label mixed into every hash, so the user
        ring and the channel ring of one deployment place keys
        independently.
    nodes:
        Initial shard names.
    """

    def __init__(
        self,
        vnodes: int = DEFAULT_VNODES,
        salt: bytes = b"",
        nodes: Iterable[str] = (),
    ) -> None:
        if vnodes < 1:
            raise ReproError("need at least one virtual node per shard")
        self.vnodes = vnodes
        self.salt = bytes(salt)
        self._nodes: List[str] = []
        self._positions: List[int] = []
        self._owners: List[str] = []
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add_node(self, name: str) -> None:
        """Add a shard: its vnodes claim arcs from existing shards."""
        if name in self._nodes:
            raise ReproError(f"shard already on ring: {name!r}")
        self._nodes.append(name)
        for position in self._vnode_positions(name):
            index = bisect.bisect_left(self._positions, position)
            # Position collisions between distinct shards are broken
            # by shard name so every process agrees on the owner.
            while (
                index < len(self._positions)
                and self._positions[index] == position
                and self._owners[index] < name
            ):
                index += 1
            self._positions.insert(index, position)
            self._owners.insert(index, name)

    def remove_node(self, name: str) -> None:
        """Remove a shard: its arcs fall to the next shard clockwise."""
        if name not in self._nodes:
            raise ReproError(f"shard not on ring: {name!r}")
        self._nodes.remove(name)
        keep = [
            (position, owner)
            for position, owner in zip(self._positions, self._owners)
            if owner != name
        ]
        self._positions = [position for position, _ in keep]
        self._owners = [owner for _, owner in keep]

    def nodes(self) -> List[str]:
        """Shard names, sorted (membership is a set, not an order)."""
        return sorted(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def copy(self) -> "ConsistentHashRing":
        """An independent ring with the same membership and parameters."""
        clone = ConsistentHashRing(vnodes=self.vnodes, salt=self.salt)
        clone._nodes = list(self._nodes)
        clone._positions = list(self._positions)
        clone._owners = list(self._owners)
        return clone

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def node_for(self, key: str) -> str:
        """The shard owning ``key``: first vnode clockwise of its hash."""
        if not self._positions:
            raise ReproError("ring has no shards")
        index = bisect.bisect_right(self._positions, self._key_position(key))
        if index == len(self._positions):
            index = 0  # wrap: the lowest vnode owns the top arc
        return self._owners[index]

    def placement(self, keys: Iterable[str]) -> Dict[str, str]:
        """key -> shard for every key."""
        return {key: self.node_for(key) for key in keys}

    def load(self, keys: Iterable[str]) -> Dict[str, int]:
        """Keys owned per shard (every shard present, even at zero)."""
        counts: Dict[str, int] = {name: 0 for name in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------

    def _vnode_positions(self, name: str) -> List[int]:
        encoded = name.encode("utf-8")
        return [
            self._digest_position(b"node|%s|%d" % (encoded, replica))
            for replica in range(self.vnodes)
        ]

    def _key_position(self, key: str) -> int:
        return self._digest_position(b"key|" + key.encode("utf-8"))

    def _digest_position(self, payload: bytes) -> int:
        digest = hashlib.sha256(self.salt + payload).digest()
        return int.from_bytes(digest[:_POSITION_BYTES], "big")


@dataclass(frozen=True)
class MovementPlan:
    """What a proposed membership change does to a key population."""

    #: key -> (old shard, new shard), only keys that move.
    moved: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    total_keys: int = 0

    @property
    def moved_count(self) -> int:
        return len(self.moved)

    @property
    def moved_fraction(self) -> float:
        if self.total_keys == 0:
            return 0.0
        return self.moved_count / self.total_keys

    def moved_to(self, shard: str) -> List[str]:
        """Keys landing on ``shard``, sorted for deterministic batches."""
        return sorted(
            key for key, (_src, dst) in self.moved.items() if dst == shard
        )


def plan_movement(
    before: ConsistentHashRing,
    after: ConsistentHashRing,
    keys: Iterable[str],
    overrides: Optional[Dict[str, str]] = None,
) -> MovementPlan:
    """Diff two rings over a key population.

    ``overrides`` (pinned directory entries) never move: a pin is an
    operator decision that outranks the ring on both sides.
    """
    overrides = overrides or {}
    moved: Dict[str, Tuple[str, str]] = {}
    total = 0
    for key in keys:
        total += 1
        if key in overrides:
            continue
        src = before.node_for(key)
        dst = after.node_for(key)
        if src != dst:
            moved[key] = (src, dst)
    return MovementPlan(moved=moved, total_keys=total)

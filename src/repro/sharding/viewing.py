"""The viewing activity log, partitioned by user shard.

Section IV-D's one-viewing-location rule keys the viewing log by
(UserIN, channel): a renewal is granted only if the latest entry for
the pair shows the same NetAddr.  With one Channel Manager farm the
log lives inside that farm; with many farms -- and with channels
*moving* between farms during resharding -- a per-farm log breaks the
rule, because the entry a renewal must be checked against may have
been written by a different farm.

The fix is to partition the log by **user** instead of by channel: a
consistent-hash ring over user ids names the partition owning each
user's viewing history, every Channel Manager routes appends and
renewal checks to the owning partition, and moving a channel between
CM farms moves *no* viewing state at all -- the invariant survives
channel resharding by construction.  User resharding moves exactly
the moved users' partitions, which the ReshardCoordinator migrates
through the same :mod:`repro.store` machinery as the UserDB.

Partition names track Authentication Domain names (one viewing
partition per user shard), but placement hashes the UserIN -- the only
identity a Channel Ticket carries -- under its own salt.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.channel_manager import ViewingLogEntry
from repro.errors import ReproError, ShardFrozenError
from repro.metrics.sharding import ShardingCounters
from repro.sharding.ring import ConsistentHashRing
from repro.util.wire import Decoder, Encoder

#: Durable-store record types for one viewing partition.
REC_ENTRY = 1
REC_REMOVE_USER = 2


class ViewingLogPartition:
    """One user shard's slice of the viewing activity log."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._log: List[ViewingLogEntry] = []
        self._latest: Dict[Tuple[int, str], ViewingLogEntry] = {}
        self._store = None

    # ------------------------------------------------------------------
    # Log operations
    # ------------------------------------------------------------------

    def append(self, entry: ViewingLogEntry) -> None:
        if self._store is not None:
            enc = Encoder()
            entry.encode(enc)
            self._store.append(REC_ENTRY, enc.to_bytes())
        self._log.append(entry)
        self._latest[(entry.user_id, entry.channel_id)] = entry

    def latest(self, user_id: int, channel_id: str) -> Optional[ViewingLogEntry]:
        return self._latest.get((user_id, channel_id))

    def entries(self) -> List[ViewingLogEntry]:
        return list(self._log)

    def user_ids(self) -> List[int]:
        return sorted({entry.user_id for entry in self._log})

    def entries_for_user(self, user_id: int) -> List[ViewingLogEntry]:
        return [entry for entry in self._log if entry.user_id == user_id]

    def remove_user(self, user_id: int) -> List[ViewingLogEntry]:
        """Drop one user's history (it migrated away); returns it."""
        moved = self.entries_for_user(user_id)
        if moved:
            self._log = [e for e in self._log if e.user_id != user_id]
            self._latest = {
                key: entry
                for key, entry in self._latest.items()
                if key[0] != user_id
            }
            if self._store is not None:
                self._store.append(
                    REC_REMOVE_USER, Encoder().put_u64(user_id).to_bytes()
                )
        return moved

    def absorb(self, entries: Iterable[ViewingLogEntry]) -> int:
        """Take ownership of migrated entries, preserving issue order.

        Upsert semantics make a resumed migration idempotent: an entry
        already present (same user, channel, timestamp) is skipped.
        """
        absorbed = 0
        present = {
            (e.user_id, e.channel_id, e.issued_at, e.renewal) for e in self._log
        }
        for entry in sorted(entries, key=lambda e: e.issued_at):
            key = (entry.user_id, entry.channel_id, entry.issued_at, entry.renewal)
            if key in present:
                continue
            self.append(entry)
            present.add(key)
            absorbed += 1
        return absorbed

    # ------------------------------------------------------------------
    # Durability (same contract as the managers; see repro.store)
    # ------------------------------------------------------------------

    def attach_store(self, store, now: float = 0.0) -> None:
        self._store = store
        store.write_snapshot(self._snapshot_state(), taken_at=now)

    def _snapshot_state(self) -> bytes:
        enc = Encoder()
        enc.put_str(self.name)
        enc.put_u32(len(self._log))
        for entry in self._log:
            entry.encode(enc)
        return enc.to_bytes()

    def _restore_state(self, state: bytes) -> None:
        dec = Decoder(state)
        name = dec.get_str()
        if name != self.name:
            raise ReproError(
                f"store holds viewing partition {name!r}, this is {self.name!r}"
            )
        self._log = []
        self._latest = {}
        for _ in range(dec.get_u32()):
            entry = ViewingLogEntry.decode(dec)
            self._log.append(entry)
            self._latest[(entry.user_id, entry.channel_id)] = entry
        dec.finish()

    def _apply_record(self, rec_type: int, body: bytes) -> None:
        dec = Decoder(body)
        if rec_type == REC_ENTRY:
            entry = ViewingLogEntry.decode(dec)
            self._log.append(entry)
            self._latest[(entry.user_id, entry.channel_id)] = entry
        elif rec_type == REC_REMOVE_USER:
            user_id = dec.get_u64()
            self._log = [e for e in self._log if e.user_id != user_id]
            self._latest = {
                key: entry
                for key, entry in self._latest.items()
                if key[0] != user_id
            }
        else:
            raise ReproError(f"unknown viewing WAL record type {rec_type}")
        dec.finish()

    @classmethod
    def recover(cls, store, name: str) -> "ViewingLogPartition":
        """Rebuild a partition from snapshot + WAL replay."""
        partition = cls(name)
        state = store.load()
        if state.snapshot is not None:
            partition._restore_state(state.snapshot.state)
        for record in state.records:
            partition._apply_record(record.rec_type, record.body)
        partition._store = store
        return partition


class ShardedViewingLog:
    """Routes viewing-log operations to the partition owning the user.

    Installed on every Channel Manager instance via
    ``set_viewing_router``; the CMs keep their local per-partition logs
    for billing/analytics, but renewal decisions consult this router,
    which is what makes the one-location rule hold across farms.
    """

    #: Key prefix: placement hashes "uid:<UserIN>" so the viewing ring
    #: and a user ring sharing shard names still place independently.
    _KEY = "uid:{}"

    def __init__(
        self,
        vnodes: int = 512,
        counters: Optional[ShardingCounters] = None,
    ) -> None:
        self.ring = ConsistentHashRing(vnodes=vnodes, salt=b"viewing")
        self.counters = counters or ShardingCounters()
        self._partitions: Dict[str, ViewingLogPartition] = {}
        self._frozen_users: Set[int] = set()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add_partition(
        self,
        name: str,
        partition: Optional[ViewingLogPartition] = None,
        join_ring: bool = True,
    ) -> ViewingLogPartition:
        """Register a partition; with ``join_ring=False`` it is attached
        but owns no keys yet -- the migration target's state between
        copy start and cutover (the coordinator swaps in a ring that
        includes it at the commit point)."""
        if name in self._partitions:
            raise ReproError(f"viewing partition exists: {name}")
        partition = partition or ViewingLogPartition(name)
        self._partitions[name] = partition
        if join_ring:
            self.ring.add_node(name)
        return partition

    def partition(self, name: str) -> ViewingLogPartition:
        try:
            return self._partitions[name]
        except KeyError:
            raise ReproError(f"unknown viewing partition: {name}") from None

    def partitions(self) -> Dict[str, ViewingLogPartition]:
        return dict(self._partitions)

    def owner_of(self, user_id: int) -> str:
        return self.ring.node_for(self._KEY.format(user_id))

    # ------------------------------------------------------------------
    # Freeze (driven by the ReshardCoordinator for moved users)
    # ------------------------------------------------------------------

    def freeze_users(self, user_ids: Iterable[int]) -> None:
        self._frozen_users.update(user_ids)

    def thaw_users(self, user_ids: Optional[Iterable[int]] = None) -> None:
        if user_ids is None:
            self._frozen_users.clear()
        else:
            self._frozen_users.difference_update(user_ids)

    def is_frozen_user(self, user_id: int) -> bool:
        return user_id in self._frozen_users

    def frozen_users(self) -> Set[int]:
        return set(self._frozen_users)

    # ------------------------------------------------------------------
    # The router contract ChannelManager calls
    # ------------------------------------------------------------------

    def append(self, entry: ViewingLogEntry) -> str:
        """Route one issuance to the owning partition; returns its name."""
        if entry.user_id in self._frozen_users:
            self.counters.frozen_deferrals += 1
            raise ShardFrozenError(self._KEY.format(entry.user_id))
        owner = self.owner_of(entry.user_id)
        if len(self._partitions) > 1:
            # In a real deployment this hop is an RPC to the owning
            # shard; single-partition routers answer locally.
            self.counters.cross_shard_lookups += 1
        self._partitions[owner].append(entry)
        return owner

    def latest(self, user_id: int, channel_id: str) -> Optional[ViewingLogEntry]:
        """The renewal check: latest entry at the owning partition."""
        if user_id in self._frozen_users:
            self.counters.frozen_deferrals += 1
            raise ShardFrozenError(self._KEY.format(user_id))
        owner = self.owner_of(user_id)
        if len(self._partitions) > 1:
            self.counters.cross_shard_lookups += 1
        return self._partitions[owner].latest(user_id, channel_id)

    # ------------------------------------------------------------------
    # Bulk plumbing
    # ------------------------------------------------------------------

    def seed(self, entries: Iterable[ViewingLogEntry]) -> int:
        """Load pre-sharding history (e.g. a CM's local log) into the
        owning partitions, preserving issue order."""
        count = 0
        for entry in sorted(entries, key=lambda e: e.issued_at):
            self._partitions[self.owner_of(entry.user_id)].append(entry)
            count += 1
        return count

    def combined_log(self) -> List[ViewingLogEntry]:
        """Every partition's entries merged in issuance order -- the
        input :func:`~repro.sim.faults.single_location_violations`
        checks."""
        merged: List[ViewingLogEntry] = []
        for partition in self._partitions.values():
            merged.extend(partition.entries())
        merged.sort(key=lambda e: e.issued_at)
        return merged

    def misplaced_users(self) -> List[int]:
        """User ids whose history sits on a partition the ring no
        longer assigns to them -- must be empty outside a migration."""
        wrong: List[int] = []
        for name, partition in self._partitions.items():
            for user_id in partition.user_ids():
                if self.owner_of(user_id) != name:
                    wrong.append(user_id)
        return sorted(set(wrong))

"""ReshardCoordinator: live, rollback-safe shard membership changes.

The migration protocol is copy-then-commit over five phases:

1. **plan** -- diff the current ring against the proposed ring over
   the live key population; the moved key range is the plan.
2. **freeze** -- moved keys are frozen in their directories (user
   emails in the user directory, user ids in the viewing router).
   Operations on frozen keys raise
   :class:`~repro.errors.ShardFrozenError`; callers defer them to the
   coordinator for replay after cutover.  Unmoved keys -- the vast
   majority, by the ring's minimal-movement property -- are served
   throughout.
3. **migrate** -- state for the moved range is *copied* to the target
   shard in deterministic batches, journaled through the target's
   :mod:`repro.store` WAL.  The source keeps its copy: until the
   commit point the directory still names the source, so a crash of
   either side loses nothing.
4. **cutover** -- after verification, the directories atomically adopt
   the new ring, the freeze lifts, and deferred operations replay
   against the new owner.
5. **cleanup** -- only now is the moved range deleted from the source
   (journaled, so a source recovery does not resurrect it).

If the migration target dies mid-copy the coordinator **rolls back**:
freezes lift, the directory never having pointed at the target.  The
plan retains its progress and :meth:`ReshardCoordinator.resume` can
re-run it once the target recovers -- every copy step is an upsert, so
resumption over a partially-migrated store is idempotent.

Channel resharding is simpler by design: because the viewing log is
partitioned by *user* (see :mod:`repro.sharding.viewing`), re-homing a
channel between Channel Manager farms moves policy records but no
viewing state, and renewal continuity is preserved automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ReproError, ShardingError
from repro.metrics.sharding import ShardingCounters
from repro.sharding.ring import ConsistentHashRing, plan_movement
from repro.util.wire import Encoder


class MigrationAborted(ShardingError):
    """The migration target became unreachable mid-copy."""


@dataclass
class ReshardPlan:
    """One proposed membership change and its computed key movement."""

    kind: str  # "user" or "channel"
    target: str
    #: key -> (source shard, destination shard); user emails or
    #: channel ids depending on ``kind``.
    moved: Dict[str, Tuple[str, str]]
    #: The ring the directory adopts at cutover.
    ring_after: ConsistentHashRing
    #: user kind only: UserIN -> (source, destination) viewing
    #: partition, and the viewing ring adopted at cutover.
    moved_user_ids: Dict[int, Tuple[str, str]] = field(default_factory=dict)
    viewing_after: Optional[ConsistentHashRing] = None
    total_keys: int = 0
    state: str = "planned"  # planned | migrating | rolled_back | complete
    #: Keys whose copy phase finished (survives a rollback for resume).
    copied: Set[str] = field(default_factory=set)

    @property
    def moved_keys(self) -> List[str]:
        return sorted(self.moved)

    @property
    def moved_fraction(self) -> float:
        if self.total_keys == 0:
            return 0.0
        return len(self.moved) / self.total_keys


class ReshardCoordinator:
    """Executes ReshardPlans against one deployment's sharding runtime.

    ``failpoint`` (tests, chaos scenarios) is called after every
    migrated key with the number of keys copied so far; raising from
    it models a coordinator-side fault at that instant.
    """

    def __init__(self, deployment, runtime) -> None:
        self._deployment = deployment
        self._runtime = runtime
        self.counters: ShardingCounters = runtime.counters
        #: Operations deferred by callers that hit a frozen range,
        #: replayed in order after cutover.
        self._deferred: List[Callable[[], object]] = []

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan_add_user_shard(self, domain: str) -> ReshardPlan:
        """Movement for adding one Authentication Domain shard."""
        runtime = self._runtime
        before = runtime.user_directory.ring
        if domain in before:
            raise ShardingError(f"user shard already placed: {domain}")
        after = before.copy()
        after.add_node(domain)
        emails = [a.email for a in self._deployment.accounts.all_accounts()]
        movement = plan_movement(
            before, after, emails, overrides=runtime.user_directory.pins()
        )
        viewing_before = runtime.viewing.ring
        viewing_after = viewing_before.copy()
        viewing_after.add_node(domain)
        moved_uids: Dict[int, Tuple[str, str]] = {}
        for partition in runtime.viewing.partitions().values():
            for user_id in partition.user_ids():
                key = runtime.viewing._KEY.format(user_id)
                src = viewing_before.node_for(key)
                dst = viewing_after.node_for(key)
                if src != dst:
                    moved_uids[user_id] = (src, dst)
        return ReshardPlan(
            kind="user",
            target=domain,
            moved=dict(movement.moved),
            ring_after=after,
            moved_user_ids=moved_uids,
            viewing_after=viewing_after,
            total_keys=movement.total_keys,
        )

    def plan_add_channel_shard(self, partition: str) -> ReshardPlan:
        """Movement for adding one Channel Listing Partition shard."""
        runtime = self._runtime
        before = runtime.channel_directory.ring
        if partition in before:
            raise ShardingError(f"channel shard already placed: {partition}")
        after = before.copy()
        after.add_node(partition)
        channels = sorted(self._deployment.policy_manager.channel_list())
        movement = plan_movement(
            before, after, channels, overrides=runtime.channel_directory.pins()
        )
        return ReshardPlan(
            kind="channel",
            target=partition,
            moved=dict(movement.moved),
            ring_after=after,
            total_keys=movement.total_keys,
        )

    # ------------------------------------------------------------------
    # Deferred operations (callers hitting a frozen range park here)
    # ------------------------------------------------------------------

    def defer(self, operation: Callable[[], object]) -> None:
        self._deferred.append(operation)

    def _replay_deferred(self) -> None:
        deferred, self._deferred = self._deferred, []
        for operation in deferred:
            operation()
            self.counters.replayed_operations += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        plan: ReshardPlan,
        failpoint: Optional[Callable[[int], None]] = None,
        now: float = 0.0,
    ) -> ReshardPlan:
        """Run a plan through freeze -> migrate -> cutover -> cleanup."""
        if plan.state not in ("planned", "rolled_back"):
            raise ShardingError(f"plan is {plan.state}, cannot execute")
        self.counters.migrations_started += 1
        plan.state = "migrating"
        runtime = self._runtime
        try:
            if plan.kind == "user":
                self._freeze_user(plan)
                self._migrate_users(plan, failpoint)
                self._verify_users(plan)
            elif plan.kind == "channel":
                runtime.channel_directory.freeze(plan.moved_keys)
                self._migrate_channels(plan, failpoint, now)
            else:
                raise ShardingError(f"unknown plan kind {plan.kind!r}")
        except Exception:
            self._rollback(plan, now)
            raise
        self._cutover(plan)
        self._replay_deferred()
        self._cleanup(plan)
        plan.state = "complete"
        self.counters.migrations_completed += 1
        self.counters.keys_moved += len(plan.moved)
        return plan

    def resume(
        self,
        plan: ReshardPlan,
        failpoint: Optional[Callable[[int], None]] = None,
        now: float = 0.0,
    ) -> ReshardPlan:
        """Re-run a rolled-back plan; copy steps are idempotent."""
        if plan.state != "rolled_back":
            raise ShardingError(f"plan is {plan.state}, cannot resume")
        self.counters.migrations_resumed += 1
        return self.execute(plan, failpoint=failpoint, now=now)

    # ------------------------------------------------------------------
    # User-shard phases
    # ------------------------------------------------------------------

    def _target_user_manager(self, plan: ReshardPlan):
        manager = self._deployment.user_managers.get(plan.target)
        if manager is None:
            raise MigrationAborted(
                f"target shard {plan.target!r} unreachable mid-migration"
            )
        return manager

    def _freeze_user(self, plan: ReshardPlan) -> None:
        self._runtime.user_directory.freeze(plan.moved_keys)
        self._runtime.viewing.freeze_users(plan.moved_user_ids)

    def _migrate_users(
        self, plan: ReshardPlan, failpoint: Optional[Callable[[int], None]]
    ) -> None:
        """Copy UserDB rows, then viewing histories, to the target."""
        deployment = self._deployment
        copied = 0
        for email in plan.moved_keys:
            source_name, _dst = plan.moved[email]
            source = deployment.user_managers.get(source_name)
            if source is None:
                raise MigrationAborted(
                    f"source shard {source_name!r} unreachable mid-migration"
                )
            records = source.export_users([email])
            target = self._target_user_manager(plan)
            self.counters.migration_bytes += sum(
                len(self._encode_user_record(r)) for r in records
            )
            target.import_users(records)
            plan.copied.add(email)
            copied += 1
            if failpoint is not None:
                failpoint(copied)
        # Viewing histories move on the user-id ring, independently of
        # the email ring (both gained the same node).
        target_partition = self._runtime.viewing.partition(plan.target)
        for user_id in sorted(plan.moved_user_ids):
            source_name, _dst = plan.moved_user_ids[user_id]
            entries = self._runtime.viewing.partition(source_name).entries_for_user(
                user_id
            )
            if self._deployment.user_managers.get(plan.target) is None:
                raise MigrationAborted(
                    f"target shard {plan.target!r} unreachable mid-migration"
                )
            enc = Encoder()
            for entry in entries:
                entry.encode(enc)
            self.counters.migration_bytes += len(enc.to_bytes())
            target_partition.absorb(entries)
            plan.copied.add(f"uid:{user_id}")
            copied += 1
            if failpoint is not None:
                failpoint(copied)

    def _verify_users(self, plan: ReshardPlan) -> None:
        """Every moved key must be present on the target before commit."""
        target = self._target_user_manager(plan)
        for email in plan.moved_keys:
            if target.user_by_email(email) is None:
                raise MigrationAborted(
                    f"verification failed: {email!r} missing on target"
                )
        target_partition = self._runtime.viewing.partition(plan.target)
        for user_id, (source_name, _dst) in plan.moved_user_ids.items():
            source_count = len(
                self._runtime.viewing.partition(source_name).entries_for_user(user_id)
            )
            if len(target_partition.entries_for_user(user_id)) < source_count:
                raise MigrationAborted(
                    f"verification failed: viewing history of user {user_id} "
                    f"incomplete on target"
                )

    # ------------------------------------------------------------------
    # Channel-shard phases
    # ------------------------------------------------------------------

    def _migrate_channels(
        self, plan: ReshardPlan, failpoint: Optional[Callable[[int], None]], now: float
    ) -> None:
        """Re-home moved channels one at a time (each flip is atomic).

        No viewing state moves: the log is partitioned by user, so a
        renewal on a re-homed channel finds its latest entry at the
        same owning partition as before -- the design reason the
        one-location invariant survives channel resharding.
        """
        deployment = self._deployment
        copied = 0
        for channel_id in plan.moved_keys:
            if deployment.channel_managers.get(plan.target) is None:
                raise MigrationAborted(
                    f"target shard {plan.target!r} unreachable mid-migration"
                )
            record = deployment.policy_manager.get_channel(channel_id)
            self.counters.migration_bytes += len(record.to_bytes())
            deployment.policy_manager.move_channel_partition(
                channel_id, plan.target, f"cm://{plan.target}", now
            )
            self._repoint_overlay(channel_id, plan.target)
            plan.copied.add(channel_id)
            copied += 1
            if failpoint is not None:
                failpoint(copied)

    def _repoint_overlay(self, channel_id: str, partition: str) -> None:
        overlay = self._deployment.overlays.get(channel_id)
        if overlay is None:
            return
        manager = self._deployment.channel_managers[partition]
        overlay.source.cm_public_key = manager.public_key
        for peer in overlay.peers.values():
            peer.cm_public_key = manager.public_key

    # ------------------------------------------------------------------
    # Commit / abort
    # ------------------------------------------------------------------

    def _cutover(self, plan: ReshardPlan) -> None:
        runtime = self._runtime
        if plan.kind == "user":
            runtime.user_directory.set_ring(plan.ring_after)
            runtime.viewing.ring = plan.viewing_after
            runtime.user_directory.thaw(plan.moved_keys)
            runtime.viewing.thaw_users()
        else:
            runtime.channel_directory.set_ring(plan.ring_after)
            runtime.channel_directory.thaw(plan.moved_keys)

    def _cleanup(self, plan: ReshardPlan) -> None:
        """Post-commit: delete the moved range from the source shards."""
        if plan.kind != "user":
            return
        deployment = self._deployment
        by_source: Dict[str, List[str]] = {}
        for email, (source_name, _dst) in plan.moved.items():
            by_source.setdefault(source_name, []).append(email)
        for source_name, emails in sorted(by_source.items()):
            source = deployment.user_managers.get(source_name)
            if source is not None:
                source.remove_users(sorted(emails))
        for user_id, (source_name, _dst) in sorted(plan.moved_user_ids.items()):
            self._runtime.viewing.partition(source_name).remove_user(user_id)

    def _rollback(self, plan: ReshardPlan, now: float) -> None:
        """Abort before commit: directories unchanged, freezes lifted.

        Copied state is scrubbed from the target where the target is
        still reachable; a dead target keeps its partial WAL, which a
        later :meth:`resume` reconciles (copies are upserts).
        Deferred operations replay against the *old* owners, which the
        directory still names.
        """
        runtime = self._runtime
        if plan.kind == "user":
            runtime.user_directory.thaw(plan.moved_keys)
            runtime.viewing.thaw_users()
            target = self._deployment.user_managers.get(plan.target)
            if target is not None:
                target.remove_users(
                    [e for e in plan.moved_keys if target.user_by_email(e)]
                )
                partition = runtime.viewing.partitions().get(plan.target)
                if partition is not None:
                    for user_id in list(plan.moved_user_ids):
                        partition.remove_user(user_id)
        else:
            runtime.channel_directory.thaw(plan.moved_keys)
            # Flip already-moved channels back to their sources.
            for channel_id in sorted(plan.copied):
                source_name, _dst = plan.moved[channel_id]
                self._deployment.policy_manager.move_channel_partition(
                    channel_id, source_name, f"cm://{source_name}", now
                )
                self._repoint_overlay(channel_id, source_name)
        self._replay_deferred()
        plan.state = "rolled_back"
        self.counters.migrations_rolled_back += 1

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _encode_user_record(record) -> bytes:
        enc = Encoder()
        record.encode(enc)
        return enc.to_bytes()


def directory_state_violations(deployment, runtime) -> List[str]:
    """The chaos invariant: the directory must never name a shard that
    is down or missing the named key's state.

    Checked over every registered account (email -> UserDB row) and
    every viewing history (UserIN -> owning partition).  Frozen keys
    are resolved with ``frozen_ok`` -- mid-migration the *source* must
    still hold them.
    """
    violations: List[str] = []
    for account in deployment.accounts.all_accounts():
        try:
            shard = runtime.user_directory.shard_for(account.email, frozen_ok=True)
        except ReproError as exc:
            violations.append(f"{account.email}: directory lookup failed: {exc}")
            continue
        manager = deployment.user_managers.get(shard)
        if manager is None:
            violations.append(
                f"{account.email}: directory names {shard!r} but no live manager"
            )
        elif manager.user_by_email(account.email) is None:
            violations.append(
                f"{account.email}: directory names {shard!r} but the shard "
                f"has no UserDB row"
            )
    viewing = runtime.viewing
    for name, partition in viewing.partitions().items():
        for user_id in partition.user_ids():
            owner = viewing.owner_of(user_id)
            if owner not in viewing.partitions():
                violations.append(
                    f"user {user_id}: viewing owner {owner!r} has no partition"
                )
            elif (
                owner != name
                and not viewing.is_frozen_user(user_id)
                and not partition.entries_for_user(user_id)
            ):
                violations.append(
                    f"user {user_id}: history stranded on {name!r}, owner {owner!r}"
                )
    return violations

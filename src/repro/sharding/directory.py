"""ShardDirectory: the ring plus operator overrides and freeze state.

The ring answers "where does this key hash to"; the directory answers
"where is this key actually served", which adds two layers the ring
cannot express:

* **pins** -- directory-driven overrides for individual keys (a tenant
  contractually homed in one region, a channel promoted to a dedicated
  farm).  Pins outrank the ring and never move during resharding.
* **freezes** -- a key range mid-migration.  Between freeze and
  cutover the old shard no longer accepts writes for the range and the
  new shard does not own it yet, so lookups raise
  :class:`~repro.errors.ShardFrozenError` and callers defer (the
  reshard coordinator replays deferred renewals after cutover).

The Redirection Manager consults a user directory for LOGIN routing;
``Deployment.add_channel`` consults a channel directory for placement.
Both compose with the PR-4 replica lists: the directory names the
*farm*, the Redirection Manager's replica list orders the instances
inside it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.errors import ReproError, ShardFrozenError
from repro.metrics.sharding import ShardingCounters
from repro.sharding.ring import ConsistentHashRing


class ShardDirectory:
    """Authoritative key -> shard mapping for one key space."""

    def __init__(
        self,
        ring: ConsistentHashRing,
        kind: str = "key",
        counters: Optional[ShardingCounters] = None,
    ) -> None:
        self._ring = ring
        self.kind = kind
        self.counters = counters or ShardingCounters()
        self._pins: Dict[str, str] = {}
        self._frozen: Set[str] = set()
        self.lookups = 0
        #: Lookups per shard since construction (CLI ``shard status``).
        self.load: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def shard_for(self, key: str, frozen_ok: bool = False) -> str:
        """The shard serving ``key`` (pin > ring), honoring freezes.

        ``frozen_ok`` is for the migration machinery itself, which
        must resolve frozen keys to copy them.
        """
        if key in self._frozen and not frozen_ok:
            self.counters.frozen_deferrals += 1
            raise ShardFrozenError(key)
        self.lookups += 1
        pinned = self._pins.get(key)
        if pinned is not None:
            self.counters.pinned_lookups += 1
            shard = pinned
        else:
            self.counters.ring_lookups += 1
            shard = self._ring.node_for(key)
        self.load[shard] = self.load.get(shard, 0) + 1
        return shard

    def shards(self) -> List[str]:
        """Every shard the directory can currently name."""
        return sorted(set(self._ring.nodes()) | set(self._pins.values()))

    @property
    def ring(self) -> ConsistentHashRing:
        return self._ring

    # ------------------------------------------------------------------
    # Pins
    # ------------------------------------------------------------------

    def pin(self, key: str, shard: str) -> None:
        """Override the ring for one key (survives membership changes).

        The target may be off-ring: a dedicated farm serving only its
        pinned keys (the paper's popular-channel escape hatch) never
        joins ring placement at all.
        """
        if not shard:
            raise ReproError(f"cannot pin {key!r} to empty shard name")
        self._pins[key] = shard

    def unpin(self, key: str) -> None:
        self._pins.pop(key, None)

    def pins(self) -> Dict[str, str]:
        return dict(self._pins)

    # ------------------------------------------------------------------
    # Freeze / cutover (driven by the ReshardCoordinator)
    # ------------------------------------------------------------------

    def freeze(self, keys: Iterable[str]) -> None:
        """Mark a key range as mid-migration."""
        self._frozen.update(keys)

    def thaw(self, keys: Optional[Iterable[str]] = None) -> None:
        """Lift the freeze for ``keys`` (or everything)."""
        if keys is None:
            self._frozen.clear()
        else:
            self._frozen.difference_update(keys)

    def frozen_keys(self) -> Set[str]:
        return set(self._frozen)

    def is_frozen(self, key: str) -> bool:
        return key in self._frozen

    def set_ring(self, ring: ConsistentHashRing) -> None:
        """Cut the directory over to a new ring (the commit point)."""
        self._ring = ring

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def dump(self) -> dict:
        """JSON-friendly state for ``repro shard status``."""
        return {
            "kind": self.kind,
            "shards": self.shards(),
            "vnodes": self._ring.vnodes,
            "pins": dict(sorted(self._pins.items())),
            "frozen": sorted(self._frozen),
            "lookups": self.lookups,
            "load": dict(sorted(self.load.items())),
        }

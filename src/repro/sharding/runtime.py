"""ShardingRuntime: one deployment's sharded manager tier, assembled.

Construction (normally via ``Deployment.enable_sharding``) builds the
three placement structures over whatever farms the deployment already
runs, and installs them in the request path:

* a **user directory** (ring over Authentication Domains, salt
  ``b"user"``), installed into the Redirection Manager so LOGIN and
  SWITCH redirection become shard-aware;
* a **channel directory** (ring over Channel Listing Partitions, salt
  ``b"channel"``), consulted by ``Deployment.add_channel`` for
  placement of new channels;
* a **sharded viewing log** (its own ring over UserINs, salt
  ``b"viewing"``), installed into every Channel Manager instance --
  primaries and replicas -- so renewal checks route to the partition
  owning the user, which is what keeps the one-location rule intact
  across many CM farms.

Distinct salts mean a shard name appearing on two rings (every
Authentication Domain also hosts a viewing partition) still gets
independent vnode positions on each.

Enabling sharding on a warm deployment is itself a migration-free
cutover: existing viewing history is seeded into the owning partitions
before the router is installed, and the (deterministic) rings simply
replace the legacy modulo placement -- users may map to different
domains than the modulo scheme chose, which is harmless because every
User Manager replicates the full UserDB (Section V's farms share
state; only user *ids* differ per domain, and those travel with the
directory, not the client).
"""

from __future__ import annotations

from typing import Dict, List

from repro.metrics.sharding import ShardingCounters
from repro.sharding.directory import ShardDirectory
from repro.sharding.ring import DEFAULT_VNODES, ConsistentHashRing
from repro.sharding.viewing import ShardedViewingLog


class ShardingRuntime:
    """The assembled sharding state for one :class:`~repro.deployment.Deployment`."""

    def __init__(self, deployment, vnodes: int = DEFAULT_VNODES) -> None:
        self.deployment = deployment
        self.vnodes = vnodes
        self.counters = ShardingCounters()

        user_ring = ConsistentHashRing(
            vnodes=vnodes, salt=b"user", nodes=sorted(deployment.user_managers)
        )
        self.user_directory = ShardDirectory(
            user_ring, kind="user", counters=self.counters
        )
        channel_ring = ConsistentHashRing(
            vnodes=vnodes, salt=b"channel", nodes=sorted(deployment.channel_managers)
        )
        self.channel_directory = ShardDirectory(
            channel_ring, kind="channel", counters=self.counters
        )

        self.viewing = ShardedViewingLog(vnodes=vnodes, counters=self.counters)
        for domain in sorted(deployment.user_managers):
            self.viewing.add_partition(domain)
        self._seed_viewing_history()

        # Install into the request path: redirection consults the user
        # directory, every CM instance routes log traffic here.
        deployment.redirection.use_shard_directory(self.user_directory)
        for manager in self._all_channel_managers():
            manager.set_viewing_router(self.viewing)

        # Lazy import: reshard imports runtime's siblings.
        from repro.sharding.reshard import ReshardCoordinator

        self.coordinator = ReshardCoordinator(deployment, self)

    # ------------------------------------------------------------------
    # Assembly helpers
    # ------------------------------------------------------------------

    def _all_channel_managers(self) -> List[object]:
        managers = list(self.deployment.channel_managers.values())
        for replicas in self.deployment.cm_replicas.values():
            managers.extend(replicas)
        return managers

    def _seed_viewing_history(self) -> None:
        """Load pre-sharding CM logs into the owning partitions.

        Replicas share their primary's log by reference, so logs are
        deduplicated by object identity before seeding.
        """
        seen_logs: Dict[int, bool] = {}
        for manager in self._all_channel_managers():
            backing = manager._log  # shared by reference across a farm
            if id(backing) in seen_logs:
                continue
            seen_logs[id(backing)] = True
            self.viewing.seed(manager.viewing_log())

    def attach_user_shard(self, domain: str) -> None:
        """Register a new domain's viewing partition, off-ring.

        Called when a migration target is stood up: the partition can
        absorb copied state, but owns no keys until the coordinator
        cuts the rings over.
        """
        if domain not in self.viewing.partitions():
            self.viewing.add_partition(domain, join_ring=False)

    def install_router(self, manager) -> None:
        """Point one CM instance (e.g. a fresh replica) at the router."""
        manager.set_viewing_router(self.viewing)

    # ------------------------------------------------------------------
    # Introspection (CLI ``repro shard status``)
    # ------------------------------------------------------------------

    def status(self) -> dict:
        viewing_load = {
            name: len(partition.entries())
            for name, partition in self.viewing.partitions().items()
        }
        return {
            "vnodes": self.vnodes,
            "user_directory": self.user_directory.dump(),
            "channel_directory": self.channel_directory.dump(),
            "viewing": {
                "partitions": sorted(self.viewing.partitions()),
                "ring": sorted(self.viewing.ring.nodes()),
                "entries": viewing_load,
                "frozen_users": sorted(self.viewing.frozen_users()),
                "misplaced_users": self.viewing.misplaced_users(),
            },
            "counters": self.counters.snapshot(),
        }

"""Horizontal sharding for the manager tier (Section VI scalability).

The paper's §6 extensions -- User Manager farms per Authentication
Domain, Channel Manager farms per Channel Listing Partition, stateless
ticket issuance -- only spread load if the *placement* of users and
channels over farms is itself scalable.  This package supplies that
placement layer:

* :mod:`repro.sharding.ring` -- a consistent-hash ring with virtual
  nodes: deterministic placement, minimal key movement on membership
  change;
* :mod:`repro.sharding.directory` -- :class:`ShardDirectory`, the
  ring plus pinned overrides and a freeze set, consulted by the
  Redirection Manager (users -> UM shards) and by channel
  provisioning (channels -> CM shards);
* :mod:`repro.sharding.viewing` -- the viewing activity log
  partitioned by *user* shard, so the one-viewing-location rule is
  enforced at the shard owning the user no matter which Channel
  Manager farm handles the renewal;
* :mod:`repro.sharding.reshard` -- :class:`ReshardCoordinator`, live
  resharding: freeze a key range, migrate WAL+snapshot state between
  shards through the :mod:`repro.store` backends, cut the directory
  over, replay deferred renewals.

:class:`ShardingRuntime` bundles the rings, directories, and the
partitioned viewing log for one deployment; build it via
``Deployment.enable_sharding()``.
"""

from repro.sharding.directory import ShardDirectory
from repro.sharding.reshard import (
    MigrationAborted,
    ReshardCoordinator,
    ReshardPlan,
    directory_state_violations,
)
from repro.sharding.ring import ConsistentHashRing, MovementPlan, plan_movement
from repro.sharding.runtime import ShardingRuntime
from repro.sharding.viewing import ShardedViewingLog, ViewingLogPartition

__all__ = [
    "ConsistentHashRing",
    "MigrationAborted",
    "MovementPlan",
    "ReshardCoordinator",
    "ReshardPlan",
    "ShardDirectory",
    "ShardedViewingLog",
    "ShardingRuntime",
    "ViewingLogPartition",
    "directory_state_violations",
    "plan_movement",
]

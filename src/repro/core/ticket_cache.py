"""Bounded LRU cache for ticket signature verifications.

A manager farm sees the same User Ticket on every SWITCH1/SWITCH2 and
renewal a client performs for the ticket's whole lifetime (30 minutes
of zapping in the paper's production profile).  The RSA verification
of that ticket is pure: the same (issuer key, body, signature) triple
always verifies the same way.  Caching a *successful* verification is
therefore sound -- the cache can never turn a forgery into a pass,
because only triples that survived the full :meth:`RsaPublicKey.verify`
are ever inserted, and any bit flip in key, body, or signature changes
the lookup key.

Failures are deliberately **not** cached: a negative entry keyed by
attacker-controlled bytes would let an attacker churn the cache, and
rejections are off the hot path anyway.

Time-window checks (start/expiry, NetAddr, channel binding) stay
outside the cache: they depend on ``now`` and the connection, not on
the signature, and they are cheap.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Tuple

from repro.crypto.rsa import RsaPublicKey
from repro.metrics.hotpath import counters as _hot

_CacheKey = Tuple[str, bytes, bytes]


class TicketVerificationCache:
    """Remembers signature triples that verified, with LRU eviction."""

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[_CacheKey, None]" = OrderedDict()

    @staticmethod
    def _key(issuer_key: RsaPublicKey, body: bytes, signature: bytes) -> _CacheKey:
        return (issuer_key.fingerprint(), hashlib.sha256(body).digest(), signature)

    def __len__(self) -> int:
        return len(self._entries)

    def seen(self, issuer_key: RsaPublicKey, body: bytes, signature: bytes) -> bool:
        """Has this exact triple verified before?  Refreshes LRU order."""
        key = self._key(issuer_key, body, signature)
        if key in self._entries:
            self._entries.move_to_end(key)
            _hot.ticket_cache_hits += 1
            return True
        _hot.ticket_cache_misses += 1
        return False

    def remember(self, issuer_key: RsaPublicKey, body: bytes, signature: bytes) -> None:
        """Record a triple that just passed full verification."""
        key = self._key(issuer_key, body, signature)
        self._entries[key] = None
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

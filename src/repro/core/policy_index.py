"""Compiled per-channel policy index: the policy-evaluation fast path.

Every SWITCH2 and renewal evaluates the target channel's policies, and
:func:`repro.core.policy.evaluate_policies` pays three repeated costs
per call that depend only on the *channel*, not on the request:

1. sorting the policy list into priority order;
2. scanning the whole channel attribute list per condition to find
   backing attributes (``AttributeSet.valid_named`` is linear);
3. re-deriving the stime/etime boundary set that
   ``ChannelManager._cap_at_future_reject`` walks.

:class:`CompiledPolicyIndex` hoists all three into a one-time compile
per channel record version:

* the evaluation order is pre-sorted;
* each policy condition is resolved to its *backing candidates* -- the
  channel attributes whose (name, value) and, for pinned conditions,
  window match it -- so activity checks touch only those candidates;
* a per-name index accelerates ``valid_named`` lookups;
* the channel-side boundary list is pre-sorted for bisection.

The compiled form is a pure function of ``(policies, attributes)``:
:meth:`evaluate` returns results identical (decision, matched policy,
and the full dormant list) to the uncached ``evaluate_policies`` --
the property tests in ``tests/core/test_policy_index_properties.py``
assert exactly that.  Invalidation is by record **version**: the
Channel Policy Manager bumps a record's version alongside its utimes
on every propagation, and ``ChannelRecord.compiled()`` rebuilds the
index whenever the versions disagree, so a stale index can never grant
against retracted policies.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence, Tuple

from repro.core.attributes import Attribute, AttributeSet
from repro.core.policy import (
    Decision,
    EvaluationResult,
    Policy,
    PolicyCondition,
    ordered_policies,
)
from repro.metrics.hotpath import counters as _hot


def _backing_candidates(
    condition: PolicyCondition, channel_attributes: AttributeSet
) -> "Tuple[Attribute, ...]":
    """Channel attributes that can back ``condition``.

    Mirrors :meth:`PolicyCondition.is_backed`: same (name, value), and
    for pinned conditions exactly the pinned window.  Only validity at
    evaluation time remains to be checked per call.
    """
    return tuple(
        attribute
        for attribute in channel_attributes
        if attribute.name == condition.name
        and attribute.value == condition.value
        and (
            not condition.pinned
            or (
                attribute.stime == condition.stime
                and attribute.etime == condition.etime
            )
        )
    )


class CompiledPolicyIndex:
    """Pre-resolved evaluation plan for one channel's policy list."""

    def __init__(
        self,
        policies: Sequence[Policy],
        channel_attributes: AttributeSet,
        version: int = 0,
    ) -> None:
        self.version = version
        self._ordered: List[Policy] = ordered_policies(policies)
        self._backing: List[Tuple[Tuple[Attribute, ...], ...]] = [
            tuple(_backing_candidates(c, channel_attributes) for c in p.conditions)
            for p in self._ordered
        ]
        by_name: Dict[str, List[Attribute]] = {}
        boundaries = set()
        for attribute in channel_attributes:
            by_name.setdefault(attribute.name, []).append(attribute)
            if attribute.stime is not None:
                boundaries.add(attribute.stime)
            if attribute.etime is not None:
                boundaries.add(attribute.etime)
        self._by_name: Dict[str, Tuple[Attribute, ...]] = {
            name: tuple(attrs) for name, attrs in by_name.items()
        }
        #: Times at which some channel attribute enters or leaves
        #: validity -- the only instants a policy decision can flip on
        #: the channel side.  Sorted for bisection.
        self.channel_boundaries: Tuple[float, ...] = tuple(sorted(boundaries))
        _hot.policy_index_builds += 1

    def valid_named(self, name: str, now: float) -> List[Attribute]:
        """Index-backed equivalent of :meth:`AttributeSet.valid_named`."""
        return [a for a in self._by_name.get(name, ()) if a.is_valid_at(now)]

    def _is_active(self, policy_pos: int, now: float) -> bool:
        """Is every condition of the policy at ``policy_pos`` backed now?"""
        return all(
            any(candidate.is_valid_at(now) for candidate in candidates)
            for candidates in self._backing[policy_pos]
        )

    def evaluate(self, user_attributes: AttributeSet, now: float) -> EvaluationResult:
        """Identical contract to :func:`evaluate_policies`, pre-compiled.

        Same decision, same matched policy, same (full) dormant list --
        only the channel-side work is answered from the index.
        """
        _hot.policy_index_evals += 1
        result = EvaluationResult(decision=Decision.REJECT, matched_policy=None)
        for pos, policy in enumerate(self._ordered):
            if not self._is_active(pos, now):
                result.dormant_policies.append(policy)
                continue
            if result.matched_policy is None and policy.matches(user_attributes, now):
                result.decision = policy.action
                result.matched_policy = policy
        return result

    def boundaries_between(self, start: float, end: float) -> List[float]:
        """Channel-side boundaries in the half-open window (start, end]."""
        lo = bisect.bisect_right(self.channel_boundaries, start)
        hi = bisect.bisect_right(self.channel_boundaries, end)
        return list(self.channel_boundaries[lo:hi])

"""Channel policies: prioritized attribute-match rules.

Section IV-A: "Channel policies determine how attributes are to be
interpreted and enforced.  Each channel can have multiple policies
attached to it.  Each policy is given a priority, with higher priority
policies overriding lower priority ones."

A policy is a conjunction of :class:`PolicyCondition` requirements plus
an action (ACCEPT or REJECT).  Two temporal gates apply at evaluation
time ``now``:

1. **Backing validity** -- each condition ``name=value`` must be backed
   by a *channel* attribute ``(name, value)`` that is valid at ``now``.
   An unbacked or expired condition makes the whole policy *dormant*
   (skipped).  This is how time-boxed rules such as blackouts switch
   themselves on and off: the rule's backing attribute carries the
   stime/etime window.
2. **User match** -- every condition must be satisfied by the user's
   valid attributes under the matching table in
   :mod:`repro.core.attributes`.

Evaluation walks policies from highest priority down (ties broken by
definition order); the first active, matching policy decides.  If
nothing matches, the default is REJECT -- rights must be granted
explicitly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.core.attributes import AttributeSet
from repro.util.wire import Decoder, Encoder


class Decision(enum.Enum):
    """Outcome of policy evaluation."""

    ACCEPT = "ACCEPT"
    REJECT = "REJECT"


@dataclass(frozen=True)
class PolicyCondition:
    """One ``attribute = value`` requirement inside a policy.

    ``stime``/``etime``, when set, pin the condition to one specific
    backing-attribute *window*: only the channel attribute with exactly
    that validity window activates the condition.  Without the pin, any
    valid (name, value) instance backs it.  Pinning is what keeps two
    time-boxed rules that share a (name, value) pair -- e.g. a blackout
    and a pay-per-view fence both expressed over ``Region=ANY`` -- from
    activating each other's windows.
    """

    name: str
    value: str
    stime: Optional[float] = None
    etime: Optional[float] = None

    @property
    def pinned(self) -> bool:
        """Is this condition bound to one backing window?"""
        return self.stime is not None or self.etime is not None

    def is_backed(self, channel_attributes: AttributeSet, now: float) -> bool:
        """Is there a valid channel attribute backing this condition?"""
        for attribute in channel_attributes.valid_named(self.name, now):
            if attribute.value != self.value:
                continue
            if self.pinned and (
                attribute.stime != self.stime or attribute.etime != self.etime
            ):
                continue
            return True
        return False

    def is_satisfied(self, user_attributes: AttributeSet, now: float) -> bool:
        """Does the user's attribute set meet this requirement now?"""
        return user_attributes.satisfies(self.name, self.value, now)

    def encode(self, enc: Encoder) -> None:
        enc.put_str(self.name)
        enc.put_str(self.value)
        enc.put_opt_f64(self.stime)
        enc.put_opt_f64(self.etime)

    @classmethod
    def decode(cls, dec: Decoder) -> "PolicyCondition":
        return cls(
            name=dec.get_str(),
            value=dec.get_str(),
            stime=dec.get_opt_f64(),
            etime=dec.get_opt_f64(),
        )

    def __str__(self) -> str:
        window = f"@[{self.stime},{self.etime}]" if self.pinned else ""
        return f"{self.name}={self.value}{window}"


@dataclass(frozen=True)
class Policy:
    """A prioritized rule: conjunction of conditions and an action.

    Mirrors the paper's examples, e.g. Fig. 2(c)::

        Priority 50: Region=100 & Subscription=101, Return ACCEPT
        Priority 100: Region=ANY, Return REJECT        (blackout)
    """

    priority: int
    conditions: "tuple[PolicyCondition, ...]"
    action: Decision
    label: str = ""

    def __post_init__(self) -> None:
        if not self.conditions:
            raise ValueError("a policy needs at least one condition")
        if self.priority < 0:
            raise ValueError("priority must be non-negative")

    @classmethod
    def of(
        cls,
        priority: int,
        conditions: Iterable[PolicyCondition],
        action: Decision,
        label: str = "",
    ) -> "Policy":
        """Constructor accepting any condition iterable."""
        return cls(priority=priority, conditions=tuple(conditions), action=action, label=label)

    def is_active(self, channel_attributes: AttributeSet, now: float) -> bool:
        """Active iff every condition is backed by a valid channel attribute."""
        return all(c.is_backed(channel_attributes, now) for c in self.conditions)

    def matches(self, user_attributes: AttributeSet, now: float) -> bool:
        """True when the user satisfies every condition."""
        return all(c.is_satisfied(user_attributes, now) for c in self.conditions)

    def encode(self, enc: Encoder) -> None:
        enc.put_u32(self.priority)
        enc.put_str(self.action.value)
        enc.put_str(self.label)
        enc.put_u32(len(self.conditions))
        for cond in self.conditions:
            cond.encode(enc)

    #: Minimum wire size of one encoded condition: two empty strings
    #: (4-byte length prefixes) plus two absent opt-f64 presence bytes.
    _MIN_CONDITION_WIRE_SIZE = 10

    @classmethod
    def decode(cls, dec: Decoder) -> "Policy":
        priority = dec.get_u32()
        action = Decision(dec.get_str())
        label = dec.get_str()
        # The condition count arrives from the wire: bound it against
        # the remaining buffer before looping, or a hostile four-byte
        # count field can demand ~4 billion decodes.
        count = dec.get_count(cls._MIN_CONDITION_WIRE_SIZE)
        conditions = tuple(PolicyCondition.decode(dec) for _ in range(count))
        return cls(priority=priority, conditions=conditions, action=action, label=label)

    def __str__(self) -> str:
        conds = " & ".join(str(c) for c in self.conditions)
        return f"Priority {self.priority}: {conds}, Return {self.action.value}"


@dataclass
class EvaluationResult:
    """Decision plus provenance, for logging and tests.

    ``dormant_policies`` always covers the **entire** policy list, in
    priority order, regardless of where (or whether) a match landed:
    audit trails ("why did the blackout not fire?") need the dormant
    set to be complete, not truncated at the first match.
    """

    decision: Decision
    matched_policy: Optional[Policy]
    dormant_policies: List[Policy] = field(default_factory=list)

    @property
    def accepted(self) -> bool:
        return self.decision is Decision.ACCEPT


def ordered_policies(policies: Sequence[Policy]) -> "List[Policy]":
    """The evaluation order: priority descending, ties by definition order."""
    return [
        policy
        for _, policy in sorted(
            enumerate(policies), key=lambda pair: (-pair[1].priority, pair[0])
        )
    ]


def evaluate_policies(
    policies: Sequence[Policy],
    channel_attributes: AttributeSet,
    user_attributes: AttributeSet,
    now: float,
) -> EvaluationResult:
    """Evaluate a channel's policy list against a user's attributes.

    Highest priority first; ties resolve in definition order.  The
    first active policy whose conditions the user satisfies decides.
    Default (no match at all): REJECT.  The scan continues past the
    deciding policy so the dormant-policy provenance spans the full
    list (see :class:`EvaluationResult`).
    """
    result = EvaluationResult(decision=Decision.REJECT, matched_policy=None)
    for policy in ordered_policies(policies):
        if not policy.is_active(channel_attributes, now):
            result.dormant_policies.append(policy)
            continue
        if result.matched_policy is None and policy.matches(user_attributes, now):
            result.decision = policy.action
            result.matched_policy = policy
    return result

"""Viewing analytics and royalty reporting from the viewing log.

Section II (Unique User Count): the system must log viewing "to comply
with regulations concerning payment of television licensing fees and
copyright royalties, to enforce per-view payment of paid contents, and
to track viewing rate for advertisement purposes."  The Channel
Manager's viewing log (Section IV-D) is the raw material; this module
turns it into the reports those obligations need.

A log entry records a ticket issuance (fresh or renewal).  Each entry
represents up to one Channel Ticket lifetime of viewing; a session's
true span is the run of entries for one (UserIN, channel) whose gaps
stay under the renewal cadence.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.channel_manager import ViewingLogEntry


@dataclass(frozen=True)
class ViewingSession:
    """One reconstructed continuous viewing span."""

    user_id: int
    channel_id: str
    start: float
    end: float
    renewals: int

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ChannelReport:
    """Per-channel aggregate for one reporting period."""

    channel_id: str
    unique_viewers: int
    sessions: int
    viewer_seconds: float
    peak_concurrent: int

    @property
    def viewer_hours(self) -> float:
        return self.viewer_seconds / 3600.0


def reconstruct_sessions(
    log: Sequence[ViewingLogEntry],
    ticket_lifetime: float,
) -> List[ViewingSession]:
    """Stitch log entries into continuous viewing sessions.

    Entries for the same (UserIN, channel) whose inter-arrival gap is
    at most one ticket lifetime (plus slack for the renewal window)
    belong to one session; the session extends one lifetime past its
    last entry (the final ticket's validity).
    """
    by_key: Dict[Tuple[int, str], List[ViewingLogEntry]] = defaultdict(list)
    for entry in log:
        by_key[(entry.user_id, entry.channel_id)].append(entry)

    def covered_until(entry: ViewingLogEntry) -> float:
        """How far one entry's viewing extends.

        Prefer the recorded ticket expiry (exact, including pinned
        boundaries); fall back to the nominal lifetime for legacy
        entries that lack it.
        """
        if entry.expires_at is not None:
            return entry.expires_at
        return entry.issued_at + ticket_lifetime

    sessions: List[ViewingSession] = []
    slack = ticket_lifetime * 0.25
    for (user_id, channel_id), entries in by_key.items():
        entries.sort(key=lambda e: e.issued_at)
        run_start = entries[0].issued_at
        run_end = covered_until(entries[0])
        renewals = 0
        for entry in entries[1:]:
            if entry.issued_at <= run_end + slack:
                renewals += int(entry.renewal)
                run_end = max(run_end, covered_until(entry))
                continue
            sessions.append(
                ViewingSession(
                    user_id=user_id,
                    channel_id=channel_id,
                    start=run_start,
                    end=run_end,
                    renewals=renewals,
                )
            )
            run_start = entry.issued_at
            run_end = covered_until(entry)
            renewals = 0
        sessions.append(
            ViewingSession(
                user_id=user_id,
                channel_id=channel_id,
                start=run_start,
                end=run_end,
                renewals=renewals,
            )
        )
    sessions.sort(key=lambda s: (s.start, s.user_id))
    return sessions


class ViewingAnalytics:
    """Reports over a viewing log."""

    def __init__(
        self, log: Sequence[ViewingLogEntry], ticket_lifetime: float = 900.0
    ) -> None:
        self._log = list(log)
        self.ticket_lifetime = ticket_lifetime
        self._sessions = reconstruct_sessions(self._log, ticket_lifetime)

    @property
    def sessions(self) -> List[ViewingSession]:
        """All reconstructed sessions."""
        return list(self._sessions)

    def concurrent_viewers(self, channel_id: str, at: float) -> int:
        """Viewers of a channel at one instant (the ad-rate number)."""
        return sum(
            1
            for s in self._sessions
            if s.channel_id == channel_id and s.start <= at < s.end
        )

    def viewer_curve(
        self, channel_id: str, start: float, end: float, step: float = 60.0
    ) -> List[Tuple[float, int]]:
        """(time, concurrent viewers) over a window."""
        points = []
        t = start
        while t <= end:
            points.append((t, self.concurrent_viewers(channel_id, t)))
            t += step
        return points

    def channel_report(
        self, channel_id: str, start: float, end: float
    ) -> ChannelReport:
        """Royalty/licensing aggregate for one channel and period."""
        overlapping = [
            s
            for s in self._sessions
            if s.channel_id == channel_id and s.start < end and s.end > start
        ]
        viewer_seconds = sum(
            max(0.0, min(s.end, end) - max(s.start, start)) for s in overlapping
        )
        peak = 0
        boundaries = sorted(
            {max(s.start, start) for s in overlapping}
            | {min(s.end, end) for s in overlapping}
        )
        for boundary in boundaries:
            peak = max(peak, self.concurrent_viewers(channel_id, boundary))
        return ChannelReport(
            channel_id=channel_id,
            unique_viewers=len({s.user_id for s in overlapping}),
            sessions=len(overlapping),
            viewer_seconds=viewer_seconds,
            peak_concurrent=peak,
        )

    def royalty_statement(
        self, start: float, end: float, rate_per_viewer_hour: float
    ) -> Dict[str, float]:
        """Per-channel royalty owed over a period.

        The simple viewer-hour model: owed = viewer-hours x rate.
        """
        channels = {entry.channel_id for entry in self._log}
        return {
            channel: self.channel_report(channel, start, end).viewer_hours
            * rate_per_viewer_hour
            for channel in sorted(channels)
        }

    def per_view_charges(
        self, channel_id: str, window_start: float, window_end: float, price: float
    ) -> Dict[int, float]:
        """Pay-per-view billing: one charge per user who viewed the
        program window, regardless of renewals or re-joins (the
        'per-view payment' requirement with the account-level dedup
        the single-viewing-location rule makes sound)."""
        viewers = {
            s.user_id
            for s in self._sessions
            if s.channel_id == channel_id
            and s.start < window_end
            and s.end > window_start
        }
        return {user_id: price for user_id in sorted(viewers)}

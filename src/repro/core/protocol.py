"""DRM protocol messages: LOGIN1/2, SWITCH1/2, JOIN (Fig. 4).

Each dataclass is one message of one round.  The five *rounds* --
LOGIN1, LOGIN2, SWITCH1, SWITCH2, JOIN -- are exactly the units whose
latency the paper measures (Section VI); :data:`Round` enumerates them
so the metrics layer can label samples.

Messages carry an :meth:`approx_size` so the simulator can charge
serialization delay; sizes are computed from the canonical encodings
rather than guessed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.challenge import Challenge
from repro.core.tickets import ChannelTicket, UserTicket
from repro.crypto.rsa import RsaPublicKey


class Round(enum.Enum):
    """The five measured message-exchange rounds."""

    LOGIN1 = "LOGIN1"
    LOGIN2 = "LOGIN2"
    SWITCH1 = "SWITCH1"
    SWITCH2 = "SWITCH2"
    JOIN = "JOIN"


# ----------------------------------------------------------------------
# Login protocol (client <-> User Manager), Fig. 4(a)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Login1Request:
    """Round 1 request: email address and the client's public key."""

    email: str
    client_public_key: RsaPublicKey

    def approx_size(self) -> int:
        return len(self.email) + len(self.client_public_key.to_bytes()) + 16


@dataclass(frozen=True)
class Login1Response:
    """Round 1 response: a stateless challenge token plus an
    shp-encrypted blob holding the nonce, the attestation checksum
    parameters, and the server's clock reading.

    Only a client that knows the account password can decrypt the blob;
    the token itself carries a *commitment* to the nonce, never the
    nonce, so eavesdroppers and password-less attackers learn nothing
    usable.
    """

    token: Challenge
    encrypted_blob: bytes
    blob_nonce: int

    def approx_size(self) -> int:
        return len(self.token.to_bytes()) + len(self.encrypted_blob) + 8 + 16


@dataclass(frozen=True)
class Login2Request:
    """Round 2 request: decrypted nonce, attestation checksum, client
    version, all signed with the client's private key."""

    email: str
    client_public_key: RsaPublicKey
    token: Challenge
    nonce: bytes
    checksum: bytes
    version: str
    signature: bytes

    def approx_size(self) -> int:
        return (
            len(self.email)
            + len(self.client_public_key.to_bytes())
            + len(self.token.to_bytes())
            + len(self.nonce)
            + len(self.checksum)
            + len(self.version)
            + len(self.signature)
            + 32
        )


@dataclass(frozen=True)
class Login2Response:
    """Round 2 response: the signed User Ticket and timing information."""

    ticket: UserTicket
    server_time: float

    def approx_size(self) -> int:
        return len(self.ticket.to_bytes()) + 8 + 16


# ----------------------------------------------------------------------
# Channel switching protocol (client <-> Channel Manager), Fig. 4(b)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Switch1Request:
    """Round 1 request: target channel (or expiring ticket, for
    renewal) plus the User Ticket."""

    user_ticket: UserTicket
    channel_id: Optional[str] = None
    expiring_ticket: Optional[ChannelTicket] = None

    def __post_init__(self) -> None:
        if (self.channel_id is None) == (self.expiring_ticket is None):
            raise ValueError(
                "exactly one of channel_id (new ticket) or "
                "expiring_ticket (renewal) must be given"
            )

    @property
    def is_renewal(self) -> bool:
        return self.expiring_ticket is not None

    @property
    def target_channel(self) -> str:
        if self.expiring_ticket is not None:
            return self.expiring_ticket.channel_id
        assert self.channel_id is not None
        return self.channel_id

    def approx_size(self) -> int:
        size = len(self.user_ticket.to_bytes()) + 16
        if self.channel_id is not None:
            size += len(self.channel_id)
        if self.expiring_ticket is not None:
            size += len(self.expiring_ticket.to_bytes())
        return size


@dataclass(frozen=True)
class Switch1Response:
    """Round 1 response: the nonce challenge."""

    token: Challenge

    def approx_size(self) -> int:
        return len(self.token.to_bytes()) + 16


@dataclass(frozen=True)
class Switch2Request:
    """Round 2 request: the nonce signed with the client's private key."""

    user_ticket: UserTicket
    token: Challenge
    signature: bytes
    channel_id: Optional[str] = None
    expiring_ticket: Optional[ChannelTicket] = None

    @property
    def is_renewal(self) -> bool:
        return self.expiring_ticket is not None

    @property
    def target_channel(self) -> str:
        if self.expiring_ticket is not None:
            return self.expiring_ticket.channel_id
        assert self.channel_id is not None
        return self.channel_id

    def approx_size(self) -> int:
        size = (
            len(self.user_ticket.to_bytes())
            + len(self.token.to_bytes())
            + len(self.signature)
            + 32
        )
        if self.expiring_ticket is not None:
            size += len(self.expiring_ticket.to_bytes())
        return size


@dataclass(frozen=True)
class PeerDescriptor:
    """One entry of the (unsigned -- Section IV-G1) peer list.

    ``asn`` and ``spare_capacity`` are advisory hints for locality- and
    capacity-aware ranking; a peer may advertise 0 for either (older
    peers, or peers that decline to disclose), so consumers must treat
    them as best-effort and never as admission-relevant facts.
    """

    peer_id: str
    address: str
    region: str
    asn: int = 0
    spare_capacity: int = 0

    def approx_size(self) -> int:
        return len(self.peer_id) + len(self.address) + len(self.region) + 8 + 8


@dataclass(frozen=True)
class Switch2Response:
    """Round 2 response: the Channel Ticket and the peer list.

    The peer list is intentionally *not* covered by any signature; the
    paper argues signing it buys nothing against an attacker who can
    already modify the victim's traffic (Section IV-G1).
    """

    ticket: ChannelTicket
    peers: Tuple[PeerDescriptor, ...] = ()

    def approx_size(self) -> int:
        return (
            len(self.ticket.to_bytes())
            + sum(p.approx_size() for p in self.peers)
            + 16
        )


# ----------------------------------------------------------------------
# Peer join protocol (client <-> target peer), Fig. 4(c)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class JoinRequest:
    """The join request: the Channel Ticket for the carried channel."""

    channel_ticket: ChannelTicket

    def approx_size(self) -> int:
        return len(self.channel_ticket.to_bytes()) + 16


@dataclass(frozen=True)
class JoinAccept:
    """Join accepted: session key (encrypted to the client's public
    key) and the current content key (encrypted under the session key),
    as prescribed by Section IV-E."""

    peer_id: str
    encrypted_session_key: bytes
    encrypted_content_key: bytes
    content_key_serial: int

    def approx_size(self) -> int:
        return (
            len(self.peer_id)
            + len(self.encrypted_session_key)
            + len(self.encrypted_content_key)
            + 1
            + 16
        )


@dataclass(frozen=True)
class JoinReject:
    """Join refused: out of capacity or invalid ticket."""

    peer_id: str
    reason: str

    def approx_size(self) -> int:
        return len(self.peer_id) + len(self.reason) + 16


# ----------------------------------------------------------------------
# Content-key distribution (peer -> child), Section IV-E
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class KeyUpdate:
    """A new content key pushed down one tree link.

    ``serial`` is the 8-bit rotating serial number; ``activate_at`` is
    when the Channel Server starts encrypting with it (keys are sent
    "some amount of time in advance of their use").

    ``parent_depth`` piggybacks the sender's current tree depth on the
    update -- a heartbeat that lets every peer refresh its own depth
    (parent depth + 1) once per key epoch, so the ranking pipeline
    works from live depths instead of join-time snapshots.  It is a
    *hint* from an untrusted peer, never admission-relevant; the
    overlay's depth audit cross-checks it against the measured tree.
    """

    channel_id: str
    serial: int
    encrypted_content_key: bytes
    activate_at: float
    parent_depth: int = -1

    def __post_init__(self) -> None:
        if not 0 <= self.serial <= 0xFF:
            raise ValueError("content key serial must fit in 8 bits")

    def approx_size(self) -> int:
        return len(self.channel_id) + len(self.encrypted_content_key) + 1 + 8 + 16 + 2

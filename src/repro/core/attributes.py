"""Attributes: the unit of rights metadata for users and channels.

Section IV-A defines an attribute as the 5-tuple
``<attribute, value, stime, etime, utime>``:

* ``stime``/``etime`` bound the attribute's *validity window* (NULL
  means unbounded on that side);
* ``utime`` is the last-update time, used to signal channel-lineup
  changes to clients (Section IV-B: a client that sees a more recent
  utime in its new User Ticket re-fetches the Channel List).

User attributes and channel attributes share this format.  A handful
of special values are "globally defined throughout our DRM
architecture": ``ANY`` (wildcard that matches every present value),
``ALL`` (a held value that satisfies every requirement), ``NONE``
(matches only absence), and NULL (we use Python ``None`` for unset
timestamps).

Matching semantics (used by :mod:`repro.core.policy`):

=================  =======================================================
required value     satisfied when the holder has ...
=================  =======================================================
ordinary ``v``     a valid attribute of that name with value ``v`` or ALL
``ANY``            any valid attribute of that name at all
``NONE``           no valid attribute of that name
=================  =======================================================

This makes the paper's blackout idiom work: a high-priority policy
``Region=ANY -> REJECT`` whose backing channel attribute is valid only
during the blackout window matches every user (everyone has *some*
Region) and rejects them; outside the window the backing attribute is
invalid, the policy is dormant, and lower-priority ACCEPT rules apply.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.util.wire import Decoder, Encoder

#: Wildcard required-value: matches any present valid attribute.
VALUE_ANY = "ANY"
#: Universal held-value: satisfies any required value.
VALUE_ALL = "ALL"
#: Required-value matching only *absence* of the attribute.
VALUE_NONE = "NONE"

#: Attribute names with architectural meaning (Table I).
ATTR_NETADDR = "NetAddr"
ATTR_REGION = "Region"
ATTR_AS = "AS"
ATTR_VERSION = "Version"
ATTR_SUBSCRIPTION = "Subscription"


@dataclass(frozen=True)
class Attribute:
    """One ``<attribute, value, stime, etime, utime>`` tuple.

    Timestamps are virtual-time seconds; ``None`` encodes the paper's
    NULL (unbounded / unused).  Instances are immutable: managers
    produce updated copies via :meth:`with_utime` rather than mutating
    shared state.
    """

    name: str
    value: str
    stime: Optional[float] = None
    etime: Optional[float] = None
    utime: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")
        if self.stime is not None and self.etime is not None and self.etime < self.stime:
            raise ValueError(
                f"attribute {self.name}: etime {self.etime} precedes stime {self.stime}"
            )

    def is_valid_at(self, now: float) -> bool:
        """True when ``now`` falls inside [stime, etime]."""
        if self.stime is not None and now < self.stime:
            return False
        if self.etime is not None and now > self.etime:
            return False
        return True

    def with_utime(self, utime: float) -> "Attribute":
        """Copy with the last-update time stamped."""
        return replace(self, utime=utime)

    @property
    def key(self) -> Tuple[str, str]:
        """Logical identity: (name, value).  Used for utime tracking
        and client-side change detection."""
        return (self.name, self.value)

    @property
    def window_key(self) -> Tuple[str, str, Optional[float], Optional[float]]:
        """Full identity including the validity window.

        Two instances of the same (name, value) with different windows
        are distinct attributes -- e.g. two scheduled blackouts both
        expressed as ``Region=ANY`` over different evenings.
        """
        return (self.name, self.value, self.stime, self.etime)

    def encode(self, enc: Encoder) -> None:
        """Append the canonical encoding to ``enc``."""
        enc.put_str(self.name)
        enc.put_str(self.value)
        enc.put_opt_f64(self.stime)
        enc.put_opt_f64(self.etime)
        enc.put_opt_f64(self.utime)

    @classmethod
    def decode(cls, dec: Decoder) -> "Attribute":
        """Read one attribute from ``dec``."""
        return cls(
            name=dec.get_str(),
            value=dec.get_str(),
            stime=dec.get_opt_f64(),
            etime=dec.get_opt_f64(),
            utime=dec.get_opt_f64(),
        )


class AttributeSet:
    """An ordered collection of attributes with match helpers.

    Order is preserved because tickets are signed over their canonical
    encoding; insertion order is the canonical order.
    """

    def __init__(self, attributes: Iterable[Attribute] = ()) -> None:
        self._attrs: List[Attribute] = list(attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attrs)

    def __len__(self) -> int:
        return len(self._attrs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributeSet):
            return NotImplemented
        return self._attrs == other._attrs

    def __repr__(self) -> str:
        return f"AttributeSet({self._attrs!r})"

    def add(self, attribute: Attribute) -> None:
        """Append an attribute, replacing any entry with the same full
        identity (name, value, stime, etime).

        Same (name, value) with a *different* window coexists: that is
        how multiple scheduled blackouts or repeated PPV windows stack
        on one channel.
        """
        self._attrs = [a for a in self._attrs if a.window_key != attribute.window_key]
        self._attrs.append(attribute)

    def remove(self, name: str, value: str) -> bool:
        """Drop the (name, value) entry; True if something was removed."""
        before = len(self._attrs)
        self._attrs = [a for a in self._attrs if a.key != (name, value)]
        return len(self._attrs) != before

    def named(self, name: str) -> List[Attribute]:
        """All attributes with the given name, in order."""
        return [a for a in self._attrs if a.name == name]

    def valid_named(self, name: str, now: float) -> List[Attribute]:
        """All *currently valid* attributes with the given name."""
        return [a for a in self._attrs if a.name == name and a.is_valid_at(now)]

    def first_value(self, name: str, now: Optional[float] = None) -> Optional[str]:
        """Value of the first (valid, if ``now`` given) attribute of ``name``."""
        for attr in self._attrs:
            if attr.name != name:
                continue
            if now is not None and not attr.is_valid_at(now):
                continue
            return attr.value
        return None

    def satisfies(self, name: str, required_value: str, now: float) -> bool:
        """Does this set satisfy the requirement ``name = required_value``?

        Implements the matching table in the module docstring.  Only
        attributes valid at ``now`` count.
        """
        valid = self.valid_named(name, now)
        if required_value == VALUE_NONE:
            return not valid
        if required_value == VALUE_ANY:
            return bool(valid)
        return any(a.value == required_value or a.value == VALUE_ALL for a in valid)

    def soonest_etime(self) -> Optional[float]:
        """The earliest expiration among members; None if all unbounded.

        The User Manager caps ticket lifetime at this value so a ticket
        never outlives any attribute it carries (Section IV-B).
        """
        etimes = [a.etime for a in self._attrs if a.etime is not None]
        return min(etimes) if etimes else None

    def utime_map(self) -> Dict[Tuple[str, str], Optional[float]]:
        """(name, value) -> newest utime, for client change detection.

        Multiple windows of one (name, value) collapse to the most
        recent update time -- the client only needs to know *that*
        something about the attribute changed.
        """
        collapsed: Dict[Tuple[str, str], Optional[float]] = {}
        for attr in self._attrs:
            current = collapsed.get(attr.key)
            if attr.key not in collapsed:
                collapsed[attr.key] = attr.utime
            elif attr.utime is not None and (current is None or attr.utime > current):
                collapsed[attr.key] = attr.utime
        return collapsed

    def encode(self, enc: Encoder) -> None:
        """Append count + members to ``enc``."""
        enc.put_u32(len(self._attrs))
        for attr in self._attrs:
            attr.encode(enc)

    #: Minimum wire size of one attribute: two empty strings (4-byte
    #: length prefixes) plus three absent opt-f64 presence bytes.
    _MIN_ATTRIBUTE_WIRE_SIZE = 11

    @classmethod
    def decode(cls, dec: Decoder) -> "AttributeSet":
        """Read a counted attribute list from ``dec``.

        The count is bounded against the remaining buffer so a hostile
        blob cannot demand billions of decodes from four bytes.
        """
        count = dec.get_count(cls._MIN_ATTRIBUTE_WIRE_SIZE)
        return cls(Attribute.decode(dec) for _ in range(count))

    def copy(self) -> "AttributeSet":
        """Shallow copy (attributes themselves are immutable)."""
        return AttributeSet(self._attrs)

"""Service directory: address-string to manager-object resolution.

The real system resolves manager farm names through DNS; in the
functional model an address string like ``"cm://partition-a"`` simply
maps to the Python object implementing that farm.  Keeping the
indirection (rather than passing objects around) preserves the
paper's deployment shape: channel descriptions carry *addresses*, the
Redirection Manager returns *addresses*, and clients resolve them at
use time -- so re-pointing a partition at a new farm is one directory
update, exactly like a DNS change.
"""

from __future__ import annotations

from typing import Dict, TypeVar

from repro.errors import ReproError, UnresolvableAddressError

T = TypeVar("T")


class ServiceDirectory:
    """A flat name service for manager farms and peers."""

    def __init__(self) -> None:
        self._entries: Dict[str, object] = {}

    def register(self, address: str, service: object) -> None:
        """Bind ``address`` to a service object (rebinding allowed)."""
        if not address:
            raise ReproError("empty service address")
        self._entries[address] = service

    def resolve(self, address: str) -> object:
        """Look up a service.

        Raises :class:`~repro.errors.UnresolvableAddressError` (a
        :class:`TransportError`) if unbound: a de-registered farm looks
        like connection refused, which failover treats as retryable.
        """
        service = self._entries.get(address)
        if service is None:
            raise UnresolvableAddressError(
                f"unresolvable service address: {address!r}"
            )
        return service

    def unregister(self, address: str) -> bool:
        """Remove a binding; True if it existed."""
        return self._entries.pop(address, None) is not None

    def addresses(self) -> "list[str]":
        """All bound addresses."""
        return list(self._entries.keys())

"""The Channel Manager: channel access authorization and viewing log.

One logical Channel Manager serves one Channel Listing Partition
(Section V); physically it may be a farm sharing one keypair, one farm
secret, and one *viewing activity log* -- the log must be shared
because renewal decisions (Section IV-D) depend on the globally latest
entry per (UserIN, channel).

Responsibilities (Sections IV-C, IV-D):

* verify presented User Tickets (User Manager signature, expiry,
  NetAddr against the live connection);
* challenge the client with a nonce and verify the signed response;
* evaluate the target channel's policies over the ticket's attributes;
* issue Channel Tickets that carry only the NetAddr -- the privacy
  intermediation point between user data and the P2P network;
* log every issuance for billing/royalties and enforce the
  one-location-per-account rule at renewal time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.challenge import ChallengeIssuer, answer_challenge
from repro.core.policy import Decision
from repro.core.policy_manager import ChannelRecord
from repro.core.ticket_cache import TicketVerificationCache
from repro.core.protocol import (
    PeerDescriptor,
    Switch1Request,
    Switch1Response,
    Switch2Request,
    Switch2Response,
)
from repro.core.tickets import ChannelTicket, UserTicket
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.errors import (
    AuthorizationError,
    PolicyRejectError,
    RateLimitError,
    RenewalRefusedError,
    TicketInvalidError,
)
from repro.trace.span import Tracer, maybe_span
from repro.util.wire import Decoder, Encoder

#: Durable-store record types (see :mod:`repro.store`).
REC_VIEWING_ENTRY = 1
REC_CHANNEL_LIST = 2
REC_REJECTION = 3

#: Returns up to ``count`` candidate peers on ``channel_id``, excluding
#: the requesting address (a client is never pointed at itself).
PeerListProvider = Callable[[str, str, int], Sequence[PeerDescriptor]]

#: Live (signature -> issuing UM key) memo entries kept per manager;
#: sized like the ticket verification cache it front-ends.
_UM_KEY_MEMO_SIZE = 1024


@dataclass(frozen=True)
class ViewingLogEntry:
    """One row of the viewing activity log (Section IV-D).

    "Every time the Channel Manager issues a new Channel Ticket, it
    logs the UserIN, channel watched, and client NetAddr."
    """

    user_id: int
    channel_id: str
    net_addr: str
    issued_at: float
    renewal: bool
    #: The issued ticket's expiry -- what the viewing actually covers.
    #: Billing and royalty reports need this because expiries can be
    #: pinned short of the lifetime (blackout/PPV boundaries).
    expires_at: Optional[float] = None

    def encode(self, enc: "Encoder") -> None:
        """Append the canonical encoding to ``enc``."""
        enc.put_u64(self.user_id)
        enc.put_str(self.channel_id)
        enc.put_str(self.net_addr)
        enc.put_f64(self.issued_at)
        enc.put_bool(self.renewal)
        enc.put_opt_f64(self.expires_at)

    @classmethod
    def decode(cls, dec: "Decoder") -> "ViewingLogEntry":
        """Read one entry from ``dec``."""
        return cls(
            user_id=dec.get_u64(),
            channel_id=dec.get_str(),
            net_addr=dec.get_str(),
            issued_at=dec.get_f64(),
            renewal=dec.get_bool(),
            expires_at=dec.get_opt_f64(),
        )


class ChannelManager:
    """A logical Channel Manager for one partition.

    Parameters
    ----------
    signing_key:
        Farm keypair; the public half is distributed with each channel
        description so peers can verify Channel Tickets.
    farm_secret:
        Authenticates nonce-challenge tokens across the farm.
    user_manager_keys:
        Public keys of every User Manager whose tickets this partition
        accepts (one per Authentication Domain).
    ticket_lifetime:
        Channel Ticket lifetime cap in seconds (further capped by the
        presented User Ticket's expiry).
    renewal_window:
        Half-width of the window around expiry inside which a renewal
        request is acceptable.
    partition:
        Channel Listing Partition name.
    ticket_cache_size:
        Bound on the signature-verification cache.  A client presents
        the same User Ticket on every switch and renewal for the
        ticket's lifetime; caching the (key, body, signature) triples
        that verified turns those repeat checks into a dict lookup.
        0 disables the cache (benchmarks use this to measure it).
    """

    def __init__(
        self,
        signing_key: RsaPrivateKey,
        farm_secret: bytes,
        drbg: HmacDrbg,
        user_manager_keys: Sequence[RsaPublicKey],
        ticket_lifetime: float = 900.0,
        renewal_window: float = 120.0,
        partition: str = "default",
        peer_list_size: int = 8,
        ticket_cache_size: int = 1024,
    ) -> None:
        self._key = signing_key
        self._issuer = ChallengeIssuer(farm_secret, drbg.fork(b"cm-challenge"))
        self._um_keys = list(user_manager_keys)
        #: signature -> the UM key that verified it (LRU): tickets do
        #: not name their issuing domain, so this keeps verification
        #: O(1) per request instead of O(domains) as the tier grows.
        self._um_key_memo: "OrderedDict[bytes, RsaPublicKey]" = OrderedDict()
        self._ticket_cache = (
            TicketVerificationCache(ticket_cache_size) if ticket_cache_size else None
        )
        self.ticket_lifetime = ticket_lifetime
        self.renewal_window = renewal_window
        self.partition = partition
        self.peer_list_size = peer_list_size
        self._channels: Dict[str, ChannelRecord] = {}
        self._log: List[ViewingLogEntry] = []
        self._latest: Dict[Tuple[int, str], ViewingLogEntry] = {}
        #: Optional sharded viewing-log router (repro.sharding): when
        #: installed, renewal checks and log appends go to the
        #: partition owning the *user*, not this farm's local log.
        self._viewing_router = None
        self._peer_list_provider: Optional[PeerListProvider] = None
        self.tickets_issued = 0
        self.renewals_issued = 0
        self.rejections = 0
        self.rate_limited = 0
        #: Per-address sliding-window JOIN/SWITCH rate limit; disabled
        #: (None) by default.  See :meth:`set_join_rate_limit`.
        self._rate_limit: Optional[Tuple[int, float]] = None
        self._request_times: Dict[str, List[float]] = {}
        #: Called as ``listener(observed_addr, now)`` whenever the rate
        #: limiter fires; the deployment wires this to the misbehavior
        #: scorecard so floods count against the flooding peer.
        self.rate_limit_listener = None
        self._store = None
        self._snapshot_every: Optional[int] = None
        self._records_since_snapshot = 0
        #: Shared tracer, attached by Deployment.enable_tracing().
        self.tracer: Optional[Tracer] = None

    @property
    def public_key(self) -> RsaPublicKey:
        """The farm's Channel Ticket verification key."""
        return self._key.public_key

    def use_signing_pool(self, pool) -> None:
        """Route Channel Ticket signing through a CryptoPool.

        Same single-seam trick as
        :meth:`UserManager.use_signing_pool
        <repro.core.user_manager.UserManager.use_signing_pool>`: the
        key is only touched via ``sign``/``public_key``, so a
        :class:`~repro.parallel.pool.PooledSigningKey` wrapper moves
        every ticket signature onto the pool.
        """
        from repro.parallel.pool import PooledSigningKey

        self._key = PooledSigningKey(self._key, pool)

    # ------------------------------------------------------------------
    # Feeds
    # ------------------------------------------------------------------

    def receive_channel_list(self, channel_list: Dict[str, ChannelRecord]) -> None:
        """Channel Policy Manager push; keep only this partition's channels."""
        self._channels = {
            cid: record
            for cid, record in channel_list.items()
            if record.partition == self.partition
        }
        if self._store is not None:
            enc = Encoder()
            enc.put_u32(len(self._channels))
            for cid in sorted(self._channels):
                enc.put_bytes(self._channels[cid].to_bytes())
            self._journal(REC_CHANNEL_LIST, enc.to_bytes())

    def add_user_manager_key(self, key: RsaPublicKey) -> None:
        """Accept tickets from an additional Authentication Domain."""
        self._um_keys.append(key)

    def set_peer_list_provider(self, provider: PeerListProvider) -> None:
        """Wire the P2P overlay's peer sampler in."""
        self._peer_list_provider = provider

    def set_viewing_router(self, router) -> None:
        """Route viewing-log traffic through a user-partitioned router.

        With many Channel Manager farms -- and channels moving between
        them -- the one-location rule only holds if every farm checks
        renewals against the *same* history for a user.  The router
        (:class:`~repro.sharding.ShardedViewingLog`) owns that history,
        partitioned by UserIN; this farm's local log remains as a
        billing/audit record of what it issued.
        """
        self._viewing_router = router

    def serves_channel(self, channel_id: str) -> bool:
        """Is this channel in my partition?"""
        return channel_id in self._channels

    # ------------------------------------------------------------------
    # Ticket verification helpers
    # ------------------------------------------------------------------

    def _verify_user_ticket(self, ticket: UserTicket, now: float) -> None:
        """Verify against any known User Manager key.

        Fig. 3 tickets do not name their issuing domain, so the first
        presentation scans the key list.  The winning key is memoized
        by signature: every later SWITCH1/SWITCH2/renewal round on the
        same ticket verifies against exactly one key, keeping per-
        request cost flat as Authentication Domains are added (the
        scan is paid once per *ticket*, not once per request).
        """
        remembered = self._um_key_memo.get(ticket.signature)
        if remembered is not None:
            self._um_key_memo.move_to_end(ticket.signature)
            ticket.verify(remembered, now, cache=self._ticket_cache)
            return
        last_error: Optional[Exception] = None
        for key in self._um_keys:
            try:
                ticket.verify(key, now, cache=self._ticket_cache)
            except AuthorizationError:
                raise
            except Exception as exc:  # SignatureError: try next domain key
                last_error = exc
                continue
            self._um_key_memo[ticket.signature] = key
            while len(self._um_key_memo) > _UM_KEY_MEMO_SIZE:
                self._um_key_memo.popitem(last=False)
            return
        raise TicketInvalidError(
            f"user ticket not signed by any known User Manager: {last_error}"
        )

    # ------------------------------------------------------------------
    # SWITCH1
    # ------------------------------------------------------------------

    def switch1(self, request: Switch1Request, now: float) -> Switch1Response:
        """First round: vet the User Ticket cheaply, return a nonce."""
        with maybe_span(
            self.tracer, "CM.SWITCH1", now=now, kind="server",
            renewal=request.is_renewal,
        ):
            return self._switch1(request, now)

    def _switch1(self, request: Switch1Request, now: float) -> Switch1Response:
        self._verify_user_ticket(request.user_ticket, now)
        if not self.serves_channel(request.target_channel):
            raise AuthorizationError(
                f"channel {request.target_channel!r} not in partition {self.partition!r}"
            )
        token = self._issuer.issue(subject=str(request.user_ticket.user_id), now=now)
        return Switch1Response(token=token)

    # ------------------------------------------------------------------
    # SWITCH2
    # ------------------------------------------------------------------

    def switch2(
        self, request: Switch2Request, observed_addr: str, now: float
    ) -> Switch2Response:
        """Second round: full checks, then issue (or renew) the ticket."""
        with maybe_span(
            self.tracer, "CM.SWITCH2", now=now, kind="server",
            renewal=request.is_renewal, channel=request.target_channel,
        ) as span:
            response = self._switch2(request, observed_addr, now)
            if span is not None:
                span.annotate("peer_list", len(response.peers))
            return response

    def set_join_rate_limit(self, limit: int, window: float) -> None:
        """Cap SWITCH2 requests per source address: ``limit`` per
        sliding ``window`` seconds.  Excess requests are refused with
        :class:`RateLimitError` *before* any signature work -- the
        point of a JOIN-flood defence is to shed load cheaply.
        """
        if limit < 1:
            raise ValueError("rate limit must allow at least one request")
        if window <= 0:
            raise ValueError("rate-limit window must be positive")
        self._rate_limit = (limit, window)

    def _check_rate_limit(self, observed_addr: str, now: float) -> None:
        if self._rate_limit is None:
            return
        limit, window = self._rate_limit
        times = self._request_times.setdefault(observed_addr, [])
        cutoff = now - window
        while times and times[0] <= cutoff:
            times.pop(0)
        if len(times) >= limit:
            self.rate_limited += 1
            if self.rate_limit_listener is not None:
                self.rate_limit_listener(observed_addr, now)
            raise RateLimitError(
                f"{observed_addr} exceeded {limit} switch requests per {window:g}s"
            )
        times.append(now)

    def _switch2(
        self, request: Switch2Request, observed_addr: str, now: float
    ) -> Switch2Response:
        self._check_rate_limit(observed_addr, now)
        user_ticket = request.user_ticket
        self._verify_user_ticket(user_ticket, now)
        user_ticket.check_net_addr(observed_addr)
        self._issuer.verify_response(
            challenge=request.token,
            subject=str(user_ticket.user_id),
            response_signature=request.signature,
            client_public_key=user_ticket.client_public_key,
            now=now,
        )
        channel_id = request.target_channel
        record = self._channels.get(channel_id)
        if record is None:
            self._note_rejection(now)
            raise AuthorizationError(
                f"channel {channel_id!r} not in partition {self.partition!r}"
            )

        if request.is_renewal:
            ticket = self._renew(request, record, observed_addr, now)
        else:
            ticket = self._issue_new(request, record, observed_addr, now)

        peers: Tuple[PeerDescriptor, ...] = ()
        if self._peer_list_provider is not None:
            peers = tuple(
                self._peer_list_provider(channel_id, observed_addr, self.peer_list_size)
            )
        return Switch2Response(ticket=ticket, peers=peers)

    def _cap_at_future_reject(
        self, record: ChannelRecord, user_ticket: UserTicket, now: float, expire: float
    ) -> float:
        """Never issue a ticket valid into a scheduled REJECT window.

        Section IV-C worries that "a user's Channel Ticket could be
        valid into the blackout period".  Policy outcomes only change
        at attribute validity boundaries (stime/etime of channel and
        user attributes), so we evaluate at each boundary inside
        (now, expire] and cap the expiry at the first one that turns
        the decision into REJECT.
        """
        compiled = record.compiled()
        boundaries = set(compiled.boundaries_between(now, expire))
        for attribute in user_ticket.attributes:
            for bound in (attribute.stime, attribute.etime):
                if bound is not None and now < bound <= expire:
                    boundaries.add(bound)
        for boundary in sorted(boundaries):
            result = compiled.evaluate(user_ticket.attributes, boundary)
            if result.decision is not Decision.ACCEPT:
                return boundary
        return expire

    def _evaluate(self, record: ChannelRecord, user_ticket: UserTicket, now: float) -> None:
        """Run policy evaluation; raise PolicyRejectError on REJECT."""
        result = record.compiled().evaluate(user_ticket.attributes, now)
        if result.decision is not Decision.ACCEPT:
            self._note_rejection(now)
            matched = str(result.matched_policy) if result.matched_policy else "default"
            raise PolicyRejectError(
                f"policy rejected user {user_ticket.user_id} on channel "
                f"{record.channel_id}: {matched}"
            )

    def _issue_new(
        self,
        request: Switch2Request,
        record: ChannelRecord,
        observed_addr: str,
        now: float,
    ) -> ChannelTicket:
        """Fresh Channel Ticket (Section IV-C)."""
        user_ticket = request.user_ticket
        self._evaluate(record, user_ticket, now)
        expire = min(now + self.ticket_lifetime, user_ticket.expire_time)
        expire = self._cap_at_future_reject(record, user_ticket, now, expire)
        ticket = ChannelTicket(
            channel_id=record.channel_id,
            user_id=user_ticket.user_id,
            client_public_key=user_ticket.client_public_key,
            net_addr=observed_addr,
            renewal=False,
            start_time=now,
            expire_time=expire,
        ).signed(self._key)
        self._append_log(ticket, now)
        self.tickets_issued += 1
        return ticket

    def _renew(
        self,
        request: Switch2Request,
        record: ChannelRecord,
        observed_addr: str,
        now: float,
    ) -> ChannelTicket:
        """Renewal (Section IV-D): viewing-log check enforces one location.

        The expiring ticket must verify (signature; expiry is checked
        against the renewal window rather than strictly), the latest
        log entry for (UserIN, channel) must show the same NetAddr as
        both tickets, and the usual policy checks must still pass.
        """
        user_ticket = request.user_ticket
        expiring = request.expiring_ticket
        assert expiring is not None
        expiring.verify(
            self.public_key,
            now=min(now, expiring.expire_time),
            cache=self._ticket_cache,
        )
        if expiring.user_id != user_ticket.user_id:
            raise TicketInvalidError("expiring ticket belongs to a different user")
        if not expiring.is_within_renewal_window(now, self.renewal_window):
            raise RenewalRefusedError(
                f"renewal outside window: now={now}, expiry={expiring.expire_time}"
            )
        if self._viewing_router is not None:
            latest = self._viewing_router.latest(
                user_ticket.user_id, expiring.channel_id
            )
        else:
            latest = self._latest.get((user_ticket.user_id, expiring.channel_id))
        if latest is None:
            raise RenewalRefusedError("no viewing-log entry to renew against")
        if latest.net_addr != user_ticket.net_addr or latest.net_addr != expiring.net_addr:
            # The account has since been used from another address: the
            # newer location wins, the old location's renewal is refused.
            raise RenewalRefusedError(
                f"viewing log shows {latest.net_addr}, ticket claims {expiring.net_addr}"
            )
        self._evaluate(record, user_ticket, now)
        expire = min(now + self.ticket_lifetime, user_ticket.expire_time)
        expire = self._cap_at_future_reject(record, user_ticket, now, expire)
        ticket = ChannelTicket(
            channel_id=expiring.channel_id,
            user_id=expiring.user_id,
            client_public_key=user_ticket.client_public_key,
            net_addr=observed_addr,
            renewal=True,
            start_time=now,
            expire_time=expire,
        ).signed(self._key)
        self._append_log(ticket, now)
        self.renewals_issued += 1
        return ticket

    def _append_log(self, ticket: ChannelTicket, now: float) -> None:
        entry = ViewingLogEntry(
            user_id=ticket.user_id,
            channel_id=ticket.channel_id,
            net_addr=ticket.net_addr,
            issued_at=now,
            renewal=ticket.renewal,
            expires_at=ticket.expire_time,
        )
        if self._viewing_router is not None:
            # Routed before any local effect: a frozen-range refusal
            # (mid-resharding) must leave no partial state behind --
            # the caller defers the whole operation and replays it
            # after cutover.
            self._viewing_router.append(entry)
        if self._store is not None:
            # Write-ahead: the entry is durable before the issuance is
            # visible to anyone (the ticket has not left the handler).
            enc = Encoder()
            entry.encode(enc)
            self._journal(REC_VIEWING_ENTRY, enc.to_bytes())
        self._log.append(entry)
        self._latest[(ticket.user_id, ticket.channel_id)] = entry

    def _note_rejection(self, now: float) -> None:
        self.rejections += 1
        if self._store is not None:
            self._journal(REC_REJECTION, Encoder().put_f64(now).to_bytes())

    # ------------------------------------------------------------------
    # Log access (billing / royalties / audits)
    # ------------------------------------------------------------------

    def viewing_log(self) -> List[ViewingLogEntry]:
        """A defensive copy of the viewing activity log, oldest first.

        Callers (analytics, royalty reports) receive their own list of
        the immutable entries: mutating the returned list can never
        corrupt the manager's internal log or its renewal decisions.
        """
        return list(self._log)

    def latest_entry(self, user_id: int, channel_id: str) -> Optional[ViewingLogEntry]:
        """The most recent log row for (UserIN, channel)."""
        return self._latest.get((user_id, channel_id))

    def viewing_log_bytes(self) -> bytes:
        """Canonical encoding of the whole log.

        Two managers hold identical viewing-log state iff these byte
        strings are equal -- the check the crash-recovery tests and
        the sim fault injector use.
        """
        enc = Encoder()
        enc.put_u32(len(self._log))
        for entry in self._log:
            entry.encode(enc)
        return enc.to_bytes()

    def share_log_with(self, other: "ChannelManager") -> None:
        """Make another instance share this farm's viewing log.

        Section V: farm instances "share a single network name/address,
        public/private key pair, and user viewing activity log."
        """
        other._log = self._log
        other._latest = self._latest

    def share_state_with(self, other: "ChannelManager") -> None:
        """Initialize a fresh replica of this farm.

        The viewing log is shared *by reference* -- the one-location
        rule only holds if every instance consults the same log -- and
        the Channel List is copied (each replica is independently
        subscribed to CPM pushes, which replace the dict wholesale).
        """
        self.share_log_with(other)
        other._channels = dict(self._channels)

    # ------------------------------------------------------------------
    # Durability (see repro.store)
    # ------------------------------------------------------------------

    def attach_store(self, store, snapshot_every: Optional[int] = None,
                     now: float = 0.0) -> None:
        """Journal every mutation to ``store`` from here on.

        An initial snapshot of the current in-memory state is taken
        immediately, so a store attached to a warm manager is complete
        from the first byte.  ``snapshot_every`` enables automatic
        compaction: after that many appended records the WAL is folded
        into a fresh snapshot.
        """
        self._store = store
        self._snapshot_every = snapshot_every
        self._records_since_snapshot = 0
        store.write_snapshot(self._snapshot_state(), taken_at=now)

    def _journal(self, rec_type: int, body: bytes) -> None:
        self._store.append(rec_type, body)
        self._records_since_snapshot += 1
        if (
            self._snapshot_every is not None
            and self._records_since_snapshot >= self._snapshot_every
        ):
            self._store.write_snapshot(self._snapshot_state())
            self._records_since_snapshot = 0

    def _snapshot_state(self) -> bytes:
        enc = Encoder()
        enc.put_str(self.partition)
        enc.put_u32(len(self._channels))
        for cid in sorted(self._channels):
            enc.put_bytes(self._channels[cid].to_bytes())
        enc.put_u32(len(self._log))
        for entry in self._log:
            entry.encode(enc)
        enc.put_u64(self.tickets_issued)
        enc.put_u64(self.renewals_issued)
        enc.put_u64(self.rejections)
        return enc.to_bytes()

    def _restore_state(self, state: bytes) -> None:
        dec = Decoder(state)
        partition = dec.get_str()
        if partition != self.partition:
            raise TicketInvalidError(
                f"store holds partition {partition!r}, manager is {self.partition!r}"
            )
        self._channels = {}
        for _ in range(dec.get_u32()):
            record = ChannelRecord.from_bytes(dec.get_view())
            self._channels[record.channel_id] = record
        self._log = []
        self._latest = {}
        for _ in range(dec.get_u32()):
            entry = ViewingLogEntry.decode(dec)
            self._log.append(entry)
            self._latest[(entry.user_id, entry.channel_id)] = entry
        self.tickets_issued = dec.get_u64()
        self.renewals_issued = dec.get_u64()
        self.rejections = dec.get_u64()
        dec.finish()

    def _apply_record(self, rec_type: int, body: bytes) -> None:
        dec = Decoder(body)
        if rec_type == REC_VIEWING_ENTRY:
            entry = ViewingLogEntry.decode(dec)
            self._log.append(entry)
            self._latest[(entry.user_id, entry.channel_id)] = entry
            if entry.renewal:
                self.renewals_issued += 1
            else:
                self.tickets_issued += 1
        elif rec_type == REC_CHANNEL_LIST:
            channels: Dict[str, ChannelRecord] = {}
            for _ in range(dec.get_u32()):
                record = ChannelRecord.from_bytes(dec.get_view())
                channels[record.channel_id] = record
            self._channels = channels
        elif rec_type == REC_REJECTION:
            dec.get_f64()
            self.rejections += 1
        else:
            raise TicketInvalidError(f"unknown WAL record type {rec_type}")
        dec.finish()

    @classmethod
    def recover(
        cls,
        store,
        *,
        signing_key: RsaPrivateKey,
        farm_secret: bytes,
        drbg: HmacDrbg,
        user_manager_keys: Sequence[RsaPublicKey],
        ticket_lifetime: float = 900.0,
        renewal_window: float = 120.0,
        partition: str = "default",
        peer_list_size: int = 8,
        snapshot_every: Optional[int] = None,
    ) -> "ChannelManager":
        """Rebuild a manager from snapshot + WAL replay.

        Key material and farm secrets are deliberately *not* in the
        store (they live in the deployment's key management, the moral
        equivalent of an HSM) -- they are passed back in, and because
        challenge tokens are MAC'd under the farm secret, a client
        holding a SWITCH1 token from before the crash can complete
        SWITCH2 against the recovered instance without re-login.
        """
        import time as _time

        started = _time.perf_counter()
        manager = cls(
            signing_key=signing_key,
            farm_secret=farm_secret,
            drbg=drbg,
            user_manager_keys=user_manager_keys,
            ticket_lifetime=ticket_lifetime,
            renewal_window=renewal_window,
            partition=partition,
            peer_list_size=peer_list_size,
        )
        state = store.load()
        if state.snapshot is not None:
            manager._restore_state(state.snapshot.state)
        for record in state.records:
            manager._apply_record(record.rec_type, record.body)
        manager._store = store
        manager._snapshot_every = snapshot_every
        manager._records_since_snapshot = len(state.records)
        store.stats.note_recovery(
            len(state.records), _time.perf_counter() - started
        )
        return manager

"""The Account Manager: out-of-band account and subscription state.

Section II: "Subscription to channel packages or individual channels,
purchasing of pay-per-view programs, or topping up of user account are
all assumed to take place out-of-band, for example at a service
provider's web site.  We will call such site the Account Manager."

Section IV-B: "When a user creates an account with the service
provider's Account Manager, the Account Manager securely sends the
user's identification, subscription, and payment information to the
User Manager."

This module models that web-site backend: account registration with a
password (stored as a salted secure hash, the ``shp`` the login
protocol encrypts challenges under), subscription packages with
validity windows, pay-per-view purchases, and balance top-ups.
Registered listeners (User Managers) are notified of every change so
their UserDBs stay current.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import AccountError


def secure_hash_password(email: str, password: str) -> bytes:
    """The ``shp`` of the login protocol: a salted hash of the password.

    The email serves as the salt so equal passwords hash differently
    across accounts.  Both the Account Manager (at registration) and
    the client (at login) compute this; the plaintext password never
    appears in any protocol message.
    """
    return hashlib.sha256(b"shp|" + email.encode("utf-8") + b"|" + password.encode("utf-8")).digest()


@dataclass(frozen=True)
class Subscription:
    """A subscribed package with a validity window.

    ``package_id`` is the value carried by the ``Subscription`` user
    attribute (e.g. ``"101"`` in Fig. 2); ``stime``/``etime`` bound the
    paid period and flow into the attribute's validity window.
    """

    package_id: str
    stime: Optional[float] = None
    etime: Optional[float] = None

    def is_current_at(self, now: float) -> bool:
        """Is the subscription paid-up at ``now``?"""
        if self.stime is not None and now < self.stime:
            return False
        if self.etime is not None and now > self.etime:
            return False
        return True


@dataclass
class UserAccount:
    """One registered user as the Account Manager sees them."""

    email: str
    shp: bytes
    subscriptions: List[Subscription] = field(default_factory=list)
    balance: float = 0.0
    suspended: bool = False

    def current_subscriptions(self, now: float) -> List[Subscription]:
        """Subscriptions whose paid window covers ``now``."""
        return [s for s in self.subscriptions if s.is_current_at(now)]

    def subscriptions_overlapping(self, start: float, end: float) -> List[Subscription]:
        """Subscriptions whose paid window intersects [start, end].

        The User Manager embeds these into tickets with their own
        stime/etime: a pay-per-view entitlement that begins mid-ticket
        must ride along now and simply *become valid* at its stime --
        that is what the attribute validity window exists for.
        """
        result = []
        for subscription in self.subscriptions:
            if subscription.stime is not None and subscription.stime > end:
                continue
            if subscription.etime is not None and subscription.etime < start:
                continue
            result.append(subscription)
        return result


AccountListener = Callable[[UserAccount], None]


class AccountManager:
    """Registration, subscriptions, payments; pushes updates to listeners.

    The Account Manager is trusted infrastructure: it holds password
    hashes and payment state.  It is *not* in the request path of any
    DRM protocol -- clients only ever talk to it out-of-band -- so it
    plays no part in the latency experiments.
    """

    def __init__(self) -> None:
        self._accounts: Dict[str, UserAccount] = {}
        self._listeners: List[AccountListener] = []

    def add_listener(self, listener: AccountListener) -> None:
        """Subscribe a User Manager to account-change notifications."""
        self._listeners.append(listener)

    def remove_listener(self, listener: AccountListener) -> bool:
        """Unsubscribe a listener (a crashed farm); True if present."""
        try:
            self._listeners.remove(listener)
            return True
        except ValueError:
            return False

    def _notify(self, account: UserAccount) -> None:
        for listener in self._listeners:
            listener(account)

    def register(self, email: str, password: str) -> UserAccount:
        """Create an account; raises if the email is taken."""
        if not email or "@" not in email:
            raise AccountError(f"invalid email: {email!r}")
        if email in self._accounts:
            raise AccountError(f"account exists: {email}")
        account = UserAccount(email=email, shp=secure_hash_password(email, password))
        self._accounts[email] = account
        self._notify(account)
        return account

    def get(self, email: str) -> UserAccount:
        """Look up an account; raises :class:`AccountError` if unknown."""
        account = self._accounts.get(email)
        if account is None:
            raise AccountError(f"no such account: {email}")
        return account

    def exists(self, email: str) -> bool:
        """True if the email is registered."""
        return email in self._accounts

    def subscribe(
        self,
        email: str,
        package_id: str,
        stime: Optional[float] = None,
        etime: Optional[float] = None,
        price: float = 0.0,
    ) -> Subscription:
        """Add a subscription, debiting the balance if priced."""
        account = self.get(email)
        if price > 0:
            if account.balance < price:
                raise AccountError(
                    f"insufficient balance for {email}: {account.balance} < {price}"
                )
            account.balance -= price
        subscription = Subscription(package_id=package_id, stime=stime, etime=etime)
        account.subscriptions.append(subscription)
        self._notify(account)
        return subscription

    def cancel_subscription(self, email: str, package_id: str) -> bool:
        """Drop all subscriptions to ``package_id``; True if any removed."""
        account = self.get(email)
        before = len(account.subscriptions)
        account.subscriptions = [
            s for s in account.subscriptions if s.package_id != package_id
        ]
        changed = len(account.subscriptions) != before
        if changed:
            self._notify(account)
        return changed

    def top_up(self, email: str, amount: float) -> float:
        """Add funds; returns the new balance."""
        if amount <= 0:
            raise AccountError("top-up amount must be positive")
        account = self.get(email)
        account.balance += amount
        self._notify(account)
        return account.balance

    def purchase_pay_per_view(
        self, email: str, program_package: str, start: float, end: float, price: float
    ) -> Subscription:
        """Pay-per-view: a priced subscription bounded to the program window."""
        return self.subscribe(email, program_package, stime=start, etime=end, price=price)

    def suspend(self, email: str) -> None:
        """Administratively suspend an account (e.g. chargeback)."""
        account = self.get(email)
        account.suspended = True
        self._notify(account)

    def reinstate(self, email: str) -> None:
        """Lift a suspension."""
        account = self.get(email)
        account.suspended = False
        self._notify(account)

    def all_accounts(self) -> List[UserAccount]:
        """Snapshot of all accounts (used when attaching a new listener)."""
        return list(self._accounts.values())

"""Rotating content keys with 8-bit serial numbers (Section IV-E).

"By re-keying the channel frequently, e.g., at one-minute interval,
the service provider can provide forward secrecy such that if a
symmetric key is lost, it can only be used to decrypt contents
generated during its corresponding one-minute period.  Each iteration
of the evolving content key can be marked with an 8-bit serial
number."

:class:`ContentKeySchedule` is the Channel Server's key generator;
:class:`ContentKeyRing` is the client/peer-side holder that keeps the
few keys that may be live at once (current + pre-distributed next +
a grace window of the previous), indexed by serial.  Serials wrap at
256; the ring handles wraparound by keeping only a small window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.crypto.drbg import HmacDrbg
from repro.crypto.stream import SymmetricKey
from repro.errors import DecryptionError, ProtocolError

SERIAL_MODULUS = 256


@dataclass(frozen=True)
class ContentKey:
    """One epoch's key: serial, material, and its activation time."""

    serial: int
    key: SymmetricKey
    activate_at: float

    def __post_init__(self) -> None:
        if not 0 <= self.serial < SERIAL_MODULUS:
            raise ValueError("serial must fit in 8 bits")


class ContentKeySchedule:
    """The Channel Server's evolving key sequence.

    Parameters
    ----------
    drbg:
        Source of key material.
    epoch:
        Rotation interval in seconds (the paper's example: 60).
    lead_time:
        How far before activation a key is released for distribution;
        "new instances of the evolving content key are sent some amount
        of time in advance of their use".
    start_time:
        Activation time of serial 0.
    """

    def __init__(
        self,
        drbg: HmacDrbg,
        epoch: float = 60.0,
        lead_time: float = 10.0,
        start_time: float = 0.0,
    ) -> None:
        if epoch <= 0:
            raise ValueError("epoch must be positive")
        if not 0 <= lead_time < epoch:
            raise ValueError("lead time must be shorter than the epoch")
        self._drbg = drbg
        self.epoch = epoch
        self.lead_time = lead_time
        self.start_time = start_time
        self._keys: Dict[int, ContentKey] = {}
        self._generated_through = -1

    def _epoch_index(self, now: float) -> int:
        if now < self.start_time:
            return 0
        return int((now - self.start_time) // self.epoch)

    def _ensure_generated(self, index: int) -> None:
        while self._generated_through < index:
            next_index = self._generated_through + 1
            serial = next_index % SERIAL_MODULUS
            key = ContentKey(
                serial=serial,
                key=SymmetricKey.generate(self._drbg),
                activate_at=self.start_time + next_index * self.epoch,
            )
            # Serial wraparound overwrites the 256-epochs-old entry,
            # which has long expired by then (256 minutes at the
            # default epoch).
            self._keys[serial] = key
            self._generated_through = next_index

    def current_key(self, now: float) -> ContentKey:
        """The key encrypting content at ``now``.

        Raises before ``start_time``: no content exists yet, and
        silently handing out the not-yet-active serial-0 key would let
        a pre-start caller decrypt the first minute of the broadcast.
        """
        if now < self.start_time:
            raise ProtocolError(
                f"key schedule starts at t={self.start_time}, queried at t={now}"
            )
        index = self._epoch_index(now)
        self._ensure_generated(index)
        return self._keys[index % SERIAL_MODULUS]

    def upcoming_key(self, now: float) -> Optional[ContentKey]:
        """The next key, once inside its distribution lead window."""
        index = self._epoch_index(now)
        next_activate = self.start_time + (index + 1) * self.epoch
        if now < next_activate - self.lead_time:
            return None
        self._ensure_generated(index + 1)
        return self._keys[(index + 1) % SERIAL_MODULUS]

    def distributable_keys(self, now: float) -> List[ContentKey]:
        """Keys a joining peer should receive right now: current (+ next)."""
        keys = [self.current_key(now)]
        upcoming = self.upcoming_key(now)
        if upcoming is not None:
            keys.append(upcoming)
        return keys

    def key_by_serial(self, serial: int) -> Optional[ContentKey]:
        """Lookup by serial among generated keys (server-side)."""
        return self._keys.get(serial % SERIAL_MODULUS)


class ContentKeyRing:
    """Client-side holder of recently received content keys.

    Duplicate deliveries (a peer with several parents receives several
    copies, Section IV-E) are detected by serial and discarded.  The
    ring keeps at most ``capacity`` keys, evicting the oldest by
    arrival order.
    """

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 2:
            raise ValueError("ring needs room for at least current+next")
        self.capacity = capacity
        self._keys: "Dict[int, ContentKey]" = {}
        self._arrival: List[int] = []
        self.duplicates_discarded = 0

    def offer(self, content_key: ContentKey) -> bool:
        """Add a key; False (and counted) if it is a duplicate.

        Serials wrap at 256, so "same serial" does not mean "same
        key": a peer stalled for >= 256 epochs still holds the old
        generation under the incoming serial.  A copy with the same
        serial and the same ``activate_at`` is a true duplicate
        (multi-parent delivery); a *later* ``activate_at`` is the next
        wrap generation and replaces the stale entry.
        """
        held = self._keys.get(content_key.serial)
        if held is not None:
            if content_key.activate_at <= held.activate_at:
                self.duplicates_discarded += 1
                return False
            # Wraparound replacement: refresh the arrival position so
            # the revived serial is not the next eviction victim.
            self._arrival.remove(content_key.serial)
        self._keys[content_key.serial] = content_key
        self._arrival.append(content_key.serial)
        while len(self._arrival) > self.capacity:
            evicted = self._arrival.pop(0)
            self._keys.pop(evicted, None)
        return True

    def is_duplicate(self, serial: int, activate_at: float) -> bool:
        """Would offering ``(serial, activate_at)`` be discarded?

        The dedup check callers must use instead of :meth:`has`:
        serial equality alone misclassifies a post-wraparound fresh
        key as a duplicate.
        """
        held = self._keys.get(serial)
        return held is not None and activate_at <= held.activate_at

    def get(self, serial: int) -> ContentKey:
        """The key for a packet's serial byte; raises if unknown."""
        key = self._keys.get(serial)
        if key is None:
            raise DecryptionError(f"no content key with serial {serial}")
        return key

    def has(self, serial: int) -> bool:
        """Is this serial currently held?"""
        return serial in self._keys

    def serials(self) -> List[int]:
        """Held serials in arrival order."""
        return list(self._arrival)

"""The Channel Server: ingest, encode, encrypt (Fig. 1, Section IV-E).

"Live content is ingested and encoded at the Channel Server.  If the
service provider wishes to encrypt the content for distribution,
encryption can be done at the Channel Server using symmetric key
encryption."

One Channel Server per channel.  It owns the channel's
:class:`~repro.core.keystream.ContentKeySchedule`, turns (synthetic)
media frames into encrypted :class:`~repro.core.packets.ContentPacket`
objects, and hands the current/upcoming content keys to the overlay
root for pair-wise distribution.  Some providers run *unencrypted* but
access-controlled channels (footnote 2 of the paper); ``encrypted=False``
models that: packets pass through in the clear while channel access
authorization still applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.keystream import ContentKey, ContentKeySchedule
from repro.core.packets import ContentPacket, encrypt_packet, encrypt_packets
from repro.crypto.drbg import HmacDrbg
from repro.trace.span import Tracer, maybe_span


@dataclass(frozen=True)
class MediaFrame:
    """A synthetic encoded media frame from the ingest pipeline."""

    sequence: int
    payload: bytes
    timestamp: float


class ChannelServer:
    """Source of one channel's encrypted stream.

    Parameters
    ----------
    channel_id:
        The channel this server feeds.
    drbg:
        Key/material source (forked per channel by the deployment).
    key_epoch:
        Content-key rotation interval in seconds (paper example: 60).
    key_lead_time:
        Pre-distribution lead for upcoming keys.
    frame_size:
        Bytes per synthetic media frame (models the encoded bitrate:
        at 25 frames/s, 4 kB frames ~ 800 kbit/s).
    encrypted:
        False models public-mandate broadcasters who control access
        but refuse encryption (footnote 2).
    """

    def __init__(
        self,
        channel_id: str,
        drbg: HmacDrbg,
        key_epoch: float = 60.0,
        key_lead_time: float = 10.0,
        frame_size: int = 4096,
        encrypted: bool = True,
        start_time: float = 0.0,
    ) -> None:
        self.channel_id = channel_id
        self.encrypted = encrypted
        self.frame_size = frame_size
        self._payload_drbg = drbg.fork(b"payload")
        self.schedule = ContentKeySchedule(
            drbg.fork(b"keys"),
            epoch=key_epoch,
            lead_time=key_lead_time,
            start_time=start_time,
        )
        self._sequence = 0
        self.packets_emitted = 0
        #: Shared tracer, attached by Deployment.enable_tracing().
        self.tracer: Optional[Tracer] = None
        #: Shared CryptoPool, attached by Deployment.enable_multicore():
        #: batch sealing in :meth:`emit_packets` fans out across worker
        #: processes.  None = everything runs in-process.
        self.crypto_pool = None

    def ingest_frame(self, now: float, payload: Optional[bytes] = None) -> MediaFrame:
        """Produce one encoded frame (synthetic payload unless given)."""
        if payload is None:
            payload = self._payload_drbg.generate(self.frame_size)
        frame = MediaFrame(sequence=self._sequence, payload=payload, timestamp=now)
        self._sequence += 1
        return frame

    def emit_packet(self, now: float, payload: Optional[bytes] = None) -> ContentPacket:
        """Ingest one frame and seal it under the current content key.

        ``packets_emitted`` counts only packets that actually leave the
        server: the key lookup runs *before* the frame is ingested and
        counted, so a pre-start ``ProtocolError`` neither inflates the
        counter nor burns a sequence number.
        """
        if not self.encrypted:
            # Unencrypted channels still carry the serial byte (0) and
            # sequence so the packet format is uniform on the overlay.
            frame = self.ingest_frame(now, payload)
            self.packets_emitted += 1
            return ContentPacket(serial=0, sequence=frame.sequence, ciphertext=frame.payload)
        content_key = self.schedule.current_key(now)
        frame = self.ingest_frame(now, payload)
        packet = encrypt_packet(content_key, self.channel_id, frame.sequence, frame.payload)
        self.packets_emitted += 1
        return packet

    def emit_packets(self, now: float, count: int) -> List[ContentPacket]:
        """Ingest and seal a whole batch of frames (e.g. one GOP).

        All ``count`` frames share the content key active at ``now``
        (a GOP never straddles an epoch at realistic frame rates), so
        the schedule is consulted once and the batch is sealed through
        :func:`~repro.core.packets.encrypt_packets`, which amortizes
        the per-key cipher state and the AAD encoding over the batch.
        """
        if count <= 0:
            return []
        if not self.encrypted:
            frames = [self.ingest_frame(now) for _ in range(count)]
            self.packets_emitted += count
            return [
                ContentPacket(serial=0, sequence=f.sequence, ciphertext=f.payload)
                for f in frames
            ]
        content_key = self.schedule.current_key(now)
        frames = [self.ingest_frame(now) for _ in range(count)]
        packets = encrypt_packets(
            content_key,
            self.channel_id,
            [(f.sequence, f.payload) for f in frames],
            pool=self.crypto_pool,
        )
        self.packets_emitted += count
        return packets

    def current_key(self, now: float) -> ContentKey:
        """The active content key (for the overlay root)."""
        return self.schedule.current_key(now)

    def keys_for_join(self, now: float) -> List[ContentKey]:
        """Keys a newly joined peer must receive immediately."""
        with maybe_span(
            self.tracer, "CS.KEYS", now=now, kind="server", channel=self.channel_id
        ) as span:
            keys = self.schedule.distributable_keys(now)
            if span is not None:
                span.annotate("keys", len(keys))
            return keys

    def upcoming_key(self, now: float) -> Optional[ContentKey]:
        """The next key once within its distribution lead window."""
        return self.schedule.upcoming_key(now)

"""The User Manager: authentication, UserDB, and User Ticket issuance.

Implements the login protocol of Section IV-F1 (Fig. 4a) in its
stateless-farm form (Section V): the LOGIN1 server packs everything
the LOGIN2 server needs into a MAC'd challenge token, so the two
rounds may land on different physical instances sharing only the farm
keypair and farm secret.

Login flow
----------
LOGIN1  client sends email + its public key.  The UM replies with
        (a) a challenge token carrying a *commitment* (hash) of a
        fresh nonce, and (b) a blob encrypted under the secure hash of
        the user's password (``shp``) containing the nonce itself, the
        attestation checksum parameters, and the server clock.
LOGIN2  the client -- having proven it knows the password by
        decrypting the blob -- returns the nonce, the checksum it
        computed over its own binary with the given parameters, and
        its version, all signed with its private key.  The UM checks
        the commitment (password proof), the signature (key
        possession proof), the checksum against the registered client
        image (attestation), and the version floor, then issues the
        signed User Ticket.

Checksum parameters are *derived* from the nonce commitment with the
farm secret rather than stored, keeping LOGIN2 stateless.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.accounts import UserAccount
from repro.core.attributes import (
    ATTR_AS,
    ATTR_NETADDR,
    ATTR_REGION,
    ATTR_SUBSCRIPTION,
    ATTR_VERSION,
    Attribute,
    AttributeSet,
    VALUE_ALL,
    VALUE_ANY,
    VALUE_NONE,
)
from repro.core.challenge import Challenge, ChallengeIssuer
from repro.core.protocol import (
    Login1Request,
    Login1Response,
    Login2Request,
    Login2Response,
)
from repro.core.tickets import UserTicket
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.crypto.stream import SymmetricKey
from repro.errors import (
    AccountError,
    AttestationError,
    ChallengeError,
    ProtocolError,
    SignatureError,
)
from repro.util.wire import Decoder, Encoder

_NONCE_LEN = 16
_SALT_LEN = 8
_DEFAULT_CHECKSUM_WINDOW = 4096


@dataclass
class ChecksumParams:
    """Parameters for the remote-attestation checksum (Section IV-F1)."""

    salt: bytes
    offset_seed: int
    length: int

    def compute(self, image: bytes) -> bytes:
        """Checksum of ``image`` under these parameters.

        The offset seed is reduced modulo the image's usable window so
        both sides (whose only shared context is the parameters and
        the image) agree without exchanging the image length.
        """
        if not image:
            raise AttestationError("empty client image")
        length = min(self.length, len(image))
        span = len(image) - length + 1
        offset = self.offset_seed % span
        return hashlib.sha256(self.salt + image[offset : offset + length]).digest()


@dataclass
class UserRecord:
    """One row of the UserDB."""

    user_id: int
    email: str
    shp: bytes
    account: UserAccount


class UserManager:
    """A logical User Manager (possibly a farm of instances).

    Parameters
    ----------
    signing_key:
        The farm's shared keypair; its public half verifies every User
        Ticket downstream.
    farm_secret:
        Shared secret authenticating challenge tokens across the farm.
    drbg:
        Source of nonces and user-id randomization.
    geo:
        The GeoIP/AS database used to derive Region and AS attributes.
    ticket_lifetime:
        Default User Ticket lifetime in seconds.  The paper recommends
        "less than the average length of a program in the channel";
        the production default modelled here is 30 minutes.
    min_version:
        Minimum acceptable client version string (lexicographic parts
        compare, e.g. "4.0.5").
    domain:
        Authentication Domain name this manager serves (Section V).
    """

    def __init__(
        self,
        signing_key: RsaPrivateKey,
        farm_secret: bytes,
        drbg: HmacDrbg,
        geo,
        ticket_lifetime: float = 1800.0,
        min_version: str = "1.0.0",
        domain: str = "default",
        challenge_max_age: float = 60.0,
        user_id_start: int = 1,
        user_id_stride: int = 1,
    ) -> None:
        self._key = signing_key
        self._secret = farm_secret
        self._drbg = drbg
        self._geo = geo
        self.ticket_lifetime = ticket_lifetime
        self.min_version = min_version
        self.domain = domain
        self._issuer = ChallengeIssuer(farm_secret, drbg.fork(b"um-challenge"), challenge_max_age)
        self._users_by_email: Dict[str, UserRecord] = {}
        self._users_by_id: Dict[int, UserRecord] = {}
        # Interleaved id spaces keep UserINs globally unique when
        # multiple Authentication Domains feed the same Channel
        # Managers (whose viewing log is keyed by UserIN).
        if user_id_start < 1 or user_id_stride < 1:
            raise ValueError("user id start and stride must be >= 1")
        self._next_user_id = user_id_start
        self._user_id_stride = user_id_stride
        self._channel_attribute_list = AttributeSet()
        self._client_images: Dict[str, bytes] = {}
        self.logins_issued = 0

    @property
    def public_key(self) -> RsaPublicKey:
        """The farm's ticket-verification key."""
        return self._key.public_key

    # ------------------------------------------------------------------
    # Feeds from other managers
    # ------------------------------------------------------------------

    def sync_account(self, account: UserAccount) -> UserRecord:
        """Account Manager push: create or refresh a UserDB row.

        First sync "generates a unique user identification number
        (UserIN) ... and creates a new entry in its user database"
        (Section IV-B).
        """
        record = self._users_by_email.get(account.email)
        if record is None:
            record = UserRecord(
                user_id=self._next_user_id,
                email=account.email,
                shp=account.shp,
                account=account,
            )
            self._next_user_id += self._user_id_stride
            self._users_by_email[account.email] = record
            self._users_by_id[record.user_id] = record
        else:
            record.shp = account.shp
            record.account = account
        return record

    def receive_channel_attribute_list(self, attributes: AttributeSet) -> None:
        """Channel Policy Manager push (Section IV-A)."""
        self._channel_attribute_list = attributes

    def register_client_image(self, version: str, image: bytes) -> None:
        """Register a released client binary for attestation checks."""
        if not image:
            raise ValueError("client image must be non-empty")
        self._client_images[version] = bytes(image)

    # ------------------------------------------------------------------
    # LOGIN1
    # ------------------------------------------------------------------

    def login1(self, request: Login1Request, now: float) -> Login1Response:
        """Handle the first login round."""
        record = self._users_by_email.get(request.email)
        if record is None:
            raise AccountError(f"unknown user: {request.email}")
        if record.account.suspended:
            raise AccountError(f"account suspended: {request.email}")
        nonce = self._drbg.generate(_NONCE_LEN)
        commitment = hashlib.sha256(b"commit|" + nonce).digest()
        token = self._issuer.issue(subject=request.email, now=now)
        # Rebind the token's nonce slot to the commitment: LOGIN2 can
        # then check the revealed nonce without the farm storing it.
        token = Challenge(
            subject=token.subject,
            nonce=commitment,
            issued_at=token.issued_at,
            mac=self._commitment_mac(request.email, commitment, token.issued_at),
        )
        params = self._derive_checksum_params(commitment)
        blob_nonce = int.from_bytes(self._drbg.generate(8), "big")
        enc = Encoder()
        enc.put_bytes(nonce)
        enc.put_bytes(params.salt)
        enc.put_u32(params.offset_seed)
        enc.put_u32(params.length)
        enc.put_f64(now)  # timing information for client clock sync
        blob_key = SymmetricKey(material=record.shp[:16])
        blob = blob_key.encrypt(enc.to_bytes(), nonce=blob_nonce, aad=b"login1")
        return Login1Response(token=token, encrypted_blob=blob, blob_nonce=blob_nonce)

    def _commitment_mac(self, email: str, commitment: bytes, issued_at: float) -> bytes:
        enc = Encoder()
        enc.put_str(email)
        enc.put_bytes(commitment)
        enc.put_f64(issued_at)
        return hmac.new(self._secret, b"umtok|" + enc.to_bytes(), hashlib.sha256).digest()

    def _derive_checksum_params(self, commitment: bytes) -> ChecksumParams:
        """Derive attestation parameters from the commitment (stateless)."""
        raw = hmac.new(self._secret, b"cksum|" + commitment, hashlib.sha256).digest()
        return ChecksumParams(
            salt=raw[:_SALT_LEN],
            offset_seed=int.from_bytes(raw[_SALT_LEN : _SALT_LEN + 4], "big"),
            length=_DEFAULT_CHECKSUM_WINDOW,
        )

    # ------------------------------------------------------------------
    # LOGIN2
    # ------------------------------------------------------------------

    def login2(
        self, request: Login2Request, observed_addr: str, now: float
    ) -> Login2Response:
        """Handle the second login round and issue the User Ticket."""
        record = self._users_by_email.get(request.email)
        if record is None:
            raise AccountError(f"unknown user: {request.email}")
        if record.account.suspended:
            raise AccountError(f"account suspended: {request.email}")

        token = request.token
        expected_mac = self._commitment_mac(request.email, token.nonce, token.issued_at)
        if not hmac.compare_digest(expected_mac, token.mac):
            raise ChallengeError("login token MAC invalid")
        if token.subject != request.email:
            raise ChallengeError("login token subject mismatch")
        age = now - token.issued_at
        if age < 0 or age > self._issuer.max_age:
            raise ChallengeError(f"login token expired (age {age:.1f}s)")

        commitment = hashlib.sha256(b"commit|" + request.nonce).digest()
        if not hmac.compare_digest(commitment, token.nonce):
            raise ChallengeError("nonce does not match commitment (wrong password?)")

        signed_payload = request.nonce + request.checksum + request.version.encode("utf-8")
        try:
            request.client_public_key.verify(signed_payload, request.signature)
        except SignatureError as exc:
            raise ChallengeError("login response signature invalid") from exc

        if _version_tuple(request.version) < _version_tuple(self.min_version):
            raise ProtocolError(
                f"client version {request.version} below minimum {self.min_version}"
            )

        image = self._client_images.get(request.version)
        if image is None:
            raise AttestationError(f"unknown client version: {request.version}")
        params = self._derive_checksum_params(token.nonce)
        expected_checksum = params.compute(image)
        if not hmac.compare_digest(expected_checksum, request.checksum):
            raise AttestationError("client image checksum mismatch")

        attributes = self._build_attributes(record, observed_addr, request.version, now)
        expire = now + self.ticket_lifetime
        soonest = attributes.soonest_etime()
        if soonest is not None:
            expire = min(expire, soonest)
        ticket = UserTicket(
            user_id=record.user_id,
            client_public_key=request.client_public_key,
            start_time=now,
            expire_time=expire,
            attributes=attributes,
        ).signed(self._key)
        self.logins_issued += 1
        return Login2Response(ticket=ticket, server_time=now)

    # ------------------------------------------------------------------
    # Attribute generation (Section IV-B, Table I)
    # ------------------------------------------------------------------

    def _build_attributes(
        self, record: UserRecord, observed_addr: str, version: str, now: float
    ) -> AttributeSet:
        """Generate user attributes from the three data sources.

        (1) account/subscription info, (2) connection info, (3) the
        Channel Attribute List (for utime stamping).
        """
        attrs = AttributeSet()
        attrs.add(self._stamp(Attribute(name=ATTR_NETADDR, value=observed_addr)))
        geo_record = self._geo.lookup(observed_addr)
        if geo_record is not None:
            attrs.add(self._stamp(Attribute(name=ATTR_REGION, value=geo_record.region)))
            attrs.add(self._stamp(Attribute(name=ATTR_AS, value=str(geo_record.asn))))
        attrs.add(self._stamp(Attribute(name=ATTR_VERSION, value=version)))
        # Any subscription overlapping the ticket's lifetime rides
        # along with its own validity window; ones starting mid-ticket
        # (a pay-per-view program) become valid exactly at their stime.
        for subscription in record.account.subscriptions_overlapping(
            now, now + self.ticket_lifetime
        ):
            attrs.add(
                self._stamp(
                    Attribute(
                        name=ATTR_SUBSCRIPTION,
                        value=subscription.package_id,
                        stime=subscription.stime,
                        etime=subscription.etime,
                    )
                )
            )
        return attrs

    def _stamp(self, attribute: Attribute) -> Attribute:
        """Copy the matching Channel Attribute List utime onto ``attribute``.

        An exact (name, value) entry's utime applies; additionally any
        special-valued (ANY/ALL/NONE) channel attribute of the same
        name bumps the utime, so e.g. a blackout expressed as
        ``Region=ANY`` still prompts clients to refresh their Channel
        List.
        """
        best: Optional[float] = None
        for entry in self._channel_attribute_list:
            if entry.name != attribute.name or entry.utime is None:
                continue
            if entry.value == attribute.value or entry.value in (
                VALUE_ANY,
                VALUE_ALL,
                VALUE_NONE,
            ):
                if best is None or entry.utime > best:
                    best = entry.utime
        if best is None:
            return attribute
        return attribute.with_utime(best)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------

    def user_by_email(self, email: str) -> Optional[UserRecord]:
        """UserDB lookup by email."""
        return self._users_by_email.get(email)

    def user_count(self) -> int:
        """Number of UserDB rows."""
        return len(self._users_by_email)


def _version_tuple(version: str) -> Tuple[int, ...]:
    """Parse "4.0.5" into (4, 0, 5) for comparison; raises on junk."""
    try:
        return tuple(int(part) for part in version.split("."))
    except ValueError as exc:
        raise ProtocolError(f"unparseable version: {version!r}") from exc

"""The User Manager: authentication, UserDB, and User Ticket issuance.

Implements the login protocol of Section IV-F1 (Fig. 4a) in its
stateless-farm form (Section V): the LOGIN1 server packs everything
the LOGIN2 server needs into a MAC'd challenge token, so the two
rounds may land on different physical instances sharing only the farm
keypair and farm secret.

Login flow
----------
LOGIN1  client sends email + its public key.  The UM replies with
        (a) a challenge token carrying a *commitment* (hash) of a
        fresh nonce, and (b) a blob encrypted under the secure hash of
        the user's password (``shp``) containing the nonce itself, the
        attestation checksum parameters, and the server clock.
LOGIN2  the client -- having proven it knows the password by
        decrypting the blob -- returns the nonce, the checksum it
        computed over its own binary with the given parameters, and
        its version, all signed with its private key.  The UM checks
        the commitment (password proof), the signature (key
        possession proof), the checksum against the registered client
        image (attestation), and the version floor, then issues the
        signed User Ticket.

Checksum parameters are *derived* from the nonce commitment with the
farm secret rather than stored, keeping LOGIN2 stateless.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.accounts import Subscription, UserAccount
from repro.core.attributes import (
    ATTR_AS,
    ATTR_NETADDR,
    ATTR_REGION,
    ATTR_SUBSCRIPTION,
    ATTR_VERSION,
    Attribute,
    AttributeSet,
    VALUE_ALL,
    VALUE_ANY,
    VALUE_NONE,
)
from repro.core.challenge import Challenge, ChallengeIssuer
from repro.core.protocol import (
    Login1Request,
    Login1Response,
    Login2Request,
    Login2Response,
)
from repro.core.tickets import UserTicket
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.crypto.stream import SymmetricKey
from repro.errors import (
    AccountError,
    AttestationError,
    ChallengeError,
    ProtocolError,
    SignatureError,
)
from repro.trace.span import Tracer, maybe_span
from repro.util.wire import Decoder, Encoder

_NONCE_LEN = 16
_SALT_LEN = 8
_DEFAULT_CHECKSUM_WINDOW = 4096

#: Durable-store record types (see :mod:`repro.store`).
REC_USER_RECORD = 1
REC_CLIENT_IMAGE = 2
REC_ATTRIBUTE_LIST = 3
REC_LOGIN_ISSUED = 4
REC_USER_REMOVED = 5


@dataclass
class ChecksumParams:
    """Parameters for the remote-attestation checksum (Section IV-F1)."""

    salt: bytes
    offset_seed: int
    length: int

    def compute(self, image: bytes) -> bytes:
        """Checksum of ``image`` under these parameters.

        The offset seed is reduced modulo the image's usable window so
        both sides (whose only shared context is the parameters and
        the image) agree without exchanging the image length.
        """
        if not image:
            raise AttestationError("empty client image")
        length = min(self.length, len(image))
        span = len(image) - length + 1
        offset = self.offset_seed % span
        return hashlib.sha256(self.salt + image[offset : offset + length]).digest()


@dataclass
class UserRecord:
    """One row of the UserDB."""

    user_id: int
    email: str
    shp: bytes
    account: UserAccount

    def encode(self, enc: Encoder) -> None:
        """Append the canonical encoding (the WAL/snapshot row form)."""
        enc.put_u64(self.user_id)
        enc.put_str(self.email)
        enc.put_bytes(self.shp)
        enc.put_f64(self.account.balance)
        enc.put_bool(self.account.suspended)
        enc.put_u32(len(self.account.subscriptions))
        for subscription in self.account.subscriptions:
            enc.put_str(subscription.package_id)
            enc.put_opt_f64(subscription.stime)
            enc.put_opt_f64(subscription.etime)

    @classmethod
    def decode(cls, dec: Decoder) -> "UserRecord":
        """Rebuild a row (with a detached account image) from ``dec``."""
        user_id = dec.get_u64()
        email = dec.get_str()
        shp = dec.get_bytes()
        balance = dec.get_f64()
        suspended = dec.get_bool()
        subscriptions = [
            Subscription(
                package_id=dec.get_str(),
                stime=dec.get_opt_f64(),
                etime=dec.get_opt_f64(),
            )
            for _ in range(dec.get_u32())
        ]
        account = UserAccount(
            email=email,
            shp=shp,
            subscriptions=subscriptions,
            balance=balance,
            suspended=suspended,
        )
        return cls(user_id=user_id, email=email, shp=shp, account=account)


class UserManager:
    """A logical User Manager (possibly a farm of instances).

    Parameters
    ----------
    signing_key:
        The farm's shared keypair; its public half verifies every User
        Ticket downstream.
    farm_secret:
        Shared secret authenticating challenge tokens across the farm.
    drbg:
        Source of nonces and user-id randomization.
    geo:
        The GeoIP/AS database used to derive Region and AS attributes.
    ticket_lifetime:
        Default User Ticket lifetime in seconds.  The paper recommends
        "less than the average length of a program in the channel";
        the production default modelled here is 30 minutes.
    min_version:
        Minimum acceptable client version string (lexicographic parts
        compare, e.g. "4.0.5").
    domain:
        Authentication Domain name this manager serves (Section V).
    """

    def __init__(
        self,
        signing_key: RsaPrivateKey,
        farm_secret: bytes,
        drbg: HmacDrbg,
        geo,
        ticket_lifetime: float = 1800.0,
        min_version: str = "1.0.0",
        domain: str = "default",
        challenge_max_age: float = 60.0,
        user_id_start: int = 1,
        user_id_stride: int = 1,
    ) -> None:
        self._key = signing_key
        self._secret = farm_secret
        self._drbg = drbg
        self._geo = geo
        self.ticket_lifetime = ticket_lifetime
        self.min_version = min_version
        self.domain = domain
        self._issuer = ChallengeIssuer(farm_secret, drbg.fork(b"um-challenge"), challenge_max_age)
        self._users_by_email: Dict[str, UserRecord] = {}
        self._users_by_id: Dict[int, UserRecord] = {}
        # Interleaved id spaces keep UserINs globally unique when
        # multiple Authentication Domains feed the same Channel
        # Managers (whose viewing log is keyed by UserIN).
        if user_id_start < 1 or user_id_stride < 1:
            raise ValueError("user id start and stride must be >= 1")
        self._next_user_id = user_id_start
        self._user_id_stride = user_id_stride
        self._channel_attribute_list = AttributeSet()
        self._attr_utime_index: Dict[str, List[Attribute]] = {}
        self._client_images: Dict[str, bytes] = {}
        self.logins_issued = 0
        self._store = None
        self._snapshot_every: Optional[int] = None
        self._records_since_snapshot = 0
        #: Shared tracer, attached by Deployment.enable_tracing().
        self.tracer: Optional[Tracer] = None

    @property
    def public_key(self) -> RsaPublicKey:
        """The farm's ticket-verification key."""
        return self._key.public_key

    def use_signing_pool(self, pool) -> None:
        """Route User Ticket signing through a CryptoPool.

        The manager touches its farm key only via ``sign`` and
        ``public_key``, so wrapping it in a
        :class:`~repro.parallel.pool.PooledSigningKey` is the whole
        change; the wrapper unwraps nested pooling, so calling this
        again (or with a new pool) simply re-targets the key.
        """
        from repro.parallel.pool import PooledSigningKey

        self._key = PooledSigningKey(self._key, pool)

    # ------------------------------------------------------------------
    # Feeds from other managers
    # ------------------------------------------------------------------

    def sync_account(self, account: UserAccount) -> UserRecord:
        """Account Manager push: create or refresh a UserDB row.

        First sync "generates a unique user identification number
        (UserIN) ... and creates a new entry in its user database"
        (Section IV-B).
        """
        record = self._users_by_email.get(account.email)
        if record is None:
            # Replicas share the user dicts but not the id counter --
            # skip ids another instance already allocated.
            while self._next_user_id in self._users_by_id:
                self._next_user_id += self._user_id_stride
            record = UserRecord(
                user_id=self._next_user_id,
                email=account.email,
                shp=account.shp,
                account=account,
            )
            self._next_user_id += self._user_id_stride
            self._users_by_email[account.email] = record
            self._users_by_id[record.user_id] = record
        else:
            record.shp = account.shp
            record.account = account
        if self._store is not None:
            enc = Encoder()
            record.encode(enc)
            self._journal(REC_USER_RECORD, enc.to_bytes())
        return record

    def receive_channel_attribute_list(self, attributes: AttributeSet) -> None:
        """Channel Policy Manager push (Section IV-A)."""
        self._channel_attribute_list = attributes
        self._rebuild_attr_index()
        if self._store is not None:
            enc = Encoder()
            attributes.encode(enc)
            self._journal(REC_ATTRIBUTE_LIST, enc.to_bytes())

    def _rebuild_attr_index(self) -> None:
        """Per-name index over utime-carrying channel attributes.

        ``_stamp`` runs once per generated user attribute on every
        LOGIN2; scanning the whole collated Channel Attribute List
        each time is O(channels) per login.  Only entries that carry a
        utime matter to stamping, and only same-name entries can ever
        match, so index exactly those.  Rebuilt on every CPM push (the
        push replaces the list wholesale).
        """
        index: Dict[str, List[Attribute]] = {}
        for entry in self._channel_attribute_list:
            if entry.utime is not None:
                index.setdefault(entry.name, []).append(entry)
        self._attr_utime_index = index

    def share_state_with(self, other: "UserManager") -> None:
        """Initialize a fresh replica of this farm.

        Section V's farm contract: instances share one name, one key
        pair, and one user database.  The user dicts and image registry
        are shared *by reference* (a login handled by any replica is
        visible to all); the Channel Attribute List is copied, since
        CPM pushes replace it wholesale per subscribed instance.
        """
        other._users_by_email = self._users_by_email
        other._users_by_id = self._users_by_id
        other._client_images = self._client_images
        other._channel_attribute_list = self._channel_attribute_list
        other._rebuild_attr_index()
        other._next_user_id = self._next_user_id

    def register_client_image(self, version: str, image: bytes) -> None:
        """Register a released client binary for attestation checks."""
        if not image:
            raise ValueError("client image must be non-empty")
        self._client_images[version] = bytes(image)
        if self._store is not None:
            enc = Encoder()
            enc.put_str(version)
            enc.put_bytes(self._client_images[version])
            self._journal(REC_CLIENT_IMAGE, enc.to_bytes())

    # ------------------------------------------------------------------
    # LOGIN1
    # ------------------------------------------------------------------

    def login1(self, request: Login1Request, now: float) -> Login1Response:
        """Handle the first login round."""
        with maybe_span(self.tracer, "UM.LOGIN1", now=now, kind="server"):
            return self._login1(request, now)

    def _login1(self, request: Login1Request, now: float) -> Login1Response:
        record = self._users_by_email.get(request.email)
        if record is None:
            raise AccountError(f"unknown user: {request.email}")
        if record.account.suspended:
            raise AccountError(f"account suspended: {request.email}")
        nonce = self._drbg.generate(_NONCE_LEN)
        commitment = hashlib.sha256(b"commit|" + nonce).digest()
        token = self._issuer.issue(subject=request.email, now=now)
        # Rebind the token's nonce slot to the commitment: LOGIN2 can
        # then check the revealed nonce without the farm storing it.
        token = Challenge(
            subject=token.subject,
            nonce=commitment,
            issued_at=token.issued_at,
            mac=self._commitment_mac(request.email, commitment, token.issued_at),
        )
        params = self._derive_checksum_params(commitment)
        blob_nonce = int.from_bytes(self._drbg.generate(8), "big")
        enc = Encoder()
        enc.put_bytes(nonce)
        enc.put_bytes(params.salt)
        enc.put_u32(params.offset_seed)
        enc.put_u32(params.length)
        enc.put_f64(now)  # timing information for client clock sync
        blob_key = SymmetricKey(material=record.shp[:16])
        blob = blob_key.encrypt(enc.to_bytes(), nonce=blob_nonce, aad=b"login1")
        return Login1Response(token=token, encrypted_blob=blob, blob_nonce=blob_nonce)

    def _commitment_mac(self, email: str, commitment: bytes, issued_at: float) -> bytes:
        enc = Encoder()
        enc.put_str(email)
        enc.put_bytes(commitment)
        enc.put_f64(issued_at)
        return hmac.new(self._secret, b"umtok|" + enc.to_bytes(), hashlib.sha256).digest()

    def _derive_checksum_params(self, commitment: bytes) -> ChecksumParams:
        """Derive attestation parameters from the commitment (stateless)."""
        raw = hmac.new(self._secret, b"cksum|" + commitment, hashlib.sha256).digest()
        return ChecksumParams(
            salt=raw[:_SALT_LEN],
            offset_seed=int.from_bytes(raw[_SALT_LEN : _SALT_LEN + 4], "big"),
            length=_DEFAULT_CHECKSUM_WINDOW,
        )

    # ------------------------------------------------------------------
    # LOGIN2
    # ------------------------------------------------------------------

    def login2(
        self, request: Login2Request, observed_addr: str, now: float
    ) -> Login2Response:
        """Handle the second login round and issue the User Ticket."""
        with maybe_span(self.tracer, "UM.LOGIN2", now=now, kind="server"):
            return self._login2(request, observed_addr, now)

    def _login2(
        self, request: Login2Request, observed_addr: str, now: float
    ) -> Login2Response:
        record = self._users_by_email.get(request.email)
        if record is None:
            raise AccountError(f"unknown user: {request.email}")
        if record.account.suspended:
            raise AccountError(f"account suspended: {request.email}")

        token = request.token
        expected_mac = self._commitment_mac(request.email, token.nonce, token.issued_at)
        if not hmac.compare_digest(expected_mac, token.mac):
            raise ChallengeError("login token MAC invalid")
        if token.subject != request.email:
            raise ChallengeError("login token subject mismatch")
        age = now - token.issued_at
        if age < 0 or age > self._issuer.max_age:
            raise ChallengeError(f"login token expired (age {age:.1f}s)")

        commitment = hashlib.sha256(b"commit|" + request.nonce).digest()
        if not hmac.compare_digest(commitment, token.nonce):
            raise ChallengeError("nonce does not match commitment (wrong password?)")

        signed_payload = request.nonce + request.checksum + request.version.encode("utf-8")
        try:
            request.client_public_key.verify(signed_payload, request.signature)
        except SignatureError as exc:
            raise ChallengeError("login response signature invalid") from exc

        if _version_tuple(request.version) < _version_tuple(self.min_version):
            raise ProtocolError(
                f"client version {request.version} below minimum {self.min_version}"
            )

        image = self._client_images.get(request.version)
        if image is None:
            raise AttestationError(f"unknown client version: {request.version}")
        params = self._derive_checksum_params(token.nonce)
        expected_checksum = params.compute(image)
        if not hmac.compare_digest(expected_checksum, request.checksum):
            raise AttestationError("client image checksum mismatch")

        attributes = self._build_attributes(record, observed_addr, request.version, now)
        expire = now + self.ticket_lifetime
        soonest = attributes.soonest_etime()
        if soonest is not None:
            expire = min(expire, soonest)
        ticket = UserTicket(
            user_id=record.user_id,
            client_public_key=request.client_public_key,
            start_time=now,
            expire_time=expire,
            attributes=attributes,
        ).signed(self._key)
        self.logins_issued += 1
        if self._store is not None:
            body = Encoder().put_u64(record.user_id).put_f64(now).to_bytes()
            self._journal(REC_LOGIN_ISSUED, body)
        return Login2Response(ticket=ticket, server_time=now)

    # ------------------------------------------------------------------
    # Attribute generation (Section IV-B, Table I)
    # ------------------------------------------------------------------

    def _build_attributes(
        self, record: UserRecord, observed_addr: str, version: str, now: float
    ) -> AttributeSet:
        """Generate user attributes from the three data sources.

        (1) account/subscription info, (2) connection info, (3) the
        Channel Attribute List (for utime stamping).
        """
        attrs = AttributeSet()
        attrs.add(self._stamp(Attribute(name=ATTR_NETADDR, value=observed_addr)))
        geo_record = self._geo.lookup(observed_addr)
        if geo_record is not None:
            attrs.add(self._stamp(Attribute(name=ATTR_REGION, value=geo_record.region)))
            attrs.add(self._stamp(Attribute(name=ATTR_AS, value=str(geo_record.asn))))
        attrs.add(self._stamp(Attribute(name=ATTR_VERSION, value=version)))
        # Any subscription overlapping the ticket's lifetime rides
        # along with its own validity window; ones starting mid-ticket
        # (a pay-per-view program) become valid exactly at their stime.
        for subscription in record.account.subscriptions_overlapping(
            now, now + self.ticket_lifetime
        ):
            attrs.add(
                self._stamp(
                    Attribute(
                        name=ATTR_SUBSCRIPTION,
                        value=subscription.package_id,
                        stime=subscription.stime,
                        etime=subscription.etime,
                    )
                )
            )
        return attrs

    def _stamp(self, attribute: Attribute) -> Attribute:
        """Copy the matching Channel Attribute List utime onto ``attribute``.

        An exact (name, value) entry's utime applies; additionally any
        special-valued (ANY/ALL/NONE) channel attribute of the same
        name bumps the utime, so e.g. a blackout expressed as
        ``Region=ANY`` still prompts clients to refresh their Channel
        List.
        """
        best: Optional[float] = None
        for entry in self._attr_utime_index.get(attribute.name, ()):
            if entry.value == attribute.value or entry.value in (
                VALUE_ANY,
                VALUE_ALL,
                VALUE_NONE,
            ):
                if best is None or entry.utime > best:
                    best = entry.utime
        if best is None:
            return attribute
        return attribute.with_utime(best)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------

    def user_by_email(self, email: str) -> Optional[UserRecord]:
        """UserDB lookup by email."""
        return self._users_by_email.get(email)

    def user_count(self) -> int:
        """Number of UserDB rows."""
        return len(self._users_by_email)

    # ------------------------------------------------------------------
    # Migration (driven by repro.sharding.ReshardCoordinator)
    # ------------------------------------------------------------------

    def export_users(self, emails: List[str]) -> List[UserRecord]:
        """Detached copies of UserDB rows for migration to another shard.

        Copies go through the canonical wire form, so what the target
        imports is exactly what a WAL replay would have produced.
        Unknown emails are skipped (the caller diffs against the
        directory, not against this shard's actual contents).
        """
        exported: List[UserRecord] = []
        for email in emails:
            record = self._users_by_email.get(email)
            if record is None:
                continue
            enc = Encoder()
            record.encode(enc)
            exported.append(UserRecord.decode(Decoder(enc.to_bytes())))
        return exported

    def import_users(self, records: List[UserRecord]) -> int:
        """Adopt migrated UserDB rows, preserving their UserINs.

        The UserIN keys the viewing activity log, so an imported row
        keeps the id its source domain allocated.  If this manager
        already holds the email under a *different* id (every domain
        replicates the full account base with its own id space), that
        stale row is dropped -- and journaled as removed, so a
        recovery cannot resurrect the obsolete id.  Idempotent:
        re-importing an identical row is a no-op upsert.
        """
        for record in records:
            stale = self._users_by_email.get(record.email)
            if stale is not None and stale.user_id != record.user_id:
                self._users_by_id.pop(stale.user_id, None)
                if self._store is not None:
                    self._journal(
                        REC_USER_REMOVED,
                        Encoder().put_u64(stale.user_id)
                        .put_str(stale.email).to_bytes(),
                    )
            self._install_record(record)
            if self._store is not None:
                enc = Encoder()
                record.encode(enc)
                self._journal(REC_USER_RECORD, enc.to_bytes())
        return len(records)

    def remove_users(self, emails: List[str]) -> int:
        """Drop UserDB rows that migrated away (post-cutover cleanup)."""
        removed = 0
        for email in emails:
            record = self._users_by_email.pop(email, None)
            if record is None:
                continue
            self._users_by_id.pop(record.user_id, None)
            removed += 1
            if self._store is not None:
                self._journal(
                    REC_USER_REMOVED,
                    Encoder().put_u64(record.user_id).put_str(email).to_bytes(),
                )
        return removed

    # ------------------------------------------------------------------
    # Durability (see repro.store)
    # ------------------------------------------------------------------

    def attach_store(self, store, snapshot_every: Optional[int] = None,
                     now: float = 0.0) -> None:
        """Journal UserDB mutations to ``store``; snapshot now."""
        self._store = store
        self._snapshot_every = snapshot_every
        self._records_since_snapshot = 0
        store.write_snapshot(self._snapshot_state(), taken_at=now)

    def _journal(self, rec_type: int, body: bytes) -> None:
        self._store.append(rec_type, body)
        self._records_since_snapshot += 1
        if (
            self._snapshot_every is not None
            and self._records_since_snapshot >= self._snapshot_every
        ):
            self._store.write_snapshot(self._snapshot_state())
            self._records_since_snapshot = 0

    def _snapshot_state(self) -> bytes:
        enc = Encoder()
        enc.put_str(self.domain)
        enc.put_u64(self._next_user_id)
        enc.put_u32(len(self._users_by_id))
        for user_id in sorted(self._users_by_id):
            self._users_by_id[user_id].encode(enc)
        self._channel_attribute_list.encode(enc)
        enc.put_u32(len(self._client_images))
        for version in sorted(self._client_images):
            enc.put_str(version)
            enc.put_bytes(self._client_images[version])
        enc.put_u64(self.logins_issued)
        return enc.to_bytes()

    def _restore_state(self, state: bytes) -> None:
        dec = Decoder(state)
        domain = dec.get_str()
        if domain != self.domain:
            raise ProtocolError(
                f"store holds domain {domain!r}, manager is {self.domain!r}"
            )
        self._next_user_id = dec.get_u64()
        self._users_by_email = {}
        self._users_by_id = {}
        for _ in range(dec.get_u32()):
            self._install_record(UserRecord.decode(dec))
        self._channel_attribute_list = AttributeSet.decode(dec)
        self._rebuild_attr_index()
        self._client_images = {}
        for _ in range(dec.get_u32()):
            version = dec.get_str()
            self._client_images[version] = dec.get_bytes()
        self.logins_issued = dec.get_u64()
        dec.finish()

    def _install_record(self, record: UserRecord) -> None:
        """Upsert one replayed UserDB row, keeping id allocation ahead."""
        self._users_by_email[record.email] = record
        self._users_by_id[record.user_id] = record
        if record.user_id >= self._next_user_id:
            self._next_user_id = record.user_id + self._user_id_stride

    def _apply_record(self, rec_type: int, body: bytes) -> None:
        dec = Decoder(body)
        if rec_type == REC_USER_RECORD:
            self._install_record(UserRecord.decode(dec))
        elif rec_type == REC_CLIENT_IMAGE:
            version = dec.get_str()
            self._client_images[version] = dec.get_bytes()
        elif rec_type == REC_ATTRIBUTE_LIST:
            self._channel_attribute_list = AttributeSet.decode(dec)
            self._rebuild_attr_index()
        elif rec_type == REC_LOGIN_ISSUED:
            dec.get_u64()
            dec.get_f64()
            self.logins_issued += 1
        elif rec_type == REC_USER_REMOVED:
            user_id = dec.get_u64()
            email = dec.get_str()
            self._users_by_id.pop(user_id, None)
            current = self._users_by_email.get(email)
            if current is not None and current.user_id == user_id:
                del self._users_by_email[email]
        else:
            raise ProtocolError(f"unknown WAL record type {rec_type}")
        dec.finish()

    @classmethod
    def recover(
        cls,
        store,
        *,
        signing_key: RsaPrivateKey,
        farm_secret: bytes,
        drbg: HmacDrbg,
        geo,
        ticket_lifetime: float = 1800.0,
        min_version: str = "1.0.0",
        domain: str = "default",
        challenge_max_age: float = 60.0,
        user_id_start: int = 1,
        user_id_stride: int = 1,
        snapshot_every: Optional[int] = None,
    ) -> "UserManager":
        """Rebuild a User Manager from snapshot + WAL replay.

        Secrets stay out of the store (deployment key management owns
        them); because challenge tokens and checksum parameters are
        both derived from the farm secret, in-flight LOGIN1 tokens
        issued before the crash complete LOGIN2 on the recovered farm.
        """
        import time as _time

        started = _time.perf_counter()
        manager = cls(
            signing_key=signing_key,
            farm_secret=farm_secret,
            drbg=drbg,
            geo=geo,
            ticket_lifetime=ticket_lifetime,
            min_version=min_version,
            domain=domain,
            challenge_max_age=challenge_max_age,
            user_id_start=user_id_start,
            user_id_stride=user_id_stride,
        )
        state = store.load()
        if state.snapshot is not None:
            manager._restore_state(state.snapshot.state)
        for record in state.records:
            manager._apply_record(record.rec_type, record.body)
        manager._store = store
        manager._snapshot_every = snapshot_every
        manager._records_since_snapshot = len(state.records)
        store.stats.note_recovery(len(state.records), _time.perf_counter() - started)
        return manager


def _version_tuple(version: str) -> Tuple[int, ...]:
    """Parse "4.0.5" into (4, 0, 5) for comparison; raises on junk."""
    try:
        return tuple(int(part) for part in version.split("."))
    except ValueError as exc:
        raise ProtocolError(f"unparseable version: {version!r}") from exc

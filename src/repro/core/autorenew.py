"""Automatic ticket renewal: keeping a viewer glued to the stream.

Section IV-C: "To avoid service interruption, Channel and User Tickets
must be renewed in time."  The synchronous :class:`~repro.core.client.Client`
exposes the renewal operations; this module adds the *scheduling*
discipline a production client runs: renew each ticket a safety margin
before expiry, re-login first when the User Ticket would expire sooner,
and present the renewed Channel Ticket to every parent so the peers'
expiry enforcement never severs us.

The renewer drives a client against a
:class:`~repro.sim.engine.Simulator` clock, which makes multi-hour
viewing sessions testable in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.client import Client
from repro.errors import ReproError
from repro.sim.engine import Event, Simulator


@dataclass
class RenewalStats:
    """What the renewer did over a session."""

    user_ticket_renewals: int = 0
    channel_ticket_renewals: int = 0
    renewal_failures: int = 0
    presentations: int = 0


class TicketAutoRenewer:
    """Schedules re-logins and Channel Ticket renewals for one client.

    Parameters
    ----------
    sim:
        The virtual clock the renewals run on.
    client:
        A logged-in, ticketed client.
    margin:
        Seconds before expiry at which renewal fires.  Must stay inside
        the Channel Manager's renewal window (default window is 120 s,
        so the default margin of 60 s is safely within it).
    parents_provider:
        Returns the client's current parent peers (so renewed tickets
        can be presented, Section IV-D); defaults to nothing.
    on_failure:
        Called with the exception when a renewal is refused (blackout
        reached, account moved, ...).  The renewer stops afterwards.
    """

    def __init__(
        self,
        sim: Simulator,
        client: Client,
        margin: float = 60.0,
        parents_provider: Optional[Callable[[], List[object]]] = None,
        on_failure: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        if margin <= 0:
            raise ValueError("margin must be positive")
        self.sim = sim
        self.client = client
        self.margin = margin
        self._parents_provider = parents_provider or (lambda: [])
        self._on_failure = on_failure
        self.stats = RenewalStats()
        self._pending: List[Event] = []
        self.active = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin scheduling from the client's current tickets."""
        if self.client.user_ticket is None:
            raise ReproError("client must be logged in before auto-renewal")
        self.active = True
        self._schedule_next()

    def stop(self) -> None:
        """Cancel all pending renewals (viewer closed the player)."""
        self.active = False
        for event in self._pending:
            event.cancel()
        self._pending.clear()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _schedule_next(self, previous_deadline: Optional[float] = None) -> None:
        if not self.active:
            return
        deadline = self._next_deadline()
        if deadline is None:
            return
        fire_at = max(self.sim.now, deadline - self.margin)
        if previous_deadline is not None and deadline <= previous_deadline + 1e-9:
            # The renewal succeeded but the expiry did not advance --
            # the Channel Manager pinned it at a policy boundary (an
            # upcoming blackout/PPV fence).  Re-firing now would spin;
            # retry just past the boundary instead, where the renewal
            # is refused outright and the failure path stops us.
            fire_at = deadline + self.margin / 2.0
        event = self.sim.schedule_at(fire_at, lambda sim: self._renew())
        self._pending.append(event)

    def _next_deadline(self) -> Optional[float]:
        """The soonest expiry among the client's live tickets."""
        deadlines = []
        if self.client.user_ticket is not None:
            deadlines.append(self.client.user_ticket.expire_time)
        if self.client.channel_ticket is not None:
            deadlines.append(self.client.channel_ticket.expire_time)
        return min(deadlines) if deadlines else None

    def _renew(self) -> None:
        if not self.active:
            return
        now = self.sim.now
        deadline_before = self._next_deadline()
        try:
            # Refresh the User Ticket whenever it is the binding
            # constraint (a Channel Ticket can never outlive it).
            user_ticket = self.client.user_ticket
            if user_ticket is None or user_ticket.expire_time - now <= self.margin * 2:
                self.client.login(now=now)
                self.stats.user_ticket_renewals += 1
            channel_ticket = self.client.channel_ticket
            if (
                channel_ticket is not None
                and channel_ticket.expire_time - now <= self.margin * 2
            ):
                self.client.renew_channel_ticket(now=now)
                self.stats.channel_ticket_renewals += 1
                self._present_to_parents(now)
        except ReproError as exc:
            self.stats.renewal_failures += 1
            self.active = False
            if self._on_failure is not None:
                self._on_failure(exc)
            return
        self._schedule_next(previous_deadline=deadline_before)

    def _present_to_parents(self, now: float) -> None:
        """Show the renewed ticket to every parent (Section IV-D)."""
        ticket = self.client.channel_ticket
        if ticket is None:
            return
        for parent in self._parents_provider():
            parent.present_renewal(ticket.user_id, ticket, now)
            self.stats.presentations += 1

"""Stateless nonce challenges shared by all manager farms.

Section V requires that "a client can finish the authentication
process with different User Managers at each step" -- i.e. the server
that issues a challenge need not be the server that checks the
response.  Challenges therefore carry their own state: the nonce, the
subject it was issued to, and the issue time, authenticated by an
HMAC under a secret shared across the farm.  Any instance behind the
same logical name can validate any sibling's token.

The client proves possession of its private key by *signing* the
nonce; the paper phrases this as returning the nonce "encrypted using
its private key", which for RSA is the same primitive.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import RsaPublicKey
from repro.errors import ChallengeError, SignatureError
from repro.util.wire import Decoder, Encoder, WireError

_NONCE_LEN = 16
_MAC_LEN = 32


@dataclass(frozen=True)
class Challenge:
    """A self-certifying challenge token.

    ``subject`` binds the token to one principal (an email or a UserIN
    rendered as text) so a token issued to one client cannot answer a
    challenge for another.
    """

    subject: str
    nonce: bytes
    issued_at: float
    mac: bytes = b""

    def _mac_input(self) -> bytes:
        enc = Encoder()
        enc.put_str(self.subject)
        enc.put_bytes(self.nonce)
        enc.put_f64(self.issued_at)
        return enc.to_bytes()

    def to_bytes(self) -> bytes:
        """Wire form: body + MAC."""
        enc = Encoder()
        enc.put_bytes(self._mac_input())
        enc.put_bytes(self.mac)
        return enc.to_bytes()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Challenge":
        """Parse the wire form; raises :class:`ChallengeError`."""
        try:
            outer = Decoder(blob)
            body = Decoder(outer.get_view())
            mac = outer.get_bytes()
            outer.finish()
            challenge = cls(
                subject=body.get_str(),
                nonce=body.get_bytes(),
                issued_at=body.get_f64(),
                mac=mac,
            )
            body.finish()
        except WireError as exc:
            raise ChallengeError("malformed challenge token") from exc
        return challenge


class ChallengeIssuer:
    """Issues and validates challenges for one manager farm.

    Every instance of a logical manager shares the same ``farm_secret``
    (alongside the shared keypair the paper prescribes), which is what
    makes the two protocol rounds land on different physical servers
    safely.
    """

    def __init__(self, farm_secret: bytes, drbg: HmacDrbg, max_age: float = 60.0) -> None:
        if len(farm_secret) < 16:
            raise ValueError("farm secret must be at least 16 bytes")
        self._secret = farm_secret
        self._drbg = drbg
        self.max_age = max_age

    def _mac(self, data: bytes) -> bytes:
        return hmac.new(self._secret, data, hashlib.sha256).digest()

    def issue(self, subject: str, now: float) -> Challenge:
        """Mint a fresh challenge for ``subject``."""
        challenge = Challenge(
            subject=subject, nonce=self._drbg.generate(_NONCE_LEN), issued_at=now
        )
        return Challenge(
            subject=challenge.subject,
            nonce=challenge.nonce,
            issued_at=challenge.issued_at,
            mac=self._mac(challenge._mac_input()),
        )

    def validate_token(self, challenge: Challenge, subject: str, now: float) -> None:
        """Check the token is ours, fresh, and for the right subject."""
        if not hmac.compare_digest(self._mac(challenge._mac_input()), challenge.mac):
            raise ChallengeError("challenge MAC invalid (not issued by this farm)")
        if challenge.subject != subject:
            raise ChallengeError(
                f"challenge issued to {challenge.subject!r}, presented by {subject!r}"
            )
        age = now - challenge.issued_at
        if age < 0:
            raise ChallengeError("challenge issued in the future")
        if age > self.max_age:
            raise ChallengeError(f"challenge expired ({age:.1f}s > {self.max_age}s)")

    def verify_response(
        self,
        challenge: Challenge,
        subject: str,
        response_signature: bytes,
        client_public_key: RsaPublicKey,
        now: float,
        extra: bytes = b"",
    ) -> None:
        """Full check: token validity plus the client's proof of key.

        ``extra`` lets protocols bind additional response data (e.g.
        the attestation checksum) under the same signature.
        """
        self.validate_token(challenge, subject, now)
        try:
            client_public_key.verify(challenge.nonce + extra, response_signature)
        except SignatureError as exc:
            raise ChallengeError("nonce response does not verify") from exc


def answer_challenge(challenge: Challenge, private_key, extra: bytes = b"") -> bytes:
    """Client side: sign the nonce (plus bound extra data)."""
    return private_key.sign(challenge.nonce + extra)

"""The paper's primary contribution: the live-broadcast DRM core.

Subpackage map (one module per architectural element of Fig. 1):

====================================  =====================================
:mod:`repro.core.attributes`          attribute tuples and matching rules
:mod:`repro.core.policy`              prioritized channel policies
:mod:`repro.core.tickets`             User Ticket / Channel Ticket
:mod:`repro.core.accounts`            Account Manager
:mod:`repro.core.user_manager`        User Manager (login protocol, UserDB)
:mod:`repro.core.policy_manager`      Channel Policy Manager
:mod:`repro.core.channel_manager`     Channel Manager (switch protocol,
                                      viewing log, renewal)
:mod:`repro.core.redirection`         Redirection Manager
:mod:`repro.core.keystream`           rotating content keys
:mod:`repro.core.packets`             encrypted content packets
:mod:`repro.core.channel_server`      ingest + encryption at the source
:mod:`repro.core.protocol`            LOGIN/SWITCH/JOIN message types
:mod:`repro.core.client`              the client state machine
====================================  =====================================

The core is *functional*: objects call each other directly and take an
explicit ``now`` timestamp, so the same code runs under the
discrete-event simulator (which supplies virtual time) and in plain
unit tests (which supply literal numbers).
"""

from repro.core.attributes import (
    Attribute,
    AttributeSet,
    VALUE_ANY,
    VALUE_ALL,
    VALUE_NONE,
)
from repro.core.policy import Policy, PolicyCondition, Decision, evaluate_policies
from repro.core.tickets import UserTicket, ChannelTicket
from repro.core.accounts import AccountManager, Subscription
from repro.core.user_manager import UserManager
from repro.core.policy_manager import ChannelPolicyManager, ChannelRecord
from repro.core.channel_manager import ChannelManager
from repro.core.redirection import RedirectionManager
from repro.core.keystream import ContentKeySchedule
from repro.core.channel_server import ChannelServer
from repro.core.client import Client
from repro.core.epg import ElectronicProgramGuide, Program
from repro.core.analytics import ViewingAnalytics, ViewingSession

__all__ = [
    "ElectronicProgramGuide",
    "Program",
    "ViewingAnalytics",
    "ViewingSession",
    "Attribute",
    "AttributeSet",
    "VALUE_ANY",
    "VALUE_ALL",
    "VALUE_NONE",
    "Policy",
    "PolicyCondition",
    "Decision",
    "evaluate_policies",
    "UserTicket",
    "ChannelTicket",
    "AccountManager",
    "Subscription",
    "UserManager",
    "ChannelPolicyManager",
    "ChannelRecord",
    "ChannelManager",
    "RedirectionManager",
    "ContentKeySchedule",
    "ChannelServer",
    "Client",
]

"""The Redirection Manager: user -> User Manager lookup.

Section V: "To direct client to the right User Manager, we introduce a
new backend service called the Redirection Manager.  The job of the
Redirection Manager is simply to look up the User Manager a user has
been assigned to. ... Since the load of this service is very light (a
single hash table lookup), a single Redirection Manager per service
provider network is sufficient."

Its address and public key are "built-in to the client application";
for future extensibility it also returns the Channel Policy Manager's
address and public key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crypto.rsa import RsaPublicKey
from repro.errors import AccountError
from repro.trace.span import Tracer, maybe_span


@dataclass(frozen=True)
class ManagerEndpoint:
    """Network identity of a manager farm: one name, one key."""

    address: str
    public_key: RsaPublicKey


@dataclass(frozen=True)
class RedirectionResult:
    """What the client gets back: its User Manager and the CPM."""

    user_manager: ManagerEndpoint
    channel_policy_manager: ManagerEndpoint


class RedirectionManager:
    """Maps users to Authentication Domains.

    Users are assigned either explicitly (:meth:`assign_user`) or by
    consistent hashing of the email over the registered domains --
    matching the paper's "partition its user space into multiple
    domains" without requiring per-user configuration.
    """

    def __init__(self, channel_policy_manager: ManagerEndpoint) -> None:
        self._domains: Dict[str, ManagerEndpoint] = {}
        self._domain_order: List[str] = []
        self._explicit: Dict[str, str] = {}
        self._cpm = channel_policy_manager
        self.lookups = 0
        #: Shared tracer, attached by Deployment.enable_tracing().
        #: lookup() has no ``now`` argument, so its spans fall back to
        #: the tracer's clock.
        self.tracer: Optional[Tracer] = None

    def register_domain(self, domain: str, endpoint: ManagerEndpoint) -> None:
        """Add an Authentication Domain's User Manager farm."""
        if domain not in self._domains:
            self._domain_order.append(domain)
        self._domains[domain] = endpoint

    def assign_user(self, email: str, domain: str) -> None:
        """Pin a user to a specific domain (overrides hashing)."""
        if domain not in self._domains:
            raise AccountError(f"unknown domain: {domain}")
        self._explicit[email] = domain

    def domain_for(self, email: str) -> str:
        """Which domain serves this user?"""
        if not self._domain_order:
            raise AccountError("no authentication domains registered")
        explicit = self._explicit.get(email)
        if explicit is not None:
            return explicit
        digest = hashlib.sha256(email.encode("utf-8")).digest()
        index = int.from_bytes(digest[:4], "big") % len(self._domain_order)
        return self._domain_order[index]

    def lookup(self, email: str) -> RedirectionResult:
        """The client's bootstrap call: find my User Manager and the CPM."""
        with maybe_span(self.tracer, "RM.LOOKUP", kind="server"):
            self.lookups += 1
            domain = self.domain_for(email)
            return RedirectionResult(
                user_manager=self._domains[domain],
                channel_policy_manager=self._cpm,
            )

    def domains(self) -> List[str]:
        """Registered domain names, registration order."""
        return list(self._domain_order)

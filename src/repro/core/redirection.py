"""The Redirection Manager: user -> User Manager lookup.

Section V: "To direct client to the right User Manager, we introduce a
new backend service called the Redirection Manager.  The job of the
Redirection Manager is simply to look up the User Manager a user has
been assigned to. ... Since the load of this service is very light (a
single hash table lookup), a single Redirection Manager per service
provider network is sufficient."

Its address and public key are "built-in to the client application";
for future extensibility it also returns the Channel Policy Manager's
address and public key.

A domain may be served by a *farm* of replicas rather than a single
endpoint: :meth:`add_replica` appends to an ordered replica list, and
:meth:`lookup` returns the full list (healthy endpoints first) so a
client can fail over without re-asking.  The first registered endpoint
stays the nominal primary -- the paper's single-endpoint contract is
the one-replica special case.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import math

from repro.crypto.rsa import RsaPublicKey
from repro.errors import AccountError, RedirectionLookupError
from repro.trace.span import Tracer, maybe_span


@dataclass(frozen=True)
class ManagerEndpoint:
    """Network identity of a manager farm: one name, one key."""

    address: str
    public_key: RsaPublicKey


@dataclass(frozen=True)
class RedirectionResult:
    """What the client gets back: its User Manager and the CPM.

    ``user_manager`` is the preferred (first healthy) endpoint;
    ``user_manager_replicas`` is the full ordered failover list,
    beginning with ``user_manager`` itself.
    """

    user_manager: ManagerEndpoint
    channel_policy_manager: ManagerEndpoint
    user_manager_replicas: Tuple[ManagerEndpoint, ...] = field(default=())


class RedirectionManager:
    """Maps users to Authentication Domains.

    Users are assigned either explicitly (:meth:`assign_user`) or by
    consistent hashing of the email over the registered domains --
    matching the paper's "partition its user space into multiple
    domains" without requiring per-user configuration.
    """

    #: Default health-mark lifetime (seconds).  A ``mark_down`` with a
    #: clock but no explicit ttl expires after this long, so a farm
    #: that recovered without anyone calling :meth:`mark_up` is
    #: re-admitted to the front of the replica ordering.
    DEFAULT_DOWN_TTL = 300.0

    def __init__(self, channel_policy_manager: ManagerEndpoint) -> None:
        self._domains: Dict[str, List[ManagerEndpoint]] = {}
        self._domain_order: List[str] = []
        self._explicit: Dict[str, str] = {}
        #: address -> mark expiry time (+inf for clock-less marks).
        self._down: Dict[str, float] = {}
        #: Optional shard-aware placement (see repro.sharding); when
        #: installed it replaces the legacy modulo placement below.
        self._shard_directory = None
        self._cpm = channel_policy_manager
        self.lookups = 0
        #: Shared tracer, attached by Deployment.enable_tracing().
        #: lookup() has no ``now`` argument, so its spans fall back to
        #: the tracer's clock.
        self.tracer: Optional[Tracer] = None

    def register_domain(self, domain: str, endpoint: ManagerEndpoint) -> None:
        """Add an Authentication Domain's User Manager farm.

        Re-registering an existing domain *replaces* its replica list
        (the rebinding contract predates replicas); use
        :meth:`add_replica` to grow a farm instead.
        """
        if domain not in self._domains:
            self._domain_order.append(domain)
        self._domains[domain] = [endpoint]

    def add_replica(self, domain: str, endpoint: ManagerEndpoint) -> None:
        """Append a failover replica to an existing domain's farm."""
        replicas = self._domains.get(domain)
        if replicas is None:
            raise AccountError(f"unknown domain: {domain}")
        if any(existing.address == endpoint.address for existing in replicas):
            raise AccountError(
                f"replica address already registered for {domain!r}: "
                f"{endpoint.address}"
            )
        replicas.append(endpoint)

    def assign_user(self, email: str, domain: str) -> None:
        """Pin a user to a specific domain (overrides hashing)."""
        if domain not in self._domains:
            raise AccountError(f"unknown domain: {domain}")
        self._explicit[email] = domain

    def mark_down(
        self,
        address: str,
        now: Optional[float] = None,
        ttl: Optional[float] = None,
    ) -> None:
        """Record an endpoint as unhealthy: lookups order it last.

        Health is advisory -- a client may still try a down-marked
        endpoint (e.g. as a probe); the ordering just stops *new*
        lookups from steering to a known-bad replica first.

        With a clock (``now``) the mark expires after ``ttl`` seconds
        (default :attr:`DEFAULT_DOWN_TTL`): a farm that recovered
        without an explicit :meth:`mark_up` is re-admitted once the
        mark lapses.  Clock-less marks never expire -- callers that
        cannot supply time keep the legacy sticky behavior.
        """
        if now is None:
            expires_at = math.inf
        else:
            expires_at = now + (self.DEFAULT_DOWN_TTL if ttl is None else ttl)
        # Never let a fresh failure report shorten... or lengthen an
        # existing permanent mark; the latest evidence wins otherwise.
        self._down[address] = max(self._down.get(address, 0.0), expires_at)

    def mark_up(self, address: str) -> None:
        """Clear an endpoint's unhealthy mark."""
        self._down.pop(address, None)

    def is_down(self, address: str, now: Optional[float] = None) -> bool:
        expires_at = self._down.get(address)
        if expires_at is None:
            return False
        if now is not None and now >= expires_at:
            del self._down[address]
            return False
        return True

    def use_shard_directory(self, directory) -> None:
        """Route placement through a :class:`~repro.sharding.ShardDirectory`.

        The directory's ring replaces the legacy hash-modulo placement
        (explicit :meth:`assign_user` pins still outrank it).  Lookups
        for a key range frozen by an in-flight resharding raise
        :class:`~repro.errors.ShardFrozenError`; callers defer those to
        the reshard coordinator rather than failing the user.
        """
        self._shard_directory = directory

    def shard_directory(self):
        return self._shard_directory

    def domain_for(self, email: str) -> str:
        """Which domain serves this user?"""
        if not self._domain_order:
            raise RedirectionLookupError(email, self._domain_order)
        explicit = self._explicit.get(email)
        if explicit is not None:
            return explicit
        if self._shard_directory is not None:
            return self._shard_directory.shard_for(email)
        digest = hashlib.sha256(email.encode("utf-8")).digest()
        index = int.from_bytes(digest[:4], "big") % len(self._domain_order)
        return self._domain_order[index]

    def replicas(self, domain: str, now: Optional[float] = None) -> List[ManagerEndpoint]:
        """The domain's replica list, healthy endpoints first.

        Within each health class the registration order is preserved,
        so with no health marks this is exactly the registered order.
        With a clock, lapsed down-marks expire here (see
        :meth:`mark_down`).
        """
        replicas = self._domains.get(domain)
        if replicas is None:
            raise AccountError(f"unknown domain: {domain}")
        healthy = [r for r in replicas if not self.is_down(r.address, now)]
        unhealthy = [r for r in replicas if self.is_down(r.address, now)]
        return healthy + unhealthy

    def lookup(self, email: str, now: Optional[float] = None) -> RedirectionResult:
        """The client's bootstrap call: find my User Manager and the CPM."""
        with maybe_span(self.tracer, "RM.LOOKUP", kind="server") as span:
            self.lookups += 1
            domain = self.domain_for(email)
            if span is not None:
                span.annotate("domain", domain)
            replicas = self._domains.get(domain)
            if not replicas:
                raise RedirectionLookupError(email, self._domain_order)
            ordered = self.replicas(domain, now)
            return RedirectionResult(
                user_manager=ordered[0],
                channel_policy_manager=self._cpm,
                user_manager_replicas=tuple(ordered),
            )

    def domains(self) -> List[str]:
        """Registered domain names, registration order."""
        return list(self._domain_order)

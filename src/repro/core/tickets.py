"""User Tickets and Channel Tickets (Fig. 3).

Both tickets follow the same pattern: a canonically encoded body that
the issuing manager signs, with the signature appended.  Signing the
body also *certifies the client's public key* embedded in it
(Sections IV-B, IV-C) -- downstream verifiers (Channel Manager, target
peers) learn the client's key from the ticket rather than from the
client's unauthenticated claim.

Validity checks deliberately raise typed exceptions instead of
returning booleans; every rejection path in the protocol corresponds
to one exception type, which the threat-model tests assert on.

The *ticket renewal bit* on the Channel Ticket distinguishes a renewal
(issued against an expiring ticket, subject to the viewing-log check
of Section IV-D) from a fresh issue.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core.attributes import ATTR_NETADDR, AttributeSet
from repro.core.ticket_cache import TicketVerificationCache
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.errors import (
    SignatureError,
    TicketExpiredError,
    TicketInvalidError,
)
from repro.util.wire import Decoder, Encoder

_USER_TICKET_MAGIC = b"UTKT"
_CHANNEL_TICKET_MAGIC = b"CTKT"


@dataclass(frozen=True)
class UserTicket:
    """A signed, time-limited credential carrying user attributes.

    Fields follow Fig. 3: UserIN, the client's (manager-certified)
    public key, the validity window, and the user attribute list.  The
    signature covers everything above it.
    """

    user_id: int
    client_public_key: RsaPublicKey
    start_time: float
    expire_time: float
    attributes: AttributeSet
    signature: bytes = b""

    def body_bytes(self) -> bytes:
        """Canonical encoding of the signed portion.

        Memoized on the (frozen) instance: signing encodes the body
        once, and every subsequent verify -- one per SWITCH1/SWITCH2
        for the ticket's whole lifetime -- reuses the same bytes
        instead of re-running the encoder.
        """
        cached = self.__dict__.get("_body_cache")
        if cached is not None:
            return cached
        enc = Encoder()
        enc.put_bytes(_USER_TICKET_MAGIC)
        enc.put_u64(self.user_id)
        enc.put_bytes(self.client_public_key.to_bytes())
        enc.put_f64(self.start_time)
        enc.put_f64(self.expire_time)
        self.attributes.encode(enc)
        body = enc.to_bytes()
        object.__setattr__(self, "_body_cache", body)
        return body

    def signed(self, issuer_key: RsaPrivateKey) -> "UserTicket":
        """Return a copy carrying the issuer's signature."""
        return replace(self, signature=issuer_key.sign(self.body_bytes()))

    def verify(
        self,
        issuer_public_key: RsaPublicKey,
        now: float,
        cache: Optional[TicketVerificationCache] = None,
    ) -> None:
        """Check signature and validity window; raise on failure.

        With ``cache`` given, a (key, body, signature) triple that
        already passed full RSA verification skips the exponentiation;
        the time-window checks below always run -- they depend on
        ``now``, not on the signature.
        """
        if not self.signature:
            raise SignatureError("user ticket is unsigned")
        if cache is None or not cache.seen(
            issuer_public_key, self.body_bytes(), self.signature
        ):
            issuer_public_key.verify(self.body_bytes(), self.signature)
            if cache is not None:
                cache.remember(issuer_public_key, self.body_bytes(), self.signature)
        if now < self.start_time:
            raise TicketInvalidError(
                f"user ticket not valid until {self.start_time} (now {now})"
            )
        if now > self.expire_time:
            raise TicketExpiredError(
                f"user ticket expired at {self.expire_time} (now {now})"
            )

    @property
    def net_addr(self) -> Optional[str]:
        """The NetAddr attribute the User Manager recorded at login."""
        return self.attributes.first_value(ATTR_NETADDR)

    def check_net_addr(self, observed_addr: str) -> None:
        """Match the ticket's NetAddr against the live connection.

        The Channel Manager "matches the value of the NetAddr attribute
        in the User Ticket against that of the client's current
        connection" (Section IV-C); a mismatch means a relayed or
        stolen ticket.
        """
        if self.net_addr != observed_addr:
            raise TicketInvalidError(
                f"user ticket NetAddr {self.net_addr!r} != connection {observed_addr!r}"
            )

    @property
    def remaining_lifetime(self) -> float:
        """Duration from start to expiry (not from 'now')."""
        return self.expire_time - self.start_time

    def to_bytes(self) -> bytes:
        """Full serialization including signature (wire form)."""
        enc = Encoder()
        enc.put_bytes(self.body_bytes())
        enc.put_bytes(self.signature)
        return enc.to_bytes()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "UserTicket":
        """Parse the wire form produced by :meth:`to_bytes`."""
        outer = Decoder(blob)
        body = Decoder(outer.get_view())
        signature = outer.get_bytes()
        outer.finish()
        magic = body.get_bytes()
        if magic != _USER_TICKET_MAGIC:
            raise TicketInvalidError("not a user ticket")
        ticket = cls(
            user_id=body.get_u64(),
            client_public_key=RsaPublicKey.from_bytes(body.get_view()),
            start_time=body.get_f64(),
            expire_time=body.get_f64(),
            attributes=AttributeSet.decode(body),
            signature=signature,
        )
        body.finish()
        return ticket


@dataclass(frozen=True)
class ChannelTicket:
    """A signed authorization to join one channel's P2P network.

    Carries only what a target peer needs (Section IV-C): the channel,
    the client's certified public key, the client's NetAddr, the
    renewal bit, and the validity window.  All other user attributes
    are filtered out by the Channel Manager -- the privacy
    intermediation requirement.
    """

    channel_id: str
    user_id: int
    client_public_key: RsaPublicKey
    net_addr: str
    renewal: bool
    start_time: float
    expire_time: float
    signature: bytes = b""

    def body_bytes(self) -> bytes:
        """Canonical encoding of the signed portion (memoized)."""
        cached = self.__dict__.get("_body_cache")
        if cached is not None:
            return cached
        enc = Encoder()
        enc.put_bytes(_CHANNEL_TICKET_MAGIC)
        enc.put_str(self.channel_id)
        enc.put_u64(self.user_id)
        enc.put_bytes(self.client_public_key.to_bytes())
        enc.put_str(self.net_addr)
        enc.put_bool(self.renewal)
        enc.put_f64(self.start_time)
        enc.put_f64(self.expire_time)
        body = enc.to_bytes()
        object.__setattr__(self, "_body_cache", body)
        return body

    def signed(self, issuer_key: RsaPrivateKey) -> "ChannelTicket":
        """Return a copy carrying the issuer's signature."""
        return replace(self, signature=issuer_key.sign(self.body_bytes()))

    def verify(
        self,
        issuer_public_key: RsaPublicKey,
        now: float,
        expected_channel: Optional[str] = None,
        observed_addr: Optional[str] = None,
        cache: Optional[TicketVerificationCache] = None,
    ) -> None:
        """Run the target-peer checks of Section IV-C; raise on failure.

        A peer verifies: the Channel Manager's signature, expiry, the
        NetAddr against the live connection, and that the channel is
        the one the peer itself carries.  ``cache`` short-circuits the
        RSA verification for triples that already passed it; the
        ``now``-dependent and connection-dependent checks always run.
        """
        if not self.signature:
            raise SignatureError("channel ticket is unsigned")
        if cache is None or not cache.seen(
            issuer_public_key, self.body_bytes(), self.signature
        ):
            issuer_public_key.verify(self.body_bytes(), self.signature)
            if cache is not None:
                cache.remember(issuer_public_key, self.body_bytes(), self.signature)
        if now < self.start_time:
            raise TicketInvalidError(
                f"channel ticket not valid until {self.start_time} (now {now})"
            )
        if now > self.expire_time:
            raise TicketExpiredError(
                f"channel ticket expired at {self.expire_time} (now {now})"
            )
        if expected_channel is not None and self.channel_id != expected_channel:
            raise TicketInvalidError(
                f"channel ticket is for {self.channel_id!r}, peer carries {expected_channel!r}"
            )
        if observed_addr is not None and self.net_addr != observed_addr:
            raise TicketInvalidError(
                f"channel ticket NetAddr {self.net_addr!r} != connection {observed_addr!r}"
            )

    def is_within_renewal_window(self, now: float, window: float) -> bool:
        """Renewal must happen close to expiry (Section IV-D).

        "A Channel Manager must be presented with the expiring Channel
        Ticket ... within a small window of the ticket expiration
        time."  The window extends ``window`` seconds both before and
        after ``expire_time`` (allowing brief clock skew after expiry).
        """
        return (self.expire_time - window) <= now <= (self.expire_time + window)

    def to_bytes(self) -> bytes:
        """Full serialization including signature (wire form)."""
        enc = Encoder()
        enc.put_bytes(self.body_bytes())
        enc.put_bytes(self.signature)
        return enc.to_bytes()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ChannelTicket":
        """Parse the wire form produced by :meth:`to_bytes`."""
        outer = Decoder(blob)
        body = Decoder(outer.get_view())
        signature = outer.get_bytes()
        outer.finish()
        magic = body.get_bytes()
        if magic != _CHANNEL_TICKET_MAGIC:
            raise TicketInvalidError("not a channel ticket")
        ticket = cls(
            channel_id=body.get_str(),
            user_id=body.get_u64(),
            client_public_key=RsaPublicKey.from_bytes(body.get_view()),
            net_addr=body.get_str(),
            renewal=body.get_bool(),
            start_time=body.get_f64(),
            expire_time=body.get_f64(),
            signature=signature,
        )
        body.finish()
        return ticket

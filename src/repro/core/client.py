"""The client state machine.

Walks the full lifecycle of Fig. 1: bootstrap via the Redirection
Manager, the two-round login with the User Manager, Channel List
maintenance against the Channel Policy Manager (driven by utime
deltas), the two-round channel switch with the Channel Manager, the
one-round join with target peers, and finally content-key handling and
packet decryption.

The client is *functional*: every method takes ``now`` explicitly, and
remote managers are duck-typed objects resolved through a
:class:`~repro.core.directory.ServiceDirectory`.  The P2P layer wraps
clients in :class:`repro.p2p.peer.Peer` objects for forwarding duties;
this class is only the DRM endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.accounts import secure_hash_password
from repro.core.challenge import answer_challenge
from repro.core.directory import ServiceDirectory
from repro.core.keystream import ContentKey, ContentKeyRing
from repro.core.packets import decrypt_key_from_link, decrypt_packet
from repro.core.policy_manager import ChannelRecord
from repro.core.protocol import (
    JoinAccept,
    JoinReject,
    JoinRequest,
    KeyUpdate,
    Login1Request,
    Login2Request,
    PeerDescriptor,
    Switch1Request,
    Switch2Request,
    Switch2Response,
)
from repro.core.tickets import ChannelTicket, UserTicket
from repro.core.user_manager import ChecksumParams
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import RsaPrivateKey, generate_keypair
from repro.crypto.stream import SymmetricKey
from repro.errors import (
    CapacityError,
    ProtocolError,
    ReplayError,
    ReproError,
    TransportError,
)
from repro.trace.span import Tracer, maybe_span
from repro.util.wire import Decoder


@dataclass
class ParentLink:
    """State for one parent peer relationship."""

    peer_id: str
    session_key: SymmetricKey


class Client:
    """One user's client application instance.

    Parameters
    ----------
    email, password:
        The user's out-of-band-registered credentials.
    version:
        Client software version string, checked against the User
        Manager's floor.
    image:
        The client binary image, attested via checksum at login.  A
        tampered client carries a different image and fails LOGIN2.
    net_addr:
        The client's current network address (its NetAddr attribute).
    redirection:
        The built-in Redirection Manager endpoint (Section V).
    directory:
        Name resolution for manager addresses.
    key_bits:
        RSA modulus size for the client keypair.
    """

    def __init__(
        self,
        email: str,
        password: str,
        version: str,
        image: bytes,
        net_addr: str,
        redirection,
        directory: ServiceDirectory,
        drbg: HmacDrbg,
        key_bits: int = 512,
        keypair: Optional[RsaPrivateKey] = None,
    ) -> None:
        self.email = email
        self._shp = secure_hash_password(email, password)
        self.version = version
        self.image = bytes(image)
        self.net_addr = net_addr
        self._redirection = redirection
        self._directory = directory
        self._drbg = drbg
        # An injected keypair skips the dominant per-client cost (RSA
        # keygen, ~16 ms at 512 bits); large synthetic fleets share one
        # keypair so a 10k-viewer storm stays tractable.  Real clients
        # always generate their own.
        if keypair is not None:
            self._key: RsaPrivateKey = keypair
        else:
            self._key = generate_keypair(drbg.fork(b"client-key"), bits=key_bits)

        self.user_ticket: Optional[UserTicket] = None
        self._prev_utimes: Dict[Tuple[str, str], Optional[float]] = {}
        self.channel_list: Dict[str, ChannelRecord] = {}
        self.channel_ticket: Optional[ChannelTicket] = None
        self.key_ring = ContentKeyRing()
        self.parents: Dict[str, ParentLink] = {}
        self.clock_offset = 0.0
        self.packets_decrypted = 0
        self.decrypt_failures = 0
        #: Replay window (seconds): a key update whose activation time
        #: trails the newest accepted key by more than this is rejected
        #: as a replay.  Must be *narrower* than the ring's working set
        #: (capacity x epoch, ~240s at defaults): any serial still in
        #: the ring is caught by activate_at dedup, so the window only
        #: needs to cover honestly-delayed fresh keys (seconds), and a
        #: window wider than the ring span would let an aged-out serial
        #: re-enter and evict a live key.
        self.key_replay_window = 150.0
        self._newest_key_activation = 0.0
        self.key_replays_rejected = 0
        #: Logins served by a non-primary User Manager replica.
        self.failovers = 0
        #: Shared tracer, attached by Deployment.enable_tracing().
        self.tracer: Optional[Tracer] = None

    @property
    def public_key(self):
        """The client's public key (certified by managers in tickets)."""
        return self._key.public_key

    @property
    def private_key(self) -> RsaPrivateKey:
        """Exposed for the P2P peer wrapper and for threat-model tests."""
        return self._key

    # ------------------------------------------------------------------
    # Login (Fig. 4a)
    # ------------------------------------------------------------------

    def login(self, now: float) -> UserTicket:
        """Run LOGIN1 + LOGIN2; store and return the User Ticket.

        Also performs the utime comparison of Section IV-B: attributes
        whose utime advanced since the previous ticket trigger a
        Channel List refresh from the Channel Policy Manager.
        """
        with maybe_span(self.tracer, "LOGIN", now=now, kind="op"):
            return self._login(now)

    def _login(self, now: float) -> UserTicket:
        route = self._redirection.lookup(self.email)
        user_manager, endpoint = self._resolve_user_manager(route)

        with maybe_span(self.tracer, "LOGIN1", now=now, kind="round"):
            response1 = user_manager.login1(
                Login1Request(email=self.email, client_public_key=self.public_key), now
            )
        blob_key = SymmetricKey(material=self._shp[:16])
        plain = blob_key.decrypt(
            response1.encrypted_blob, nonce=response1.blob_nonce, aad=b"login1"
        )
        dec = Decoder(plain)
        nonce = dec.get_bytes()
        params = ChecksumParams(
            salt=dec.get_bytes(), offset_seed=dec.get_u32(), length=dec.get_u32()
        )
        server_time = dec.get_f64()
        dec.finish()
        self.clock_offset = server_time - now

        checksum = params.compute(self.image)
        payload = nonce + checksum + self.version.encode("utf-8")
        with maybe_span(self.tracer, "LOGIN2", now=now, kind="round"):
            response2 = user_manager.login2(
                Login2Request(
                    email=self.email,
                    client_public_key=self.public_key,
                    token=response1.token,
                    nonce=nonce,
                    checksum=checksum,
                    version=self.version,
                    signature=self._key.sign(payload),
                ),
                observed_addr=self.net_addr,
                now=now,
            )
        ticket = response2.ticket
        ticket.verify(endpoint.public_key, now)

        stale = self._stale_attribute_keys(ticket)
        self.user_ticket = ticket
        if stale is None:
            self._refresh_channel_list(route, ticket, now, stale_keys=None)
        elif stale:
            self._refresh_channel_list(route, ticket, now, stale_keys=stale)
        self._prev_utimes = ticket.attributes.utime_map()
        return ticket

    def _resolve_user_manager(self, route):
        """Resolve the first reachable User Manager replica.

        A replica whose address no longer resolves (crashed farm,
        directory binding gone) is skipped and reported down to the
        Redirection Manager, steering later lookups -- this client's
        and other clients' -- away from it.  All replicas of a farm
        share one key pair, so the ticket verifies identically
        whichever instance serves the login.
        """
        endpoints = list(route.user_manager_replicas) or [route.user_manager]
        last_exc: Optional[Exception] = None
        for index, endpoint in enumerate(endpoints):
            try:
                user_manager = self._directory.resolve(endpoint.address)
            except TransportError as exc:
                last_exc = exc
                self._redirection.mark_down(endpoint.address)
                continue
            if index:
                self.failovers += 1
            return user_manager, endpoint
        raise last_exc

    def _stale_attribute_keys(
        self, new_ticket: UserTicket
    ) -> Optional[List[Tuple[str, str]]]:
        """Attribute keys whose utime advanced; None means 'first login'."""
        if not self._prev_utimes:
            return None
        stale: List[Tuple[str, str]] = []
        for key, utime in new_ticket.attributes.utime_map().items():
            if utime is None:
                continue
            previous = self._prev_utimes.get(key)
            if previous is None or utime > previous:
                stale.append(key)
        return stale

    def _refresh_channel_list(
        self,
        route,
        ticket: UserTicket,
        now: float,
        stale_keys: Optional[List[Tuple[str, str]]],
    ) -> None:
        """Fetch (part of) the Channel List from the CPM.

        The CPM challenges with a nonce which we answer with our
        private key (Section IV-G1).
        """
        cpm = self._directory.resolve(route.channel_policy_manager.address)
        token = cpm.request_channel_list(ticket, now)
        signature = answer_challenge(token, self._key)
        updated = cpm.fetch_channel_list(ticket, token, signature, stale_keys, now)
        if stale_keys is None:
            self.channel_list = updated
            return
        # Partial refresh: any cached channel touching a stale
        # attribute key that the CPM no longer reports has been
        # deleted from the lineup.
        wanted = set(stale_keys)
        for channel_id, record in list(self.channel_list.items()):
            touches = any(attr.key in wanted for attr in record.attributes)
            if touches and channel_id not in updated:
                del self.channel_list[channel_id]
        self.channel_list.update(updated)

    # ------------------------------------------------------------------
    # Channel selection
    # ------------------------------------------------------------------

    def viewable_channels(self, now: float) -> List[str]:
        """Channels this user's attributes would be accepted on.

        Client-side evaluation for the programme guide only; the
        Channel Manager re-evaluates authoritatively at switch time.
        """
        if self.user_ticket is None:
            raise ProtocolError("not logged in")
        viewable = []
        for channel_id, record in sorted(self.channel_list.items()):
            # The compiled index makes the full-lineup scan cheap:
            # each record's policy plan is built once per fetched
            # version, not re-sorted per EPG refresh.
            result = record.compiled().evaluate(self.user_ticket.attributes, now)
            if result.accepted:
                viewable.append(channel_id)
        return viewable

    # ------------------------------------------------------------------
    # Channel switching (Fig. 4b)
    # ------------------------------------------------------------------

    def switch_channel(self, channel_id: str, now: float) -> Switch2Response:
        """Run SWITCH1 + SWITCH2 for a fresh Channel Ticket."""
        with maybe_span(
            self.tracer, "SWITCH", now=now, kind="op", channel=channel_id
        ):
            return self._switch_channel(channel_id, now)

    def _switch_channel(self, channel_id: str, now: float) -> Switch2Response:
        if self.user_ticket is None:
            raise ProtocolError("not logged in")
        record = self.channel_list.get(channel_id)
        if record is None or record.channel_manager_addr is None:
            raise ProtocolError(f"channel {channel_id!r} not in my channel list")
        channel_manager = self._directory.resolve(record.channel_manager_addr)

        with maybe_span(self.tracer, "SWITCH1", now=now, kind="round"):
            response1 = channel_manager.switch1(
                Switch1Request(user_ticket=self.user_ticket, channel_id=channel_id), now
            )
        signature = answer_challenge(response1.token, self._key)
        with maybe_span(self.tracer, "SWITCH2", now=now, kind="round"):
            response2 = channel_manager.switch2(
                Switch2Request(
                    user_ticket=self.user_ticket,
                    token=response1.token,
                    signature=signature,
                    channel_id=channel_id,
                ),
                observed_addr=self.net_addr,
                now=now,
            )
        self._adopt_channel_ticket(response2.ticket, reset_state=True)
        return response2

    def renew_channel_ticket(self, now: float) -> Switch2Response:
        """Renew the current Channel Ticket (Section IV-D)."""
        with maybe_span(self.tracer, "RENEWAL", now=now, kind="op"):
            return self._renew_channel_ticket(now)

    def _renew_channel_ticket(self, now: float) -> Switch2Response:
        if self.user_ticket is None or self.channel_ticket is None:
            raise ProtocolError("nothing to renew")
        record = self.channel_list.get(self.channel_ticket.channel_id)
        if record is None or record.channel_manager_addr is None:
            raise ProtocolError("channel no longer in my channel list")
        channel_manager = self._directory.resolve(record.channel_manager_addr)

        with maybe_span(self.tracer, "RENEW1", now=now, kind="round"):
            response1 = channel_manager.switch1(
                Switch1Request(
                    user_ticket=self.user_ticket, expiring_ticket=self.channel_ticket
                ),
                now,
            )
        signature = answer_challenge(response1.token, self._key)
        with maybe_span(self.tracer, "RENEW2", now=now, kind="round"):
            response2 = channel_manager.switch2(
                Switch2Request(
                    user_ticket=self.user_ticket,
                    token=response1.token,
                    signature=signature,
                    expiring_ticket=self.channel_ticket,
                ),
                observed_addr=self.net_addr,
                now=now,
            )
        self._adopt_channel_ticket(response2.ticket, reset_state=False)
        return response2

    def _adopt_channel_ticket(self, ticket: ChannelTicket, reset_state: bool) -> None:
        self.channel_ticket = ticket
        if reset_state:
            # A genuine channel switch invalidates old keys and parents.
            self.key_ring = ContentKeyRing()
            self.parents = {}

    # ------------------------------------------------------------------
    # Peer join (Fig. 4c)
    # ------------------------------------------------------------------

    def join_peer(self, peer, now: float) -> JoinAccept:
        """Join one target peer; raises on rejection.

        On accept, decrypts the session key with our private key and
        the bundled content key with the session key (Section IV-E).
        """
        with maybe_span(self.tracer, "JOIN", now=now, kind="op"):
            return self._join_peer(peer, now)

    def _join_peer(self, peer, now: float) -> JoinAccept:
        if self.channel_ticket is None:
            raise ProtocolError("no channel ticket to join with")
        result = peer.handle_join(
            JoinRequest(channel_ticket=self.channel_ticket),
            observed_addr=self.net_addr,
            now=now,
        )
        if isinstance(result, JoinReject):
            raise CapacityError(f"join rejected by {result.peer_id}: {result.reason}")
        assert isinstance(result, JoinAccept)
        session_material = self._key.decrypt(result.encrypted_session_key)
        session_key = SymmetricKey(material=session_material)
        self.parents[result.peer_id] = ParentLink(
            peer_id=result.peer_id, session_key=session_key
        )
        content_key = decrypt_key_from_link(
            result.encrypted_content_key,
            serial=result.content_key_serial,
            session_key=session_key,
            channel_id=self.channel_ticket.channel_id,
            activate_at=0.0,
        )
        self.key_ring.offer(content_key)
        return result

    def drop_parent(self, peer_id: str) -> None:
        """Forget a parent link (the peer severed us, or churned away)."""
        self.parents.pop(peer_id, None)

    # ------------------------------------------------------------------
    # Content and key reception
    # ------------------------------------------------------------------

    def receive_key_update(self, update: KeyUpdate, parent_id: str) -> bool:
        """Handle a pushed content key; False if it was a duplicate.

        Duplicates arise naturally when a peer has several parents
        (peer-division multiplexing) and are discarded by serial.
        """
        link = self.parents.get(parent_id)
        if link is None:
            raise ProtocolError(f"key update from unknown parent {parent_id!r}")
        # Dedup must compare activation times, not bare serials: after
        # a serial wraparound the same serial names a *newer* key,
        # which the ring replaces rather than discards.
        if self.key_ring.is_duplicate(update.serial, update.activate_at):
            self.key_ring.duplicates_discarded += 1
            return False
        # Replay window: honest re-delivery of a key the ring still
        # holds is caught above (same activation time); an update whose
        # activation trails the newest accepted key by more than the
        # window is an *old* serial trying to re-enter after its ring
        # slot was recycled -- a replay attack, not network weather.
        if (
            self._newest_key_activation - update.activate_at
            > self.key_replay_window
        ):
            self.key_replays_rejected += 1
            raise ReplayError(
                f"key update serial {update.serial} activates at "
                f"{update.activate_at:g}, {self._newest_key_activation - update.activate_at:g}s "
                f"behind the newest accepted key (window {self.key_replay_window:g}s)"
            )
        content_key = decrypt_key_from_link(
            update.encrypted_content_key,
            serial=update.serial,
            session_key=link.session_key,
            channel_id=update.channel_id,
            activate_at=update.activate_at,
        )
        accepted = self.key_ring.offer(content_key)
        if accepted:
            self._newest_key_activation = max(
                self._newest_key_activation, update.activate_at
            )
        return accepted

    def receive_packet(self, packet) -> bytes:
        """Decrypt a content packet; raises DecryptionError on failure."""
        if self.channel_ticket is None:
            raise ProtocolError("not joined to any channel")
        try:
            payload = decrypt_packet(self.key_ring, self.channel_ticket.channel_id, packet)
        except ReproError:
            self.decrypt_failures += 1
            raise
        self.packets_decrypted += 1
        return payload

    # ------------------------------------------------------------------
    # Mobility
    # ------------------------------------------------------------------

    def move_to(self, new_addr: str) -> None:
        """The user carries the account to a different computer/network.

        Tickets bound to the old NetAddr stop matching; the client must
        re-login and re-switch from the new address (Section IV-D walks
        through exactly this scenario).
        """
        self.net_addr = new_addr
        self.user_ticket = None
        self.channel_ticket = None
        self.key_ring = ContentKeyRing()
        self.parents = {}

"""The Channel Policy Manager: channel lineup, attributes, policies.

Section IV-A: the Channel Policy Manager maintains

1. the **Channel List** -- every channel with its attributes and
   policies (plus, with partitions, the address and public key of the
   Channel Manager serving it, Section V);
2. the **Channel Attribute List** -- the unique attributes collated
   from all channels, each carrying a last-update time (utime).

Whenever a channel is modified, all of its attributes' utimes are made
current in the Channel Attribute List; the updated attribute list is
pushed to User Managers (who stamp utimes into User Tickets) and the
Channel List is pushed to Channel Managers.  Clients notice newer
utimes in a fresh User Ticket and re-fetch the Channel List -- the
paper's mechanism for propagating lineup changes without polling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.attributes import (
    ATTR_REGION,
    Attribute,
    AttributeSet,
    VALUE_ANY,
)
from repro.core.challenge import Challenge, ChallengeIssuer
from repro.core.policy import Decision, Policy, PolicyCondition
from repro.core.policy_index import CompiledPolicyIndex
from repro.core.ticket_cache import TicketVerificationCache
from repro.core.tickets import UserTicket
from repro.errors import AuthorizationError, ProtocolError, ReproError, TicketInvalidError
from repro.util.wire import Decoder, Encoder

#: Durable-store op-record types (see :mod:`repro.store`).  The CPM
#: journals *operations* rather than state images: replaying them with
#: their original ``now`` stamps reproduces every utime exactly, which
#: is what keeps utimes monotone across a crash.
OP_ADD_CHANNEL = 1
OP_DELETE_CHANNEL = 2
OP_SET_ATTRIBUTE = 3
OP_REMOVE_ATTRIBUTE = 4
OP_ADD_POLICY = 5
OP_REMOVE_POLICY = 6
OP_MOVE_PARTITION = 7
OP_SET_CHANNEL_MANAGER = 8


@dataclass
class ChannelRecord:
    """One channel in the Channel List."""

    channel_id: str
    attributes: AttributeSet = field(default_factory=AttributeSet)
    policies: List[Policy] = field(default_factory=list)
    partition: str = "default"
    #: Address of the Channel Manager farm serving this channel's
    #: partition; filled in by the service deployment (Section V: the
    #: Channel Manager's name and key "becomes part of the channel
    #: description").
    channel_manager_addr: Optional[str] = None
    #: Monotone modification counter.  The Channel Policy Manager bumps
    #: it (alongside the attribute utimes) on every mutation before
    #: propagating the record, and :meth:`compiled` rebuilds its cached
    #: policy index whenever the version moved -- the invalidation rule
    #: that makes a stale index (and thus a stale grant) impossible.
    version: int = 0

    #: Minimum wire size of one encoded policy: priority u32, two empty
    #: strings (4-byte prefixes each), and a u32 condition count.
    _MIN_POLICY_WIRE_SIZE = 16

    def copy(self) -> "ChannelRecord":
        """Deep-enough copy for handing to other managers.

        The compiled-index cache does not travel: the copy compiles
        its own on first evaluation, against its own version.
        """
        return ChannelRecord(
            channel_id=self.channel_id,
            attributes=self.attributes.copy(),
            policies=list(self.policies),
            partition=self.partition,
            channel_manager_addr=self.channel_manager_addr,
            version=self.version,
        )

    def compiled(self) -> "CompiledPolicyIndex":
        """This record's policy index, rebuilt when the version moved."""
        cached = self.__dict__.get("_compiled")
        if cached is not None and cached.version == self.version:
            return cached
        index = CompiledPolicyIndex(
            self.policies, self.attributes, version=self.version
        )
        self.__dict__["_compiled"] = index
        return index

    def to_bytes(self) -> bytes:
        """Canonical wire form, as pushed to Channel Managers and
        fetched by clients.  Everything a verifier needs travels in
        one self-contained blob."""
        from repro.util.wire import Encoder

        enc = Encoder()
        enc.put_str(self.channel_id)
        enc.put_str(self.partition)
        enc.put_str(self.channel_manager_addr or "")
        enc.put_u64(self.version)
        self.attributes.encode(enc)
        enc.put_u32(len(self.policies))
        for policy in self.policies:
            policy.encode(enc)
        return enc.to_bytes()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ChannelRecord":
        """Parse the wire form produced by :meth:`to_bytes`."""
        from repro.util.wire import Decoder

        dec = Decoder(blob)
        channel_id = dec.get_str()
        partition = dec.get_str()
        cm_addr = dec.get_str() or None
        version = dec.get_u64()
        attributes = AttributeSet.decode(dec)
        policies = [
            Policy.decode(dec)
            for _ in range(dec.get_count(cls._MIN_POLICY_WIRE_SIZE))
        ]
        dec.finish()
        return cls(
            channel_id=channel_id,
            attributes=attributes,
            policies=policies,
            partition=partition,
            channel_manager_addr=cm_addr,
            version=version,
        )


ChannelListListener = Callable[[Dict[str, ChannelRecord]], None]
AttributeListListener = Callable[[AttributeSet], None]


class ChannelPolicyManager:
    """Central administration point for channel rights metadata.

    All mutators take an explicit ``now`` so utime stamping is
    deterministic under simulation.
    """

    def __init__(self) -> None:
        self._channels: Dict[str, ChannelRecord] = {}
        self._attribute_list = AttributeSet()
        self._channel_listeners: List[ChannelListListener] = []
        self._attribute_listeners: List[AttributeListListener] = []
        self._issuer: Optional[ChallengeIssuer] = None
        self._um_keys: List = []
        self._ticket_cache: Optional[TicketVerificationCache] = None
        self._store = None
        self._replaying = False
        self._snapshot_every: Optional[int] = None
        self._records_since_snapshot = 0

    # ------------------------------------------------------------------
    # Client access (challenge-protected Channel List fetch)
    # ------------------------------------------------------------------

    def enable_client_access(
        self,
        farm_secret: bytes,
        drbg,
        user_manager_keys,
        ticket_cache_size: int = 1024,
    ) -> None:
        """Turn on the client-facing fetch API.

        Section IV-G1: obtaining the Channel List, like obtaining a
        Channel Ticket, requires the client to answer a nonce
        challenge signed with its private key -- so a stolen User
        Ticket alone reveals nothing.

        ``ticket_cache_size`` bounds the verification cache that spares
        repeat fetches a full RSA check of the same User Ticket; 0
        disables it.
        """
        self._issuer = ChallengeIssuer(farm_secret, drbg.fork(b"cpm-challenge"))
        self._um_keys = list(user_manager_keys)
        self._ticket_cache = (
            TicketVerificationCache(ticket_cache_size) if ticket_cache_size else None
        )

    def add_user_manager_key(self, key) -> None:
        """Accept tickets from an additional Authentication Domain."""
        self._um_keys.append(key)

    def _verify_user_ticket(self, ticket: UserTicket, now: float) -> None:
        last_error: Optional[Exception] = None
        for key in self._um_keys:
            try:
                ticket.verify(key, now, cache=self._ticket_cache)
                return
            except AuthorizationError:
                raise
            except Exception as exc:
                last_error = exc
        raise TicketInvalidError(
            f"user ticket not signed by any known User Manager: {last_error}"
        )

    def request_channel_list(self, user_ticket: UserTicket, now: float) -> Challenge:
        """Round 1 of the client fetch: vet the ticket, issue a nonce."""
        if self._issuer is None:
            raise ProtocolError("client access not enabled on this CPM")
        self._verify_user_ticket(user_ticket, now)
        return self._issuer.issue(subject=str(user_ticket.user_id), now=now)

    def fetch_channel_list(
        self,
        user_ticket: UserTicket,
        token: Challenge,
        signature: bytes,
        stale_keys: Optional[List[Tuple[str, str]]],
        now: float,
    ) -> Dict[str, ChannelRecord]:
        """Round 2: verify the nonce response, return the (partial) list.

        ``stale_keys`` of None means a full fetch (first login);
        otherwise only channels touching those attribute keys are
        returned (Section IV-B's partial refresh).
        """
        if self._issuer is None:
            raise ProtocolError("client access not enabled on this CPM")
        self._verify_user_ticket(user_ticket, now)
        self._issuer.verify_response(
            challenge=token,
            subject=str(user_ticket.user_id),
            response_signature=signature,
            client_public_key=user_ticket.client_public_key,
            now=now,
        )
        if stale_keys is None:
            return self.channel_list()
        return self.channels_for_attributes(stale_keys)

    # ------------------------------------------------------------------
    # Listener wiring (push distribution to UM / CM farms)
    # ------------------------------------------------------------------

    def add_channel_list_listener(self, listener: ChannelListListener) -> None:
        """Register a Channel Manager to receive Channel List pushes."""
        self._channel_listeners.append(listener)
        listener(self.channel_list())

    def add_attribute_list_listener(self, listener: AttributeListListener) -> None:
        """Register a User Manager to receive Channel Attribute List pushes."""
        self._attribute_listeners.append(listener)
        listener(self.channel_attribute_list())

    def remove_channel_list_listener(self, listener: ChannelListListener) -> bool:
        """Drop a Channel List listener (a crashed farm); True if present."""
        try:
            self._channel_listeners.remove(listener)
            return True
        except ValueError:
            return False

    def remove_attribute_list_listener(self, listener: AttributeListListener) -> bool:
        """Drop an attribute-list listener; True if present."""
        try:
            self._attribute_listeners.remove(listener)
            return True
        except ValueError:
            return False

    def _push(self) -> None:
        channel_list = self.channel_list()
        attribute_list = self.channel_attribute_list()
        for listener in self._channel_listeners:
            listener(channel_list)
        for listener in self._attribute_listeners:
            listener(attribute_list)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def channel_list(self) -> Dict[str, ChannelRecord]:
        """A copy of the full Channel List."""
        return {cid: rec.copy() for cid, rec in self._channels.items()}

    def channel_attribute_list(self) -> AttributeSet:
        """A copy of the collated unique Channel Attribute List."""
        return self._attribute_list.copy()

    def get_channel(self, channel_id: str) -> ChannelRecord:
        """One channel's record; raises if unknown."""
        record = self._channels.get(channel_id)
        if record is None:
            raise AuthorizationError(f"unknown channel: {channel_id}")
        return record.copy()

    def channels_for_attributes(
        self, stale_keys: List[Tuple[str, str]]
    ) -> Dict[str, ChannelRecord]:
        """Channels touching any of the given (name, value) attribute keys.

        Serves the client's partial refresh: "the client will contact
        the Channel Policy Manager with a list of attributes with more
        recent utimes to obtain an updated Channel List" (Section IV-B).
        """
        wanted = set(stale_keys)
        result: Dict[str, ChannelRecord] = {}
        for cid, record in self._channels.items():
            if any(attr.key in wanted for attr in record.attributes):
                result[cid] = record.copy()
        return result

    # ------------------------------------------------------------------
    # Mutators -- every one stamps utimes and pushes
    # ------------------------------------------------------------------

    def _touch_channel(self, record: ChannelRecord, now: float) -> None:
        """Make all of a modified channel's attribute utimes current.

        Implements: "Whenever a channel is modified, all its
        attributes' last update times are updated to the current time
        in the Channel Attribute List."  The record version bump is
        what invalidates every compiled policy index derived from the
        record (here and in every manager the push reaches).
        """
        record.version += 1
        refreshed = AttributeSet()
        for attr in record.attributes:
            refreshed.add(attr.with_utime(now))
        record.attributes = refreshed
        for attr in record.attributes:
            self._attribute_list.add(attr)
        self._push()

    def add_channel(
        self,
        channel_id: str,
        now: float,
        attributes: Optional[AttributeSet] = None,
        policies: Optional[List[Policy]] = None,
        partition: str = "default",
    ) -> ChannelRecord:
        """Create a channel and push the updated lists."""
        if channel_id in self._channels:
            raise ReproError(f"channel exists: {channel_id}")
        record = ChannelRecord(
            channel_id=channel_id,
            attributes=attributes.copy() if attributes else AttributeSet(),
            policies=list(policies or []),
            partition=partition,
        )
        enc = Encoder()
        enc.put_str(channel_id)
        enc.put_f64(now)
        record.attributes.encode(enc)
        enc.put_u32(len(record.policies))
        for policy in record.policies:
            policy.encode(enc)
        enc.put_str(partition)
        self._channels[channel_id] = record
        self._touch_channel(record, now)
        self._journal(OP_ADD_CHANNEL, enc.to_bytes())
        return record.copy()

    def delete_channel(self, channel_id: str, now: float) -> None:
        """Remove a channel; its attributes' utimes go current."""
        record = self._channels.pop(channel_id, None)
        if record is None:
            raise AuthorizationError(f"unknown channel: {channel_id}")
        for attr in record.attributes:
            self._attribute_list.add(attr.with_utime(now))
        self._push()
        self._journal(
            OP_DELETE_CHANNEL,
            Encoder().put_str(channel_id).put_f64(now).to_bytes(),
        )

    def set_channel_attribute(self, channel_id: str, attribute: Attribute, now: float) -> None:
        """Add or replace one channel attribute."""
        record = self._channels.get(channel_id)
        if record is None:
            raise AuthorizationError(f"unknown channel: {channel_id}")
        record.attributes.add(attribute)
        self._touch_channel(record, now)
        enc = Encoder()
        enc.put_str(channel_id)
        attribute.encode(enc)
        enc.put_f64(now)
        self._journal(OP_SET_ATTRIBUTE, enc.to_bytes())

    def remove_channel_attribute(
        self, channel_id: str, name: str, value: str, now: float
    ) -> bool:
        """Remove one channel attribute; True if present."""
        record = self._channels.get(channel_id)
        if record is None:
            raise AuthorizationError(f"unknown channel: {channel_id}")
        removed = record.attributes.remove(name, value)
        if removed:
            self._attribute_list.add(
                Attribute(name=name, value=value, utime=now)
            )
            self._touch_channel(record, now)
            enc = Encoder()
            enc.put_str(channel_id)
            enc.put_str(name)
            enc.put_str(value)
            enc.put_f64(now)
            self._journal(OP_REMOVE_ATTRIBUTE, enc.to_bytes())
        return removed

    def add_policy(self, channel_id: str, policy: Policy, now: float) -> None:
        """Attach a policy to a channel."""
        record = self._channels.get(channel_id)
        if record is None:
            raise AuthorizationError(f"unknown channel: {channel_id}")
        record.policies.append(policy)
        self._touch_channel(record, now)
        enc = Encoder()
        enc.put_str(channel_id)
        policy.encode(enc)
        enc.put_f64(now)
        self._journal(OP_ADD_POLICY, enc.to_bytes())

    def remove_policy(self, channel_id: str, label: str, now: float) -> bool:
        """Remove policies by label; True if any removed."""
        record = self._channels.get(channel_id)
        if record is None:
            raise AuthorizationError(f"unknown channel: {channel_id}")
        before = len(record.policies)
        record.policies = [p for p in record.policies if p.label != label]
        changed = len(record.policies) != before
        if changed:
            self._touch_channel(record, now)
            self._journal(
                OP_REMOVE_POLICY,
                Encoder().put_str(channel_id).put_str(label).put_f64(now).to_bytes(),
            )
        return changed

    def move_channel_partition(
        self, channel_id: str, partition: str, address: str, now: float
    ) -> None:
        """Re-home a channel onto another Channel Listing Partition.

        Section V's popularity escape hatch: "a very popular channel
        can be put in a partition of its own and served by a farm of
        Channel Managers."  The move updates the channel description
        (partition + manager address) and bumps utimes, so clients
        pick up the new routing at their next ticket renewal.
        """
        record = self._channels.get(channel_id)
        if record is None:
            raise AuthorizationError(f"unknown channel: {channel_id}")
        record.partition = partition
        record.channel_manager_addr = address
        self._touch_channel(record, now)
        self._journal(
            OP_MOVE_PARTITION,
            Encoder().put_str(channel_id).put_str(partition).put_str(address)
            .put_f64(now).to_bytes(),
        )

    def set_channel_manager(self, channel_id: str, address: str, now: float) -> None:
        """Record the Channel Manager farm serving this channel."""
        record = self._channels.get(channel_id)
        if record is None:
            raise AuthorizationError(f"unknown channel: {channel_id}")
        record.channel_manager_addr = address
        self._touch_channel(record, now)
        self._journal(
            OP_SET_CHANNEL_MANAGER,
            Encoder().put_str(channel_id).put_str(address).put_f64(now).to_bytes(),
        )

    # ------------------------------------------------------------------
    # The paper's blackout idiom, packaged (Section IV-A)
    # ------------------------------------------------------------------

    def schedule_blackout(
        self,
        channel_id: str,
        start: float,
        end: float,
        now: float,
        priority: int = 100,
        label: str = "blackout",
    ) -> None:
        """Black out a channel for [start, end].

        Creates a channel attribute ``Region=ANY`` valid only inside
        the window, and a high-priority ``Region=ANY -> REJECT`` policy
        backed by it.  During the window the policy matches every user
        (all users hold some Region) and rejects them; outside it the
        backing attribute is invalid and the policy is dormant.
        """
        if end <= start:
            raise ValueError("blackout end must follow start")
        self.set_channel_attribute(
            channel_id,
            Attribute(name=ATTR_REGION, value=VALUE_ANY, stime=start, etime=end),
            now,
        )
        self.add_policy(
            channel_id,
            Policy.of(
                priority=priority,
                # Pinned to this blackout's window so co-scheduled
                # rules sharing Region=ANY do not cross-activate.
                conditions=[
                    PolicyCondition(
                        name=ATTR_REGION, value=VALUE_ANY, stime=start, etime=end
                    )
                ],
                action=Decision.REJECT,
                label=label,
            ),
            now,
        )

    def cancel_blackout(self, channel_id: str, now: float, label: str = "blackout") -> bool:
        """Remove a scheduled blackout's policy (attribute simply expires)."""
        return self.remove_policy(channel_id, label, now)

    # ------------------------------------------------------------------
    # Durability (see repro.store)
    # ------------------------------------------------------------------

    def attach_store(self, store, snapshot_every: Optional[int] = None,
                     now: float = 0.0) -> None:
        """Journal every lineup mutation to ``store``; snapshot now."""
        self._store = store
        self._snapshot_every = snapshot_every
        self._records_since_snapshot = 0
        store.write_snapshot(self._snapshot_state(), taken_at=now)

    def _journal(self, op: int, body: bytes) -> None:
        if self._store is None or self._replaying:
            return
        self._store.append(op, body)
        self._records_since_snapshot += 1
        if (
            self._snapshot_every is not None
            and self._records_since_snapshot >= self._snapshot_every
        ):
            self._store.write_snapshot(self._snapshot_state())
            self._records_since_snapshot = 0

    def _snapshot_state(self) -> bytes:
        enc = Encoder()
        enc.put_u32(len(self._channels))
        for cid in sorted(self._channels):
            enc.put_bytes(self._channels[cid].to_bytes())
        self._attribute_list.encode(enc)
        return enc.to_bytes()

    def _restore_state(self, state: bytes) -> None:
        dec = Decoder(state)
        self._channels = {}
        for _ in range(dec.get_u32()):
            record = ChannelRecord.from_bytes(dec.get_view())
            self._channels[record.channel_id] = record
        self._attribute_list = AttributeSet.decode(dec)
        dec.finish()

    def _apply_record(self, op: int, body: bytes) -> None:
        """Replay one journaled operation with its original timestamp."""
        dec = Decoder(body)
        if op == OP_ADD_CHANNEL:
            channel_id = dec.get_str()
            now = dec.get_f64()
            attributes = AttributeSet.decode(dec)
            policies = [Policy.decode(dec) for _ in range(dec.get_u32())]
            partition = dec.get_str()
            self.add_channel(
                channel_id, now, attributes=attributes,
                policies=policies, partition=partition,
            )
        elif op == OP_DELETE_CHANNEL:
            self.delete_channel(dec.get_str(), dec.get_f64())
        elif op == OP_SET_ATTRIBUTE:
            channel_id = dec.get_str()
            attribute = Attribute.decode(dec)
            self.set_channel_attribute(channel_id, attribute, dec.get_f64())
        elif op == OP_REMOVE_ATTRIBUTE:
            self.remove_channel_attribute(
                dec.get_str(), dec.get_str(), dec.get_str(), dec.get_f64()
            )
        elif op == OP_ADD_POLICY:
            channel_id = dec.get_str()
            policy = Policy.decode(dec)
            self.add_policy(channel_id, policy, dec.get_f64())
        elif op == OP_REMOVE_POLICY:
            self.remove_policy(dec.get_str(), dec.get_str(), dec.get_f64())
        elif op == OP_MOVE_PARTITION:
            self.move_channel_partition(
                dec.get_str(), dec.get_str(), dec.get_str(), dec.get_f64()
            )
        elif op == OP_SET_CHANNEL_MANAGER:
            self.set_channel_manager(dec.get_str(), dec.get_str(), dec.get_f64())
        else:
            raise ProtocolError(f"unknown WAL op type {op}")
        dec.finish()

    @classmethod
    def recover(cls, store, snapshot_every: Optional[int] = None) -> "ChannelPolicyManager":
        """Rebuild the channel lineup from snapshot + op replay.

        Replayed operations run with their original ``now`` stamps, so
        every utime in the recovered Channel Attribute List is exactly
        what it was before the crash -- utimes never regress, and
        clients' change-detection keeps working across the restart.
        Listeners and client-access keys are runtime wiring, re-added
        by the deployment after recovery.
        """
        import time as _time

        started = _time.perf_counter()
        manager = cls()
        state = store.load()
        if state.snapshot is not None:
            manager._restore_state(state.snapshot.state)
        manager._replaying = True
        try:
            for record in state.records:
                manager._apply_record(record.rec_type, record.body)
        finally:
            manager._replaying = False
        manager._store = store
        manager._snapshot_every = snapshot_every
        manager._records_since_snapshot = len(state.records)
        store.stats.note_recovery(len(state.records), _time.perf_counter() - started)
        return manager

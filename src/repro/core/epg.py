"""Electronic Program Guide: programs, Internet rights, pay-per-view.

The paper's requirements section motivates three per-*program* rights
operations that ride on the attribute/policy engine:

* **Blackouts** — "certain programs be 'blacked out' during their air
  times in the Internet distribution" (Section II);
* **Pay-per-view** — "to enforce per-view payment of paid contents"
  (Section II, Unique User Count) with purchases made out-of-band at
  the Account Manager;
* **Lead-time discipline** — any new viewing policy must be deployed
  at least one User Ticket lifetime before it takes effect
  (Section IV-C).

This module holds the program schedule and compiles it into channel
attributes/policies on the Channel Policy Manager.  Nothing here adds
new enforcement machinery: programs are *compiled down* to exactly the
constructs the Channel Manager already evaluates, which is the point
the paper makes about the versatility of its rights language.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.accounts import AccountManager, Subscription
from repro.core.attributes import ATTR_REGION, ATTR_SUBSCRIPTION, Attribute, VALUE_ANY
from repro.core.policy import Decision, Policy, PolicyCondition
from repro.core.policy_manager import ChannelPolicyManager
from repro.errors import ReproError

#: Policy priorities used by compiled program rights.  PPV entitlement
#: must outrank the PPV fence, and both must outrank ordinary regional
#: ACCEPT rules (priority 50 in the deployment helpers); blackouts
#: outrank everything.
PRIORITY_BLACKOUT = 100
PRIORITY_PPV_ENTITLED = 80
PRIORITY_PPV_FENCE = 70


@dataclass(frozen=True)
class Program:
    """One scheduled program on one channel."""

    program_id: str
    channel_id: str
    start: float
    end: float
    title: str = ""
    #: False models a program whose Internet distribution rights were
    #: not secured: it must be blacked out during its air time.
    internet_rights: bool = True
    #: A price makes the program pay-per-view: only purchasers may
    #: watch during its window.
    ppv_price: Optional[float] = None

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"program {self.program_id}: end before start")
        if self.ppv_price is not None and self.ppv_price < 0:
            raise ValueError("negative pay-per-view price")

    @property
    def is_ppv(self) -> bool:
        return self.ppv_price is not None

    @property
    def ppv_package(self) -> str:
        """The subscription package id a purchase grants."""
        return f"ppv-{self.program_id}"

    def covers(self, now: float) -> bool:
        """Is the program on air at ``now``?  [start, end) semantics."""
        return self.start <= now < self.end


class ElectronicProgramGuide:
    """The provider's program schedule, compiled into channel rights."""

    def __init__(self, policy_manager: ChannelPolicyManager) -> None:
        self._cpm = policy_manager
        self._programs: Dict[str, Program] = {}
        self._applied: set = set()

    # ------------------------------------------------------------------
    # Schedule management
    # ------------------------------------------------------------------

    def add_program(self, program: Program) -> None:
        """Register a program; overlapping programs on one channel are
        rejected (a linear channel airs one program at a time)."""
        if program.program_id in self._programs:
            raise ReproError(f"program exists: {program.program_id}")
        for other in self._programs.values():
            if other.channel_id != program.channel_id:
                continue
            if program.start < other.end and other.start < program.end:
                raise ReproError(
                    f"program {program.program_id} overlaps {other.program_id}"
                )
        self._programs[program.program_id] = program

    def get(self, program_id: str) -> Program:
        """Look up a program; raises if unknown."""
        program = self._programs.get(program_id)
        if program is None:
            raise ReproError(f"unknown program: {program_id}")
        return program

    def current_program(self, channel_id: str, now: float) -> Optional[Program]:
        """What is airing on a channel right now?"""
        for program in self._programs.values():
            if program.channel_id == channel_id and program.covers(now):
                return program
        return None

    def schedule_for(self, channel_id: str) -> List[Program]:
        """A channel's programs in air order."""
        return sorted(
            (p for p in self._programs.values() if p.channel_id == channel_id),
            key=lambda p: p.start,
        )

    # ------------------------------------------------------------------
    # Rights compilation
    # ------------------------------------------------------------------

    def apply_rights(self, program_id: str, now: float) -> None:
        """Compile one program's rights onto the Channel Policy Manager.

        Idempotent.  Callers are responsible for the lead-time rule:
        apply at least one User Ticket lifetime before ``program.start``
        (the Channel Manager's expiry capping then guarantees no ticket
        crosses into a REJECT window regardless).
        """
        program = self.get(program_id)
        if program_id in self._applied:
            return
        if not program.internet_rights:
            self._cpm.schedule_blackout(
                program.channel_id,
                program.start,
                program.end,
                now=now,
                label=f"blackout-{program_id}",
            )
        elif program.is_ppv:
            self._compile_ppv(program, now)
        self._applied.add(program_id)

    def apply_all_rights(self, now: float) -> int:
        """Compile every not-yet-applied program; returns how many."""
        count = 0
        for program_id in list(self._programs):
            if program_id not in self._applied:
                self.apply_rights(program_id, now)
                count += 1
        return count

    def _compile_ppv(self, program: Program, now: float) -> None:
        """Pay-per-view compiles to an entitlement rule over a fence.

        During the window, purchasers (holding the program's ppv
        package as a Subscription attribute) match the priority-80
        ACCEPT; everyone else falls onto the priority-70 REJECT fence.
        Outside the window both backing attributes are invalid, the
        rules are dormant, and the channel's ordinary policies apply.
        """
        channel = program.channel_id
        self._cpm.set_channel_attribute(
            channel,
            Attribute(
                name=ATTR_SUBSCRIPTION,
                value=program.ppv_package,
                stime=program.start,
                etime=program.end,
            ),
            now,
        )
        self._cpm.set_channel_attribute(
            channel,
            Attribute(
                name=ATTR_REGION, value=VALUE_ANY, stime=program.start, etime=program.end
            ),
            now,
        )
        self._cpm.add_policy(
            channel,
            Policy.of(
                PRIORITY_PPV_ENTITLED,
                [
                    PolicyCondition(
                        ATTR_SUBSCRIPTION,
                        program.ppv_package,
                        stime=program.start,
                        etime=program.end,
                    )
                ],
                Decision.ACCEPT,
                label=f"ppv-entitled-{program.program_id}",
            ),
            now,
        )
        self._cpm.add_policy(
            channel,
            Policy.of(
                PRIORITY_PPV_FENCE,
                [
                    PolicyCondition(
                        ATTR_REGION,
                        VALUE_ANY,
                        stime=program.start,
                        etime=program.end,
                    )
                ],
                Decision.REJECT,
                label=f"ppv-fence-{program.program_id}",
            ),
            now,
        )

    # ------------------------------------------------------------------
    # Purchases (out-of-band, at the Account Manager)
    # ------------------------------------------------------------------

    def purchase(
        self, accounts: AccountManager, email: str, program_id: str
    ) -> Subscription:
        """Buy pay-per-view access to a program.

        Grants a Subscription valid exactly for the program window;
        the User Manager turns it into a ticket attribute at the
        buyer's next login, and the entitlement rule matches it.
        """
        program = self.get(program_id)
        if not program.is_ppv:
            raise ReproError(f"program {program_id} is not pay-per-view")
        return accounts.purchase_pay_per_view(
            email,
            program.ppv_package,
            start=program.start,
            end=program.end,
            price=program.ppv_price,
        )

"""Encrypted content packets.

Section IV-E: "By the Channel Server's pre-pending this serial number
to each content packet, the client would know which content key to use
to decrypt a packet."

A packet is: 1 serial byte || 8-byte sequence number || AEAD
ciphertext.  The sequence number doubles as the cipher nonce (unique
per key because re-keying happens far more often than 2^64 packets)
and gives receivers loss/reorder visibility.  The AEAD tag is what
detects channel hijacking: rogue packets "accidentally or maliciously
injected into the P2P network to masquerade as legitimate contents"
fail authentication at every honest client.

This module is on the data plane's per-frame hot path, so it offers
batch entry points (:func:`encrypt_packets` for whole-GOP sealing,
:func:`reencrypt_key_for_links` for per-child key fan-out) that hoist
the invariant work -- key lookup, AAD encoding, cipher state -- out of
the per-packet/per-child loop, and :meth:`ContentPacket.from_bytes`
accepts any bytes-like buffer so wire decode can hand it a
:class:`memoryview` without copying first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.keystream import ContentKey, ContentKeyRing
from repro.crypto.stream import SymmetricKey
from repro.errors import DecryptionError
from repro.metrics.dataplane import counters as dataplane_counters

_HEADER_LEN = 1 + 8


@dataclass(frozen=True)
class ContentPacket:
    """One encrypted media packet as carried over the overlay."""

    serial: int
    sequence: int
    ciphertext: bytes

    def to_bytes(self) -> bytes:
        """Wire form: serial byte, sequence, ciphertext."""
        return (
            self.serial.to_bytes(1, "big")
            + self.sequence.to_bytes(8, "big")
            + bytes(self.ciphertext)
        )

    @classmethod
    def from_bytes(cls, blob) -> "ContentPacket":
        """Parse the wire form from any bytes-like buffer.

        A :class:`memoryview` input is parsed in place -- only the
        ciphertext is materialized, once; headers are read without
        slicing copies.
        """
        if len(blob) < _HEADER_LEN:
            raise DecryptionError("packet shorter than header")
        view = blob if isinstance(blob, memoryview) else memoryview(blob)
        return cls(
            serial=view[0],
            sequence=int.from_bytes(view[1:9], "big"),
            ciphertext=bytes(view[9:]),
        )

    @property
    def size(self) -> int:
        """Total wire size in bytes."""
        return _HEADER_LEN + len(self.ciphertext)


def encrypt_packet(
    content_key: ContentKey, channel_id: str, sequence: int, payload: bytes
) -> ContentPacket:
    """Channel Server side: seal a media payload into a packet.

    The channel id is bound as associated data so a packet captured on
    one channel cannot be replayed into another channel that happens
    to share key material (it never should, but defence in depth is
    cheap here).
    """
    ciphertext = content_key.key.encrypt(
        payload, nonce=sequence, aad=channel_id.encode("utf-8")
    )
    dataplane_counters.packets_sealed += 1
    dataplane_counters.bytes_sealed += len(payload)
    return ContentPacket(
        serial=content_key.serial, sequence=sequence, ciphertext=ciphertext
    )


def encrypt_packets(
    content_key: ContentKey,
    channel_id: str,
    frames: Sequence[Tuple[int, bytes]],
    pool=None,
) -> List[ContentPacket]:
    """Seal a whole batch of ``(sequence, payload)`` frames (one GOP).

    Equivalent to calling :func:`encrypt_packet` per frame but the AAD
    is encoded once and the cipher amortizes its per-key state over
    the batch (:meth:`SymmetricKey.encrypt_many`).

    ``pool`` (a :class:`repro.parallel.pool.CryptoPool`) spreads the
    batch across worker processes; the output bytes are identical, and
    the workers' counter deltas are folded back here so the totals
    below stay exact.
    """
    aad = channel_id.encode("utf-8")
    sequences = [sequence for sequence, _ in frames]
    payloads = [payload for _, payload in frames]
    if pool is not None:
        ciphertexts = pool.encrypt_many(content_key.key, payloads, sequences, aad=aad)
    else:
        ciphertexts = content_key.key.encrypt_many(payloads, sequences, aad=aad)
    serial = content_key.serial
    dataplane_counters.packets_sealed += len(frames)
    dataplane_counters.bytes_sealed += sum(len(p) for p in payloads)
    return [
        ContentPacket(serial=serial, sequence=sequence, ciphertext=ciphertext)
        for sequence, ciphertext in zip(sequences, ciphertexts)
    ]


def decrypt_packet(
    ring: ContentKeyRing, channel_id: str, packet: ContentPacket
) -> bytes:
    """Client side: select the key by serial byte and open the packet.

    Raises :class:`DecryptionError` when the serial is unknown (key
    not yet received, or we were de-authorized and stopped getting
    keys) or when the tag fails (hijacked/corrupted content).
    """
    content_key = ring.get(packet.serial)
    payload = content_key.key.decrypt(
        packet.ciphertext, nonce=packet.sequence, aad=channel_id.encode("utf-8")
    )
    dataplane_counters.packets_opened += 1
    dataplane_counters.bytes_opened += len(payload)
    return payload


def tampered_copy(packet: ContentPacket, flip_byte: int = 0) -> ContentPacket:
    """A polluted copy of ``packet``: same header, corrupted ciphertext.

    This is what a Byzantine parent forwards -- the serial and sequence
    still look legitimate, so a child selects the right key and only
    the AEAD tag check exposes the damage.  Flipping one ciphertext
    byte is indistinguishable (to the tag) from any other corruption.
    """
    body = bytearray(packet.ciphertext)
    if not body:
        raise ValueError("cannot tamper an empty ciphertext")
    body[flip_byte % len(body)] ^= 0xFF
    return ContentPacket(
        serial=packet.serial, sequence=packet.sequence, ciphertext=bytes(body)
    )


def reencrypt_key_for_link(
    content_key: ContentKey, session_key: SymmetricKey, channel_id: str
) -> bytes:
    """Encrypt a content key for one tree link (Section IV-E).

    Each peer "re-encrypts the content key ... with the session-key it
    shares with" each child.  The serial is the nonce -- unique per
    link per key -- and the channel id is bound as associated data.
    """
    return session_key.encrypt(
        content_key.key.material,
        nonce=content_key.serial,
        aad=b"keydist|" + channel_id.encode("utf-8"),
    )


def reencrypt_key_for_links(
    content_key: ContentKey,
    session_keys: Iterable[SymmetricKey],
    channel_id: str,
    pool=None,
) -> List[bytes]:
    """Re-encrypt one content key for a whole set of child links.

    The per-message parts that do not vary across children -- the AAD,
    the nonce bytes, the key-material plaintext -- are built once; the
    per-child work is exactly one session-key encryption, which a
    ``pool`` fans out across worker processes for wide nodes.
    """
    aad = b"keydist|" + channel_id.encode("utf-8")
    material = content_key.key.material
    serial = content_key.serial
    if pool is not None:
        return pool.seal_links(material, serial, aad, list(session_keys))
    return [
        session_key.encrypt(material, nonce=serial, aad=aad)
        for session_key in session_keys
    ]


def decrypt_key_from_link(
    blob: bytes, serial: int, session_key: SymmetricKey, channel_id: str, activate_at: float
) -> ContentKey:
    """Invert :func:`reencrypt_key_for_link` at the receiving child."""
    material = session_key.decrypt(
        blob, nonce=serial, aad=b"keydist|" + channel_id.encode("utf-8")
    )
    return ContentKey(serial=serial, key=SymmetricKey(material=material), activate_at=activate_at)

"""Message-level RPC over the discrete-event engine.

The timing experiments model requests as service-time samples; this
module goes one level deeper: actual request/response *messages*
between the functional components, delivered over the virtual network
with per-message latency, optional loss, and farm queueing.  The same
manager objects that serve the unit tests serve here -- handlers run
real crypto inline -- but time is virtual, so a whole channel-switch
storm plays out deterministically in milliseconds of wall clock.

Pieces:

* :class:`VirtualNetwork` -- owns the engine, the latency model, and
  the address table;
* :class:`RpcService` -- an addressable endpoint: named handlers, an
  optional :class:`~repro.sim.station.ServiceStation` for queueing;
* :func:`expose` -- helper wiring an object's methods as handlers.

Handlers have the signature ``handler(payload, ctx) -> response`` where
``ctx`` carries the caller's address and the virtual time.  Exceptions
raised by handlers travel back to the caller's error callback -- a
denial (e.g. :class:`~repro.errors.PolicyRejectError`) is a *reply*,
not a lost message.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional, Set, Tuple

from repro.errors import RpcDropError, RpcTimeoutError, SimulationError
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel
from repro.sim.station import ServiceStation
from repro.trace.span import Span, TraceContext, Tracer

ReplyCallback = Callable[[Any], None]
ErrorCallback = Callable[[Exception], None]


@dataclass
class RequestContext:
    """What a handler learns about the call."""

    caller_address: str
    now: float
    #: The RPC span's identity, when the network is traced: handlers
    #: that open spans against the shared tracer nest under it.
    trace: Optional[TraceContext] = None


Handler = Callable[[Any, RequestContext], Any]


class RpcService:
    """One addressable endpoint with named handlers.

    ``station`` models the farm: when set, the handler body runs after
    the request has waited through the farm queue; its service time is
    charged from the station's distribution (the handler's own Python
    runtime is *not* charged -- virtual time and real time are kept
    strictly separate).
    """

    def __init__(
        self,
        address: str,
        region: str = "dc",
        station: Optional[ServiceStation] = None,
    ) -> None:
        self.address = address
        self.region = region
        self.station = station
        self._handlers: Dict[str, Handler] = {}
        self.requests_served = 0
        #: Crash flag (see :mod:`repro.sim.faults`): while True the
        #: process is dead -- requests and replies touching it vanish.
        self.down = False

    def register(self, method: str, handler: Handler) -> None:
        """Bind a handler; rebinding is an error (catch wiring bugs)."""
        if method in self._handlers:
            raise SimulationError(f"handler already bound: {self.address}/{method}")
        self._handlers[method] = handler

    def handler_for(self, method: str) -> Handler:
        handler = self._handlers.get(method)
        if handler is None:
            raise SimulationError(f"no handler {method!r} at {self.address}")
        return handler


def expose(service: RpcService, obj: object, methods: Dict[str, str]) -> None:
    """Wire ``obj`` methods as handlers.

    ``methods`` maps RPC method name -> attribute name.  The bound
    attribute is called as ``attr(payload, ctx)``; use small lambda
    adapters on the object side when signatures differ.
    """
    for rpc_name, attr_name in methods.items():
        attr = getattr(obj, attr_name)
        service.register(rpc_name, attr)


class VirtualNetwork:
    """Delivers requests and replies across the virtual WAN."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel,
        rng: random.Random,
        loss_probability: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_probability <= 1.0:
            raise SimulationError("loss probability must be in [0, 1]")
        self.sim = sim
        self._latency = latency
        self._rng = rng
        self.loss_probability = loss_probability
        self._services: Dict[str, RpcService] = {}
        self._blocked_links: Set[Tuple[str, str]] = set()
        self.messages_sent = 0
        self.messages_lost = 0
        self.messages_dropped_down = 0
        self.messages_blocked = 0
        #: When set, every call records one ``rpc:<method>`` span with
        #: its network/queue/service time split (see repro.trace).
        self.tracer: Optional[Tracer] = None
        #: Cross-simulator escape hatch: an object with ``owns(addr)``
        #: and ``send(...)`` (see repro.parallel.shardstorm.ShardBridge).
        #: Calls to addresses the router owns leave this network
        #: entirely and are delivered by the router's own transport.
        self.remote_router = None

    def attach(self, service: RpcService) -> None:
        """Make a service reachable.

        Attaching over a *down* binding replaces it (a recovered
        process taking back its address); attaching over a live one is
        a wiring bug.
        """
        existing = self._services.get(service.address)
        if existing is not None and not existing.down:
            raise SimulationError(f"address in use: {service.address}")
        self._services[service.address] = service

    def detach(self, address: str) -> Optional[RpcService]:
        """Crash the process at ``address``; returns the dead service.

        The binding stays in the table as a *down* tombstone: callers
        of a crashed (as opposed to never-existing) address get message
        drops and timeouts, not a simulation error.  In-flight messages
        still holding the dead object see its ``down`` flag, so nothing
        queued before the crash leaks into the replacement instance
        attached later at the same address.
        """
        service = self._services.get(address)
        if service is not None:
            service.down = True
        return service

    def set_down(self, address: str) -> RpcService:
        """Crash a service in place: requests to it silently vanish."""
        service = self.service(address)
        service.down = True
        return service

    def set_up(self, address: str) -> RpcService:
        """Bring a crashed (but still attached) service back."""
        service = self.service(address)
        service.down = False
        return service

    def service(self, address: str) -> RpcService:
        service = self._services.get(address)
        if service is None:
            raise SimulationError(f"unreachable address: {address}")
        return service

    # -- partitions -------------------------------------------------
    #
    # A blocked link swallows messages *directionally*: requests check
    # (caller -> dst), replies check (dst -> caller), so a one-way
    # block produces the classic "they heard me but I can't hear them"
    # asymmetry.  ``"*"`` wildcards either side.

    def block_link(self, src: str, dst: str) -> None:
        """Silently drop messages travelling ``src -> dst``."""
        self._blocked_links.add((src, dst))

    def unblock_link(self, src: str, dst: str) -> None:
        self._blocked_links.discard((src, dst))

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> None:
        """Cut both directions between every pair across the groups."""
        for a in group_a:
            for b in group_b:
                self._blocked_links.add((a, b))
                self._blocked_links.add((b, a))

    def heal(self) -> None:
        """Remove every blocked link (the partition ends)."""
        self._blocked_links.clear()

    def _link_blocked(self, src: str, dst: str) -> bool:
        if not self._blocked_links:
            return False
        blocked = self._blocked_links
        return (
            (src, dst) in blocked
            or (src, "*") in blocked
            or ("*", dst) in blocked
        )

    def _one_way(self, src_region: str, dst_region: str) -> float:
        # Model as half an RTT between the two regions/sites.
        return self._latency.sample_rtt(src_region, dst_region) / 2.0

    def _lost(self) -> bool:
        if self.loss_probability <= 0.0:
            return False
        return self._rng.random() < self.loss_probability

    def call(
        self,
        caller_address: str,
        caller_region: str,
        dst_address: str,
        method: str,
        payload: Any,
        on_reply: ReplyCallback,
        on_error: Optional[ErrorCallback] = None,
        timeout: Optional[float] = None,
        on_timeout: Optional[Callable[[], None]] = None,
        trace: Optional[TraceContext] = None,
        fail_fast: bool = False,
    ) -> None:
        """Send a request; exactly one of the callbacks eventually fires
        (or ``on_timeout``, if the request or reply is lost and a
        timeout was set).

        A lost or timed-out exchange surfaces as ``on_timeout()`` when
        that callback is given; otherwise a typed
        :class:`~repro.errors.RpcTimeoutError` goes to ``on_error`` so
        retry policies can tell transport failures from protocol
        rejections without a separate callback.

        ``fail_fast`` models connection refusal: when the destination
        is *known* dead at send time (a crashed-in-place process whose
        TCP stack answers RST), the caller gets an
        :class:`~repro.errors.RpcDropError` after one round trip
        instead of burning the whole timeout.  Messages dropped
        mid-flight still need the timeout -- nobody answers for those.

        ``trace`` parents this call's RPC span explicitly (for callers
        resuming across async hops); without it the tracer's ambient
        context, if any, is used.
        """
        router = self.remote_router
        if router is not None and router.owns(dst_address):
            # Cross-shard call: hand off to the bridge.  Timeouts,
            # tracing, loss, and partitions model the *local* fabric
            # only -- the bridge delivers reliably at its own fixed
            # latency, which is what makes conservative windowed
            # synchronization sound.
            self.messages_sent += 1
            router.send(
                caller_address=caller_address,
                caller_region=caller_region,
                dst_address=dst_address,
                method=method,
                payload=payload,
                on_reply=on_reply,
                on_error=on_error,
                now=self.sim.now,
            )
            return
        service = self.service(dst_address)
        self.messages_sent += 1
        tracer = self.tracer
        rpc_span: Optional[Span] = None
        if tracer is not None:
            parent = trace if trace is not None else tracer.current
            rpc_span = tracer.start_span(
                f"rpc:{method}", now=self.sim.now, parent=parent, kind="rpc"
            )
            rpc_span.annotate("dst", dst_address)

        def drop_span(reason: str, now: float) -> None:
            if rpc_span is not None:
                rpc_span.annotate("dropped", reason)
                tracer.finish(rpc_span, now=now)

        timed_out = {"flag": False, "delivered": False, "event": None}
        if timeout is not None:

            def fire_timeout(sim: Simulator) -> None:
                if not timed_out["delivered"]:
                    timed_out["flag"] = True
                    if rpc_span is not None:
                        rpc_span.annotate("timed_out", True)
                        tracer.finish(rpc_span, now=sim.now)
                    if on_timeout is not None:
                        on_timeout()
                    elif on_error is not None:
                        on_error(RpcTimeoutError(method, dst_address, timeout))

            timed_out["event"] = self.sim.schedule(timeout, fire_timeout)

        if self._link_blocked(caller_address, dst_address):
            self.messages_blocked += 1
            drop_span("link-blocked", self.sim.now)
            return  # partitioned away; only the timeout can save the caller
        if self._lost():
            self.messages_lost += 1
            drop_span("request-lost", self.sim.now)
            return  # request vanished; only the timeout can save the caller
        if service.down:
            self.messages_dropped_down += 1
            drop_span("dst-down", self.sim.now)
            if fail_fast:
                # Connection refused: the remote OS answers with a
                # reset after one round trip, so the caller learns now
                # rather than at the timeout horizon.
                rtt = 2.0 * self._one_way(caller_region, service.region)

                def refuse(sim: Simulator) -> None:
                    if timed_out["flag"] or timed_out["delivered"]:
                        return
                    timed_out["delivered"] = True
                    if timed_out["event"] is not None:
                        timed_out["event"].cancel()
                    if on_error is not None:
                        on_error(RpcDropError(method, dst_address, "dst-down"))

                self.sim.schedule(rtt, refuse)
            return  # dead process; without fail_fast the timeout applies

        request_owd = self._one_way(caller_region, service.region)
        if rpc_span is not None:
            rpc_span.network_time += request_owd

        def deliver(sim: Simulator) -> None:
            def run_handler(sim2: Simulator) -> None:
                if service.down:
                    # The process died while the request was in flight
                    # (or queued): the request dies with it.
                    self.messages_dropped_down += 1
                    drop_span("died-with-request", sim2.now)
                    return
                service.requests_served += 1
                ctx = RequestContext(
                    caller_address=caller_address,
                    now=sim2.now,
                    trace=rpc_span.context if rpc_span is not None else None,
                )
                if rpc_span is not None:
                    tracer.push(rpc_span.context)
                try:
                    response = service.handler_for(method)(payload, ctx)
                except Exception as exc:  # denials travel back as errors
                    if rpc_span is not None:
                        rpc_span.annotate("error", type(exc).__name__)
                    self._send_reply(sim2, service, caller_address, caller_region,
                                     exc, None, on_reply, on_error, timed_out,
                                     rpc_span)
                    return
                finally:
                    if rpc_span is not None:
                        tracer.pop()
                self._send_reply(sim2, service, caller_address, caller_region,
                                 None, response, on_reply, on_error, timed_out,
                                 rpc_span)

            if service.station is not None:

                def queued_done(sim2: Simulator, _sojourn: float) -> None:
                    if rpc_span is not None:
                        rpc_span.queue_time += service.station.last_wait
                        rpc_span.service_time += service.station.last_service
                    run_handler(sim2)

                service.station.submit(on_complete=queued_done)
            else:
                run_handler(sim)

        self.sim.schedule(request_owd, deliver)

    def _send_reply(
        self,
        sim: Simulator,
        service: RpcService,
        caller_address: str,
        caller_region: str,
        error: Optional[Exception],
        response: Any,
        on_reply: ReplyCallback,
        on_error: Optional[ErrorCallback],
        timed_out: dict,
        rpc_span: Optional[Span] = None,
    ) -> None:
        tracer = self.tracer

        def drop_span(reason: str, now: float) -> None:
            if rpc_span is not None:
                rpc_span.annotate("dropped", reason)
                tracer.finish(rpc_span, now=now)

        if self._link_blocked(service.address, caller_address):
            # The partition came up between request and reply: the
            # handler ran (its mutation may be durable) but the caller
            # never hears -- same ambiguity as a pre-reply crash.
            self.messages_blocked += 1
            drop_span("link-blocked", sim.now)
            return
        if self._lost():
            self.messages_lost += 1
            drop_span("reply-lost", sim.now)
            return
        if service.down:
            # Crashed after computing but before the reply hit the
            # wire: the WAL made the mutation durable, the reply is
            # gone -- exactly the ambiguity recovery must tolerate.
            self.messages_dropped_down += 1
            drop_span("died-before-reply", sim.now)
            return
        reply_owd = self._one_way(caller_region, service.region)
        if rpc_span is not None:
            rpc_span.network_time += reply_owd

        def deliver_reply(sim2: Simulator) -> None:
            if service.down:
                # The process died with the reply still in its send
                # path: the handler's mutation is durable, the caller
                # never hears -- the ambiguity recovery must tolerate.
                self.messages_dropped_down += 1
                drop_span("died-with-reply", sim2.now)
                return
            if timed_out["flag"]:
                if rpc_span is not None:
                    rpc_span.annotate("late", True)
                return  # caller gave up already
            timed_out["delivered"] = True
            if timed_out["event"] is not None:
                # Successful delivery: cancel the pending timeout so it
                # neither bloats the engine heap nor drags the clock
                # forward to the timeout horizon.
                timed_out["event"].cancel()
            if rpc_span is not None:
                tracer.finish(rpc_span, now=sim2.now)
            if error is not None:
                if on_error is not None:
                    on_error(error)
                return
            on_reply(response)

        sim.schedule(reply_owd, deliver_reply)

"""Crash/restart fault injection for the virtual-time rig.

The durability layer (:mod:`repro.store`) claims that a manager can
die mid-storm and come back with identical state.  This module makes
that claim testable *inside the simulation*: a :class:`FaultInjector`
kills an RPC endpoint at a virtual instant (requests in flight die
with it -- including replies already computed, the classic "durable
but unacknowledged" ambiguity), then at a later instant rebuilds the
manager from its store and re-registers its endpoints.

It also packages the recovery invariants the paper's guarantees imply:

* :func:`single_location_violations` -- the Section IV-D rule: a
  renewal must continue the *same* viewing location; after any entry
  from a new address, the old address never successfully renews.
* :func:`utime_regressions` -- Section IV-B change propagation: the
  recovered Channel Attribute List must never report an *older* utime
  than clients have already seen, or lineup changes would be missed.
* :func:`viewing_log_divergence` -- byte-level equality of viewing
  logs (the crash-recovery acceptance check).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.attributes import AttributeSet
from repro.core.channel_manager import ViewingLogEntry
from repro.errors import SimulationError
from repro.sim.rpc import RpcService, VirtualNetwork


@dataclass
class CrashRecord:
    """One injected crash, for post-run reporting."""

    address: str
    crashed_at: float
    recovered_at: Optional[float] = None
    records_replayed: Optional[int] = None
    recovery_seconds: Optional[float] = None

    @property
    def downtime(self) -> Optional[float]:
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.crashed_at


#: Rebuilds the crashed component and re-registers its RPC endpoints;
#: returns the store whose stats carry replay counters (or None).
RecoveryFn = Callable[[], Optional[object]]


class FaultInjector:
    """Schedules process crashes and recoveries on a virtual network."""

    def __init__(self, network: VirtualNetwork) -> None:
        self._network = network
        self._sim = network.sim
        self.crashes: List[CrashRecord] = []
        #: Scheduled soft faults, ``(when, kind, target)`` -- the
        #: chaos report prints these next to the client outcomes.
        self.events: List[Tuple[float, str, str]] = []

    def crash_at(self, when: float, address: str) -> CrashRecord:
        """Kill the service at ``address`` at virtual time ``when``.

        The binding is detached (the address becomes unreachable) and
        every message still referencing the dead process -- queued
        requests, computed-but-unsent replies -- is dropped when it
        would have been delivered.
        """
        record = CrashRecord(address=address, crashed_at=when)
        self.crashes.append(record)

        def kill(sim) -> None:
            if self._network.detach(address) is None:
                raise SimulationError(f"cannot crash unknown service {address!r}")

        self._sim.schedule_at(when, kill)
        return record

    def recover_at(self, when: float, record: CrashRecord, rebuild: RecoveryFn) -> None:
        """Schedule recovery for a crash previously injected.

        ``rebuild`` runs at ``when``: it must reconstruct the manager
        from its durable store and re-attach its RPC endpoints (the
        address is free again by then).  If it returns the store, the
        crash record picks up replay statistics.
        """
        if when <= record.crashed_at:
            raise SimulationError("recovery must come after the crash")

        def revive(sim) -> None:
            store = rebuild()
            record.recovered_at = sim.now
            if store is not None:
                record.records_replayed = store.stats.records_replayed
                record.recovery_seconds = store.stats.recovery_seconds

        self._sim.schedule_at(when, revive)

    def crash_and_recover(
        self, address: str, crash_at: float, recover_at: float, rebuild: RecoveryFn
    ) -> CrashRecord:
        """Convenience: one crash plus its recovery."""
        record = self.crash_at(crash_at, address)
        self.recover_at(recover_at, record, rebuild)
        return record

    # ------------------------------------------------------------------
    # Softer faults (the chaos suite's vocabulary)
    # ------------------------------------------------------------------
    #
    # ``crash_at``/``recover_at`` model a process death: state is gone
    # and must come back via the durable store.  The faults below keep
    # the process object intact -- they model the network (or the
    # scheduler) misbehaving around a healthy process, which is what
    # rolling restarts, partitions, and brownouts look like from the
    # client side.

    def down_at(self, when: float, address: str) -> None:
        """Crash the service in place at ``when`` (state preserved)."""
        self._log_event(when, "down", address)
        self._sim.schedule_at(when, lambda _sim: self._network.set_down(address))

    def up_at(self, when: float, address: str) -> None:
        """Bring an in-place-crashed service back at ``when``."""
        self._log_event(when, "up", address)
        self._sim.schedule_at(when, lambda _sim: self._network.set_up(address))

    def flap(
        self, address: str, start: float, stop: float, period: float
    ) -> None:
        """Alternate down/up every ``period`` seconds over [start, stop)."""
        if period <= 0.0:
            raise SimulationError("flap period must be positive")
        when, down = start, True
        while when < stop:
            (self.down_at if down else self.up_at)(when, address)
            down = not down
            when += period
        if down is False:
            # An odd number of transitions left it down: restore it.
            self.up_at(stop, address)

    def partition_at(
        self, when: float, group_a: Sequence[str], group_b: Sequence[str]
    ) -> None:
        """Cut both directions between the groups at ``when``."""
        a, b = list(group_a), list(group_b)
        self._log_event(when, "partition", f"{a}<->{b}")
        self._sim.schedule_at(when, lambda _sim: self._network.partition(a, b))

    def heal_at(self, when: float) -> None:
        """Remove every blocked link at ``when``."""
        self._log_event(when, "heal", "*")
        self._sim.schedule_at(when, lambda _sim: self._network.heal())

    def brownout_at(self, when: float, station, factor: float) -> None:
        """Multiply a station's mean service time by ``factor``.

        ``sample_service_time`` reads ``mean_service_time`` live, so
        the slowdown applies to every request serviced after ``when``
        -- including ones already queued.
        """
        if factor <= 0.0:
            raise SimulationError("brownout factor must be positive")
        self._log_event(when, "brownout", f"{station.name} x{factor:g}")

        def slow(_sim) -> None:
            station.mean_service_time *= factor

        self._sim.schedule_at(when, slow)

    def restore_at(self, when: float, station, factor: float) -> None:
        """Undo a brownout applied with the same ``factor``."""
        if factor <= 0.0:
            raise SimulationError("brownout factor must be positive")
        self._log_event(when, "restore", station.name)

        def fast(_sim) -> None:
            station.mean_service_time /= factor

        self._sim.schedule_at(when, fast)

    def _log_event(self, when: float, kind: str, target: str) -> None:
        self.events.append((when, kind, target))


# ----------------------------------------------------------------------
# Recovery invariants
# ----------------------------------------------------------------------


def single_location_violations(log: Sequence[ViewingLogEntry]) -> List[str]:
    """Check the one-viewing-location-per-account rule over a log.

    For each (UserIN, channel), walk entries in issuance order: a
    *renewal* entry must carry the same NetAddr as the entry
    immediately before it.  A renewal from address A landing after the
    account moved to address B means the Channel Manager extended two
    concurrent locations -- the exact breach a restart must not open.
    """
    violations: List[str] = []
    latest: Dict[Tuple[int, str], ViewingLogEntry] = {}
    for entry in log:
        key = (entry.user_id, entry.channel_id)
        previous = latest.get(key)
        if entry.renewal:
            if previous is None:
                violations.append(
                    f"user {entry.user_id} channel {entry.channel_id}: renewal "
                    f"at t={entry.issued_at} with no prior issuance"
                )
            elif previous.net_addr != entry.net_addr:
                violations.append(
                    f"user {entry.user_id} channel {entry.channel_id}: renewal "
                    f"from {entry.net_addr} at t={entry.issued_at} but the "
                    f"account had moved to {previous.net_addr}"
                )
        latest[key] = entry
    return violations


def utime_regressions(before: AttributeSet, after: AttributeSet) -> List[str]:
    """Attributes whose utime went backwards (or vanished) across a restart."""
    regressions: List[str] = []
    after_map = after.utime_map()
    for key, utime in before.utime_map().items():
        if utime is None:
            continue
        recovered = after_map.get(key)
        if recovered is None:
            regressions.append(f"{key}: utime {utime} lost in recovery")
        elif recovered < utime:
            regressions.append(f"{key}: utime regressed {utime} -> {recovered}")
    return regressions


def viewing_log_divergence(
    pre_crash: Sequence[ViewingLogEntry], recovered: Sequence[ViewingLogEntry]
) -> Optional[str]:
    """None if the recovered log starts with exactly the pre-crash log.

    The recovered log may legitimately be *longer* (post-recovery
    traffic); any reordering, loss, or mutation of the pre-crash
    prefix is a divergence.
    """
    if len(recovered) < len(pre_crash):
        return f"recovered log lost entries: {len(recovered)} < {len(pre_crash)}"
    for index, (a, b) in enumerate(zip(pre_crash, recovered)):
        if a != b:
            return f"entry {index} diverged: {a} != {b}"
    return None

"""Adversarial chaos scenarios: Byzantine peers vs. the detection plane.

The crash/partition/brownout scenarios in :mod:`repro.sim.chaos` all
assume honest components failing honestly.  These scenarios assume the
opposite -- authorized peers that *misbehave*: polluting forwarded
packets, withholding or replaying content keys, lying about tree depth
to game parent selection, and flooding the Channel Manager with JOINs.

Every scenario runs a real deployment (CM-issued tickets, ranked peer
lists, the actual overlay cascade) with ~20% adversarial peers and
checks the two invariants the paper's threat model demands, plus the
detect -> quarantine -> evict -> repair pipeline:

* **zero tampered decryptions, ever** -- asserted against the
  adversary's ground-truth log of polluted ciphertexts, not against a
  heuristic: if any honest client successfully decrypts polluted
  bytes, AEAD is broken and the run fails;
* **playback survives** -- at least ``min_uninterrupted`` (default
  0.95) of the honest viewers still decrypt fresh packets after the
  horizon, with the adversaries detected and routed around;
* **the pipeline is observable** -- detection, quarantine, and
  eviction show up as ``kind="adversary"`` trace spans, scorecard
  events, and ``adversary.*`` registry counters.

``CHAOS_ADV_VIEWERS`` overrides the honest-viewer count (CI smoke runs
use a reduced fleet).
"""

from __future__ import annotations

import os
from collections import Counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.deployment import Deployment
from repro.errors import RateLimitError, ReproError
from repro.p2p.adversary import AdversarialPeer, AdversaryConfig
from repro.sim.chaos import ChaosConfig, ScenarioResult

#: Honest viewers unless CHAOS_ADV_VIEWERS overrides; one adversary per
#: four honest viewers makes the fleet exactly 20% adversarial.
DEFAULT_VIEWERS = 20
KEY_EPOCH = 60.0
STEP = 10.0


def _viewer_count(config: ChaosConfig) -> int:
    env = os.environ.get("CHAOS_ADV_VIEWERS")
    if env is not None:
        return max(4, int(env))
    return max(DEFAULT_VIEWERS, config.clients)


class AdversarialRig:
    """One channel, a mixed honest/Byzantine fleet, a manual clock.

    The rig drives the overlay directly (source tick + packet
    broadcast each step, a containment sweep each key epoch) the way
    the flash-crowd storm driver does -- no virtual network needed,
    the misbehavior is all above the transport.
    """

    def __init__(
        self,
        config: ChaosConfig,
        adversary: AdversaryConfig,
        adversaries_first: bool = True,
        join_rate_limit: Optional[Tuple[int, float]] = None,
    ) -> None:
        self.config = config
        self.viewers = _viewer_count(config)
        self.n_adversaries = max(1, round(self.viewers * 0.25))
        self.deployment = Deployment(seed=config.seed, source_capacity=4)
        self.tracer = self.deployment.enable_tracing()
        # A long half-life inside one run: evidence from the fault
        # window must not decay away before the containment sweep.
        self.scorecard = self.deployment.enable_misbehavior_detection(
            half_life=600.0,
            quarantine_threshold=3.0,
            join_rate_limit=join_rate_limit,
        )
        self.deployment.add_free_channel(
            config.channel, regions=["CH"], now=0.0, key_epoch=KEY_EPOCH
        )
        self.overlay = self.deployment.overlay(config.channel)
        self.honest_clients = []
        self.honest_peers = []
        self.adversaries: List[AdversarialPeer] = []
        self.violations: List[str] = []
        self._decrypt_marks: Dict[str, int] = {}

        adversarial = [(f"byz{i}@example.org", True) for i in range(self.n_adversaries)]
        honest = [(f"viewer{i}@example.org", False) for i in range(self.viewers)]
        if adversaries_first:
            # Scatter the adversaries through the join order (one per
            # honest stride).  Joining them in a block would stack them
            # at the top of the tree where they only parent each other
            # -- a blackout, not the detectable-misbehavior regime
            # these scenarios exercise.  Interleaved, each adversary
            # lands under an honest parent and collects honest
            # children.
            stride = max(1, self.viewers // self.n_adversaries)
            # First adversary right after the second honest joiner --
            # early enough that shallow slots are still open, so its
            # inflated capacity advertisement actually wins it honest
            # children through the ranked pipeline.  Later slots at
            # stride intervals may land deep and childless; the gates
            # only need the exposed ones.
            slots = {2 + k * stride for k in range(self.n_adversaries)}
            joiners: List[Tuple[str, bool]] = []
            pending = list(adversarial)
            for index, entry in enumerate(honest):
                joiners.append(entry)
                if (index + 1) in slots and pending:
                    joiners.append(pending.pop(0))
            joiners.extend(pending)
        else:
            joiners = honest + adversarial
        for index, (email, is_adversary) in enumerate(joiners):
            now = float(index)
            client = self.deployment.create_client(email, f"pw{index}", region="CH")
            client.login(now=now)
            response = client.switch_channel(config.channel, now=now)
            if is_adversary:
                # Extra uplink budget: a misbehaving peer *advertising*
                # generous capacity is exactly how a real polluter
                # maximizes its blast radius through ranked selection.
                peer = self.deployment.make_adversarial_peer(
                    client, config.channel, config=adversary, capacity=8
                )
                self.adversaries.append(peer)
            else:
                peer = self.deployment.make_peer(client, config.channel)
                self.honest_clients.append(client)
                self.honest_peers.append(peer)
            self.overlay.join(peer, response.peers, now)
        for client in self.honest_clients:
            self._guard_client(client)

    # -- ground-truth pollution guard -----------------------------------

    def _guard_client(self, client) -> None:
        """No honest client may ever *successfully* decrypt polluted
        bytes.  Tampered copies share (serial, sequence) with the
        honest original, so the check keys on the exact ciphertext."""
        original = client.receive_packet
        adversaries = self.adversaries
        violations = self.violations

        def guarded(packet):
            payload = original(packet)
            for adversary in adversaries:
                if packet.ciphertext in adversary.tampered_blobs:
                    violations.append(
                        f"{client.email} decrypted tampered packet "
                        f"{packet.serial}:{packet.sequence} from {adversary.peer_id}"
                    )
            return payload

        client.receive_packet = guarded

    # -- driving --------------------------------------------------------

    def run_clock(
        self, on_step: Optional[Callable[[float], None]] = None
    ) -> None:
        """Broadcast + key rotation to the horizon, containment sweeps
        once per key epoch."""
        t = 0.0
        next_sweep = KEY_EPOCH
        while t <= self.config.horizon:
            self.scorecard.advance(t)
            self.overlay.source.tick(t)
            self.overlay.source.broadcast_packet(t)
            if on_step is not None:
                on_step(t)
            if t >= next_sweep:
                self.deployment.contain_misbehavior(t)
                next_sweep += KEY_EPOCH
            t += STEP

    def playback_fraction(self) -> float:
        """Fraction of honest viewers decrypting *fresh* packets after
        the horizon (the paper's bar: authorized playback survives)."""
        horizon = self.config.horizon
        marks = {c.email: c.packets_decrypted for c in self.honest_clients}
        for i in range(3):
            now = horizon + float(i + 1)
            self.overlay.source.tick(now)
            self.overlay.source.broadcast_packet(now)
        playing = sum(
            1 for c in self.honest_clients if c.packets_decrypted > marks[c.email]
        )
        return playing / max(1, len(self.honest_clients))

    # -- result assembly ------------------------------------------------

    def finish(self, name: str, extra_violations: List[str]) -> ScenarioResult:
        violations = list(self.violations) + list(extra_violations)
        counters = {
            f"adversary.{key}": float(value)
            for key, value in self.deployment.misbehavior.snapshot().items()
        }
        counters["overlay.repairs"] = float(self.overlay.repairs)
        counters["overlay.repair_log_dropped"] = float(self.overlay.repair_log.dropped)
        counters["honest_viewers"] = float(len(self.honest_clients))
        counters["adversaries"] = float(len(self.adversaries))
        span_counts = Counter(
            span.name for span in self.tracer.spans if span.kind == "adversary"
        )
        # Fault log: one line per adversary (what it injected), then
        # the scorecard's quarantine/evict transitions.
        fault_events: List[tuple] = []
        for peer in self.adversaries:
            injected = Counter(kind for kind, _ in peer.injection_log)
            fault_events.append(
                (peer.config.start, "adversary", f"{peer.peer_id} {dict(injected)}")
            )
        fault_events.extend(
            (when, kind, target)
            for when, kind, target in self.scorecard.events
            if not kind.startswith("detect:")
        )
        return ScenarioResult(
            name=name,
            passed=not violations,
            violations=violations,
            horizon=self.config.horizon,
            fault_events=fault_events,
            outcomes=[],
            counters=counters,
            resilience_spans=dict(span_counts),
        )

    # -- shared invariant helpers ---------------------------------------

    def require_playback(self, violations: List[str]) -> float:
        fraction = self.playback_fraction()
        if fraction < self.config.min_uninterrupted:
            violations.append(
                f"only {fraction:.0%} of honest viewers kept playback "
                f"(bar {self.config.min_uninterrupted:.0%})"
            )
        return fraction

    def require_pipeline(
        self, violations: List[str], detection_counter: str
    ) -> None:
        """Detection fired, quarantine happened, eviction repaired."""
        snapshot = self.deployment.misbehavior.snapshot()
        if snapshot[detection_counter] == 0:
            violations.append(f"no {detection_counter} detections recorded")
        if snapshot["peers_quarantined"] == 0:
            violations.append("no peer was quarantined")
        if snapshot["peers_evicted"] == 0:
            violations.append("no peer was evicted")
        names = {s.name for s in self.tracer.spans if s.kind == "adversary"}
        for required in ("ADVERSARY.detect", "ADVERSARY.quarantine", "ADVERSARY.evict"):
            if required not in names:
                violations.append(f"missing {required} trace span")
        quarantined = self.scorecard.quarantined()
        honest_ids = {peer.peer_id for peer in self.honest_peers}
        framed = sorted(quarantined & honest_ids)
        if framed:
            violations.append(f"honest peers quarantined: {framed}")


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------


def polluting_parents(config: Optional[ChaosConfig] = None) -> ScenarioResult:
    """20% of the fleet tampers every packet it forwards from t=150.

    The adversaries join first, behave, and earn children -- then turn.
    Acceptance: no honest client ever decrypts polluted bytes (AEAD
    holds), pollution is attributed to the forwarding parents, the
    polluters are quarantined and evicted, their children re-parent
    through the ranked repair path, and >=95% of honest viewers are
    decrypting fresh packets at the horizon.
    """
    config = config or ChaosConfig(channel="byz")
    rig = AdversarialRig(
        config,
        AdversaryConfig(tamper_packets=1.0, start=150.0),
    )
    rig.run_clock()
    violations: List[str] = []
    rig.require_pipeline(violations, "pollution_detected")
    rig.require_playback(violations)
    tampered = sum(len(peer.tampered_ids) for peer in rig.adversaries)
    if tampered == 0:
        violations.append("adversaries never tampered a packet (rig bug)")
    return rig.finish("polluting_parents", violations)


def key_withholding_parents(config: Optional[ChaosConfig] = None) -> ScenarioResult:
    """20% of the fleet stops pushing key updates to children at t=150.

    The children keep receiving packets they can no longer decrypt
    once their key ring ages out; the resulting per-parent missing-key
    suspicion quarantines the withholders, eviction re-parents the
    starved subtrees, and join-time key delivery restores playback.
    """
    config = config or ChaosConfig(channel="byz")
    rig = AdversarialRig(
        config,
        AdversaryConfig(withhold_keys=True, start=150.0),
    )
    rig.run_clock()
    violations: List[str] = []
    rig.require_pipeline(violations, "missing_key_detected")
    rig.require_playback(violations)
    withheld = sum(
        1 for peer in rig.adversaries for kind, _ in peer.injection_log
        if kind == "withhold"
    )
    if withheld == 0:
        violations.append("adversaries never withheld a key (rig bug)")
    return rig.finish("key_withholding_parents", violations)


def depth_liars(config: Optional[ChaosConfig] = None) -> ScenarioResult:
    """Late joiners advertise depth 0 to game the ranked parent lists.

    The liars join *after* the honest fleet (so their true depth is
    >=2), pin their advertised depth at 0, and would soak up every
    future join.  The overlay's depth audit cross-checks advertised
    depths against the measured tree, quarantines the liars, and
    evicts them.  This also proves the honest heartbeat path: honest
    peers' depths must track the measured tree within the audit
    tolerance (they refresh once per key epoch via ``parent_depth``).
    """
    config = config or ChaosConfig(channel="byz")
    rig = AdversarialRig(
        config,
        AdversaryConfig(lie_depth=0, start=0.0),
        adversaries_first=False,
    )
    rig.run_clock()
    violations: List[str] = []
    rig.require_pipeline(violations, "depth_lies_detected")
    rig.require_playback(violations)
    # Honest-update path: measured depth vs. heartbeat-refreshed depth.
    measured = rig.overlay.depths()
    stale = [
        (peer.peer_id, peer.depth, measured[peer.peer_id])
        for peer in rig.honest_peers
        if peer.peer_id in measured and abs(peer.depth - measured[peer.peer_id]) > 1
    ]
    if stale:
        violations.append(f"honest depths drifted from measured tree: {stale[:5]}")
    return rig.finish("depth_liars", violations)


def join_flood(config: Optional[ChaosConfig] = None) -> ScenarioResult:
    """One authorized client hammers SWITCH from t=150 onward.

    The CM's per-address sliding-window rate limiter sheds the flood
    before signature work; honest viewers -- including one that joins
    *during* the flood from its own address -- are untouched.
    """
    config = config or ChaosConfig(channel="byz")
    rig = AdversarialRig(
        config,
        AdversaryConfig(),  # the flood comes from a client, not a peer
        join_rate_limit=(5, 60.0),
    )
    flooder = rig.deployment.create_client("flood@example.org", "pw", region="CH")
    flooder.login(now=1.0)
    flood_state = {"attempts": 0, "refused": 0, "errors": []}

    def flood(now: float) -> None:
        if now < 150.0:
            return
        for _ in range(4):  # 24/min against a 5/min budget
            flood_state["attempts"] += 1
            try:
                flooder.switch_channel(config.channel, now=now)
            except RateLimitError:
                flood_state["refused"] += 1
            except ReproError as exc:
                flood_state["errors"].append(str(exc))

    late_state = {"joined": False}

    def late_join(now: float) -> None:
        flood(now)
        if not late_state["joined"] and now >= 300.0:
            late_state["joined"] = True
            client = rig.deployment.create_client(
                "late@example.org", "pw-late", region="CH"
            )
            client.login(now=now)
            try:
                response = client.switch_channel(config.channel, now=now)
                peer = rig.deployment.make_peer(client, config.channel)
                rig.overlay.join(peer, response.peers, now)
                rig.honest_clients.append(client)
                rig.honest_peers.append(peer)
                rig._guard_client(client)
            except ReproError as exc:
                rig.violations.append(f"honest mid-flood join failed: {exc}")

    rig.run_clock(on_step=late_join)
    violations: List[str] = []
    snapshot = rig.deployment.misbehavior.snapshot()
    if snapshot["joins_rate_limited"] == 0:
        violations.append("rate limiter never fired during the flood")
    if flood_state["refused"] == 0:
        violations.append("flooder was never refused")
    if flood_state["refused"] < flood_state["attempts"] * 0.5:
        violations.append(
            f"rate limiter too porous: {flood_state['refused']}/"
            f"{flood_state['attempts']} refused"
        )
    if flood_state["errors"]:
        violations.append(f"unexpected flood errors: {flood_state['errors'][:3]}")
    if not late_state["joined"]:
        violations.append("late honest viewer never attempted its join")
    rig.require_playback(violations)
    result = rig.finish("join_flood", violations)
    result.counters["flood.attempts"] = float(flood_state["attempts"])
    result.counters["flood.refused"] = float(flood_state["refused"])
    return result


def replay_storm(config: Optional[ChaosConfig] = None) -> ScenarioResult:
    """20% of the fleet replays its stalest key alongside every fresh one.

    While the replayed serial still sits in a child's ring the
    activation-time dedup absorbs it silently; once it has aged out,
    the receiver's replay window rejects it (``ReplayError``), the
    parent is charged, quarantined, and evicted.  Playback never
    suffers -- the attack is absorbed at the key ring's edge.
    """
    config = config or ChaosConfig(channel="byz")
    rig = AdversarialRig(
        config,
        AdversaryConfig(replay_keys=True, start=60.0),
    )
    rig.run_clock()
    violations: List[str] = []
    rig.require_pipeline(violations, "key_replays_rejected")
    rig.require_playback(violations)
    replayed = sum(
        1 for peer in rig.adversaries for kind, _ in peer.injection_log
        if kind == "replay"
    )
    if replayed == 0:
        violations.append("adversaries never replayed a key (rig bug)")
    # The replayed serials must never regress a ring: every honest
    # client's newest accepted activation is at the stream head.
    head = max(
        (c._newest_key_activation for c in rig.honest_clients), default=0.0
    )
    laggards = [
        c.email
        for c in rig.honest_clients
        if head - c._newest_key_activation > 2 * KEY_EPOCH
    ]
    if len(laggards) > len(rig.honest_clients) * 0.05:
        violations.append(f"key rings regressed under replay: {laggards[:5]}")
    return rig.finish("replay_storm", violations)
